//! The §4.2 efficiency claims asserted through the observability layer:
//! crash-recovery runs are traced, and the invariant observers check the
//! captured timeline — the backward sweep is strictly LSN-decreasing,
//! inter-cluster gaps are skipped (never visited), and ARIES/RH performs
//! zero in-place log rewrites.

use aries_rh::core::history::replay_engine;
use aries_rh::obs::observer;
use aries_rh::workload::{delegation_mix, WorkloadSpec};
use aries_rh::{ObjectId, RhDb, Strategy, TxnEngine};

/// Two loser clusters separated by a committed transaction's records:
/// t1 (loser) writes early, t2 commits a long run in the middle, t3
/// (loser) writes at the end. The backward pass must sweep t3's cluster,
/// jump the committed middle in one announced gap, and sweep t1's.
#[test]
fn two_cluster_recovery_skips_the_committed_gap() {
    let mut db = RhDb::new(Strategy::Rh);
    let t1 = db.begin().unwrap();
    db.add(t1, ObjectId(1), 1).unwrap();
    db.add(t1, ObjectId(1), 2).unwrap();
    let gap_lo = db.log().curr_lsn().raw() - 1; // t1's last update

    let t2 = db.begin().unwrap();
    for _ in 0..10 {
        db.add(t2, ObjectId(2), 1).unwrap();
    }
    db.commit(t2).unwrap();

    let t3 = db.begin().unwrap();
    let gap_hi = db.log().curr_lsn().raw(); // t3's first update
    db.add(t3, ObjectId(3), 5).unwrap();
    db.add(t3, ObjectId(3), 6).unwrap();

    db.log().flush_all().unwrap();
    let db = db.crash_and_recover().unwrap();
    let trace = db.trace_snapshot();
    let stats = db.stats();

    let visits = observer::backward_visits(&trace);
    assert_eq!(visits.len(), 4, "two scopes of two updates each: {visits:?}");
    observer::check_backward_monotone(&trace).unwrap();
    observer::check_gaps_skipped(&trace).unwrap();
    // The committed middle (strictly between the loser clusters) was
    // never brought in...
    observer::check_range_untouched(&trace, gap_lo, gap_hi).unwrap();
    // ...and the sweep announced exactly that jump.
    assert!(
        observer::skipped_gaps(&trace).contains(&(gap_lo, gap_hi)),
        "expected gap ({gap_lo}, {gap_hi}) in {:?}",
        observer::skipped_gaps(&trace)
    );
    observer::check_no_rewrites(&trace, &stats).unwrap();

    // The report agrees with the trace.
    let report = db.last_recovery().unwrap();
    assert_eq!(report.undo.visited, 4);
    assert_eq!(report.undo.clusters, 2);
    assert_eq!(report.undo.rewrites, 0);
}

#[test]
fn delegated_crash_recovery_satisfies_the_sweep_invariants() {
    for seed in [3, 5, 8] {
        let spec = WorkloadSpec {
            txns: 60,
            updates_per_txn: 4,
            delegation_rate: 0.7,
            chain_len: 2,
            straggler_rate: 0.3,
            abort_rate: 0.1,
            seed,
            ..WorkloadSpec::default()
        };
        let engine = replay_engine(RhDb::new(Strategy::Rh), &delegation_mix(&spec)).unwrap();
        engine.log().flush_all().unwrap();
        let engine = engine.crash_and_recover().unwrap();
        let trace = engine.trace_snapshot();
        let stats = engine.stats();

        observer::check_backward_monotone(&trace).unwrap();
        observer::check_gaps_skipped(&trace).unwrap();
        observer::check_no_rewrites(&trace, &stats).unwrap();
        assert!(
            !observer::backward_visits(&trace).is_empty(),
            "stragglers guarantee a backward sweep (seed {seed})"
        );
        // The forward pass replayed the workload's delegations into the
        // unified registry.
        assert!(
            stats.counter("scope.delegate_replays") > 0,
            "no delegate records replayed (seed {seed})"
        );
        assert_eq!(stats.counter("recovery.runs"), 1);
    }
}

/// The recovery timeline also lands in per-experiment JSON artifacts;
/// here, the engine-level JSON export round-trips through the strict
/// parser and carries the timeline.
#[test]
fn obs_json_roundtrip_carries_the_timeline() {
    let mut db = RhDb::new(Strategy::Rh);
    let t = db.begin().unwrap();
    db.add(t, ObjectId(9), 4).unwrap();
    db.log().flush_all().unwrap();
    let db = db.crash_and_recover().unwrap();

    db.stats(); // absorb log/disk/lock counters before export
    let rendered = db.obs().to_json().render_pretty();
    let parsed = aries_rh::obs::json::parse(&rendered).expect("well-formed JSON");
    let events = parsed
        .get("trace")
        .and_then(|t| t.get("events"))
        .and_then(|e| e.as_arr())
        .expect("trace.events");
    assert!(!events.is_empty());
    let counters = parsed.get("metrics").and_then(|m| m.get("counters")).expect("metrics.counters");
    assert!(counters.get("log.appends").is_some());
    assert!(counters.get("recovery.runs").is_some());
}
