//! Crash storms with **partial durability**: unlike the oracle suites
//! (which force the log before crashing so the whole prefix is visible),
//! these crashes happen with only the records stable that the engine's
//! own commit-time forces made stable. The expected state is computed by
//! giving the oracle exactly the events whose log records survived.
//!
//! This exercises the subtlest part of the write-ahead discipline: a
//! crash may cut *between* a transaction's updates and its commit — the
//! transaction must then be a loser even though `commit()` was never
//! refused — and updates that only ever lived in the volatile tail must
//! leave no trace (including via stolen pages, whose eviction forces the
//! log first).

use aries_rh::core::history::{Event, Oracle};
use aries_rh::workload::{delegation_mix, WorkloadSpec};
use aries_rh::{DbConfig, RhDb, Strategy, TxnEngine};

/// Replays `events[..cut]` on a fresh RH engine, crashes WITHOUT any
/// extra flush, recovers, and checks the state against the oracle run on
/// the events whose records made it to stable storage.
fn check_partial_crash(events: &[Event], cut: usize, pool_pages: usize) {
    // First pass: replay the prefix while recording the log length after
    // each event, so we can map "stable length" back to an event count.
    let mut engine = RhDb::with_config(Strategy::Rh, DbConfig { pool_pages });
    // For each event, the log length that must be stable for the event
    // to have "happened" durably. Commit/Abort append a trailing End
    // record after their decisive commit/abort record, so their decisive
    // length is one less than the post-event length. (An abort whose
    // CLRs survive without the abort record is equivalent either way:
    // crash-undo completes the rollback to the same state.)
    let mut decisive_len: Vec<usize> = Vec::with_capacity(cut);
    {
        // Inline replay (replay_engine doesn't expose per-event hooks).
        use std::collections::HashMap;
        let mut ids: HashMap<u32, aries_rh::TxnId> = HashMap::new();
        for ev in &events[..cut] {
            let terminal = matches!(ev, Event::Commit(_) | Event::Abort(_));
            match ev {
                Event::Begin(t) => {
                    ids.insert(*t, engine.begin().unwrap());
                }
                Event::Write(t, ob, v) => engine.write(ids[t], *ob, *v).unwrap(),
                Event::Add(t, ob, d) => engine.add(ids[t], *ob, *d).unwrap(),
                Event::Delegate(tor, tee, obs) => engine.delegate(ids[tor], ids[tee], obs).unwrap(),
                Event::DelegateAll(tor, tee) => engine.delegate_all(ids[tor], ids[tee]).unwrap(),
                Event::Commit(t) => engine.commit(ids[t]).unwrap(),
                Event::Abort(t) => engine.abort(ids[t]).unwrap(),
                Event::Savepoint(..) | Event::RollbackTo(..) => {
                    // delegation_mix does not emit these; ignore if ever
                    // added (they append no decisive record of their own).
                }
                Event::Checkpoint | Event::Crash => unreachable!("not generated here"),
            }
            let len = engine.log().len();
            decisive_len.push(if terminal { len - 1 } else { len });
        }
    }

    // Crash with whatever is stable (no flush_all!).
    let stable_len = engine.log().stable_len();
    let mut recovered = engine.crash_and_recover().unwrap();

    // The surviving events: those whose decisive record is stable.
    let survived = decisive_len.iter().take_while(|&&len| len <= stable_len).count();
    let mut expected_events: Vec<Event> = events[..survived].to_vec();
    expected_events.push(Event::Crash);
    let oracle = Oracle::run(&expected_events);

    for ob in oracle.touched() {
        let got = recovered.value_of(ob).unwrap();
        let want = oracle.value(ob);
        assert_eq!(
            got, want,
            "partial-flush divergence on {ob} (cut={cut}, stable={stable_len}, survived={survived})"
        );
    }
}

fn workload(seed: u64) -> Vec<Event> {
    delegation_mix(&WorkloadSpec {
        txns: 25,
        updates_per_txn: 4,
        objects_per_txn: 2,
        delegation_rate: 0.5,
        chain_len: 1,
        straggler_rate: 0.2,
        abort_rate: 0.15,
        seed,
        ..WorkloadSpec::default()
    })
}

#[test]
fn crash_at_every_event_boundary_without_flushing() {
    let events = workload(0xC0FFEE);
    for cut in 0..=events.len() {
        check_partial_crash(&events, cut, 256);
    }
}

#[test]
fn crash_at_every_event_boundary_with_tiny_pool() {
    // A one-page pool steals constantly: stolen pages force the log, so
    // far more of the history is stable at each crash — and uncommitted
    // stolen values must be undone from disk.
    let events = workload(0xBEEF);
    for cut in 0..=events.len() {
        check_partial_crash(&events, cut, 1);
    }
}

#[test]
fn crash_boundaries_across_seeds() {
    for seed in 1..=4 {
        let events = workload(seed);
        // Sample boundaries (full sweep per seed would be slow in CI).
        for cut in (0..=events.len()).step_by(7) {
            check_partial_crash(&events, cut, 4);
        }
    }
}
