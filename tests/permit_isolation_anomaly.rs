//! Permits deliberately break isolation ("data sharing without forming
//! inter-transaction dependencies", §1; the correctness caveats are the
//! "extra data" discussion the paper cites \[11\]). This file documents
//! the consequence precisely:
//!
//! * the **in-place** engines (ARIES/RH, eager) and the oracle agree with
//!   each other under permit-enabled write interleavings — undo restores
//!   execution-time before-images;
//! * the **deferred** engine (EOS) can legitimately differ when permitted
//!   writers commit in an order other than their execution order, because
//!   deferred images apply at commit time. This is a property of the
//!   NO-UNDO design, not a bug — and exactly why the paper's §3.7
//!   restricts EOS delegation semantics to the read/write model where
//!   "even compatible update operations execute in isolation".
//!
//! The random-history suites therefore never generate permits; this
//! scripted test pins the anomaly so a future change that silently
//! "fixes" either side gets noticed.

use aries_rh::{EagerDb, EosDb, ObjectId, RhDb, Strategy, TxnEngine};

const A: ObjectId = ObjectId(0);

/// Two permitted writers; `reverse_commit` commits them opposite to
/// execution order. Returns the surviving value of A.
fn run<E: TxnEngine>(mut e: E, reverse_commit: bool) -> i64 {
    let t1 = e.begin().unwrap();
    let t2 = e.begin().unwrap();
    e.write(t1, A, 5).unwrap();
    e.permit(t1, t2, A).unwrap();
    e.write(t2, A, 9).unwrap(); // permitted through t1's X lock
    if reverse_commit {
        e.commit(t2).unwrap();
        e.commit(t1).unwrap();
    } else {
        e.commit(t1).unwrap();
        e.commit(t2).unwrap();
    }
    e.value_of(A).unwrap()
}

#[test]
fn in_place_engines_agree_in_both_commit_orders() {
    for reverse in [false, true] {
        let rh = run(RhDb::new(Strategy::Rh), reverse);
        let lazy = run(RhDb::new(Strategy::LazyRewrite), reverse);
        let eager = run(EagerDb::new(), reverse);
        // Execution order decides for in-place engines: last write wins.
        assert_eq!(rh, 9, "reverse={reverse}");
        assert_eq!(lazy, 9);
        assert_eq!(eager, 9);
    }
}

#[test]
fn eos_matches_in_execution_commit_order() {
    assert_eq!(run(EosDb::new(), false), 9);
}

#[test]
fn eos_diverges_in_reversed_commit_order_by_design() {
    // Deferred updates apply at commit: committing t2 (image 9) before
    // t1 (image 5) leaves 5. The in-place engines leave 9. Documented
    // NO-UNDO anomaly under permit-broken isolation.
    assert_eq!(run(EosDb::new(), true), 5);
}

#[test]
fn permitted_writer_abort_restores_execution_time_image() {
    // t2's permitted write is aborted: the in-place engines restore its
    // before-image — which is t1's 5, not the pre-history 0. The paper's
    // framework calls this the application's responsibility (it asked
    // for the permit).
    let mut e = RhDb::new(Strategy::Rh);
    let t1 = e.begin().unwrap();
    let t2 = e.begin().unwrap();
    e.write(t1, A, 5).unwrap();
    e.permit(t1, t2, A).unwrap();
    e.write(t2, A, 9).unwrap();
    e.abort(t2).unwrap();
    assert_eq!(e.value_of(A).unwrap(), 5);
    e.commit(t1).unwrap();
    let mut e = e.crash_and_recover().unwrap();
    assert_eq!(e.value_of(A).unwrap(), 5);
}
