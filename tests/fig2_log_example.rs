//! Integration test for the paper's Example 1 / Fig. 2, driven through
//! the facade crate: the same history on ARIES/RH (log never modified),
//! the eager baseline (log physically rewritten), and EOS — all three
//! must realize identical delegation semantics.

use aries_rh::common::{Lsn, ObjectId};
use aries_rh::core::history::{replay_engine, Event};
use aries_rh::{EagerDb, EosDb, RhDb, Strategy, TxnEngine};

const A: ObjectId = ObjectId(0);
const X: ObjectId = ObjectId(1);
const B: ObjectId = ObjectId(2);
const Y: ObjectId = ObjectId(3);

/// Example 1 up to and including `delegate(t1, t2, a)`.
fn example1() -> Vec<Event> {
    vec![
        Event::Begin(1),
        Event::Begin(2),
        Event::Add(1, A, 1),
        Event::Add(2, X, 1),
        Event::Add(2, A, 10),
        Event::Add(1, B, 1),
        Event::Add(1, A, 100),
        Event::Add(2, Y, 1),
        Event::Delegate(1, 2, vec![A]),
    ]
}

#[test]
fn rh_keeps_the_log_verbatim() {
    let db = replay_engine(RhDb::new(Strategy::Rh), &example1()).unwrap();
    // Records at LSN 2 and 6 (paper 100 and 104) still carry the
    // delegator's id — history is interpreted, not rewritten.
    assert_eq!(db.log().read(Lsn(2)).unwrap().txn, db.log().read(Lsn(5)).unwrap().txn);
    assert_eq!(db.log().metrics().snapshot().in_place_rewrites, 0);
}

#[test]
fn eager_rewrites_exactly_the_delegated_records() {
    let db = replay_engine(EagerDb::new(), &example1()).unwrap();
    let log = db.log();
    // Engine ids: label 1 -> t0, label 2 -> t1. Fig. 2's "after" picture:
    // updates to `a` by t1 (our t0) now appear to be t2's (our t1)...
    let rewritten_1 = log.read(Lsn(2)).unwrap();
    let rewritten_2 = log.read(Lsn(6)).unwrap();
    assert_eq!(rewritten_1.txn, rewritten_2.txn);
    assert_ne!(rewritten_1.txn, log.read(Lsn(5)).unwrap().txn);
    // ...while update[t1, b] (our LSN 5) is untouched, as are t2's own.
    assert_eq!(log.read(Lsn(5)).unwrap().txn, log.read(Lsn(0)).unwrap().txn);
    assert!(log.metrics().snapshot().in_place_rewrites >= 2);
}

#[test]
fn all_engines_agree_on_every_fate_combination() {
    for f1 in [true, false] {
        for f2 in [true, false] {
            let mut events = example1();
            events.push(if f1 { Event::Commit(1) } else { Event::Abort(1) });
            events.push(if f2 { Event::Commit(2) } else { Event::Abort(2) });
            events.push(Event::Crash);

            let mut rh = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
            let mut lazy = replay_engine(RhDb::new(Strategy::LazyRewrite), &events).unwrap();
            let mut eager = replay_engine(EagerDb::new(), &events).unwrap();
            let mut eos = replay_engine(EosDb::new(), &events).unwrap();

            for ob in [A, X, B, Y] {
                let v = rh.value_of(ob).unwrap();
                assert_eq!(v, lazy.value_of(ob).unwrap(), "lazy diverged on {ob} ({f1},{f2})");
                assert_eq!(v, eager.value_of(ob).unwrap(), "eager diverged on {ob} ({f1},{f2})");
                assert_eq!(v, eos.value_of(ob).unwrap(), "eos diverged on {ob} ({f1},{f2})");
            }
            // The delegated updates on `a` (+1, +100) and t2's own (+10)
            // all follow t2's fate after the delegation.
            let expected_a = if f2 { 111 } else { 0 };
            assert_eq!(rh.value_of(A).unwrap(), expected_a);
            // x and y follow t2; b follows t1.
            assert_eq!(rh.value_of(X).unwrap(), if f2 { 1 } else { 0 });
            assert_eq!(rh.value_of(Y).unwrap(), if f2 { 1 } else { 0 });
            assert_eq!(rh.value_of(B).unwrap(), if f1 { 1 } else { 0 });
        }
    }
}
