//! Cross-crate scenarios mixing the extensions: savepoints under
//! delegation on every engine (checked against the oracle), and EOS
//! compaction interleaved with delegation and crashes.

use aries_rh::core::history::{assert_engine_matches_oracle, Event};
use aries_rh::{EagerDb, EosDb, ObjectId, RhDb, Strategy, TxnEngine};

const A: ObjectId = ObjectId(0);
const B: ObjectId = ObjectId(1);

#[test]
fn savepoint_histories_match_oracle_on_every_engine() {
    // A scripted history with savepoints, rollbacks, delegation across
    // the savepoint boundary, and a final crash.
    let script = vec![
        Event::Begin(0),
        Event::Begin(1),
        Event::Add(0, A, 1),
        Event::Savepoint(0, 0),
        Event::Add(0, A, 10),
        Event::Add(1, B, 5),
        Event::Delegate(1, 0, vec![B]), // B's +5 (pre-rollback seq) joins t0
        Event::RollbackTo(0, 0),        // undoes +10 and the delegated +5
        Event::Add(0, A, 100),
        Event::Commit(0),
        Event::Commit(1),
        Event::Crash,
    ];
    assert_engine_matches_oracle(RhDb::new(Strategy::Rh), &script);
    assert_engine_matches_oracle(RhDb::new(Strategy::LazyRewrite), &script);
    assert_engine_matches_oracle(EagerDb::new(), &script);
    assert_engine_matches_oracle(EosDb::new(), &script);
}

#[test]
fn rollback_of_delegated_in_work_is_positional_everywhere() {
    // The delegated update predates the savepoint: it must survive the
    // rollback on all engines (positional semantics).
    let script = vec![
        Event::Begin(0),
        Event::Begin(1),
        Event::Add(1, B, 5), // before the savepoint
        Event::Savepoint(0, 0),
        Event::Delegate(1, 0, vec![B]),
        Event::Add(0, A, 9),
        Event::RollbackTo(0, 0), // kills +9, keeps +5 (older position)
        Event::Commit(0),
        Event::Commit(1),
    ];
    for _ in 0..1 {
        assert_engine_matches_oracle(RhDb::new(Strategy::Rh), &script);
        assert_engine_matches_oracle(EagerDb::new(), &script);
        assert_engine_matches_oracle(EosDb::new(), &script);
    }
}

#[test]
fn eos_compaction_between_delegation_rounds() {
    let mut db = EosDb::new();
    for round in 0..4i64 {
        let worker = db.begin().unwrap();
        let publisher = db.begin().unwrap();
        db.add(worker, A, round + 1).unwrap();
        db.delegate(worker, publisher, &[A]).unwrap();
        db.abort(worker).unwrap();
        db.commit(publisher).unwrap();
        db.compact(); // fold into the stable snapshot, truncate the log
        db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(A).unwrap(), (1..=round + 1).sum::<i64>());
        assert_eq!(db.global().len(), 0, "log must be empty after compaction");
    }
}

#[test]
fn rh_truncation_and_eos_compaction_agree_on_the_same_history() {
    // Same logical history on both engines, each using its own
    // log-bounding mechanism mid-stream; final states must agree.
    let run_rh = || {
        let mut db = RhDb::new(Strategy::Rh);
        let t = db.begin().unwrap();
        db.add(t, A, 10).unwrap();
        db.commit(t).unwrap();
        db.checkpoint().unwrap();
        db.truncate_log().unwrap();
        let t = db.begin().unwrap();
        db.add(t, A, 5).unwrap();
        db.commit(t).unwrap();
        let mut db = db.crash_and_recover().unwrap();
        db.value_of(A).unwrap()
    };
    let run_eos = || {
        let mut db = EosDb::new();
        let t = db.begin().unwrap();
        db.add(t, A, 10).unwrap();
        db.commit(t).unwrap();
        db.compact();
        let t = db.begin().unwrap();
        db.add(t, A, 5).unwrap();
        db.commit(t).unwrap();
        let mut db = db.crash_and_recover().unwrap();
        db.value_of(A).unwrap()
    };
    assert_eq!(run_rh(), 15);
    assert_eq!(run_eos(), 15);
}
