//! Workload-scale equivalence across all four engines, through the
//! facade: generated delegation workloads (plus trailing crash) must
//! land every engine on the oracle state.

use aries_rh::core::history::{assert_engine_matches_oracle, Event};
use aries_rh::workload::{boring, delegation_chain, delegation_mix, interleaved_mix, WorkloadSpec};
use aries_rh::{EagerDb, EosDb, RhDb, Strategy};

fn check_all_engines(events: &[Event]) {
    assert_engine_matches_oracle(RhDb::new(Strategy::Rh), events);
    assert_engine_matches_oracle(RhDb::new(Strategy::LazyRewrite), events);
    assert_engine_matches_oracle(EagerDb::new(), events);
    assert_engine_matches_oracle(EosDb::new(), events);
}

#[test]
fn boring_workloads() {
    for seed in 0..5 {
        let spec = WorkloadSpec::default().txns(60).seed(seed);
        let mut events = boring(&spec);
        events.push(Event::Crash);
        check_all_engines(&events);
    }
}

#[test]
fn delegation_mix_workloads() {
    for seed in 0..5 {
        let spec = WorkloadSpec {
            txns: 60,
            delegation_rate: 0.6,
            chain_len: 2,
            straggler_rate: 0.3,
            abort_rate: 0.1,
            seed,
            ..WorkloadSpec::default()
        };
        let mut events = delegation_mix(&spec);
        events.push(Event::Crash);
        check_all_engines(&events);
    }
}

#[test]
fn interleaved_workloads() {
    for seed in 0..3 {
        let spec = WorkloadSpec {
            txns: 30,
            updates_per_txn: 5,
            delegation_rate: 0.8,
            chain_len: 2,
            straggler_rate: 0.4,
            seed,
            ..WorkloadSpec::default()
        };
        let mut events = interleaved_mix(&spec);
        events.push(Event::Crash);
        check_all_engines(&events);
    }
}

#[test]
fn long_delegation_chains() {
    for (hops, spacers) in [(1, 10), (8, 5), (20, 2)] {
        let mut events = delegation_chain(42, hops, spacers, true);
        events.push(Event::Crash);
        check_all_engines(&events);
    }
}

#[test]
fn mid_workload_crashes() {
    // Crash in the middle *and* at the end.
    let spec = WorkloadSpec {
        txns: 40,
        delegation_rate: 0.5,
        straggler_rate: 0.3,
        ..WorkloadSpec::default()
    };
    let events = delegation_mix(&spec);
    for cut in [events.len() / 3, events.len() / 2, 2 * events.len() / 3] {
        // Cutting mid-history can orphan labels referenced later, so we
        // only keep the prefix and crash there.
        let mut h: Vec<Event> = events[..cut].to_vec();
        h.push(Event::Crash);
        check_all_engines(&h);
    }
}
