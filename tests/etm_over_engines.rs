//! The ETM layer is engine-generic: the same synthesized models must
//! behave identically over ARIES/RH, the eager baseline, and EOS —
//! the paper's "general-purpose machinery" claim, executed.

use aries_rh::common::ObjectId;
use aries_rh::etm::nested::run_trip;
use aries_rh::etm::reporting::ReportingTxn;
use aries_rh::etm::split::{join, split};
use aries_rh::{EagerDb, EosDb, EtmSession, RhDb, Strategy, TxnEngine};

const A: ObjectId = ObjectId(0);
const B: ObjectId = ObjectId(1);

fn split_scenario<E: TxnEngine>(engine: E) -> (i64, i64) {
    let mut s = EtmSession::new(engine);
    let t1 = s.initiate_empty().unwrap();
    s.write(t1, A, 1).unwrap();
    s.write(t1, B, 2).unwrap();
    let t2 = split(&mut s, t1, &[B]).unwrap();
    s.commit(t2).unwrap();
    s.abort(t1).unwrap();
    (s.value_of(A).unwrap(), s.value_of(B).unwrap())
}

#[test]
fn split_behaves_identically_on_all_engines() {
    assert_eq!(split_scenario(RhDb::new(Strategy::Rh)), (0, 2));
    assert_eq!(split_scenario(RhDb::new(Strategy::LazyRewrite)), (0, 2));
    assert_eq!(split_scenario(EagerDb::new()), (0, 2));
    assert_eq!(split_scenario(EosDb::new()), (0, 2));
}

fn join_scenario<E: TxnEngine>(engine: E) -> i64 {
    let mut s = EtmSession::new(engine);
    let main = s.initiate_empty().unwrap();
    let helper = s.initiate_empty().unwrap();
    s.add(helper, A, 40).unwrap();
    s.add(main, A, 2).unwrap();
    join(&mut s, helper, main).unwrap();
    s.commit(main).unwrap();
    s.value_of(A).unwrap()
}

#[test]
fn join_behaves_identically_on_all_engines() {
    assert_eq!(join_scenario(RhDb::new(Strategy::Rh)), 42);
    assert_eq!(join_scenario(EagerDb::new()), 42);
    assert_eq!(join_scenario(EosDb::new()), 42);
}

fn trip_scenario<E: TxnEngine>(engine: E) -> (i64, i64) {
    let mut s = EtmSession::new(engine);
    let setup = s.initiate_empty().unwrap();
    s.write(setup, A, 10).unwrap(); // seats
    s.write(setup, B, 10).unwrap(); // rooms
    s.commit(setup).unwrap();
    assert!(run_trip(&mut s, A, B, true, true).unwrap());
    assert!(!run_trip(&mut s, A, B, true, false).unwrap());
    (s.value_of(A).unwrap(), s.value_of(B).unwrap())
}

#[test]
fn nested_trip_behaves_identically_on_all_engines() {
    assert_eq!(trip_scenario(RhDb::new(Strategy::Rh)), (9, 9));
    assert_eq!(trip_scenario(RhDb::new(Strategy::LazyRewrite)), (9, 9));
    assert_eq!(trip_scenario(EagerDb::new()), (9, 9));
    assert_eq!(trip_scenario(EosDb::new()), (9, 9));
}

fn reporting_scenario<E: TxnEngine>(engine: E) -> i64 {
    let mut s = EtmSession::new(engine);
    let mut w = ReportingTxn::begin(&mut s).unwrap();
    s.add(w.id(), A, 5).unwrap();
    w.report_all(&mut s).unwrap();
    s.add(w.id(), A, 7).unwrap(); // never reported
    w.cancel(&mut s).unwrap();
    s.value_of(A).unwrap()
}

#[test]
fn reporting_behaves_identically_on_all_engines() {
    assert_eq!(reporting_scenario(RhDb::new(Strategy::Rh)), 5);
    assert_eq!(reporting_scenario(EagerDb::new()), 5);
    assert_eq!(reporting_scenario(EosDb::new()), 5);
}

#[test]
fn etm_state_survives_crash_per_engine_rules() {
    // Same split scenario, but crash before the fates resolve: the split
    // transaction committed, the session is a loser.
    fn run<E: TxnEngine>(engine: E) -> (i64, i64) {
        let mut s = EtmSession::new(engine);
        let t1 = s.initiate_empty().unwrap();
        s.write(t1, A, 1).unwrap();
        s.write(t1, B, 2).unwrap();
        let t2 = split(&mut s, t1, &[B]).unwrap();
        s.commit(t2).unwrap();
        let mut e = s.into_engine().crash_and_recover().unwrap();
        (e.value_of(A).unwrap(), e.value_of(B).unwrap())
    }
    assert_eq!(run(RhDb::new(Strategy::Rh)), (0, 2));
    assert_eq!(run(RhDb::new(Strategy::LazyRewrite)), (0, 2));
    assert_eq!(run(EagerDb::new()), (0, 2));
    assert_eq!(run(EosDb::new()), (0, 2));
}
