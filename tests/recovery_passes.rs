//! The pass structure of ARIES/RH recovery (paper Fig. 3 and §4.2),
//! asserted through the instrumented log:
//!
//! * exactly one forward sweep — forward-pass reads equal the scanned
//!   range, with no re-reads;
//! * the backward pass visits records in strictly decreasing order (the
//!   debug build asserts this internally) and at most once;
//! * ARIES/RH performs zero in-place rewrites, under any workload.

use aries_rh::core::history::{replay_engine, Event};
use aries_rh::workload::{delegation_mix, WorkloadSpec};
use aries_rh::{RhDb, Strategy, TxnEngine};

fn spec(rate: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        txns: 80,
        updates_per_txn: 5,
        delegation_rate: rate,
        chain_len: 2,
        straggler_rate: 0.2,
        abort_rate: 0.1,
        seed,
        ..WorkloadSpec::default()
    }
}

#[test]
fn forward_pass_is_a_single_sweep() {
    for rate in [0.0, 0.5, 1.0] {
        let events = delegation_mix(&spec(rate, 11));
        let engine = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
        engine.log().flush_all().unwrap();
        let log_len = engine.log().len() as u64;
        let engine = engine.crash_and_recover().unwrap();
        let report = engine.last_recovery().unwrap();
        // One record read per log record in the scan range, no more.
        assert_eq!(report.forward.records_scanned, log_len);
    }
}

#[test]
fn backward_pass_reads_equal_visits_plus_forward() {
    let events = delegation_mix(&spec(1.0, 13));
    let engine = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
    engine.log().flush_all().unwrap();
    let engine = engine.crash_and_recover().unwrap();
    let report = engine.last_recovery().unwrap();
    let metrics = engine.log().metrics().snapshot();
    // All recovery reads are accounted for by the two passes (the
    // recovery log manager starts with fresh counters).
    assert_eq!(metrics.records_read, report.forward.records_scanned + report.undo.visited);
}

#[test]
fn rh_recovery_is_rewrite_free_for_any_rate() {
    for rate in [0.0, 0.3, 0.7, 1.0] {
        for seed in [1, 2] {
            let mut events = delegation_mix(&spec(rate, seed));
            events.push(Event::Crash);
            let engine = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
            assert_eq!(engine.log().metrics().snapshot().in_place_rewrites, 0);
        }
    }
}

#[test]
fn recovery_report_is_consistent() {
    let events = delegation_mix(&spec(0.8, 17));
    let engine = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
    engine.log().flush_all().unwrap();
    let engine = engine.crash_and_recover().unwrap();
    let report = engine.last_recovery().unwrap();
    // Everything undone was visited.
    assert!(report.undo.undone <= report.undo.visited);
    // Clusters only exist if something was walked.
    if report.undo.visited == 0 {
        assert_eq!(report.undo.clusters, 0);
    }
    // A second recovery undoes nothing further.
    let engine = engine.crash_and_recover().unwrap();
    assert_eq!(engine.last_recovery().unwrap().undo.undone, 0);
}

#[test]
fn recovery_report_carries_timings_and_io_deltas() {
    let events = delegation_mix(&spec(0.8, 23));
    let engine = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
    engine.log().flush_all().unwrap();
    let engine = engine.crash_and_recover().unwrap();
    let report = engine.last_recovery().unwrap();
    // Per-pass wall clocks nest inside the whole.
    assert!(report.forward_wall + report.undo_wall <= report.elapsed);
    assert!(report.elapsed.as_nanos() > 0);
    // The log delta accounts for both passes' reads exactly — no other
    // record was decoded on this recovery's behalf.
    assert_eq!(report.log_delta.records_read, report.forward.records_scanned + report.undo.visited);
    // ARIES/RH never rewrites the log, and the delta proves it for this
    // run specifically (not just cumulatively).
    assert_eq!(report.log_delta.in_place_rewrites, 0);
    assert_eq!(report.undo.rewrites, 0);
    // Redo had to fetch pages from the (empty) disk image.
    assert!(report.disk_delta.page_reads > 0);
}

#[test]
fn checkpoint_bounds_forward_scan_under_delegation() {
    let events = delegation_mix(&spec(1.0, 19));
    let mut engine = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
    engine.checkpoint().unwrap();
    // Post-checkpoint tail: a couple of loser transactions.
    let t = engine.begin().unwrap();
    engine.add(t, aries_rh::ObjectId(999_999), 1).unwrap();
    engine.log().flush_all().unwrap();
    let log_len = engine.log().len() as u64;
    let engine = engine.crash_and_recover().unwrap();
    let report = engine.last_recovery().unwrap();
    assert!(
        report.forward.records_scanned < log_len / 4,
        "checkpoint did not bound the scan: {} of {}",
        report.forward.records_scanned,
        log_len
    );
    // And losers (pre-checkpoint stragglers, whose scopes came from the
    // snapshot, plus our post-checkpoint transaction) were rolled back.
    assert!(report.undo.undone >= 1);
}
