//! # aries-rh
//!
//! A from-scratch Rust reproduction of *Delegation: Efficiently Rewriting
//! History* (Pedregal Martin & Ramamritham, ICDE 1997): the **ARIES/RH**
//! recovery algorithm — ARIES extended with the ACTA/ASSET `delegate`
//! primitive at near-zero cost — together with every substrate and
//! comparison system the paper relies on.
//!
//! This crate is a facade; the implementation lives in the workspace
//! crates, re-exported here under stable names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `rh-common` | ids, LSNs, update ops, errors, codec |
//! | [`storage`] | `rh-storage` | disk sim, buffer pool (steal/no-force) |
//! | [`wal`] | `rh-wal` | log records (incl. `delegate`), log manager |
//! | [`lock`] | `rh-lock` | S/X/Increment locks, permits, transfer |
//! | [`core`] | `rh-core` | **ARIES/RH**, eager & lazy baselines, oracle |
//! | [`eos`] | `rh-eos` | NO-UNDO/REDO engine with delegation (§3.7) |
//! | [`etm`] | `rh-etm` | ASSET primitives + split/nested/reporting/co |
//! | [`workload`] | `rh-workload` | seeded experiment workloads |
//! | [`obs`] | `rh-obs` | tracer, metrics registry, invariant observers |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Example
//!
//! ```
//! use aries_rh::{RhDb, Strategy, TxnEngine};
//! use aries_rh::common::ObjectId;
//!
//! let mut db = RhDb::new(Strategy::Rh);
//! let worker = db.begin().unwrap();
//! let publisher = db.begin().unwrap();
//! db.write(worker, ObjectId(1), 42).unwrap();
//! // Hand responsibility over, then let the worker die — the update's
//! // fate now follows the publisher (paper §2.1.2).
//! db.delegate(worker, publisher, &[ObjectId(1)]).unwrap();
//! db.abort(worker).unwrap();
//! db.commit(publisher).unwrap();
//! let mut db = db.crash_and_recover().unwrap();
//! let t = db.begin().unwrap();
//! assert_eq!(db.read(t, ObjectId(1)).unwrap(), 42);
//! ```

pub use rh_common as common;
pub use rh_core as core;
pub use rh_eos as eos;
pub use rh_etm as etm;
pub use rh_lock as lock;
pub use rh_obs as obs;
pub use rh_storage as storage;
pub use rh_wal as wal;
pub use rh_workload as workload;

pub use rh_common::{Lsn, ObjectId, PageId, Result, RhError, TxnId, UpdateOp};
pub use rh_core::eager::EagerDb;
pub use rh_core::engine::{DbConfig, RhDb, Strategy};
pub use rh_core::history::{Event, Oracle};
pub use rh_core::TxnEngine;
pub use rh_eos::EosDb;
pub use rh_etm::EtmSession;
