//! `rh-load` — drive an rh-serve instance with a concurrent
//! transaction mix and verify the oracle.
//!
//! ```text
//! rh-load --addr 127.0.0.1:7411 [--threads N] [--txns N] [--updates N]
//!         [--delegation F] [--cross-shard F --shards N] [--seed N]
//!         [--smoke] [--report PATH] [--shutdown]
//! ```
//!
//! Exits nonzero on any oracle divergence or transport failure, so CI
//! can gate on it directly. `--report` writes the run's JSON report;
//! `--shutdown` sends the wire shutdown op afterwards (graceful drain —
//! the server process exits once drained).

use rh_client::load::{self, LoadSpec};

fn usage(reason: &str) -> ! {
    eprintln!("rh-load: {reason}");
    eprintln!(
        "usage: rh-load --addr HOST:PORT [--threads N] [--txns N] [--updates N] \
         [--delegation F] [--cross-shard F --shards N] [--seed N] [--offset N] \
         [--smoke] [--report PATH] [--shutdown]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut spec = LoadSpec::default();
    let mut report_path: Option<String> = None;
    let mut shutdown = false;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => usage(&format!("{name} needs a value")),
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--threads" => match value("--threads").parse() {
                Ok(n) => spec.threads = n,
                Err(_) => usage("--threads needs an integer"),
            },
            "--txns" => match value("--txns").parse() {
                Ok(n) => spec.txns_per_thread = n,
                Err(_) => usage("--txns needs an integer"),
            },
            "--updates" => match value("--updates").parse() {
                Ok(n) => spec.updates_per_txn = n,
                Err(_) => usage("--updates needs an integer"),
            },
            "--delegation" => match value("--delegation").parse() {
                Ok(f) => spec.delegation_fraction = f,
                Err(_) => usage("--delegation needs a float in [0,1]"),
            },
            // Cross-shard traffic: the fraction of transactions that
            // touch a second shard (and commit via 2PC). Pass the
            // server's shard count too so remote ranges provably route
            // to a different shard.
            "--cross-shard" => match value("--cross-shard").parse() {
                Ok(f) => spec.cross_shard_fraction = f,
                Err(_) => usage("--cross-shard needs a float in [0,1]"),
            },
            "--shards" => match value("--shards").parse() {
                Ok(n) if n >= 1 => spec.shards = n,
                _ => usage("--shards needs an integer >= 1"),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => spec.seed = n,
                Err(_) => usage("--seed needs an integer"),
            },
            // Repeated runs against one directory need distinct offsets
            // (spaced by >= threads) to keep object ranges disjoint.
            "--offset" => match value("--offset").parse() {
                Ok(n) => spec.base_offset = n,
                Err(_) => usage("--offset needs an integer"),
            },
            "--smoke" => {
                spec = LoadSpec {
                    base_offset: spec.base_offset,
                    cross_shard_fraction: spec.cross_shard_fraction,
                    shards: spec.shards,
                    ..LoadSpec::smoke()
                }
            }
            "--report" => report_path = Some(value("--report")),
            "--shutdown" => shutdown = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }

    println!(
        "rh-load: {} threads x {} txns ({} updates/txn, delegation {:.0}%, \
         cross-shard {:.0}% of {} shards) against {addr}",
        spec.threads,
        spec.txns_per_thread,
        spec.updates_per_txn,
        spec.delegation_fraction * 100.0,
        spec.cross_shard_fraction * 100.0,
        spec.shards,
    );
    let report = match load::run_load(&addr, &spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rh-load: run failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "rh-load: committed={} ({:.0} txn/s) busy={} errors={} divergences={} \
         server commits +{} / fsyncs +{}",
        report.txns_committed,
        report.throughput(),
        report.busy,
        report.errors,
        report.divergences,
        report.server_commits_delta,
        report.server_fsyncs_delta,
    );
    if let Some(path) = report_path {
        let text = report.to_json().render_pretty();
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, text) {
            Ok(()) => println!("rh-load: report written to {path}"),
            Err(e) => {
                eprintln!("rh-load: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if shutdown {
        match load::connect_with_retry(&addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("rh-load: shutdown sent"),
            Err(e) => {
                eprintln!("rh-load: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if report.divergences > 0 {
        eprintln!("rh-load: ORACLE DIVERGENCE — served state contradicts acknowledged commits");
        std::process::exit(1);
    }
}
