//! `rh-load` — drive an rh-serve instance with a concurrent
//! transaction mix and verify the oracle.
//!
//! ```text
//! rh-load --addr 127.0.0.1:7411 [--threads N] [--txns N] [--updates N]
//!         [--delegation F] [--cross-shard F --shards N] [--seed N]
//!         [--trace] [--obs HOST:PORT] [--trace-gate F] [--close-gate F]
//!         [--audit F] [--replica HOST:PORT] [--smoke] [--report PATH]
//!         [--shutdown]
//! ```
//!
//! Exits nonzero on any oracle divergence or transport failure, so CI
//! can gate on it directly. `--report` writes the run's JSON report;
//! `--shutdown` sends the wire shutdown op afterwards (graceful drain —
//! the server process exits once drained).
//!
//! With `--audit F`, each thread interleaves time-travel audit probes
//! with the write workload: after an acked commit, with probability
//! `F`, it issues a `read_as_of` of a randomly chosen already-acked
//! object and gates on exact agreement with the acked-effects oracle.
//! Any audit divergence also exits nonzero.
//!
//! With `--replica`, the verification pass also replays the oracle
//! against a read replica using staleness-bounded reads: each probe
//! carries the primary's durable watermark as its `min_lsn`, so the
//! replica must serve the acked value (or refuse honestly) — never a
//! stale one. Any replica divergence exits nonzero.
//!
//! With `--trace`, every commit carries a unique client-assigned trace
//! id; with `--obs` (the server's introspection address) the run then
//! stitches the server's `/trace` rings into per-commit waterfalls and
//! reports attribution coverage. `--trace-gate F` fails the run when
//! the stitched fraction drops below `F` (structural — the CI gate
//! passes 0.99); `--close-gate F` additionally fails it when fewer
//! than `F` of the cross-shard commits attribute their phase sum to
//! within 5% (+ wire slack) of the client round trip (scheduling-noise
//! sensitive — CI passes 0.90).

use rh_client::load::{self, LoadSpec};

fn usage(reason: &str) -> ! {
    eprintln!("rh-load: {reason}");
    eprintln!(
        "usage: rh-load --addr HOST:PORT [--threads N] [--txns N] [--updates N] \
         [--delegation F] [--cross-shard F --shards N] [--seed N] [--offset N] \
         [--trace] [--obs HOST:PORT] [--trace-gate F] [--close-gate F] \
         [--audit F] [--replica HOST:PORT] [--smoke] [--report PATH] [--shutdown]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut spec = LoadSpec::default();
    let mut report_path: Option<String> = None;
    let mut shutdown = false;
    let mut obs_addr: Option<String> = None;
    let mut trace_gate: Option<f64> = None;
    let mut close_gate: Option<f64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => usage(&format!("{name} needs a value")),
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--threads" => match value("--threads").parse() {
                Ok(n) => spec.threads = n,
                Err(_) => usage("--threads needs an integer"),
            },
            "--txns" => match value("--txns").parse() {
                Ok(n) => spec.txns_per_thread = n,
                Err(_) => usage("--txns needs an integer"),
            },
            "--updates" => match value("--updates").parse() {
                Ok(n) => spec.updates_per_txn = n,
                Err(_) => usage("--updates needs an integer"),
            },
            "--delegation" => match value("--delegation").parse() {
                Ok(f) => spec.delegation_fraction = f,
                Err(_) => usage("--delegation needs a float in [0,1]"),
            },
            // Cross-shard traffic: the fraction of transactions that
            // touch a second shard (and commit via 2PC). Pass the
            // server's shard count too so remote ranges provably route
            // to a different shard.
            "--cross-shard" => match value("--cross-shard").parse() {
                Ok(f) => spec.cross_shard_fraction = f,
                Err(_) => usage("--cross-shard needs a float in [0,1]"),
            },
            "--shards" => match value("--shards").parse() {
                Ok(n) if n >= 1 => spec.shards = n,
                _ => usage("--shards needs an integer >= 1"),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => spec.seed = n,
                Err(_) => usage("--seed needs an integer"),
            },
            // Repeated runs against one directory need distinct offsets
            // (spaced by >= threads) to keep object ranges disjoint.
            "--offset" => match value("--offset").parse() {
                Ok(n) => spec.base_offset = n,
                Err(_) => usage("--offset needs an integer"),
            },
            "--smoke" => {
                spec = LoadSpec {
                    base_offset: spec.base_offset,
                    cross_shard_fraction: spec.cross_shard_fraction,
                    shards: spec.shards,
                    trace: spec.trace,
                    replica: spec.replica.take(),
                    ..LoadSpec::smoke()
                }
            }
            "--trace" => spec.trace = true,
            "--obs" => obs_addr = Some(value("--obs")),
            // Minimum fraction of traced commits with a stitched
            // waterfall below which the run fails — the CI acceptance
            // gate uses 0.99. Stitching is structural (every phase
            // point the server emitted, grouped by trace id), so it is
            // immune to scheduling noise and can be gated tightly.
            "--trace-gate" => match value("--trace-gate").parse() {
                Ok(f) if (0.0..=1.0).contains(&f) => trace_gate = Some(f),
                _ => usage("--trace-gate needs a float in [0,1]"),
            },
            // Minimum fraction of cross-shard commits whose phase sum
            // lands within 5% (+ wire slack) of the client round trip.
            // Gated separately and looser (CI uses 0.90): the residual
            // is client/reader-side scheduling on a contended host,
            // which no server-side timer can attribute.
            "--close-gate" => match value("--close-gate").parse() {
                Ok(f) if (0.0..=1.0).contains(&f) => close_gate = Some(f),
                _ => usage("--close-gate needs a float in [0,1]"),
            },
            // Interleave time-travel audit probes with the writes: the
            // probability, per acked commit, of reenacting a random
            // already-acked object and checking it against the oracle.
            "--audit" => match value("--audit").parse() {
                Ok(f) if (0.0..=1.0).contains(&f) => spec.audit_fraction = f,
                _ => usage("--audit needs a float in [0,1]"),
            },
            // Also verify the oracle against a read replica with
            // staleness-bounded reads (read-your-writes across nodes).
            "--replica" => spec.replica = Some(value("--replica")),
            "--report" => report_path = Some(value("--report")),
            "--shutdown" => shutdown = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }

    println!(
        "rh-load: {} threads x {} txns ({} updates/txn, delegation {:.0}%, \
         cross-shard {:.0}% of {} shards) against {addr}",
        spec.threads,
        spec.txns_per_thread,
        spec.updates_per_txn,
        spec.delegation_fraction * 100.0,
        spec.cross_shard_fraction * 100.0,
        spec.shards,
    );
    let report = match load::run_load(&addr, &spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rh-load: run failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "rh-load: committed={} ({:.0} txn/s) busy={} errors={} divergences={} \
         server commits +{} / fsyncs +{}",
        report.txns_committed,
        report.throughput(),
        report.busy,
        report.errors,
        report.divergences,
        report.server_commits_delta,
        report.server_fsyncs_delta,
    );
    if spec.audit_fraction > 0.0 {
        println!(
            "rh-load: audit: {} time-travel probes, {} divergences",
            report.audit_queries, report.audit_divergences,
        );
    }
    if spec.replica.is_some() {
        println!(
            "rh-load: replica: {} staleness-bounded reads, {} divergences",
            report.replica_checked, report.replica_divergences,
        );
    }
    // Trace-attribution coverage: stitch the server's `/trace` rings
    // against the traced commits and (optionally) gate on the result.
    let coverage = match &obs_addr {
        Some(obs) if spec.trace => match load::trace_coverage(obs, &report.traced) {
            Ok(cov) => {
                println!(
                    "rh-load: trace coverage: stitched {}/{} ({:.1}%), cross-shard \
                     within-5% {}/{} ({:.1}%)",
                    cov.stitched,
                    cov.traced,
                    cov.stitched_fraction() * 100.0,
                    cov.cross_close,
                    cov.cross_traced,
                    cov.cross_close_fraction() * 100.0,
                );
                Some(cov)
            }
            Err(e) => {
                eprintln!("rh-load: trace coverage fetch failed: {e}");
                std::process::exit(1);
            }
        },
        _ => None,
    };

    if let Some(path) = report_path {
        let mut json = report.to_json();
        if let (Some(cov), rh_obs::JsonValue::Obj(fields)) = (&coverage, &mut json) {
            fields.push(("trace_coverage".to_string(), cov.to_json()));
        }
        let text = json.render_pretty();
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, text) {
            Ok(()) => println!("rh-load: report written to {path}"),
            Err(e) => {
                eprintln!("rh-load: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if shutdown {
        match load::connect_with_retry(&addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("rh-load: shutdown sent"),
            Err(e) => {
                eprintln!("rh-load: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if report.divergences > 0 {
        eprintln!("rh-load: ORACLE DIVERGENCE — served state contradicts acknowledged commits");
        std::process::exit(1);
    }
    if report.audit_divergences > 0 {
        eprintln!("rh-load: AUDIT DIVERGENCE — reenacted history contradicts acknowledged commits");
        std::process::exit(1);
    }
    if report.replica_divergences > 0 {
        eprintln!("rh-load: REPLICA DIVERGENCE — replica contradicts acknowledged commits");
        std::process::exit(1);
    }
    if let Some(cov) = &coverage {
        let stitched_low = trace_gate.is_some_and(|g| cov.stitched_fraction() < g);
        let close_low = close_gate.is_some_and(|g| cov.cross_close_fraction() < g);
        if stitched_low || close_low {
            eprintln!(
                "rh-load: TRACE COVERAGE below gate (stitched {:.3} vs {:?}, \
                 cross-shard within-5% {:.3} vs {:?})",
                cov.stitched_fraction(),
                trace_gate,
                cov.cross_close_fraction(),
                close_gate,
            );
            for &(trace, client_us, sum) in &cov.worst {
                eprintln!(
                    "rh-load:   miss: trace {trace} client {client_us} us, phase sum {sum} us"
                );
            }
            std::process::exit(1);
        }
    }
}
