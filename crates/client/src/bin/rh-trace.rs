//! `rh-trace` — render per-transaction latency waterfalls and validate
//! the metrics exposition of a running (or crashed) server.
//!
//! ```text
//! rh-trace waterfall (--addr HOST:PORT | --file PATH) [--trace ID] [--top N]
//! rh-trace check-metrics --addr HOST:PORT
//! ```
//!
//! `waterfall` stitches every `phase.*` trace point by its
//! client-assigned trace id — across shard rings for a sharded server —
//! and prints one waterfall per traced request, slowest first. The
//! source is either a live introspection endpoint's `/trace` (`--addr`)
//! or a postmortem artifact on disk (`--file`): a saved `/trace`
//! document or a flight-recorder black-box record, both carry the same
//! nested `events` arrays.
//!
//! `check-metrics` fetches `/metrics` and runs the checked-in
//! Prometheus text-exposition validator over it — the CI server-smoke
//! job gates on its exit code.

use rh_client::introspect;
use rh_obs::{json, promtext};

fn usage(reason: &str) -> ! {
    eprintln!("rh-trace: {reason}");
    eprintln!(
        "usage: rh-trace waterfall (--addr HOST:PORT | --file PATH) [--trace ID] [--top N]\n\
         \x20      rh-trace check-metrics --addr HOST:PORT"
    );
    std::process::exit(2);
}

fn die(reason: &str) -> ! {
    eprintln!("rh-trace: {reason}");
    std::process::exit(1);
}

struct Flags {
    addr: Option<String>,
    file: Option<String>,
    trace: Option<u64>,
    top: usize,
}

fn parse_flags(mut argv: std::env::Args) -> Flags {
    let mut out = Flags { addr: None, file: None, trace: None, top: 10 };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => usage(&format!("{name} needs a value")),
        };
        match flag.as_str() {
            "--addr" => out.addr = Some(value("--addr")),
            "--file" => out.file = Some(value("--file")),
            "--trace" => match value("--trace").parse() {
                Ok(id) => out.trace = Some(id),
                Err(_) => usage("--trace needs an integer trace id"),
            },
            "--top" => match value("--top").parse() {
                Ok(n) => out.top = n,
                Err(_) => usage("--top needs an integer"),
            },
            other => usage(&format!("unknown flag {other}")),
        }
    }
    out
}

fn waterfall(flags: Flags) {
    let (doc, source) = match (&flags.addr, &flags.file) {
        (Some(addr), None) => match introspect::http_get_json(addr, "/trace") {
            Ok(doc) => (doc, format!("http://{addr}/trace")),
            Err(e) => die(&format!("cannot fetch /trace from {addr}: {e}")),
        },
        (None, Some(path)) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => die(&format!("cannot read {path}: {e}")),
            };
            match json::parse(&text) {
                Ok(doc) => (doc, path.clone()),
                Err(e) => die(&format!("{path} is not a JSON trace artifact: {e}")),
            }
        }
        _ => usage("waterfall needs exactly one of --addr or --file"),
    };
    let phases = introspect::collect_phases(&doc);
    let mut falls = introspect::stitch(&phases);
    if let Some(id) = flags.trace {
        falls.retain(|w| w.trace == id);
        if falls.is_empty() {
            die(&format!("no phases for trace {id} in {source}"));
        }
    }
    if falls.is_empty() {
        println!("rh-trace: no traced requests in {source} (commits need a trace id)");
        return;
    }
    let shown = falls.len().min(flags.top);
    // One buffered write, errors ignored: a downstream `head`/`grep -q`
    // closing the pipe early must not turn into a panic.
    let mut out = format!(
        "rh-trace: {} traced request(s) in {source}, showing {shown} slowest\n",
        falls.len()
    );
    for wf in falls.iter().take(shown) {
        out.push_str(&wf.render());
    }
    use std::io::Write;
    let _ = std::io::stdout().write_all(out.as_bytes());
}

fn check_metrics(flags: Flags) {
    let Some(addr) = &flags.addr else { usage("check-metrics needs --addr") };
    let body = match introspect::http_get(addr, "/metrics") {
        Ok(b) => b,
        Err(e) => die(&format!("cannot fetch /metrics from {addr}: {e}")),
    };
    match promtext::validate(&body) {
        Ok(()) => {
            let samples = body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
            println!("rh-trace: /metrics OK ({samples} samples)");
        }
        Err((line, msg)) => die(&format!("/metrics line {line}: {msg}")),
    }
}

fn main() {
    let mut argv = std::env::args();
    let _ = argv.next();
    match argv.next().as_deref() {
        Some("waterfall") => waterfall(parse_flags(argv)),
        Some("check-metrics") => check_metrics(parse_flags(argv)),
        Some(other) => usage(&format!("unknown command {other}")),
        None => usage("missing command"),
    }
}
