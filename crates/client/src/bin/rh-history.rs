//! `rh-history` — render an object's reenacted version timeline.
//!
//! ```text
//! rh-history (--addr HOST:PORT --object N | --file PATH)
//!            [--from LSN] [--as-of LSN] [--json]
//! ```
//!
//! The source is either a live introspection endpoint (`--addr` fetches
//! `/history/<object>`, the server reenacts the WAL without taking the
//! engine mutex) or a saved `history.v1` artifact on disk (`--file`,
//! e.g. one archived by the CI audit-cycle job). Either way the
//! timeline prints one line per committed version: value, the LSN of
//! the update that produced it, the transaction that answered for it at
//! commit time, the delegation hops that moved responsibility there,
//! and the originating request trace id when the commit was stitched to
//! one. `--json` re-emits the raw artifact instead (so a live fetch can
//! be archived for later offline rendering).

use rh_client::introspect;
use rh_obs::json::{self, JsonValue};

fn usage(reason: &str) -> ! {
    eprintln!("rh-history: {reason}");
    eprintln!(
        "usage: rh-history (--addr HOST:PORT --object N | --file PATH) \
         [--from LSN] [--as-of LSN] [--json]"
    );
    std::process::exit(2);
}

fn die(reason: &str) -> ! {
    eprintln!("rh-history: {reason}");
    std::process::exit(1);
}

struct Flags {
    addr: Option<String>,
    object: Option<u64>,
    file: Option<String>,
    from: Option<u64>,
    as_of: Option<u64>,
    raw_json: bool,
}

fn parse_flags(mut argv: std::env::Args) -> Flags {
    let mut out =
        Flags { addr: None, object: None, file: None, from: None, as_of: None, raw_json: false };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => usage(&format!("{name} needs a value")),
        };
        let int = |name: &str, v: String| match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => usage(&format!("{name} needs an integer")),
        };
        match flag.as_str() {
            "--addr" => out.addr = Some(value("--addr")),
            "--object" => out.object = Some(int("--object", value("--object"))),
            "--file" => out.file = Some(value("--file")),
            "--from" => out.from = Some(int("--from", value("--from"))),
            "--as-of" => out.as_of = Some(int("--as-of", value("--as-of"))),
            "--json" => out.raw_json = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    out
}

/// Fetches or reads the `history.v1` document.
fn load_doc(flags: &Flags) -> (JsonValue, String) {
    match (&flags.addr, &flags.file) {
        (Some(addr), None) => {
            let Some(ob) = flags.object else { usage("--addr needs --object") };
            let path = format!("/history/{ob}");
            match introspect::http_get_json(addr, &path) {
                Ok(doc) => (doc, format!("http://{addr}{path}")),
                Err(e) => die(&format!("cannot fetch {path} from {addr}: {e}")),
            }
        }
        (None, Some(path)) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => die(&format!("cannot read {path}: {e}")),
            };
            match json::parse(&text) {
                Ok(doc) => (doc, path.clone()),
                Err(e) => die(&format!("{path} is not a JSON history artifact: {e}")),
            }
        }
        _ => usage("need exactly one of --addr or --file"),
    }
}

fn u64_of(doc: &JsonValue, key: &str) -> Option<u64> {
    doc.get(key).and_then(JsonValue::as_u64)
}

/// Renders one version's delegation hops as `t1 -> t2 -> t3` (the
/// invoker through every delegatee to the finally responsible txn).
fn render_hops(v: &JsonValue) -> String {
    let hops = match v.get("hops") {
        Some(JsonValue::Arr(hops)) if !hops.is_empty() => hops,
        _ => return String::new(),
    };
    let mut chain: Vec<String> = Vec::new();
    for h in hops {
        if let (Some(from), Some(to)) = (u64_of(h, "from"), u64_of(h, "to")) {
            if chain.is_empty() {
                chain.push(from.to_string());
            }
            chain.push(to.to_string());
        }
    }
    format!("  via {}", chain.join(" -> "))
}

fn main() {
    let mut argv = std::env::args();
    let _ = argv.next();
    let flags = parse_flags(argv);
    let (doc, source) = load_doc(&flags);
    if flags.raw_json {
        println!("{}", doc.render_pretty());
        return;
    }
    if doc.get("schema").and_then(JsonValue::as_str) != Some("history.v1") {
        die(&format!("{source} is not a history.v1 document"));
    }
    let object = u64_of(&doc, "object").unwrap_or(0);
    let as_of = u64_of(&doc, "as_of").unwrap_or(0);
    let value = doc.get("value").and_then(JsonValue::as_i64).unwrap_or(0);
    let versions: &[JsonValue] = match doc.get("versions") {
        Some(JsonValue::Arr(v)) => v,
        _ => &[],
    };
    println!(
        "rh-history: object {object} as of LSN {as_of} — value {value}, {} version(s) ({source})",
        versions.len()
    );
    if let Some(seed) = u64_of(&doc, "seeded_from") {
        println!("  seeded from checkpoint at LSN {seed} (older versions summarized)");
    }
    if let Some(JsonValue::Arr(in_doubt)) = doc.get("in_doubt") {
        if !in_doubt.is_empty() {
            let txns: Vec<String> =
                in_doubt.iter().filter_map(JsonValue::as_u64).map(|t| t.to_string()).collect();
            println!("  in doubt at target: txn(s) {}", txns.join(", "));
        }
    }
    // The rendered window: `--from`/`--as-of` narrow by update LSN
    // (the live endpoint already reenacts up to "now"; narrowing is a
    // display concern so saved artifacts can be re-windowed offline).
    let lo = flags.from.unwrap_or(0);
    let hi = flags.as_of.unwrap_or(u64::MAX);
    for v in versions {
        let lsn = u64_of(v, "lsn").unwrap_or(0);
        if lsn < lo || lsn > hi {
            continue;
        }
        let val = v.get("value").and_then(JsonValue::as_i64).unwrap_or(0);
        let invoker = u64_of(v, "invoker").unwrap_or(0);
        let responsible = u64_of(v, "responsible").unwrap_or(0);
        let committed_at = u64_of(v, "committed_at").unwrap_or(0);
        let who = if invoker == responsible {
            format!("txn {responsible}")
        } else {
            format!("txn {responsible} (invoked by {invoker})")
        };
        let trace = match u64_of(v, "trace") {
            Some(t) => format!("  trace {t:#x}"),
            None => String::new(),
        };
        println!(
            "  lsn {lsn:>6}  value {val:>10}  {who}  committed@{committed_at}{}{trace}",
            render_hops(v)
        );
    }
}
