//! Client-side consumption of the server's introspection endpoints:
//! a minimal HTTP/1.0 GET, phase-event extraction from `/trace`
//! documents (single-engine or sharded shape, live or postmortem), and
//! the waterfall stitcher that `rh-trace` and the `rh-load` coverage
//! gate share.
//!
//! A *waterfall* is the per-transaction latency attribution the tracing
//! tentpole exists for: every `phase.*` point the server emitted for
//! one client-assigned trace id, stitched across shard rings by that id
//! (the global txn id rides along in each event), ordered canonically,
//! and summed. The phases are engineered to be disjoint on the server
//! (DESIGN.md §14), so the sum approximates the server-side latency of
//! the traced request and can be compared against the client-observed
//! round trip.

use crate::{ClientError, Result};
use rh_obs::json::{self, JsonValue};
use rh_obs::names;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;

/// One `phase.*` trace point pulled out of a trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Phase name (`phase.queue_wait`, `phase.twopc.prepare_force`, …).
    pub name: String,
    /// Global transaction id the phase belongs to.
    pub txn: u64,
    /// Client-assigned trace id (never the NONE sentinel).
    pub trace: u64,
    /// Phase duration in microseconds.
    pub us: u64,
}

/// All phases of one traced request, stitched across rings.
#[derive(Debug, Clone)]
pub struct Waterfall {
    /// The client-assigned trace id the phases were stitched by.
    pub trace: u64,
    /// Global transaction id (from the first phase event).
    pub txn: u64,
    /// Phases in canonical order (see [`phase_rank`]).
    pub phases: Vec<(String, u64)>,
}

impl Waterfall {
    /// Sum of all phase durations — the phases are disjoint by
    /// construction, so this approximates the server-side latency.
    pub fn total_us(&self) -> u64 {
        self.phases.iter().map(|(_, us)| *us).sum()
    }

    /// Renders the waterfall as indented text with proportional bars.
    pub fn render(&self) -> String {
        let total = self.total_us();
        let widest = self.phases.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let peak = self.phases.iter().map(|(_, us)| *us).max().unwrap_or(0).max(1);
        let mut out = format!(
            "trace {} txn {} — {} phases, {} us total\n",
            self.trace,
            self.txn,
            self.phases.len(),
            total
        );
        for (name, us) in &self.phases {
            let bar = "#".repeat(((us * 40) / peak) as usize);
            out.push_str(&format!("  {name:widest$} {us:>9} us {bar}\n"));
        }
        out
    }
}

/// Canonical display order of the commit phases: request-lifecycle
/// order (queue, then the 2PC edges in protocol order, then the local
/// commit phases), so a waterfall reads top-to-bottom as the request
/// actually progressed. Unknown phases sort last, alphabetically.
fn phase_rank(name: &str) -> usize {
    const ORDER: &[&str] = &[
        names::PH_QUEUE_WAIT,
        names::PH_2PC_PREPARE,
        names::PH_2PC_COORD,
        names::PH_2PC_RESOLVE,
        names::PH_ENGINE_HOLD,
        names::PH_COMMIT_PREPARE,
        names::PH_FLUSH_WAIT,
        names::PH_SERVE_OTHER,
    ];
    ORDER.iter().position(|n| *n == name).unwrap_or(ORDER.len())
}

/// Fetches `path` from the introspection server at `addr` with a plain
/// HTTP/1.0 GET; returns the body. Non-200 statuses are errors (the
/// status line is included in the message).
pub fn http_get(addr: &str, path: &str) -> Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol(format!("GET {path}: no header/body split")))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") && !status.ends_with(" 200") {
        return Err(ClientError::Protocol(format!("GET {path}: {status}")));
    }
    Ok(body.to_string())
}

/// Fetches and parses a JSON endpoint.
pub fn http_get_json(addr: &str, path: &str) -> Result<JsonValue> {
    let body = http_get(addr, path)?;
    json::parse(&body).map_err(|e| ClientError::Protocol(format!("GET {path}: bad json: {e}")))
}

/// Extracts every `phase.*` point from a trace document, whatever its
/// shape: a plain snapshot (`{dropped, events}`), the sharded composite
/// (`{router: …, shards: […]}`), or a flight-recorder black-box record
/// (`{…, trace: {events}}`) — any nested `events` array is harvested.
pub fn collect_phases(doc: &JsonValue) -> Vec<PhaseEvent> {
    let mut out = Vec::new();
    walk(doc, &mut out);
    out
}

fn walk(v: &JsonValue, out: &mut Vec<PhaseEvent>) {
    match v {
        JsonValue::Obj(fields) => {
            for (key, val) in fields {
                if key == "events" {
                    if let JsonValue::Arr(events) = val {
                        for ev in events {
                            push_phase(ev, out);
                        }
                        continue;
                    }
                }
                walk(val, out);
            }
        }
        JsonValue::Arr(items) => {
            for item in items {
                walk(item, out);
            }
        }
        _ => {}
    }
}

fn push_phase(ev: &JsonValue, out: &mut Vec<PhaseEvent>) {
    let Some(name) = ev.get("name").and_then(JsonValue::as_str) else { return };
    if !name.starts_with("phase.") {
        return;
    }
    // A phase point carries the trace id in `lsn_lo`; untraced requests
    // (NO_TRACE) omit the field entirely in the JSON rendering.
    let Some(trace) = ev.get("lsn_lo").and_then(JsonValue::as_u64) else { return };
    out.push(PhaseEvent {
        name: name.to_string(),
        txn: ev.get("txn").and_then(JsonValue::as_u64).unwrap_or(u64::MAX),
        trace,
        us: ev.get("payload").and_then(JsonValue::as_u64).unwrap_or(0),
    });
}

/// Groups phase events by trace id into per-request waterfalls, each
/// with its phases in canonical order. Waterfalls come back sorted by
/// descending total duration (the slow ones are what a reader wants
/// first).
pub fn stitch(events: &[PhaseEvent]) -> Vec<Waterfall> {
    let mut groups: BTreeMap<u64, Vec<&PhaseEvent>> = BTreeMap::new();
    for ev in events {
        groups.entry(ev.trace).or_default().push(ev);
    }
    let mut out: Vec<Waterfall> = groups
        .into_iter()
        .map(|(trace, mut evs)| {
            evs.sort_by_key(|e| phase_rank(&e.name));
            Waterfall {
                trace,
                txn: evs.first().map(|e| e.txn).unwrap_or(u64::MAX),
                phases: evs.into_iter().map(|e| (e.name.clone(), e.us)).collect(),
            }
        })
        .collect();
    out.sort_by_key(|w| std::cmp::Reverse(w.total_us()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_json(name: &str, txn: u64, trace: u64, us: u64) -> JsonValue {
        JsonValue::obj(vec![
            ("ts_us", JsonValue::U64(0)),
            ("kind", JsonValue::Str("point".into())),
            ("name", JsonValue::Str(name.into())),
            ("lsn_lo", JsonValue::U64(trace)),
            ("txn", JsonValue::U64(txn)),
            ("payload", JsonValue::U64(us)),
        ])
    }

    fn snapshot(events: Vec<JsonValue>) -> JsonValue {
        JsonValue::obj(vec![("dropped", JsonValue::U64(0)), ("events", JsonValue::Arr(events))])
    }

    #[test]
    fn collects_phases_from_flat_and_sharded_shapes() {
        let flat = snapshot(vec![
            phase_json("phase.queue_wait", 7, 99, 10),
            // Non-phase points are ignored.
            JsonValue::obj(vec![
                ("name", JsonValue::Str("log.force".into())),
                ("payload", JsonValue::U64(5)),
            ]),
        ]);
        assert_eq!(collect_phases(&flat).len(), 1);

        let sharded = JsonValue::obj(vec![
            ("router", snapshot(vec![phase_json("phase.queue_wait", 7, 99, 10)])),
            (
                "shards",
                JsonValue::Arr(vec![
                    snapshot(vec![phase_json("phase.twopc.prepare_force", 7, 99, 300)]),
                    snapshot(vec![phase_json("phase.twopc.coord_force", 7, 99, 400)]),
                ]),
            ),
        ]);
        let phases = collect_phases(&sharded);
        assert_eq!(phases.len(), 3);
        assert!(phases.iter().all(|p| p.trace == 99 && p.txn == 7));
    }

    #[test]
    fn untraced_phase_points_are_skipped() {
        // NO_TRACE renders with `lsn_lo` omitted — such phases belong to
        // no waterfall.
        let ev = JsonValue::obj(vec![
            ("name", JsonValue::Str("phase.queue_wait".into())),
            ("txn", JsonValue::U64(3)),
            ("payload", JsonValue::U64(12)),
        ]);
        assert!(collect_phases(&snapshot(vec![ev])).is_empty());
    }

    #[test]
    fn stitches_by_trace_in_canonical_order() {
        let doc = snapshot(vec![
            phase_json("phase.flush_wait", 7, 99, 500),
            phase_json("phase.queue_wait", 7, 99, 10),
            phase_json("phase.commit_prepare", 7, 99, 20),
            phase_json("phase.queue_wait", 8, 100, 1),
        ]);
        let wf = stitch(&collect_phases(&doc));
        assert_eq!(wf.len(), 2);
        // Sorted by total: trace 99 (530us) before trace 100 (1us).
        assert_eq!(wf[0].trace, 99);
        assert_eq!(wf[0].total_us(), 530);
        let order: Vec<&str> = wf[0].phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(order, vec!["phase.queue_wait", "phase.commit_prepare", "phase.flush_wait"]);
        let text = wf[0].render();
        assert!(text.contains("trace 99 txn 7"));
        assert!(text.contains("phase.flush_wait"));
    }
}
