//! A multi-threaded, closed-loop load generator with a built-in
//! correctness oracle.
//!
//! Each thread owns a private, never-reused object range and drives a
//! transaction mix against one server: a run of writes/adds, then —
//! with a configurable probability — the paper's delegation idiom (a
//! second transaction takes responsibility for the first one's
//! updates, the first aborts, the delegatee commits). Effects of
//! **acknowledged** commits are recorded in a per-thread oracle; after
//! the run a verification pass reads every object back and counts
//! divergences. A correct server/engine pair yields exactly zero.
//!
//! The report also captures the server-side `server.commits` and
//! `log.fsyncs` deltas over the run: group commit shows up as fsyncs
//! growing sublinearly in commits.

use crate::{introspect, ClientError, Connection, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rh_common::ops::Value;
use rh_common::ObjectId;
use rh_obs::json::{self, JsonValue};
use rh_obs::{names, HistogramSnapshot, Registry, Stopwatch};
use rh_server::wire;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Shape of one load run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client threads (one connection each).
    pub threads: usize,
    /// Transactions attempted per thread.
    pub txns_per_thread: usize,
    /// Updates (alternating write/add) per transaction.
    pub updates_per_txn: usize,
    /// Probability that a transaction's effects travel through the
    /// delegation idiom (delegate → abort delegator → commit delegatee).
    pub delegation_fraction: f64,
    /// Seed for the per-thread generators (thread id is mixed in).
    pub seed: u64,
    /// Shifts every thread's private object range. Object ids are
    /// deterministic in `(base_offset, thread, sequence)`, so repeated
    /// runs against one directory must use distinct offsets (spaced by
    /// at least `threads` — at least `2 * threads + 1` when cross-shard
    /// traffic is on, to clear the remote ranges too) or the oracle's
    /// `add` objects would accumulate across runs and report false
    /// divergences.
    pub base_offset: u64,
    /// Probability that a transaction also touches a *remote* object in
    /// a different shard, making it (and, combined with the delegation
    /// idiom, the delegation itself) cross-shard — its commit then runs
    /// the server's 2PC path. Only meaningful with `shards > 1`.
    pub cross_shard_fraction: f64,
    /// Shard count of the target server (must match its `--shards` so
    /// the remote ranges provably land in a different shard). 1 = the
    /// unsharded configuration; cross-shard traffic is disabled.
    pub shards: usize,
    /// When true, every commit carries a unique client-assigned trace
    /// id ([`Connection::commit_traced`]) and the report records each
    /// acked commit's `(trace, client latency)` pair, so
    /// [`trace_coverage`] can stitch the server's `/trace` rings into
    /// waterfalls and check attribution coverage.
    pub trace: bool,
    /// Probability that, after an acked commit, the thread interleaves
    /// a time-travel audit probe with the write workload: a
    /// [`Connection::read_as_of`] of a randomly chosen already-acked
    /// object, gated on *exact* agreement with the acked-effects
    /// oracle. Audit draws come from a dedicated RNG that is only
    /// seeded when this is positive, so historical runs (and their
    /// recorded baselines) keep their exact randomness at `0.0`.
    pub audit_fraction: f64,
    /// Serving address of a read replica of the target. When set, the
    /// verification pass ALSO replays the oracle against the replica
    /// with staleness-bounded reads: for each acked object, the
    /// primary's durable watermark ([`Connection::durable`]) becomes
    /// the `min_lsn` of a [`Connection::value_of_min`] on the replica —
    /// read-your-writes across nodes, gated exact like the primary
    /// pass.
    pub replica: Option<String>,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            threads: 16,
            txns_per_thread: 50,
            updates_per_txn: 4,
            delegation_fraction: 0.25,
            seed: 42,
            base_offset: 0,
            cross_shard_fraction: 0.0,
            shards: 1,
            trace: false,
            audit_fraction: 0.0,
            replica: None,
        }
    }
}

impl LoadSpec {
    /// A small mix for smoke tests and CI gates.
    pub fn smoke() -> Self {
        LoadSpec { threads: 4, txns_per_thread: 10, ..LoadSpec::default() }
    }
}

/// One acked commit that carried a trace id (see [`LoadSpec::trace`]).
#[derive(Debug, Clone, Copy)]
pub struct TracedCommit {
    /// The client-assigned trace id sent with the commit.
    pub trace: u64,
    /// Client-observed commit round trip in microseconds.
    pub client_us: u64,
    /// Whether the transaction touched a second shard (2PC commit).
    pub cross_shard: bool,
}

/// Outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Threads that ran.
    pub threads: usize,
    /// Transactions whose commit was acknowledged.
    pub txns_committed: u64,
    /// BUSY bounces observed.
    pub busy: u64,
    /// Failed transactions (engine or transport errors).
    pub errors: u64,
    /// Objects whose served value contradicted the oracle. The whole
    /// point: this must be zero.
    pub divergences: u64,
    /// Objects verified against the oracle.
    pub objects_checked: u64,
    /// Wall clock of the load phase (excluding verification).
    pub elapsed_us: u64,
    /// Server-side `server.commits` growth over the run.
    pub server_commits_delta: u64,
    /// Server-side `log.fsyncs` growth over the run — sublinear in
    /// commits when group commit is doing its job.
    pub server_fsyncs_delta: u64,
    /// Client-observed commit round-trip latencies.
    pub commit_latency: HistogramSnapshot,
    /// Client-observed non-commit operation latencies.
    pub op_latency: HistogramSnapshot,
    /// Acked commits that carried a trace id (empty unless
    /// [`LoadSpec::trace`] was set). Input to [`trace_coverage`].
    pub traced: Vec<TracedCommit>,
    /// Time-travel audit probes issued during the load phase (zero
    /// unless [`LoadSpec::audit_fraction`] was positive).
    pub audit_queries: u64,
    /// Audit probes whose reenacted value disagreed with the
    /// acked-effects oracle. Like `divergences`, this must be zero.
    pub audit_divergences: u64,
    /// Objects verified against the replica with staleness-bounded
    /// reads (zero unless [`LoadSpec::replica`] was set).
    pub replica_checked: u64,
    /// Replica reads that contradicted the oracle — including a
    /// `ReplLagging` refusal, since the bound handed over was the
    /// primary's own durable watermark and the replica is expected to
    /// reach it within its deadline. Must be zero.
    pub replica_divergences: u64,
}

impl LoadReport {
    /// Committed transactions per second over the load phase.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.txns_committed as f64 / (self.elapsed_us as f64 / 1_000_000.0)
    }

    /// Renders the report (for CI artifacts and the bench baselines).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("threads", JsonValue::U64(self.threads as u64)),
            ("txns_committed", JsonValue::U64(self.txns_committed)),
            ("busy", JsonValue::U64(self.busy)),
            ("errors", JsonValue::U64(self.errors)),
            ("divergences", JsonValue::U64(self.divergences)),
            ("objects_checked", JsonValue::U64(self.objects_checked)),
            ("elapsed_us", JsonValue::U64(self.elapsed_us)),
            ("throughput_txns_per_sec", JsonValue::U64(self.throughput() as u64)),
            ("server_commits_delta", JsonValue::U64(self.server_commits_delta)),
            ("server_fsyncs_delta", JsonValue::U64(self.server_fsyncs_delta)),
            ("audit_queries", JsonValue::U64(self.audit_queries)),
            ("audit_divergences", JsonValue::U64(self.audit_divergences)),
            ("replica_checked", JsonValue::U64(self.replica_checked)),
            ("replica_divergences", JsonValue::U64(self.replica_divergences)),
            ("commit_latency", self.commit_latency.to_json()),
            ("op_latency", self.op_latency.to_json()),
        ])
    }
}

/// Base of thread `tid`'s private object range. Ranges never overlap
/// and objects are never reused across transactions, which is what
/// makes the oracle exact: each object is written by at most one
/// transaction, so its final value is fully determined by whether that
/// transaction's commit was acknowledged.
///
/// The shift is 26, not 32: the object store maps `ob / 64` to a
/// `u32` page id, so bases must stay below `2^38` or distinct ranges
/// would alias the same pages. That caps `threads + base_offset` at
/// 4095 — far beyond any realistic run — with `2^26` objects each.
/// (The shift also matches `rh_core::sharded::ShardMap::RANGE_SHIFT`:
/// one range = one routing unit, so a thread's home range lives wholly
/// in one shard.)
fn thread_base(tid: usize, base_offset: u64) -> u64 {
    let range = tid as u64 + 1 + base_offset;
    // The page-id budget: `ob / 64` must fit a u32, so the top range
    // index is 2^38 / 2^26 - 1 = 4095 (see rh_storage's slot mapping,
    // which asserts the same invariant from the other side).
    debug_assert!(range <= 4095, "range index {range} exceeds the 2^38 page-id budget");
    range << 26
}

/// Base of thread `tid`'s private *remote* range for cross-shard
/// traffic: a second never-shared range whose 2^26 block index is
/// `delta` above the home range, with `delta` chosen so that
/// (a) `delta >= threads`, keeping remote ranges disjoint from every
/// thread's home range and from other threads' remote ranges, and
/// (b) `delta % shards != 0`, so the remote range provably routes to a
/// different shard than the home range under
/// `shard_of = (ob >> 26) % shards`.
fn remote_base(tid: usize, spec: &LoadSpec) -> u64 {
    let delta =
        if spec.threads.is_multiple_of(spec.shards) { spec.threads + 1 } else { spec.threads };
    debug_assert!(spec.shards > 1 && delta % spec.shards != 0);
    thread_base(tid + delta, spec.base_offset)
}

/// Per-thread tally.
struct ThreadOutcome {
    committed: u64,
    busy: u64,
    errors: u64,
    oracle: HashMap<ObjectId, Value>,
    traced: Vec<TracedCommit>,
    audit_queries: u64,
    audit_divergences: u64,
}

impl ThreadOutcome {
    fn empty() -> Self {
        ThreadOutcome {
            committed: 0,
            busy: 0,
            errors: 0,
            oracle: HashMap::new(),
            traced: Vec::new(),
            audit_queries: 0,
            audit_divergences: 0,
        }
    }
}

/// Trace id for thread `tid`'s `seq`-th commit: unique across the run
/// and never the wire's NO_TRACE sentinel.
fn trace_id(tid: usize, seq: usize) -> u64 {
    ((tid as u64 + 1) << 40) | (seq as u64 + 1)
}

/// Runs the load against a serving address and verifies the oracle.
pub fn run_load(addr: &str, spec: &LoadSpec) -> Result<LoadReport> {
    let registry = Arc::new(Registry::new());
    let mut stats_conn = connect_with_retry(addr)?;
    let before = parse_counters(&stats_conn.stats_json()?);

    let sw = Stopwatch::start();
    let mut handles = Vec::new();
    for tid in 0..spec.threads {
        let addr = addr.to_string();
        let spec = spec.clone();
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || worker(&addr, tid, &spec, &registry)));
    }
    let mut outcome = ThreadOutcome::empty();
    for h in handles {
        match h.join() {
            Ok(t) => {
                outcome.committed += t.committed;
                outcome.busy += t.busy;
                outcome.errors += t.errors;
                outcome.oracle.extend(t.oracle);
                outcome.traced.extend(t.traced);
                outcome.audit_queries += t.audit_queries;
                outcome.audit_divergences += t.audit_divergences;
            }
            Err(_) => outcome.errors += 1,
        }
    }
    let elapsed_us = sw.elapsed_micros();

    // Verification pass: every acknowledged effect must be served back.
    let mut divergences = 0u64;
    for (&ob, &expect) in &outcome.oracle {
        match stats_conn.value_of(ob) {
            Ok(got) if got == expect => {}
            _ => divergences += 1,
        }
    }
    let after = parse_counters(&stats_conn.stats_json()?);

    // Replica pass: the same oracle, served by the replica under its
    // staleness contract. The primary's durable watermark is a bound
    // covering every acked commit, so `value_of_min` with it is
    // read-your-writes: the replica either serves the acked value or
    // (past its deadline) refuses with `ReplLagging` — counted as a
    // divergence here, because the bound is one the replica is expected
    // to reach. A transport failure also counts: this pass runs against
    // a replica that is supposed to be up.
    let mut replica_checked = 0u64;
    let mut replica_divergences = 0u64;
    if let Some(raddr) = &spec.replica {
        let mut rconn = connect_with_retry(raddr)?;
        for (&ob, &expect) in &outcome.oracle {
            replica_checked += 1;
            let bound = stats_conn.durable(ob)?;
            match rconn.value_of_min(ob, rh_common::Lsn(bound)) {
                Ok(got) if got == expect => {}
                _ => replica_divergences += 1,
            }
        }
    }

    let snap = registry.snapshot();
    Ok(LoadReport {
        threads: spec.threads,
        txns_committed: outcome.committed,
        busy: outcome.busy,
        errors: outcome.errors,
        divergences,
        objects_checked: outcome.oracle.len() as u64,
        elapsed_us,
        server_commits_delta: counter_delta(&after, &before, names::M_SRV_COMMITS),
        server_fsyncs_delta: counter_delta(&after, &before, names::M_LOG_FSYNCS),
        commit_latency: snap.histogram(names::M_CLIENT_COMMIT_US),
        op_latency: snap.histogram(names::M_CLIENT_OP_US),
        traced: outcome.traced,
        audit_queries: outcome.audit_queries,
        audit_divergences: outcome.audit_divergences,
        replica_checked,
        replica_divergences,
    })
}

/// Connects, retrying briefly through admission-control rejections
/// (sessions freed by a previous phase deregister asynchronously).
pub fn connect_with_retry(addr: &str) -> Result<Connection> {
    let mut last = None;
    for _ in 0..100 {
        match Connection::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e @ (ClientError::Rejected | ClientError::Io(_))) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(ClientError::Rejected))
}

fn worker(addr: &str, tid: usize, spec: &LoadSpec, registry: &Registry) -> ThreadOutcome {
    let mut out = ThreadOutcome::empty();
    let mut conn = match connect_with_retry(addr) {
        Ok(c) => c,
        Err(_) => {
            out.errors += 1;
            return out;
        }
    };
    let mut rng = StdRng::seed_from_u64(spec.seed ^ (tid as u64).wrapping_mul(0x9e37_79b9));
    let base = thread_base(tid, spec.base_offset);
    // The audit generator is separate from (and only seeded alongside)
    // the workload RNG, so enabling audits never perturbs the workload's
    // historical randomness — values, object ids, and delegation draws
    // stay bit-identical to an unaudited run with the same seed.
    let mut audit_rng = (spec.audit_fraction > 0.0)
        .then(|| StdRng::seed_from_u64(spec.seed ^ 0x00d1_7a0d_17ca_fe00 ^ ((tid as u64) << 32)));
    let mut acked: Vec<(ObjectId, Value)> = Vec::new();
    for i in 0..spec.txns_per_thread {
        match one_txn(&mut conn, &mut rng, spec, tid, base, i, registry) {
            Ok((effects, traced)) => {
                out.committed += 1;
                acked.extend(effects.iter().copied());
                out.oracle.extend(effects);
                out.traced.extend(traced);
            }
            Err(ClientError::Busy) => out.busy += 1,
            Err(_) => out.errors += 1,
        }
        if let Some(arng) = audit_rng.as_mut() {
            if !acked.is_empty() && arng.random_bool(spec.audit_fraction) {
                audit_probe(&mut conn, arng, &acked, &mut out, registry);
            }
        }
    }
    out
}

/// One interleaved time-travel audit: reenact a randomly chosen
/// already-acked object "as of now" and gate on exact agreement with
/// the acked-effects oracle. Sound because every acked effect is
/// durable before the probe is issued, each object is written by
/// exactly one transaction (the private-range invariant), and
/// `read_as_of` resolves in-doubt transactions through the coordinator
/// decision — so the reenacted committed value must equal the acked
/// one. Transport errors are not divergences (the crash tests kill
/// servers mid-run); only a served wrong value counts.
fn audit_probe(
    conn: &mut Connection,
    arng: &mut StdRng,
    acked: &[(ObjectId, Value)],
    out: &mut ThreadOutcome,
    registry: &Registry,
) {
    let (ob, expect) = acked[arng.random_range(0..acked.len())];
    match conn.read_as_of(ob, rh_common::Lsn::NULL) {
        Ok(got) => {
            out.audit_queries += 1;
            if got != expect {
                out.audit_divergences += 1;
                registry.inc(names::M_AUDIT_DIVERGENCES);
            }
        }
        Err(ClientError::Engine { .. }) => {
            // The engine answered and refused (e.g. the target LSN was
            // truncated by a checkpoint) — answerable-but-wrong is the
            // only divergence, a refusal is not, but it still counts as
            // an issued probe.
            out.audit_queries += 1;
        }
        Err(_) => {}
    }
}

/// Runs one transaction of the mix; returns its effects iff the commit
/// was acknowledged. On any error the effects are NOT recorded — an
/// unacknowledged transaction is allowed to survive or vanish, and the
/// oracle only asserts about acks.
/// Acked effects of one transaction plus, when tracing, the commit's
/// client-observed timing keyed by its trace id.
type TxnOutcome = (Vec<(ObjectId, Value)>, Option<TracedCommit>);

#[allow(clippy::too_many_arguments)]
fn one_txn(
    conn: &mut Connection,
    rng: &mut StdRng,
    spec: &LoadSpec,
    tid: usize,
    base: u64,
    seq: usize,
    registry: &Registry,
) -> Result<TxnOutcome> {
    let op_sw = Stopwatch::start();
    let t1 = conn.begin()?;
    let mut effects = Vec::with_capacity(spec.updates_per_txn + 1);
    let mut touched = Vec::with_capacity(spec.updates_per_txn);
    let mut cross_shard = false;
    for k in 0..spec.updates_per_txn {
        let ob = ObjectId(base + (seq * spec.updates_per_txn + k) as u64);
        let v: Value = rng.random_range(1..1_000_000i64);
        if k % 2 == 0 {
            conn.write(t1, ob, v)?;
        } else {
            conn.add(t1, ob, v)?;
        }
        touched.push(ob);
        effects.push((ob, v));
    }
    // Cross-shard traffic: also touch an object routed to a different
    // shard, so this transaction (and, through the delegation idiom
    // below, the delegation itself) spans shards and commits via 2PC.
    // The draw only happens for sharded targets, so unsharded runs keep
    // their exact historical randomness (and baselines).
    if spec.shards > 1 && rng.random_bool(spec.cross_shard_fraction) {
        let remote = ObjectId(remote_base(tid, spec) + seq as u64);
        let v: Value = rng.random_range(1..1_000_000i64);
        conn.write(t1, remote, v)?;
        touched.push(remote);
        effects.push((remote, v));
        cross_shard = true;
    }
    registry.observe(names::M_CLIENT_OP_US, op_sw.elapsed_micros());

    // The commit carries a unique trace id when tracing is on, so the
    // server's phase points stitch back to this specific round trip.
    let trace = if spec.trace { trace_id(tid, seq) } else { wire::NO_TRACE };
    let committer = if rng.random_bool(spec.delegation_fraction) && !touched.is_empty() {
        // The delegation idiom: t2 takes responsibility, t1 aborts —
        // the updates survive because responsibility moved — then t2
        // commits everything.
        let t2 = conn.begin()?;
        conn.delegate(t1, t2, &touched)?;
        conn.abort(t1)?;
        let extra = ObjectId(base + (1 << 20) + seq as u64);
        conn.add(t2, extra, 1)?;
        effects.push((extra, 1));
        t2
    } else {
        t1
    };
    let sw = Stopwatch::start();
    conn.commit_traced(committer, trace)?;
    let client_us = sw.elapsed_micros();
    registry.observe(names::M_CLIENT_COMMIT_US, client_us);
    let traced = spec.trace.then_some(TracedCommit { trace, client_us, cross_shard });
    Ok((effects, traced))
}

/// How well the server's `/trace` rings attribute the run's acked
/// commits: for each traced commit, was a waterfall stitched at all,
/// and do its phase durations sum to within 5% of the client-observed
/// round trip? The `cross_*` fields restrict to 2PC commits — the
/// population the tracing tentpole's acceptance gate is about.
#[derive(Debug, Default)]
pub struct TraceCoverage {
    /// Acked commits that carried a trace id.
    pub traced: u64,
    /// … of which a waterfall with at least one phase was stitched.
    pub stitched: u64,
    /// … of which the phase sum lands within 5% of the client latency.
    pub close: u64,
    /// Traced commits that committed through 2PC.
    pub cross_traced: u64,
    /// Cross-shard commits with a stitched waterfall.
    pub cross_stitched: u64,
    /// Cross-shard commits whose phase sum is within 5%.
    pub cross_close: u64,
    /// The worst misses, for diagnosing a failed gate:
    /// `(trace, client_us, phase_sum_us)`, largest gap first (at most
    /// [`WORST_MISSES`] entries).
    pub worst: Vec<(u64, u64, u64)>,
}

/// How many missed-band commits `TraceCoverage::worst` retains.
const WORST_MISSES: usize = 5;

impl TraceCoverage {
    /// Fraction of traced commits with a stitched waterfall.
    pub fn stitched_fraction(&self) -> f64 {
        if self.traced == 0 {
            1.0
        } else {
            self.stitched as f64 / self.traced as f64
        }
    }

    /// Fraction of traced *cross-shard* commits with a stitched
    /// waterfall whose phase sum is within 5% of the client latency.
    pub fn cross_close_fraction(&self) -> f64 {
        if self.cross_traced == 0 {
            1.0
        } else {
            self.cross_close as f64 / self.cross_traced as f64
        }
    }

    /// Renders the coverage block of the run report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("traced", JsonValue::U64(self.traced)),
            ("stitched", JsonValue::U64(self.stitched)),
            ("close", JsonValue::U64(self.close)),
            ("cross_traced", JsonValue::U64(self.cross_traced)),
            ("cross_stitched", JsonValue::U64(self.cross_stitched)),
            ("cross_close", JsonValue::U64(self.cross_close)),
            ("stitched_fraction", JsonValue::F64(self.stitched_fraction())),
            ("cross_close_fraction", JsonValue::F64(self.cross_close_fraction())),
            (
                "worst_misses",
                JsonValue::Arr(
                    self.worst
                        .iter()
                        .map(|&(trace, client_us, sum)| {
                            JsonValue::obj(vec![
                                ("trace", JsonValue::U64(trace)),
                                ("client_us", JsonValue::U64(client_us)),
                                ("phase_sum_us", JsonValue::U64(sum)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Wire transit, reader-thread parse, and client-side scheduling —
/// round-trip microseconds no server-side timer can ever attribute.
/// The close band widens by this absolute allowance so a fast commit
/// (fsync piggybacked on another thread's force) is not judged solely
/// on loopback overhead that dwarfs its 5% relative budget.
const CLOSE_SLACK_US: u64 = 200;

/// Fetches `/trace` from the introspection server at `obs_addr`,
/// stitches waterfalls, and scores them against the run's traced
/// commits. The phase timers are engineered to be disjoint and to
/// cover the *whole* server-side service interval of a commit (the
/// uninstrumented remainder is emitted as `phase.serve_other`), so the
/// phase sum should approach the client round trip from below; "close"
/// means `phase_sum >= 0.95 * client_us - CLOSE_SLACK_US` (and not
/// above `1.05 * client_us + CLOSE_SLACK_US` — a sum exceeding the
/// round trip would mean overlapping timers).
pub fn trace_coverage(obs_addr: &str, traced: &[TracedCommit]) -> Result<TraceCoverage> {
    let doc = introspect::http_get_json(obs_addr, "/trace")?;
    let phases = introspect::collect_phases(&doc);
    let mut sums: HashMap<u64, u64> = HashMap::new();
    for wf in introspect::stitch(&phases) {
        sums.insert(wf.trace, wf.total_us());
    }
    let mut cov = TraceCoverage::default();
    for tc in traced {
        cov.traced += 1;
        if tc.cross_shard {
            cov.cross_traced += 1;
        }
        let Some(&sum) = sums.get(&tc.trace) else { continue };
        cov.stitched += 1;
        let slack = CLOSE_SLACK_US as f64;
        let close = (sum as f64) >= 0.95 * tc.client_us as f64 - slack
            && (sum as f64) <= 1.05 * tc.client_us as f64 + slack;
        if tc.cross_shard {
            cov.cross_stitched += 1;
        }
        if close {
            cov.close += 1;
            if tc.cross_shard {
                cov.cross_close += 1;
            }
        } else {
            cov.worst.push((tc.trace, tc.client_us, sum));
        }
    }
    cov.worst.sort_by_key(|&(_, client_us, sum)| std::cmp::Reverse(client_us.abs_diff(sum)));
    cov.worst.truncate(WORST_MISSES);
    Ok(cov)
}

/// Pulls the counters object out of a rendered stats document.
fn parse_counters(stats: &str) -> JsonValue {
    match json::parse(stats) {
        Ok(v) => v.get("counters").cloned().unwrap_or(JsonValue::Null),
        Err(_) => JsonValue::Null,
    }
}

fn counter_delta(after: &JsonValue, before: &JsonValue, name: &str) -> u64 {
    let read = |v: &JsonValue| v.get(name).and_then(JsonValue::as_u64).unwrap_or(0);
    read(after).saturating_sub(read(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_bases_fit_the_page_id_budget() {
        assert_eq!(thread_base(0, 0), 1 << 26);
        // The last object of the top admissible range (index 4095) must
        // still map to a valid u32 page id — the storage layer truncates
        // `ob / 64` to u32, so anything past this would alias pages.
        let top = thread_base(4094, 0) + ((1u64 << 26) - 1);
        assert!(top / 64 <= u32::MAX as u64);
        assert!(top < 1u64 << 38);
    }

    #[test]
    fn remote_ranges_cross_shards_and_stay_private() {
        for shards in [2usize, 3, 4, 8] {
            for threads in [1usize, 4, 16, 17] {
                let spec =
                    LoadSpec { threads, shards, cross_shard_fraction: 0.3, ..LoadSpec::default() };
                let range = |b: u64| b >> 26;
                for tid in 0..threads {
                    let home = thread_base(tid, spec.base_offset);
                    let remote = remote_base(tid, &spec);
                    // The remote range routes to a different shard …
                    assert_ne!(
                        range(home) % shards as u64,
                        range(remote) % shards as u64,
                        "threads={threads} shards={shards} tid={tid}"
                    );
                    // … and collides with no thread's home range.
                    for other in 0..threads {
                        assert_ne!(range(remote), range(thread_base(other, spec.base_offset)));
                    }
                }
                // Distinct threads get distinct remote ranges.
                let distinct: std::collections::HashSet<u64> =
                    (0..threads).map(|t| range(remote_base(t, &spec))).collect();
                assert_eq!(distinct.len(), threads);
            }
        }
    }
}
