//! # rh-client
//!
//! The client side of the `rh-server` wire protocol: a blocking
//! [`Connection`] handle speaking the framed protocol from
//! [`rh_server::wire`], plus a multi-threaded closed-loop load
//! generator ([`load`]) with a per-thread oracle that catches any
//! divergence between acknowledged effects and served values.
//!
//! ```no_run
//! use rh_client::Connection;
//! use rh_common::ObjectId;
//!
//! let mut c = Connection::connect("127.0.0.1:7411").unwrap();
//! let t = c.begin().unwrap();
//! c.write(t, ObjectId(7), 42).unwrap();
//! c.commit(t).unwrap(); // returns only once the commit is durable
//! assert_eq!(c.value_of(ObjectId(7)).unwrap(), 42);
//! ```

pub mod introspect;
pub mod load;

use rh_common::codec::Codec;
use rh_common::ops::Value;
use rh_common::{Lsn, ObjectId, RhError, TxnId};
use rh_server::wire::{self, Hello, Op, Reply, ReplyBody, Request, Response};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side errors. The engine's `RhError` cannot cross a process
/// boundary (it carries `&'static str` and typed ids), so wire errors
/// arrive as a stable class code plus rendered message.
#[derive(Debug)]
pub enum ClientError {
    /// Admission control refused the connection (server full or
    /// draining).
    Rejected,
    /// The per-connection in-flight cap was exceeded; the operation was
    /// not attempted and may be resent.
    Busy,
    /// The server executed the request and refused it. `code` is an
    /// [`rh_server::wire::errcode`] constant.
    Engine {
        /// Stable error class.
        code: u8,
        /// Rendered engine error.
        message: String,
    },
    /// Transport failure (includes the server vanishing mid-exchange —
    /// the crash tests rely on surfacing this faithfully).
    Io(io::Error),
    /// The server speaks a different wire-protocol version. Its own
    /// class (not [`ClientError::Protocol`]) so callers can print the
    /// actionable "upgrade one side" message instead of treating the
    /// mismatch as stream corruption.
    Version {
        /// The version the server announced in its hello.
        server: u32,
        /// The version this client build speaks.
        client: u32,
    },
    /// The peer broke the wire protocol.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Rejected => write!(f, "connection rejected by admission control"),
            ClientError::Busy => write!(f, "server busy: in-flight cap exceeded"),
            ClientError::Engine { code, message } => write!(f, "engine error {code}: {message}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Version { server, client } => write!(
                f,
                "wire protocol version mismatch: server speaks v{server}, this client speaks \
                 v{client} (upgrade whichever side is older)"
            ),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// One session with an `rh-server`: a blocking request/reply handle.
///
/// [`Connection::call`] keeps one request outstanding; the raw
/// [`Connection::send`] / [`Connection::recv`] pair exposes pipelining
/// (used by the backpressure tests and the load generator's pipelined
/// mode).
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    session: u64,
    inflight_cap: u32,
    next_id: u64,
}

impl Connection {
    /// Connects and runs the hello exchange.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut conn = Connection { stream, session: 0, inflight_cap: 0, next_id: 1 };
        let payload = conn
            .read_payload()?
            .ok_or_else(|| ClientError::Protocol("server closed before hello".into()))?;
        let hello = match Hello::from_bytes(&payload) {
            Ok(h) => h,
            Err(RhError::VersionMismatch { got, want }) => {
                return Err(ClientError::Version { server: got, client: want })
            }
            Err(e) => return Err(ClientError::Protocol(format!("bad hello: {e}"))),
        };
        if !hello.accepted {
            return Err(ClientError::Rejected);
        }
        conn.session = hello.session;
        conn.inflight_cap = hello.inflight_cap;
        Ok(conn)
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The advertised pipelining cap.
    pub fn inflight_cap(&self) -> u32 {
        self.inflight_cap
    }

    /// Sets the socket read timeout (e.g. so a crash test does not hang
    /// on a killed server).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn read_payload(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(wire::read_frame(&mut self.stream)?)
    }

    /// Fire-and-forget: frames `op` onto the wire, returning the
    /// request id. Pair with [`Connection::recv`].
    pub fn send(&mut self, op: Op) -> Result<u64> {
        self.send_traced(op, wire::NO_TRACE)
    }

    /// [`Connection::send`] with a client-assigned trace id: the server
    /// tags every phase of the request's execution with it, so the
    /// resulting spans stitch into one waterfall across sessions and
    /// shards (`rh-trace` renders them).
    pub fn send_traced(&mut self, op: Op, trace: u64) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = Request { id, trace, op }.to_bytes();
        wire::write_frame(&mut self.stream, &bytes)?;
        Ok(id)
    }

    /// Receives the next response frame.
    pub fn recv(&mut self) -> Result<Response> {
        let payload = self
            .read_payload()?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        Response::from_bytes(&payload)
            .map_err(|e| ClientError::Protocol(format!("bad response: {e}")))
    }

    /// One blocking round trip.
    pub fn call(&mut self, op: Op) -> Result<ReplyBody> {
        self.call_traced(op, wire::NO_TRACE)
    }

    /// One blocking round trip carrying a trace id (see
    /// [`Connection::send_traced`]).
    pub fn call_traced(&mut self, op: Op, trace: u64) -> Result<ReplyBody> {
        let id = self.send_traced(op, trace)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "reply for request {} while awaiting {id}",
                resp.id
            )));
        }
        match resp.reply {
            Reply::Ok(body) => Ok(body),
            Reply::Err { code, message } => Err(ClientError::Engine { code, message }),
            Reply::Busy => Err(ClientError::Busy),
        }
    }

    // ---- typed operation surface --------------------------------------

    /// Starts a transaction.
    pub fn begin(&mut self) -> Result<TxnId> {
        match self.call(Op::Begin)? {
            ReplyBody::Txn(t) => Ok(t),
            other => Err(unexpected("txn id", &other)),
        }
    }

    /// Transactional read.
    pub fn read(&mut self, t: TxnId, ob: ObjectId) -> Result<Value> {
        match self.call(Op::Read(t, ob))? {
            ReplyBody::Value(v) => Ok(v),
            other => Err(unexpected("value", &other)),
        }
    }

    /// Transactional overwrite.
    pub fn write(&mut self, t: TxnId, ob: ObjectId, v: Value) -> Result<()> {
        unit(self.call(Op::Write(t, ob, v))?)
    }

    /// Transactional commutative increment.
    pub fn add(&mut self, t: TxnId, ob: ObjectId, delta: Value) -> Result<()> {
        unit(self.call(Op::Add(t, ob, delta))?)
    }

    /// `delegate(tor, tee, obs)`.
    pub fn delegate(&mut self, tor: TxnId, tee: TxnId, obs: &[ObjectId]) -> Result<()> {
        unit(self.call(Op::Delegate(tor, tee, obs.to_vec()))?)
    }

    /// `delegate(tor, tee)` of everything.
    pub fn delegate_all(&mut self, tor: TxnId, tee: TxnId) -> Result<()> {
        unit(self.call(Op::DelegateAll(tor, tee))?)
    }

    /// ASSET `permit`.
    pub fn permit(&mut self, granter: TxnId, permittee: TxnId, ob: ObjectId) -> Result<()> {
        unit(self.call(Op::Permit(granter, permittee, ob))?)
    }

    /// Commits; returns only after the commit record is durable on the
    /// server (group-committed with concurrent sessions).
    pub fn commit(&mut self, t: TxnId) -> Result<()> {
        unit(self.call(Op::Commit(t))?)
    }

    /// [`Connection::commit`] tagged with a client-assigned trace id:
    /// the server's commit phases (queue wait, engine hold, prepare,
    /// flush — and each 2PC edge, for a sharded backend) are emitted as
    /// trace points carrying this id.
    pub fn commit_traced(&mut self, t: TxnId, trace: u64) -> Result<()> {
        unit(self.call_traced(Op::Commit(t), trace)?)
    }

    /// Aborts.
    pub fn abort(&mut self, t: TxnId) -> Result<()> {
        unit(self.call(Op::Abort(t))?)
    }

    /// Establishes a savepoint, returning its opaque token.
    pub fn savepoint(&mut self, t: TxnId) -> Result<u64> {
        match self.call(Op::Savepoint(t))? {
            ReplyBody::Token(tok) => Ok(tok),
            other => Err(unexpected("savepoint token", &other)),
        }
    }

    /// Partial rollback to a savepoint token.
    pub fn rollback_to(&mut self, t: TxnId, token: u64) -> Result<()> {
        unit(self.call(Op::RollbackTo(t, token))?)
    }

    /// Non-transactional peek.
    pub fn value_of(&mut self, ob: ObjectId) -> Result<Value> {
        match self.call(Op::ValueOf(ob))? {
            ReplyBody::Value(v) => Ok(v),
            other => Err(unexpected("value", &other)),
        }
    }

    /// Staleness-bounded peek (v4): like [`Connection::value_of`], but
    /// the serving node must have applied the log through `min_lsn`
    /// first. A primary trivially satisfies any bound; a replica blocks
    /// until its applied watermark reaches `min_lsn` or refuses with
    /// [`rh_server::wire::errcode::REPL_LAGGING`] at its configured
    /// deadline — it never silently serves a staler value. Pair with
    /// [`Connection::durable`] against the primary for read-your-writes
    /// on a replica.
    pub fn value_of_min(&mut self, ob: ObjectId, min_lsn: Lsn) -> Result<Value> {
        match self.call(Op::ValueOfMin(ob, min_lsn))? {
            ReplyBody::Value(v) => Ok(v),
            other => Err(unexpected("value", &other)),
        }
    }

    /// Durable-watermark probe (v4): the raw LSN up to which the log
    /// owning `ob` is durable on the serving node (the applied
    /// watermark, on a replica). A commit acknowledged before this call
    /// is covered by the returned bound, so feeding it to
    /// [`Connection::value_of_min`] on a replica yields
    /// read-your-writes.
    pub fn durable(&mut self, ob: ObjectId) -> Result<u64> {
        match self.call(Op::Durable(ob))? {
            ReplyBody::Token(lsn) => Ok(lsn),
            other => Err(unexpected("durable watermark", &other)),
        }
    }

    /// Time-travel read: the committed value of `ob` as of `as_of`
    /// (pass [`Lsn::NULL`] for "now" — the server resolves it to the
    /// log tail). Answered by WAL reenactment on the server without
    /// taking the engine mutex, so it is safe to issue under load.
    pub fn read_as_of(&mut self, ob: ObjectId, as_of: Lsn) -> Result<Value> {
        match self.call(Op::ReadAsOf(ob, as_of))? {
            ReplyBody::Value(v) => Ok(v),
            other => Err(unexpected("value", &other)),
        }
    }

    /// Version timeline of `ob` over `[from, to]` as a rendered
    /// `history.v1` JSON document (pass [`Lsn::FIRST`]`..`[`Lsn::NULL`]
    /// for the whole reenactable history up to now).
    pub fn history_json(&mut self, ob: ObjectId, from: Lsn, to: Lsn) -> Result<String> {
        match self.call(Op::History(ob, from, to))? {
            ReplyBody::Json(s) => Ok(s),
            other => Err(unexpected("history json", &other)),
        }
    }

    /// The server's one-stop stats snapshot, as rendered JSON.
    pub fn stats_json(&mut self) -> Result<String> {
        match self.call(Op::Stats)? {
            ReplyBody::Json(s) => Ok(s),
            other => Err(unexpected("stats json", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        unit(self.call(Op::Ping)?)
    }

    /// Asks the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<()> {
        unit(self.call(Op::Shutdown)?)
    }
}

fn unit(body: ReplyBody) -> Result<()> {
    match body {
        ReplyBody::Unit => Ok(()),
        other => Err(unexpected("unit", &other)),
    }
}

fn unexpected(wanted: &str, got: &ReplyBody) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
