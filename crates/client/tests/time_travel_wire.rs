//! Wire-level acceptance for the protocol-v3 time-travel ops: typed
//! `read_as_of` / `history_json` calls against a live file-backed
//! server, including a delegated commit whose provenance hop must
//! surface in the rendered `history.v1` document.

use rh_client::load::connect_with_retry;
use rh_common::{Lsn, ObjectId};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_obs::json::{self, JsonValue};
use rh_server::{Server, ServerConfig};
use rh_wal::StableLog;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-tt-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn u64_of(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).expect(key)
}

#[test]
fn read_as_of_and_history_over_the_wire() {
    let dir = scratch("wire");
    let stable = StableLog::open_dir(&dir).expect("open dir");
    let db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
    let server = Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut c = connect_with_retry(&addr).expect("connect");

    let ob = ObjectId(5);
    let t1 = c.begin().expect("begin");
    c.write(t1, ob, 10).expect("write");
    c.commit(t1).expect("commit");
    // "Now" resolves to the log tail on the server.
    assert_eq!(c.read_as_of(ob, Lsn::NULL).expect("as-of now"), 10);

    let t2 = c.begin().expect("begin");
    c.add(t2, ob, 5).expect("add");
    c.commit(t2).expect("commit");
    assert_eq!(c.read_as_of(ob, Lsn::NULL).expect("as-of now"), 15);

    // A delegated commit on a second object: t4 answers for t3's write.
    let ob2 = ObjectId(6);
    let t3 = c.begin().expect("begin");
    c.write(t3, ob2, 77).expect("write");
    let t4 = c.begin().expect("begin");
    c.delegate(t3, t4, &[ob2]).expect("delegate");
    c.abort(t3).expect("abort delegator");
    c.commit(t4).expect("commit delegatee");

    // The whole reenactable history of `ob`: both committed versions,
    // each answered for by its own committer (no delegation).
    let doc = json::parse(&c.history_json(ob, Lsn::FIRST, Lsn::NULL).expect("history"))
        .expect("valid json");
    assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("history.v1"));
    assert_eq!(u64_of(&doc, "object"), ob.raw());
    assert_eq!(doc.get("value").and_then(JsonValue::as_i64), Some(15));
    let versions = match doc.get("versions") {
        Some(JsonValue::Arr(v)) => v.clone(),
        other => panic!("versions must be an array, got {other:?}"),
    };
    assert_eq!(versions.len(), 2, "{doc:?}");
    assert_eq!(versions[0].get("value").and_then(JsonValue::as_i64), Some(10));
    assert_eq!(versions[1].get("value").and_then(JsonValue::as_i64), Some(15));
    for v in &versions {
        assert_eq!(u64_of(v, "invoker"), u64_of(v, "responsible"));
    }

    // The delegated object's single version: invoked by t3, answered
    // for by t4, with the hop that moved responsibility in between.
    let doc2 = json::parse(&c.history_json(ob2, Lsn::FIRST, Lsn::NULL).expect("history"))
        .expect("valid json");
    let versions2 = match doc2.get("versions") {
        Some(JsonValue::Arr(v)) => v.clone(),
        other => panic!("versions must be an array, got {other:?}"),
    };
    assert_eq!(versions2.len(), 1, "{doc2:?}");
    let v = &versions2[0];
    assert_eq!(v.get("value").and_then(JsonValue::as_i64), Some(77));
    assert_eq!(u64_of(v, "invoker"), t3.raw());
    assert_eq!(u64_of(v, "responsible"), t4.raw());
    let hops = match v.get("hops") {
        Some(JsonValue::Arr(h)) => h.clone(),
        other => panic!("hops must be an array, got {other:?}"),
    };
    assert_eq!(hops.len(), 1, "{v:?}");
    assert_eq!(u64_of(&hops[0], "from"), t3.raw());
    assert_eq!(u64_of(&hops[0], "to"), t4.raw());

    // Time travel proper: as of the commit that made the first version
    // durable, the second version's increment has not happened yet —
    // while as of the first *update* LSN, t1 is still in flight and
    // reenactment presumes abort, exactly like a crash there would.
    let first_committed = Lsn(u64_of(&versions[0], "committed_at"));
    assert_eq!(c.read_as_of(ob, first_committed).expect("as-of commit 1"), 10);
    let first_update = Lsn(u64_of(&versions[0], "lsn"));
    assert_eq!(c.read_as_of(ob, first_update).expect("as-of update 1"), 0);

    let db = server.shutdown().expect("drain");
    db.validate_scope_invariants();
    let _ = std::fs::remove_dir_all(&dir);
}
