//! Acceptance test for the serving stack: a 16-thread mixed workload
//! (writes, adds, delegation chains) against a file-backed server must
//! finish with **zero** oracle divergences, and the server-side fsync
//! count must grow sublinearly in commits — i.e. group commit must be
//! observably batching concurrent sessions.

use rh_client::load::{run_load, LoadSpec};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_server::{Server, ServerConfig};
use rh_wal::StableLog;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-load-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sixteen_threads_zero_divergence_and_batched_fsyncs() {
    let dir = scratch("accept");
    let stable = StableLog::open_dir(&dir).expect("open dir");
    let db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
    let server = Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();

    let spec = LoadSpec {
        threads: 16,
        txns_per_thread: 25,
        updates_per_txn: 4,
        delegation_fraction: 0.3,
        seed: 7,
        ..LoadSpec::default()
    };
    let report = run_load(&addr, &spec).expect("load run");

    assert_eq!(report.divergences, 0, "oracle divergence: {report:?}");
    assert_eq!(report.errors, 0, "no transaction may fail: {report:?}");
    assert_eq!(report.busy, 0, "a blocking client never overruns its in-flight cap");
    let expected = (spec.threads * spec.txns_per_thread) as u64;
    assert_eq!(report.txns_committed, expected);
    assert!(report.objects_checked >= expected * spec.updates_per_txn as u64);
    assert_eq!(report.server_commits_delta, expected);

    // The batching claim itself: 400 concurrent commits must need
    // strictly fewer forces than one-fsync-per-commit would.
    assert!(
        report.server_fsyncs_delta < report.server_commits_delta,
        "group commit not batching: {} fsyncs for {} commits",
        report.server_fsyncs_delta,
        report.server_commits_delta
    );

    let db = server.shutdown().expect("drain");
    let stats = db.stats();
    assert_eq!(stats.counter("server.commits"), expected);
    assert_eq!(stats.counter("server.sessions.active"), 0);
    db.validate_scope_invariants();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lazy_rewrite_strategy_serves_the_same_contract() {
    let dir = scratch("lazy");
    let stable = StableLog::open_dir(&dir).expect("open dir");
    let db = RhDb::with_stable_log(Strategy::LazyRewrite, DbConfig::default(), stable);
    let server = Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();

    let spec = LoadSpec {
        threads: 8,
        txns_per_thread: 10,
        updates_per_txn: 3,
        delegation_fraction: 0.5,
        seed: 11,
        ..LoadSpec::default()
    };
    let report = run_load(&addr, &spec).expect("load run");
    assert_eq!(report.divergences, 0, "oracle divergence: {report:?}");
    assert_eq!(report.errors, 0);
    assert_eq!(report.txns_committed, (spec.threads * spec.txns_per_thread) as u64);

    let db = server.shutdown().expect("drain");
    db.validate_scope_invariants();
    let _ = std::fs::remove_dir_all(&dir);
}
