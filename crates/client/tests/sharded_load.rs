//! Acceptance test for the sharded serving stack: a concurrent mixed
//! workload with cross-shard transactions (and cross-shard delegation
//! chains) against a 4-shard file-backed server must finish with zero
//! oracle divergences, commit cross-shard traffic through 2PC, and
//! drain gracefully with every shard checkpointed.

use rh_client::load::{run_load, LoadSpec};
use rh_core::engine::{DbConfig, Strategy};
use rh_core::sharded::{ShardMap, ShardedDb};
use rh_server::{Server, ServerConfig};
use rh_wal::StableLog;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 4;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-shardload-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sharded_server(strategy: Strategy, dir: &Path) -> Server {
    let stables = (0..SHARDS)
        .map(|k| StableLog::open_dir(dir.join(format!("shard-{k}"))).expect("open shard dir"))
        .collect();
    let db =
        ShardedDb::with_stable_logs(strategy, DbConfig::default(), stables, ShardMap::RANGE_SHIFT)
            .expect("sharded open");
    Server::bind_sharded("127.0.0.1:0", db, ServerConfig::default()).expect("bind")
}

#[test]
fn cross_shard_load_holds_the_oracle_and_commits_via_2pc() {
    let dir = scratch("accept");
    let server = sharded_server(Strategy::Rh, &dir);
    let addr = server.local_addr().to_string();

    let spec = LoadSpec {
        threads: 8,
        txns_per_thread: 20,
        updates_per_txn: 4,
        delegation_fraction: 0.3,
        cross_shard_fraction: 0.5,
        shards: SHARDS,
        seed: 9,
        base_offset: 0,
    };
    let report = run_load(&addr, &spec).expect("load run");

    assert_eq!(report.divergences, 0, "oracle divergence: {report:?}");
    assert_eq!(report.errors, 0, "no transaction may fail: {report:?}");
    let expected = (spec.threads * spec.txns_per_thread) as u64;
    assert_eq!(report.txns_committed, expected);
    assert_eq!(report.server_commits_delta, expected);

    let db = server.shutdown_sharded().expect("drain");
    let stats = db.stats();
    assert_eq!(stats.counter("server.commits"), expected);
    // Half the transactions drew a remote-range write, so a healthy
    // number of commits must have gone through the 2PC path. (The
    // cross-shard counter also sees delegators that aborted after
    // handing off, so it bounds the 2PC commits from above.)
    let cross = stats.counter("shard.cross.txns");
    let twopc = stats.counter("shard.twopc.commits");
    assert!(twopc >= expected / 4, "only {twopc} 2PC commits out of {expected}");
    assert!(twopc <= cross);
    // One prepare per 2PC commit (the coordinator never prepares).
    assert!(stats.counter("shard.twopc.prepares") >= twopc);
    // Graceful drain checkpoints every shard, not just the primary.
    for k in 0..SHARDS {
        let log = db.shard_log(k).expect("shard log");
        assert!(!log.stable().master().is_null(), "shard {k} must be checkpointed on drain");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lazy_rewrite_serves_the_same_sharded_contract() {
    let dir = scratch("lazy");
    let server = sharded_server(Strategy::LazyRewrite, &dir);
    let addr = server.local_addr().to_string();

    let spec = LoadSpec {
        threads: 4,
        txns_per_thread: 10,
        updates_per_txn: 3,
        delegation_fraction: 0.5,
        cross_shard_fraction: 0.4,
        shards: SHARDS,
        seed: 13,
        base_offset: 0,
    };
    let report = run_load(&addr, &spec).expect("load run");
    assert_eq!(report.divergences, 0, "oracle divergence: {report:?}");
    assert_eq!(report.errors, 0);
    assert_eq!(report.txns_committed, (spec.threads * spec.txns_per_thread) as u64);

    let db = server.shutdown_sharded().expect("drain");
    assert!(db.stats().counter("shard.twopc.commits") >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
