//! Acceptance test for the sharded serving stack: a concurrent mixed
//! workload with cross-shard transactions (and cross-shard delegation
//! chains) against a 4-shard file-backed server must finish with zero
//! oracle divergences, commit cross-shard traffic through 2PC, and
//! drain gracefully with every shard checkpointed.

use rh_client::load::{self, run_load, LoadSpec};
use rh_core::engine::{DbConfig, Strategy};
use rh_core::sharded::{ShardMap, ShardedDb};
use rh_server::{Server, ServerConfig};
use rh_wal::StableLog;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 4;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-shardload-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sharded_server(strategy: Strategy, dir: &Path) -> (Server, String) {
    let stables = (0..SHARDS)
        .map(|k| StableLog::open_dir(dir.join(format!("shard-{k}"))).expect("open shard dir"))
        .collect();
    let db =
        ShardedDb::with_stable_logs(strategy, DbConfig::default(), stables, ShardMap::RANGE_SHIFT)
            .expect("sharded open");
    let obs_addr = db.serve_introspection("127.0.0.1:0").expect("introspection").to_string();
    (Server::bind_sharded("127.0.0.1:0", db, ServerConfig::default()).expect("bind"), obs_addr)
}

#[test]
fn cross_shard_load_holds_the_oracle_and_commits_via_2pc() {
    let dir = scratch("accept");
    let (server, obs_addr) = sharded_server(Strategy::Rh, &dir);
    let addr = server.local_addr().to_string();

    let spec = LoadSpec {
        threads: 8,
        txns_per_thread: 20,
        updates_per_txn: 4,
        delegation_fraction: 0.3,
        cross_shard_fraction: 0.5,
        shards: SHARDS,
        seed: 9,
        base_offset: 0,
        trace: true,
        // Interleave time-travel audits with the 2PC write load: the
        // reenacted value of already-acked objects must agree with the
        // oracle exactly, even while cross-shard commits are in flight.
        audit_fraction: 0.25,
        replica: None,
    };
    let report = run_load(&addr, &spec).expect("load run");

    assert_eq!(report.divergences, 0, "oracle divergence: {report:?}");
    assert!(report.audit_queries > 0, "the audit draw must fire: {report:?}");
    assert_eq!(report.audit_divergences, 0, "audit divergence: {report:?}");
    assert_eq!(report.errors, 0, "no transaction may fail: {report:?}");
    let expected = (spec.threads * spec.txns_per_thread) as u64;
    assert_eq!(report.txns_committed, expected);
    assert_eq!(report.server_commits_delta, expected);

    // Every acked commit carried a trace id; the server's `/trace`
    // rings must stitch a waterfall for (at least) 99% of them, and for
    // every cross-shard commit — the acceptance population — the
    // waterfall must exist and its phase sum must not exceed the
    // client-observed round trip (disjoint timers cannot overlap it).
    assert_eq!(report.traced.len() as u64, expected);
    let cov = load::trace_coverage(&obs_addr, &report.traced).expect("trace fetch");
    assert!(cov.stitched_fraction() >= 0.99, "stitched only {:?}", cov);
    assert!(cov.cross_traced > 0, "the mix must produce cross-shard commits");
    assert_eq!(cov.cross_stitched, cov.cross_traced, "unstitched 2PC commits: {cov:?}");
    let doc = rh_client::introspect::http_get_json(&obs_addr, "/trace").expect("trace doc");
    let falls = rh_client::introspect::stitch(&rh_client::introspect::collect_phases(&doc));
    let by_trace: std::collections::HashMap<u64, _> =
        falls.into_iter().map(|w| (w.trace, w)).collect();
    for tc in report.traced.iter().filter(|t| t.cross_shard) {
        let wf = &by_trace[&tc.trace];
        let named = |n: &str| wf.phases.iter().filter(|(name, _)| name == n).count();
        assert!(named("phase.twopc.prepare_force") >= 1, "no prepare edge: {wf:?}");
        assert_eq!(named("phase.twopc.coord_force"), 1, "coord edge: {wf:?}");
        assert!(
            wf.total_us() <= tc.client_us + tc.client_us / 20 + 50,
            "phase sum {} overlaps the client round trip {}",
            wf.total_us(),
            tc.client_us
        );
    }

    let db = server.shutdown_sharded().expect("drain");
    let stats = db.stats();
    assert_eq!(stats.counter("server.commits"), expected);
    // Half the transactions drew a remote-range write, so a healthy
    // number of commits must have gone through the 2PC path. (The
    // cross-shard counter also sees delegators that aborted after
    // handing off, so it bounds the 2PC commits from above.)
    let cross = stats.counter("shard.cross.txns");
    let twopc = stats.counter("shard.twopc.commits");
    assert!(twopc >= expected / 4, "only {twopc} 2PC commits out of {expected}");
    assert!(twopc <= cross);
    // One prepare per 2PC commit (the coordinator never prepares).
    assert!(stats.counter("shard.twopc.prepares") >= twopc);
    // Graceful drain checkpoints every shard, not just the primary.
    for k in 0..SHARDS {
        let log = db.shard_log(k).expect("shard log");
        assert!(!log.stable().master().is_null(), "shard {k} must be checkpointed on drain");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lazy_rewrite_serves_the_same_sharded_contract() {
    let dir = scratch("lazy");
    let (server, _obs) = sharded_server(Strategy::LazyRewrite, &dir);
    let addr = server.local_addr().to_string();

    let spec = LoadSpec {
        threads: 4,
        txns_per_thread: 10,
        updates_per_txn: 3,
        delegation_fraction: 0.5,
        cross_shard_fraction: 0.4,
        shards: SHARDS,
        seed: 13,
        base_offset: 0,
        trace: false,
        audit_fraction: 0.0,
        replica: None,
    };
    let report = run_load(&addr, &spec).expect("load run");
    assert_eq!(report.divergences, 0, "oracle divergence: {report:?}");
    assert_eq!(report.errors, 0);
    assert_eq!(report.txns_committed, (spec.threads * spec.txns_per_thread) as u64);

    let db = server.shutdown_sharded().expect("drain");
    assert!(db.stats().counter("shard.twopc.commits") >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
