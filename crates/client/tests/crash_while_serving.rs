//! Crash-while-serving: kill the server mid-load (statistically
//! mid-delegation), recover the directory, and hold recovery to the
//! client-side oracle.
//!
//! The contract under test is exactly the one a client may rely on:
//!
//! * every **acknowledged** commit's effects survive recovery exactly;
//! * every unacknowledged object is either untouched (`0`) or carries
//!   the value that was in flight — kill ambiguity allows both, but
//!   nothing else (each object is written by at most one transaction,
//!   ever, so there is no third legal value);
//! * the recovered engine passes its own scope invariants and leaves a
//!   postmortem behind.
//!
//! Runs under both rewrite strategies.

use rh_client::{ClientError, Connection};
use rh_common::ops::Value;
use rh_common::ObjectId;
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::TxnEngine;
use rh_server::{Server, ServerConfig};
use rh_wal::StableLog;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-crashserve-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Effects shared between the load threads and the verifier.
#[derive(Default)]
struct Oracle {
    /// Object → value, recorded only after the commit was acknowledged.
    acked: HashMap<ObjectId, Value>,
    /// Object → value for every write that was *sent*, acked or not.
    attempted: HashMap<ObjectId, Value>,
}

const THREADS: usize = 4;
const UPDATES: usize = 3;
const ACKS_BEFORE_KILL: u64 = 30;

// Shift 26, not 32: pages are `ob / 64` truncated to u32, so bases
// must stay below 2^38 to keep the per-thread ranges page-disjoint.
fn thread_base(tid: usize) -> u64 {
    (tid as u64 + 1) << 26
}

/// Drives transactions until the server dies under it. Every third
/// transaction routes its effects through a delegation chain, so with
/// four threads the kill lands mid-delegation with high probability.
fn client_thread(
    addr: String,
    tid: usize,
    oracle: Arc<Mutex<Oracle>>,
    acks: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) {
    let mut conn = match Connection::connect(&addr) {
        Ok(c) => c,
        Err(_) => return,
    };
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let base = thread_base(tid);
    let mut seq = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let outcome = one_txn(&mut conn, base, seq, &oracle);
        seq += 1;
        match outcome {
            Ok(()) => {
                acks.fetch_add(1, Ordering::Relaxed);
            }
            // Any failure here means the server is gone (objects are
            // private, so no engine error is expected before the kill).
            Err(_) => break,
        }
    }
}

fn one_txn(
    conn: &mut Connection,
    base: u64,
    seq: u64,
    oracle: &Mutex<Oracle>,
) -> Result<(), ClientError> {
    let t1 = conn.begin()?;
    let mut effects = Vec::with_capacity(UPDATES + 1);
    let mut touched = Vec::with_capacity(UPDATES);
    for k in 0..UPDATES as u64 {
        let ob = ObjectId(base + seq * UPDATES as u64 + k);
        let v = (seq * 31 + k + 1) as Value;
        {
            let mut guard = oracle.lock().unwrap();
            guard.attempted.insert(ob, v);
        }
        if k % 2 == 0 {
            conn.write(t1, ob, v)?;
        } else {
            conn.add(t1, ob, v)?;
        }
        touched.push(ob);
        effects.push((ob, v));
    }
    if seq.is_multiple_of(3) {
        // Delegation chain: t2 takes responsibility, t1 aborts, t2
        // commits. A kill anywhere in here leaves t1/t2 as losers.
        let t2 = conn.begin()?;
        conn.delegate(t1, t2, &touched)?;
        conn.abort(t1)?;
        let extra = ObjectId(base + (1 << 20) + seq);
        {
            let mut guard = oracle.lock().unwrap();
            guard.attempted.insert(extra, 1);
        }
        conn.add(t2, extra, 1)?;
        effects.push((extra, 1));
        conn.commit(t2)?;
    } else {
        conn.commit(t1)?;
    }
    // The commit call returned: the server acknowledged durability.
    let mut guard = oracle.lock().unwrap();
    guard.acked.extend(effects);
    Ok(())
}

fn crash_and_recover(strategy: Strategy, tag: &str) {
    let dir = scratch(tag);
    let stable = StableLog::open_dir(&dir).expect("open dir");
    let db = RhDb::with_stable_log(strategy, DbConfig::default(), Arc::clone(&stable));
    let server = Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    // Crash fidelity: keep the "hardware" (stable log + disk) alive
    // across the crash, exactly as a machine restart would.
    let disk = server.disk();

    let oracle = Arc::new(Mutex::new(Oracle::default()));
    let acks = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let (addr, oracle) = (addr.clone(), Arc::clone(&oracle));
        let (acks, stop) = (Arc::clone(&acks), Arc::clone(&stop));
        handles.push(std::thread::spawn(move || client_thread(addr, tid, oracle, acks, stop)));
    }

    // Let the workload establish itself, then pull the plug mid-flight.
    let mut waited = 0u32;
    while acks.load(Ordering::Relaxed) < ACKS_BEFORE_KILL && waited < 4000 {
        std::thread::sleep(Duration::from_millis(5));
        waited += 1;
    }
    assert!(acks.load(Ordering::Relaxed) >= ACKS_BEFORE_KILL, "workload never got going");
    server.force_stop();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }

    // No checkpoint ever ran, so the master record must still be null:
    // recovery owes us a full history replay.
    assert!(stable.master().is_null(), "a crash must not leave a checkpoint");
    let mut db = RhDb::recover(strategy, DbConfig::default(), stable, disk).expect("recover");

    let guard = oracle.lock().unwrap();
    assert!(guard.acked.len() as u64 >= ACKS_BEFORE_KILL, "oracle too thin to be meaningful");
    for (&ob, &v) in &guard.acked {
        let got = db.value_of(ob).expect("read back");
        assert_eq!(got, v, "acked effect lost or mangled at {ob:?} ({strategy:?})");
    }
    for (&ob, &v) in &guard.attempted {
        if guard.acked.contains_key(&ob) {
            continue;
        }
        let got = db.value_of(ob).unwrap_or(0);
        assert!(
            got == 0 || got == v,
            "unacked {ob:?} has impossible value {got} (wrote {v}, {strategy:?})"
        );
    }
    drop(guard);

    assert!(db.postmortem().is_some(), "recovery must leave a postmortem");
    db.validate_scope_invariants();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_load_recovers_to_oracle_rh() {
    crash_and_recover(Strategy::Rh, "rh");
}

#[test]
fn kill_mid_load_recovers_to_oracle_lazy() {
    crash_and_recover(Strategy::LazyRewrite, "lazy");
}
