//! EOS must satisfy the same §2.1 delegation semantics as the ARIES
//! engines, despite implementing them with NO-UNDO/REDO deferred updates.

use proptest::prelude::*;
use rh_core::history::synth::{sanitize, RawStep, SynthOpts};
use rh_core::history::{assert_engine_matches_oracle, replay_engine, Event};
use rh_core::TxnEngine;
use rh_eos::EosDb;

fn raw_steps() -> impl Strategy<Value = Vec<RawStep>> {
    proptest::collection::vec(any::<(u8, u8, u8, i8)>(), 0..120)
}

fn opts() -> SynthOpts {
    // EOS has no checkpoints; everything else applies.
    SynthOpts { allow_checkpoint: false, ..SynthOpts::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn eos_matches_oracle(raw in raw_steps()) {
        let events = sanitize(&raw, opts());
        assert_engine_matches_oracle(EosDb::new(), &events);
    }

    #[test]
    fn eos_matches_oracle_with_trailing_crash(raw in raw_steps()) {
        let mut events = sanitize(&raw, opts());
        events.push(Event::Crash);
        assert_engine_matches_oracle(EosDb::new(), &events);
    }

    #[test]
    fn eos_and_rh_agree(raw in raw_steps()) {
        use rh_core::engine::{RhDb, Strategy as S};
        let mut events = sanitize(&raw, opts());
        events.push(Event::Crash);
        let mut a = replay_engine(EosDb::new(), &events).unwrap();
        let mut b = replay_engine(RhDb::new(S::Rh), &events).unwrap();
        let oracle = rh_core::Oracle::run(&events);
        for ob in oracle.touched() {
            prop_assert_eq!(a.value_of(ob).unwrap(), b.value_of(ob).unwrap());
        }
    }

    #[test]
    fn eos_double_crash_idempotent(raw in raw_steps()) {
        let mut events = sanitize(&raw, opts());
        events.push(Event::Crash);
        events.push(Event::Crash);
        assert_engine_matches_oracle(EosDb::new(), &events);
    }
}
