//! The EOS global log: commits only.
//!
//! "If a transaction commits, its private log is flushed to stable
//! storage; if it aborts, the private log is discarded. The recovery of
//! EOS is simpler than that of ARIES, because no undo is necessary; only
//! committed changes are logged, so they are reapplied during a single
//! forward sweep of the global log" (§3.7).

use crate::private::PrivateItem;
use parking_lot::Mutex;
use rh_common::TxnId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One committed transaction's flushed private log.
#[derive(Debug, Clone)]
pub struct CommitBatch {
    /// The committing transaction.
    pub txn: TxnId,
    /// Its deferred updates, in execution/receipt order.
    pub items: Vec<PrivateItem>,
}

/// Counters for the EOS experiments (E7).
#[derive(Debug, Default)]
pub struct EosMetrics {
    batches_flushed: AtomicU64,
    items_flushed: AtomicU64,
    items_replayed: AtomicU64,
    items_discarded: AtomicU64,
}

/// Plain-data snapshot of [`EosMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EosMetricsSnapshot {
    /// Commit batches forced to the global log.
    pub batches_flushed: u64,
    /// Deferred updates forced to the global log.
    pub items_flushed: u64,
    /// Items reapplied by recovery sweeps.
    pub items_replayed: u64,
    /// Items thrown away by aborts / crashes (never logged).
    pub items_discarded: u64,
}

impl EosMetricsSnapshot {
    /// Absorbs this snapshot into a unified [`rh_obs::Registry`] under
    /// the `eos.*` prefix (absolute values; re-absorption overwrites).
    pub fn export_into(&self, registry: &rh_obs::Registry) {
        use rh_obs::names;
        registry.set(names::M_EOS_BATCHES_FLUSHED, self.batches_flushed);
        registry.set(names::M_EOS_ITEMS_FLUSHED, self.items_flushed);
        registry.set(names::M_EOS_ITEMS_REPLAYED, self.items_replayed);
        registry.set(names::M_EOS_ITEMS_DISCARDED, self.items_discarded);
    }

    /// Difference since an earlier snapshot (for per-phase reporting).
    pub fn since(&self, earlier: &EosMetricsSnapshot) -> EosMetricsSnapshot {
        EosMetricsSnapshot {
            batches_flushed: self.batches_flushed - earlier.batches_flushed,
            items_flushed: self.items_flushed - earlier.items_flushed,
            items_replayed: self.items_replayed - earlier.items_replayed,
            items_discarded: self.items_discarded - earlier.items_discarded,
        }
    }
}

impl EosMetrics {
    pub(crate) fn flushed(&self, items: u64) {
        self.batches_flushed.fetch_add(1, Ordering::Relaxed);
        self.items_flushed.fetch_add(items, Ordering::Relaxed);
    }
    pub(crate) fn replayed(&self, items: u64) {
        self.items_replayed.fetch_add(items, Ordering::Relaxed);
    }
    pub(crate) fn discarded(&self, items: u64) {
        self.items_discarded.fetch_add(items, Ordering::Relaxed);
    }

    /// Takes a snapshot for reporting.
    pub fn snapshot(&self) -> EosMetricsSnapshot {
        EosMetricsSnapshot {
            batches_flushed: self.batches_flushed.load(Ordering::Relaxed),
            items_flushed: self.items_flushed.load(Ordering::Relaxed),
            items_replayed: self.items_replayed.load(Ordering::Relaxed),
            items_discarded: self.items_discarded.load(Ordering::Relaxed),
        }
    }
}

/// The stable global log. Share via `Arc` across crashes.
///
/// Besides the commit batches it carries a **stable snapshot**: a
/// materialized database image that [`GlobalLog::compact`] folds
/// committed batches into, so the log itself can be truncated (otherwise
/// an EOS log grows forever and recovery replays all of history).
#[derive(Debug)]
pub struct GlobalLog {
    batches: Mutex<Vec<CommitBatch>>,
    snapshot: Mutex<std::collections::HashMap<rh_common::ObjectId, i64>>,
    metrics: EosMetrics,
}

impl Default for GlobalLog {
    fn default() -> Self {
        GlobalLog {
            batches: Mutex::named(Vec::new(), rh_obs::names::LS_EOS_BATCHES),
            snapshot: Mutex::named(Default::default(), rh_obs::names::LS_EOS_SNAPSHOT),
            metrics: EosMetrics::default(),
        }
    }
}

impl GlobalLog {
    /// Creates an empty global log.
    pub fn new() -> Arc<Self> {
        Arc::new(GlobalLog::default())
    }

    /// Forces one commit batch to stable storage (atomic: a crash either
    /// sees the whole batch or none of it, which is what "flush then write
    /// the commit record" achieves in the real system).
    pub fn force_commit(&self, batch: CommitBatch) {
        self.metrics.flushed(batch.items.len() as u64);
        self.batches.lock().push(batch);
    }

    /// Snapshot of all committed batches, in commit order (recovery's
    /// single forward sweep reads this).
    pub fn sweep(&self) -> Vec<CommitBatch> {
        let batches = self.batches.lock().clone();
        self.metrics.replayed(batches.iter().map(|b| b.items.len() as u64).sum());
        batches
    }

    /// Folds every logged batch into the stable snapshot and truncates
    /// the log (EOS's checkpoint analogue). Atomic with respect to the
    /// simulated crash model: the snapshot and the truncation commit
    /// together under the lock. Returns the number of batches compacted.
    pub fn compact(&self) -> usize {
        let mut batches = self.batches.lock();
        let mut snapshot = self.snapshot.lock();
        let n = batches.len();
        for batch in batches.drain(..) {
            for item in batch.items {
                let cur = snapshot.get(&item.ob).copied().unwrap_or(0);
                snapshot.insert(item.ob, item.entry.apply(cur));
            }
        }
        n
    }

    /// The stable snapshot (recovery's starting state).
    pub fn snapshot_state(&self) -> std::collections::HashMap<rh_common::ObjectId, i64> {
        self.snapshot.lock().clone()
    }

    /// Number of committed transactions on record (since the last
    /// compaction).
    pub fn len(&self) -> usize {
        self.batches.lock().len()
    }

    /// True if nothing ever committed.
    pub fn is_empty(&self) -> bool {
        self.batches.lock().is_empty()
    }

    /// Access the counters.
    pub fn metrics(&self) -> &EosMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::private::{PrivateEntry, Provenance};
    use rh_common::ObjectId;

    fn item(ob: u64, v: i64) -> PrivateItem {
        PrivateItem {
            seq: 0,
            ob: ObjectId(ob),
            entry: PrivateEntry::Image(v),
            provenance: Provenance::Own,
        }
    }

    #[test]
    fn commits_accumulate_in_order() {
        let log = GlobalLog::new();
        log.force_commit(CommitBatch { txn: TxnId(1), items: vec![item(0, 5)] });
        log.force_commit(CommitBatch { txn: TxnId(2), items: vec![item(0, 9), item(1, 2)] });
        let sweep = log.sweep();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].txn, TxnId(1));
        assert_eq!(sweep[1].items.len(), 2);
    }

    #[test]
    fn metrics_count_flushes_and_replays() {
        let log = GlobalLog::new();
        log.force_commit(CommitBatch { txn: TxnId(1), items: vec![item(0, 5), item(1, 6)] });
        log.sweep();
        let m = log.metrics().snapshot();
        assert_eq!(m.batches_flushed, 1);
        assert_eq!(m.items_flushed, 2);
        assert_eq!(m.items_replayed, 2);
    }

    #[test]
    fn survives_via_arc_like_a_disk() {
        let log = GlobalLog::new();
        log.force_commit(CommitBatch { txn: TxnId(1), items: vec![item(0, 5)] });
        let survivor = Arc::clone(&log);
        drop(log);
        assert_eq!(survivor.len(), 1);
    }
}
