//! # rh-eos
//!
//! A NO-UNDO/REDO engine in the style of **EOS** (Biliris & Panagos),
//! with delegation implemented as sketched in the paper's §3.7.
//!
//! The contrast with ARIES/RH:
//!
//! * EOS "avoids applying ... changes until the transaction that made them
//!   is ready to commit": updates accumulate in a **private log** per
//!   transaction; the database proper only ever contains committed state,
//!   so recovery never undoes anything.
//! * A **global log** records only commits — each commit appends the
//!   committing transaction's (filtered) private log. Recovery is "a
//!   single forward sweep of the global log".
//! * `delegate(t1, t2, ob)`: t1's private entries for `ob` move into t2's
//!   private log as part of a delegation record. For pure writes this is
//!   the paper's "image of the current state of the object at the time of
//!   the delegation"; we additionally carry `Add` deltas, which is sound
//!   because adds commute (the very situation §3.7 raises as the hard
//!   case for private logs is only hard for *non-commutative* compatible
//!   operations, which this engine does not support).
//! * "The delegator filters out updates it has delegated when it comes
//!   time to commit" — we filter at delegation time, which is equivalent
//!   (the moved entries can never reappear in the delegator's log).
//!
//! [`engine::EosDb`] implements the same [`rh_core::TxnEngine`] trait as
//! the ARIES engines, so the oracle-equivalence suite and the workload
//! driver run against it unchanged.

pub mod engine;
pub mod global;
pub mod private;

pub use engine::EosDb;
pub use global::{EosMetrics, GlobalLog};
pub use private::{PrivateEntry, PrivateLog};
