//! The EOS engine: deferred updates, commits-only global log, redo-only
//! recovery, and §3.7 delegation.

use crate::global::{CommitBatch, GlobalLog};
use crate::private::{PrivateEntry, PrivateLog};
use rh_common::ops::Value;
use rh_common::{ObjectId, Result, RhError, TxnId};
use rh_core::TxnEngine;
use rh_lock::{LockManager, LockMode};
use std::collections::HashMap;
use std::sync::Arc;

/// A NO-UNDO/REDO database with delegation.
///
/// Volatile state: the private logs, the committed-value cache, the lock
/// table, and the sequence counter. Stable state: the [`GlobalLog`] only.
/// A crash therefore loses every active transaction outright (they are
/// all losers, with nothing to undo) and recovery is a single forward
/// sweep reapplying committed batches.
pub struct EosDb {
    global: Arc<GlobalLog>,
    /// Committed values (cache of the sweep; authoritative between
    /// crashes because commits apply through it).
    committed: HashMap<ObjectId, Value>,
    /// Active transactions' private logs.
    txns: HashMap<TxnId, PrivateLog>,
    locks: Arc<LockManager>,
    next_txn: u64,
    next_seq: u64,
}

impl EosDb {
    /// Creates a fresh database.
    pub fn new() -> Self {
        EosDb {
            global: GlobalLog::new(),
            committed: HashMap::new(),
            txns: HashMap::new(),
            locks: Arc::new(LockManager::new()),
            next_txn: 0,
            next_seq: 0,
        }
    }

    /// The stable global log (metrics; crash handling).
    pub fn global(&self) -> &Arc<GlobalLog> {
        &self.global
    }

    /// Compacts the global log into the stable snapshot (EOS's
    /// checkpoint/truncation analogue); recovery afterwards replays only
    /// batches committed since. Returns the number of batches folded in.
    pub fn compact(&mut self) -> usize {
        self.global.compact()
    }

    /// Simulates a crash: only the global log survives.
    pub fn crash(self) -> Arc<GlobalLog> {
        for log in self.txns.values() {
            self.global.metrics().discarded(log.len() as u64);
        }
        self.global
    }

    /// "Recovery is simple, because we only need to redo the winner
    /// updates" — one forward sweep of the global log.
    pub fn recover(global: Arc<GlobalLog>) -> Self {
        // Start from the stable snapshot (if any compaction happened),
        // then replay the batches committed since.
        let mut committed: HashMap<rh_common::ObjectId, rh_common::ops::Value> =
            global.snapshot_state();
        let mut next_txn = 0u64;
        let mut next_seq = 0u64;
        for batch in global.sweep() {
            next_txn = next_txn.max(batch.txn.raw() + 1);
            for item in batch.items {
                let cur = committed.get(&item.ob).copied().unwrap_or(0);
                committed.insert(item.ob, item.entry.apply(cur));
                next_seq = next_seq.max(item.seq + 1);
            }
        }
        EosDb {
            global,
            committed,
            txns: HashMap::new(),
            locks: Arc::new(LockManager::new()),
            next_txn,
            next_seq,
        }
    }

    fn committed_value(&self, ob: ObjectId) -> Value {
        self.committed.get(&ob).copied().unwrap_or(0)
    }

    fn log_of(&mut self, txn: TxnId) -> Result<&mut PrivateLog> {
        self.txns.get_mut(&txn).ok_or(RhError::UnknownTxn(txn))
    }
}

impl Default for EosDb {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnEngine for EosDb {
    fn begin(&mut self) -> Result<TxnId> {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        self.txns.insert(txn, PrivateLog::new());
        Ok(txn)
    }

    fn read(&mut self, txn: TxnId, ob: ObjectId) -> Result<Value> {
        self.locks.try_acquire(txn, ob, LockMode::Shared)?;
        let base = self.committed_value(ob);
        Ok(self.log_of(txn)?.view(ob, base))
    }

    fn write(&mut self, txn: TxnId, ob: ObjectId, value: Value) -> Result<()> {
        self.txns.get(&txn).ok_or(RhError::UnknownTxn(txn))?;
        self.locks.try_acquire(txn, ob, LockMode::Exclusive)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log_of(txn)?.push_own(seq, ob, PrivateEntry::Image(value));
        Ok(())
    }

    fn add(&mut self, txn: TxnId, ob: ObjectId, delta: Value) -> Result<()> {
        self.txns.get(&txn).ok_or(RhError::UnknownTxn(txn))?;
        self.locks.try_acquire(txn, ob, LockMode::Increment)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log_of(txn)?.push_own(seq, ob, PrivateEntry::Delta(delta));
        Ok(())
    }

    fn delegate(&mut self, tor: TxnId, tee: TxnId, obs: &[ObjectId]) -> Result<()> {
        if tor == tee {
            return Err(RhError::SelfDelegation(tor));
        }
        if !self.txns.contains_key(&tee) {
            return Err(RhError::UnknownTxn(tee));
        }
        // Well-formedness: the delegator must hold deferred updates on
        // each object (its EOS Op_List).
        {
            let tor_log = self.txns.get(&tor).ok_or(RhError::UnknownTxn(tor))?;
            for &ob in obs {
                if !tor_log.touches(ob) {
                    return Err(RhError::NotResponsible { txn: tor, object: ob });
                }
            }
        }
        // "Supporting delegation in EOS entails logging the delegation
        // both at the delegator and the delegatee": the delegator's side
        // is the filtering (extract), the delegatee's side the received
        // items carrying the object images/deltas and their provenance.
        for &ob in obs {
            let moved = self.txns.get_mut(&tor).expect("checked").extract(ob);
            self.txns.get_mut(&tee).expect("checked").receive(tor, moved);
            self.locks.transfer(tor, tee, ob);
        }
        Ok(())
    }

    fn delegate_all(&mut self, tor: TxnId, tee: TxnId) -> Result<()> {
        if tor == tee {
            return Err(RhError::SelfDelegation(tor));
        }
        if !self.txns.contains_key(&tee) {
            return Err(RhError::UnknownTxn(tee));
        }
        let obs = self.txns.get(&tor).ok_or(RhError::UnknownTxn(tor))?.objects();
        if !obs.is_empty() {
            self.delegate(tor, tee, &obs)?;
        }
        // Delegating everything passes *all* access rights, including
        // locks on objects with no live deferred update (reads; updates
        // discarded by a partial rollback) — matching the ARIES engines.
        self.locks.transfer_all(tor, tee);
        Ok(())
    }

    fn commit(&mut self, txn: TxnId) -> Result<()> {
        let log = self.txns.remove(&txn).ok_or(RhError::UnknownTxn(txn))?;
        // Flush the (already delegation-filtered) private log to the
        // global log, then apply it to the database. The force is the
        // commit point.
        let items = log.items().to_vec();
        self.global.force_commit(CommitBatch { txn, items: items.clone() });
        for item in items {
            let cur = self.committed_value(item.ob);
            self.committed.insert(item.ob, item.entry.apply(cur));
        }
        self.locks.release_all(txn);
        Ok(())
    }

    fn abort(&mut self, txn: TxnId) -> Result<()> {
        // "If it aborts, its private log is discarded" — no undo exists
        // because nothing was applied.
        let log = self.txns.remove(&txn).ok_or(RhError::UnknownTxn(txn))?;
        self.global.metrics().discarded(log.len() as u64);
        self.locks.release_all(txn);
        Ok(())
    }

    fn savepoint(&mut self, txn: TxnId) -> Result<u64> {
        if !self.txns.contains_key(&txn) {
            return Err(RhError::UnknownTxn(txn));
        }
        Ok(self.next_seq)
    }

    fn rollback_to(&mut self, txn: TxnId, token: u64) -> Result<()> {
        // Positional semantics match ARIES/RH: deferred updates whose
        // *invocation* (seq stamp) is at/after the savepoint are
        // discarded — items received by delegation keep their original
        // stamps, so older delegated-in work survives, exactly like
        // LSN-based partial rollback.
        let log = self.txns.get_mut(&txn).ok_or(RhError::UnknownTxn(txn))?;
        let before = log.len() as u64;
        log.retain_before(token);
        self.global.metrics().discarded(before - log.len() as u64);
        Ok(())
    }

    fn permit(&mut self, granter: TxnId, permittee: TxnId, ob: ObjectId) -> Result<()> {
        if !self.txns.contains_key(&granter) {
            return Err(RhError::UnknownTxn(granter));
        }
        if !self.txns.contains_key(&permittee) {
            return Err(RhError::UnknownTxn(permittee));
        }
        self.locks.permit(granter, permittee, ob);
        Ok(())
    }

    fn crash_and_recover(self) -> Result<Self> {
        Ok(Self::recover(self.crash()))
    }

    fn value_of(&mut self, ob: ObjectId) -> Result<Value> {
        // The "current value" an in-place engine would show: committed
        // base plus all live deferred updates for `ob`, across every
        // private log, in invocation order (the seq stamps).
        let mut pending: Vec<(u64, PrivateEntry)> = self
            .txns
            .values()
            .flat_map(|log| log.items().iter().filter(|i| i.ob == ob).map(|i| (i.seq, i.entry)))
            .collect();
        pending.sort_by_key(|&(seq, _)| seq);
        let mut v = self.committed_value(ob);
        for (_, entry) in pending {
            v = entry.apply(v);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ObjectId = ObjectId(0);
    const B: ObjectId = ObjectId(1);

    #[test]
    fn deferred_writes_invisible_until_commit() {
        let mut db = EosDb::new();
        let t = db.begin().unwrap();
        db.write(t, A, 5).unwrap();
        // Another transaction (no lock conflict via fresh reader after
        // release? use committed view directly):
        assert_eq!(db.committed_value(A), 0);
        db.commit(t).unwrap();
        assert_eq!(db.committed_value(A), 5);
    }

    #[test]
    fn read_your_own_deferred_write() {
        let mut db = EosDb::new();
        let t = db.begin().unwrap();
        db.write(t, A, 5).unwrap();
        db.add(t, A, 2).unwrap();
        assert_eq!(db.read(t, A).unwrap(), 7);
    }

    #[test]
    fn abort_discards_private_log() {
        let mut db = EosDb::new();
        let t = db.begin().unwrap();
        db.write(t, A, 5).unwrap();
        db.abort(t).unwrap();
        assert_eq!(db.committed_value(A), 0);
        assert_eq!(db.global().metrics().snapshot().items_discarded, 1);
    }

    #[test]
    fn crash_loses_active_keeps_committed() {
        let mut db = EosDb::new();
        let t1 = db.begin().unwrap();
        db.write(t1, A, 5).unwrap();
        db.commit(t1).unwrap();
        let t2 = db.begin().unwrap();
        db.write(t2, B, 9).unwrap();
        let mut db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(A).unwrap(), 5);
        assert_eq!(db.value_of(B).unwrap(), 0);
    }

    #[test]
    fn delegated_updates_survive_delegator_abort() {
        let mut db = EosDb::new();
        let t1 = db.begin().unwrap();
        let t2 = db.begin().unwrap();
        db.write(t1, A, 7).unwrap();
        db.delegate(t1, t2, &[A]).unwrap();
        db.abort(t1).unwrap();
        db.commit(t2).unwrap();
        assert_eq!(db.value_of(A).unwrap(), 7);
    }

    #[test]
    fn delegated_updates_not_committed_by_delegator() {
        // "The delegator filters out updates it has delegated when it
        // comes time to commit."
        let mut db = EosDb::new();
        let t1 = db.begin().unwrap();
        let t2 = db.begin().unwrap();
        db.write(t1, A, 7).unwrap();
        db.delegate(t1, t2, &[A]).unwrap();
        db.commit(t1).unwrap(); // must not publish A=7
        assert_eq!(db.committed_value(A), 0);
        db.abort(t2).unwrap();
        assert_eq!(db.value_of(A).unwrap(), 0);
    }

    #[test]
    fn winner_delegatee_survives_crash() {
        let mut db = EosDb::new();
        let t1 = db.begin().unwrap();
        let t2 = db.begin().unwrap();
        db.write(t1, A, 7).unwrap();
        db.delegate(t1, t2, &[A]).unwrap();
        db.commit(t2).unwrap();
        // t1 still active at crash — irrelevant to A.
        let mut db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(A).unwrap(), 7);
    }

    #[test]
    fn delegation_requires_responsibility() {
        let mut db = EosDb::new();
        let t1 = db.begin().unwrap();
        let t2 = db.begin().unwrap();
        assert_eq!(db.delegate(t1, t2, &[A]), Err(RhError::NotResponsible { txn: t1, object: A }));
    }

    #[test]
    fn concurrent_adds_merge_across_private_logs() {
        let mut db = EosDb::new();
        let t1 = db.begin().unwrap();
        let t2 = db.begin().unwrap();
        db.add(t1, A, 5).unwrap();
        db.add(t2, A, 3).unwrap();
        db.commit(t2).unwrap();
        db.commit(t1).unwrap();
        assert_eq!(db.value_of(A).unwrap(), 8);
    }

    #[test]
    fn value_of_reconstructs_in_place_order() {
        // Two active adders: value_of must show the in-place current
        // value even though nothing is committed.
        let mut db = EosDb::new();
        let t1 = db.begin().unwrap();
        let t2 = db.begin().unwrap();
        db.add(t1, A, 5).unwrap();
        db.add(t2, A, 3).unwrap();
        assert_eq!(db.value_of(A).unwrap(), 8);
    }

    #[test]
    fn recovery_is_pure_redo() {
        let mut db = EosDb::new();
        for i in 0..10 {
            let t = db.begin().unwrap();
            db.add(t, A, i).unwrap();
            db.commit(t).unwrap();
        }
        let mut db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(A).unwrap(), 45);
        let m = db.global().metrics().snapshot();
        assert_eq!(m.items_replayed, 10);
    }
}
// (Additional compaction tests live outside the main test module to keep
// diffs readable.)
#[cfg(test)]
mod compaction_tests {
    use super::*;

    const A: ObjectId = ObjectId(0);
    const B: ObjectId = ObjectId(1);

    #[test]
    fn compaction_preserves_state_and_empties_log() {
        let mut db = EosDb::new();
        for i in 0..10 {
            let t = db.begin().unwrap();
            db.add(t, A, i).unwrap();
            db.commit(t).unwrap();
        }
        assert_eq!(db.global().len(), 10);
        assert_eq!(db.compact(), 10);
        assert_eq!(db.global().len(), 0);
        assert_eq!(db.value_of(A).unwrap(), 45);
    }

    #[test]
    fn recovery_after_compaction_starts_from_snapshot() {
        let mut db = EosDb::new();
        let t = db.begin().unwrap();
        db.write(t, A, 7).unwrap();
        db.commit(t).unwrap();
        db.compact();
        // Post-compaction work lands in the (now short) log.
        let t = db.begin().unwrap();
        db.add(t, B, 3).unwrap();
        db.commit(t).unwrap();
        let before = db.global().metrics().snapshot().items_replayed;
        let mut db = db.crash_and_recover().unwrap();
        let replayed = db.global().metrics().snapshot().items_replayed - before;
        assert_eq!(replayed, 1, "only the post-compaction batch replays");
        assert_eq!(db.value_of(A).unwrap(), 7);
        assert_eq!(db.value_of(B).unwrap(), 3);
    }

    #[test]
    fn repeated_compaction_and_crashes() {
        let mut db = EosDb::new();
        for round in 0..5 {
            let t = db.begin().unwrap();
            db.add(t, A, 1).unwrap();
            db.commit(t).unwrap();
            db.compact();
            db = db.crash_and_recover().unwrap();
            assert_eq!(db.value_of(A).unwrap(), round + 1);
        }
    }

    #[test]
    fn eos_rollback_discards_only_post_savepoint_items() {
        let mut db = EosDb::new();
        let t = db.begin().unwrap();
        db.add(t, A, 1).unwrap();
        let sp = db.savepoint(t).unwrap();
        db.add(t, A, 10).unwrap();
        db.add(t, B, 100).unwrap();
        db.rollback_to(t, sp).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.value_of(A).unwrap(), 1);
        assert_eq!(db.value_of(B).unwrap(), 0);
    }
}
