//! Per-transaction private logs.
//!
//! "To avoid having to undo changes in the database, EOS avoids applying
//! those changes until the transaction that made them is ready to commit.
//! This is achieved by keeping a global log, in which only transaction
//! commits are recorded, and per-transaction private logs" (§3.7).
//!
//! A private log is purely volatile: it dies with its transaction on
//! abort, and it dies with the machine on a crash — which is exactly why
//! EOS needs no undo.

use rh_common::ops::Value;
use rh_common::{ObjectId, TxnId};

/// One deferred update in a private log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateEntry {
    /// Overwrite the object with this after-image. The paper's
    /// read/write-restricted delegation ships exactly such images.
    Image(Value),
    /// Add a delta (commutative, so delegation can move it between
    /// private logs without reconstructing a global order).
    Delta(Value),
}

impl PrivateEntry {
    /// Applies this entry to a base value.
    #[inline]
    pub fn apply(&self, base: Value) -> Value {
        match *self {
            PrivateEntry::Image(v) => v,
            PrivateEntry::Delta(d) => base.wrapping_add(d),
        }
    }
}

/// Provenance of a private-log item: performed locally or received via a
/// delegation (recorded so delegation chains are auditable, mirroring the
/// paper's "delegate record" in the delegatee's log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Invoked by the owning transaction itself.
    Own,
    /// Received through `delegate` from the given transaction.
    DelegatedFrom(TxnId),
}

/// One item: an entry plus the object it targets and where it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivateItem {
    /// Global execution-order stamp, assigned by the engine when the
    /// update is invoked and preserved across delegations. Lets the
    /// engine reconstruct the in-place "current value" of an object from
    /// deferred updates scattered over several private logs.
    pub seq: u64,
    /// Target object.
    pub ob: ObjectId,
    /// The deferred update.
    pub entry: PrivateEntry,
    /// How it arrived in this log.
    pub provenance: Provenance,
}

/// A transaction's private log: deferred updates in execution order.
#[derive(Debug, Clone, Default)]
pub struct PrivateLog {
    items: Vec<PrivateItem>,
}

impl PrivateLog {
    /// Creates an empty private log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a local update stamped with the global sequence number.
    pub fn push_own(&mut self, seq: u64, ob: ObjectId, entry: PrivateEntry) {
        self.items.push(PrivateItem { seq, ob, entry, provenance: Provenance::Own });
    }

    /// The transaction's view of `ob`: the committed `base` with this
    /// log's entries for `ob` applied in order.
    pub fn view(&self, ob: ObjectId, base: Value) -> Value {
        self.items.iter().filter(|i| i.ob == ob).fold(base, |v, i| i.entry.apply(v))
    }

    /// True if this log holds at least one entry for `ob` — the EOS
    /// analogue of `ob ∈ Ob_List(t)`.
    pub fn touches(&self, ob: ObjectId) -> bool {
        self.items.iter().any(|i| i.ob == ob)
    }

    /// Objects this log has entries for (delegation-all needs them).
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut obs: Vec<ObjectId> = self.items.iter().map(|i| i.ob).collect();
        obs.sort();
        obs.dedup();
        obs
    }

    /// Removes and returns all entries for `ob`, in order — the
    /// delegator's "filter out updates it has delegated".
    pub fn extract(&mut self, ob: ObjectId) -> Vec<PrivateItem> {
        let (taken, kept): (Vec<_>, Vec<_>) = self.items.drain(..).partition(|i| i.ob == ob);
        self.items = kept;
        taken
    }

    /// Appends items received through a delegation from `from`, stamping
    /// their provenance.
    pub fn receive(&mut self, from: TxnId, items: Vec<PrivateItem>) {
        for mut item in items {
            item.provenance = Provenance::DelegatedFrom(from);
            self.items.push(item);
        }
    }

    /// Drops every item whose seq stamp is `>= token` (partial
    /// rollback): trivial in a NO-UNDO engine — the updates were never
    /// applied, so discarding the deferred entries *is* the rollback.
    pub fn retain_before(&mut self, token: u64) {
        self.items.retain(|i| i.seq < token);
    }

    /// All items in order (consumed at commit).
    pub fn items(&self) -> &[PrivateItem] {
        &self.items
    }

    /// Number of deferred updates held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no deferred updates are held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ObjectId = ObjectId(0);
    const B: ObjectId = ObjectId(1);

    #[test]
    fn view_applies_entries_in_order() {
        let mut log = PrivateLog::new();
        log.push_own(0, A, PrivateEntry::Image(10));
        log.push_own(1, A, PrivateEntry::Delta(5));
        assert_eq!(log.view(A, 999), 15); // image overrides base
        assert_eq!(log.view(B, 7), 7); // untouched object
    }

    #[test]
    fn delta_only_view_depends_on_base() {
        let mut log = PrivateLog::new();
        log.push_own(0, A, PrivateEntry::Delta(3));
        assert_eq!(log.view(A, 10), 13);
    }

    #[test]
    fn extract_filters_object() {
        let mut log = PrivateLog::new();
        log.push_own(0, A, PrivateEntry::Delta(1));
        log.push_own(1, B, PrivateEntry::Delta(2));
        log.push_own(2, A, PrivateEntry::Delta(3));
        let taken = log.extract(A);
        assert_eq!(taken.len(), 2);
        assert!(!log.touches(A));
        assert!(log.touches(B));
    }

    #[test]
    fn receive_stamps_provenance_and_preserves_order() {
        let mut tor = PrivateLog::new();
        tor.push_own(0, A, PrivateEntry::Image(5));
        tor.push_own(1, A, PrivateEntry::Delta(2));
        let mut tee = PrivateLog::new();
        tee.receive(TxnId(1), tor.extract(A));
        assert_eq!(tee.view(A, 0), 7);
        assert!(tee.items().iter().all(|i| i.provenance == Provenance::DelegatedFrom(TxnId(1))));
    }

    #[test]
    fn objects_are_sorted_and_deduped() {
        let mut log = PrivateLog::new();
        log.push_own(0, B, PrivateEntry::Delta(1));
        log.push_own(1, A, PrivateEntry::Delta(1));
        log.push_own(2, B, PrivateEntry::Delta(1));
        assert_eq!(log.objects(), vec![A, B]);
    }
}
