//! Wire-level tests of the sharded backend: the full op surface routed
//! by object id, cross-shard transactions (including the delegation
//! idiom) committing through 2PC, error codes surviving the routing
//! layer, and the sharded drain.
//!
//! Uses routing shift 0 so `ObjectId(k)` lands on shard `k % 2` — every
//! test can place objects on specific shards by parity.

use rh_common::codec::Codec;
use rh_common::{ObjectId, TxnId};
use rh_core::engine::Strategy;
use rh_core::sharded::ShardedDb;
use rh_server::wire::{self, errcode, Hello, Op, Reply, ReplyBody, Request, Response};
use rh_server::{Server, ServerConfig};
use std::net::{SocketAddr, TcpStream};

/// Shard 0 and shard 1 residents under `% 2` routing.
const EVEN: ObjectId = ObjectId(10);
const ODD: ObjectId = ObjectId(11);

fn mem_sharded(cfg: ServerConfig) -> Server {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    Server::bind_sharded("127.0.0.1:0", db, cfg).expect("bind")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let payload = wire::read_frame(&mut stream).expect("hello frame").expect("hello present");
    let hello = Hello::from_bytes(&payload).expect("hello decodes");
    assert!(hello.accepted, "expected admission");
    stream
}

fn call(stream: &mut TcpStream, id: u64, op: Op) -> Reply {
    wire::write_frame(stream, &Request { id, trace: wire::NO_TRACE, op }.to_bytes()).expect("send");
    let payload = wire::read_frame(stream).expect("reply frame").expect("reply present");
    let resp = Response::from_bytes(&payload).expect("reply decodes");
    assert_eq!(resp.id, id, "reply correlation");
    resp.reply
}

fn ok_txn(reply: Reply) -> TxnId {
    match reply {
        Reply::Ok(ReplyBody::Txn(t)) => t,
        other => panic!("expected txn reply, got {other:?}"),
    }
}

fn ok_value(reply: Reply) -> i64 {
    match reply {
        Reply::Ok(ReplyBody::Value(v)) => v,
        other => panic!("expected value reply, got {other:?}"),
    }
}

fn stats_counter(c: &mut TcpStream, id: u64, name: &str) -> u64 {
    let json = match call(c, id, Op::Stats) {
        Reply::Ok(ReplyBody::Json(s)) => s,
        other => panic!("expected stats json, got {other:?}"),
    };
    let parsed = rh_obs::json::parse(&json).expect("stats parse");
    parsed
        .get("counters")
        .and_then(|cs| cs.get(name))
        .and_then(rh_obs::JsonValue::as_u64)
        .unwrap_or(0)
}

#[test]
fn cross_shard_ops_route_and_commit_through_2pc() {
    let server = mem_sharded(ServerConfig::default());
    let mut c = connect(server.local_addr());
    let mut id = 0u64;
    let mut next = || {
        id += 1;
        id
    };

    // One transaction spanning both shards, with reads, a savepoint
    // rollback, and adds crossing the boundary.
    let t = ok_txn(call(&mut c, next(), Op::Begin));
    assert_eq!(call(&mut c, next(), Op::Write(t, EVEN, 40)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Write(t, ODD, 7)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Add(t, EVEN, 2)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut c, next(), Op::Read(t, EVEN))), 42);
    assert_eq!(ok_value(call(&mut c, next(), Op::Read(t, ODD))), 7);
    let token = match call(&mut c, next(), Op::Savepoint(t)) {
        Reply::Ok(ReplyBody::Token(tok)) => tok,
        other => panic!("expected token, got {other:?}"),
    };
    assert_eq!(call(&mut c, next(), Op::Write(t, ODD, -1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::RollbackTo(t, token)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut c, next(), Op::Read(t, ODD))), 7);
    assert_eq!(call(&mut c, next(), Op::Commit(t)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut c, next(), Op::ValueOf(EVEN))), 42);
    assert_eq!(ok_value(call(&mut c, next(), Op::ValueOf(ODD))), 7);

    // The delegation idiom across the shard boundary: t1 writes on both
    // shards, t2 takes responsibility for both, t1 aborts, t2 commits.
    let t1 = ok_txn(call(&mut c, next(), Op::Begin));
    let t2 = ok_txn(call(&mut c, next(), Op::Begin));
    let (a, b) = (ObjectId(20), ObjectId(21));
    assert_eq!(call(&mut c, next(), Op::Write(t1, a, 8)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Write(t1, b, 9)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Delegate(t1, t2, vec![a, b])), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Abort(t1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Commit(t2)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut c, next(), Op::ValueOf(a))), 8);
    assert_eq!(ok_value(call(&mut c, next(), Op::ValueOf(b))), 9);

    // Three transactions went cross-shard (t, t1, t2) but t1 aborted:
    // two 2PC rounds, one non-coordinator prepare each.
    assert_eq!(stats_counter(&mut c, next(), "shard.cross.txns"), 3);
    assert_eq!(stats_counter(&mut c, next(), "shard.twopc.commits"), 2);
    assert_eq!(stats_counter(&mut c, next(), "shard.twopc.prepares"), 2);

    let _db = server.shutdown_sharded().expect("drain");
}

#[test]
fn engine_errors_survive_the_routing_layer() {
    let server = mem_sharded(ServerConfig::default());
    let mut a = connect(server.local_addr());

    let ta = ok_txn(call(&mut a, 1, Op::Begin));
    // Unknown transaction id, on the 2PC commit path.
    match call(&mut a, 2, Op::Commit(TxnId(9999))) {
        Reply::Err { code, .. } => assert_eq!(code, errcode::UNKNOWN_TXN),
        other => panic!("expected unknown txn, got {other:?}"),
    }
    // Self-delegation is rejected before any shard is touched.
    match call(&mut a, 3, Op::Delegate(ta, ta, vec![EVEN])) {
        Reply::Err { code, .. } => assert_eq!(code, errcode::SELF_DELEGATION),
        other => panic!("expected self-delegation error, got {other:?}"),
    }
    // Delegating an object the delegator is not responsible for fails
    // atomically even when the batch spans shards.
    let tb = ok_txn(call(&mut a, 4, Op::Begin));
    assert_eq!(call(&mut a, 5, Op::Write(ta, EVEN, 5)), Reply::Ok(ReplyBody::Unit));
    match call(&mut a, 6, Op::Delegate(ta, tb, vec![EVEN, ODD])) {
        Reply::Err { .. } => {}
        other => panic!("expected delegation failure, got {other:?}"),
    }
    assert_eq!(call(&mut a, 7, Op::Abort(ta)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut a, 8, Op::Abort(tb)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut a, 9, Op::ValueOf(EVEN))), 0);

    let _db = server.shutdown_sharded().expect("drain");
}

#[test]
fn sharded_drain_aborts_open_txns_and_checkpoints_every_shard() {
    let server = mem_sharded(ServerConfig::default());
    let mut c = connect(server.local_addr());
    let t = ok_txn(call(&mut c, 1, Op::Begin));
    assert_eq!(call(&mut c, 2, Op::Write(t, EVEN, 77)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, 3, Op::Write(t, ODD, 78)), Reply::Ok(ReplyBody::Unit));
    // No commit: the drain must abort this cross-shard transaction.
    let db = server.shutdown_sharded().expect("drain");
    assert_eq!(db.value_of(EVEN).expect("value"), 0, "uncommitted write must be undone");
    assert_eq!(db.value_of(ODD).expect("value"), 0);
    let stats = db.stats();
    assert_eq!(stats.counter("server.drains"), 1);
    assert!(stats.counter("server.txns.aborted_on_close") >= 1);
    for k in 0..db.shard_count() {
        let log = db.shard_log(k).expect("shard log");
        assert!(!log.stable().master().is_null(), "shard {k} must checkpoint on drain");
    }
}

#[test]
fn single_shard_sessions_keep_the_fast_path() {
    let server = mem_sharded(ServerConfig::default());
    let mut c = connect(server.local_addr());
    let t = ok_txn(call(&mut c, 1, Op::Begin));
    assert_eq!(call(&mut c, 2, Op::Write(t, EVEN, 1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, 3, Op::Add(t, ObjectId(12), 2)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, 4, Op::Commit(t)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(stats_counter(&mut c, 5, "shard.cross.txns"), 0);
    assert_eq!(stats_counter(&mut c, 6, "shard.twopc.prepares"), 0);
    assert_eq!(stats_counter(&mut c, 7, "server.commits"), 1);
    let _db = server.shutdown_sharded().expect("drain");
}
