//! Wire-level tests of log shipping, read replicas, and failover:
//!
//! * a replica follows a primary over the v4 subscription stream and
//!   serves staleness-bounded reads under the contract — block until
//!   the bound is applied, or refuse with `REPL_LAGGING`, never serve
//!   staler;
//! * a bounced primary is re-dialed and the stream resumes from the
//!   replica's applied watermark (no re-seed);
//! * a kill-9'd primary mid-cross-shard-delegation is failed over by
//!   promoting the replica, and the promoted engine satisfies the
//!   acked-effects oracle: acked commits exact, unacked staged work
//!   rolled back, pre-crash provenance and history intact.

use rh_common::codec::Codec;
use rh_common::{Lsn, ObjectId, TxnId};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::replica::{PromotedDb, ReplicaSet};
use rh_core::sharded::ShardedDb;
use rh_server::wire::{self, errcode, Hello, Op, Reply, ReplyBody, Request, Response};
use rh_server::{ReplRegistry, ReplicaRunner, RunnerConfig, Server, ServerConfig};
use rh_storage::Disk;
use rh_wal::StableLog;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-repl-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn connect(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let payload = wire::read_frame(&mut stream).expect("hello frame").expect("hello present");
    let hello = Hello::from_bytes(&payload).expect("hello decodes");
    assert!(hello.accepted, "expected admission");
    stream
}

fn call(stream: &mut TcpStream, id: u64, op: Op) -> Reply {
    wire::write_frame(stream, &Request { id, trace: wire::NO_TRACE, op }.to_bytes()).expect("send");
    let payload = wire::read_frame(stream).expect("reply frame").expect("reply present");
    let resp = Response::from_bytes(&payload).expect("reply decodes");
    assert_eq!(resp.id, id, "reply correlation");
    resp.reply
}

fn ok_txn(reply: Reply) -> TxnId {
    match reply {
        Reply::Ok(ReplyBody::Txn(t)) => t,
        other => panic!("expected txn reply, got {other:?}"),
    }
}

fn ok_value(reply: Reply) -> i64 {
    match reply {
        Reply::Ok(ReplyBody::Value(v)) => v,
        other => panic!("expected value reply, got {other:?}"),
    }
}

fn ok_token(reply: Reply) -> u64 {
    match reply {
        Reply::Ok(ReplyBody::Token(t)) => t,
        other => panic!("expected token reply, got {other:?}"),
    }
}

/// A fast-failover runner config for tests.
fn quick_runner(max_failures: Option<u32>) -> RunnerConfig {
    RunnerConfig {
        ack_every: 4,
        heartbeat_grace: Duration::from_millis(800),
        reconnect_backoff: Duration::from_millis(50),
        max_reconnect_failures: max_failures,
    }
}

/// Polls `probe` until it returns true or ~`secs` seconds elapse.
fn wait_until(secs: u64, mut probe: impl FnMut() -> bool) -> bool {
    for _ in 0..secs * 50 {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn replica_follows_and_enforces_the_staleness_contract() {
    let primary = Server::bind("127.0.0.1:0", RhDb::new(Strategy::Rh), ServerConfig::default())
        .expect("bind primary");
    let set = Arc::new(ReplicaSet::new_mem(Strategy::Rh, 1, 0));
    let registry = Arc::new(ReplRegistry::new());
    let runner = ReplicaRunner::start(
        Arc::clone(&set),
        Arc::clone(&registry),
        primary.local_addr().to_string(),
        quick_runner(None),
    );
    let replica_cfg =
        ServerConfig { staleness_deadline: Duration::from_millis(600), ..ServerConfig::default() };
    let replica = Server::bind_replica("127.0.0.1:0", Arc::clone(&set), replica_cfg, registry)
        .expect("bind replica");

    let ob = ObjectId(7);
    let mut p = connect(primary.local_addr());
    let t = ok_txn(call(&mut p, 1, Op::Begin));
    assert_eq!(call(&mut p, 2, Op::Write(t, ob, 42)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut p, 3, Op::Commit(t)), Reply::Ok(ReplyBody::Unit));
    // The commit acked, so the durable watermark covers it.
    let bound = ok_token(call(&mut p, 4, Op::Durable(ob)));
    assert!(bound > 0);

    // Read-your-writes across nodes: the bounded read either waits for
    // the stream to apply through `bound` or refuses — here it must
    // succeed well within the deadline, and must serve the acked value.
    let mut r = connect(replica.local_addr());
    assert_eq!(ok_value(call(&mut r, 1, Op::ValueOfMin(ob, Lsn(bound)))), 42);
    // The replica's own durable probe now reports at least the bound.
    assert!(ok_token(call(&mut r, 2, Op::Durable(ob))) >= bound);
    // Plain reads work too.
    assert_eq!(ok_value(call(&mut r, 3, Op::ValueOf(ob))), 42);

    // A bound the primary never wrote: the replica parks until its
    // deadline, then refuses with the dedicated class — it never
    // answers with a staler value.
    match call(&mut r, 4, Op::ValueOfMin(ob, Lsn(bound + 1_000))) {
        Reply::Err { code, .. } => assert_eq!(code, errcode::REPL_LAGGING),
        other => panic!("expected REPL_LAGGING, got {other:?}"),
    }

    // Writes are refused: the replica is read-only.
    match call(&mut r, 5, Op::Begin) {
        Reply::Err { code, .. } => assert_eq!(code, errcode::PROTOCOL),
        other => panic!("expected read-only refusal, got {other:?}"),
    }

    // `/replication` accounting on the primary: one subscriber, and
    // once the heartbeat acks drain the tail, zero lag.
    let caught_up = wait_until(5, || {
        let doc = primary.repl_registry().to_json().render_pretty();
        let parsed = rh_obs::json::parse(&doc).expect("repl json");
        let subs = parsed.get("subscribers").and_then(rh_obs::JsonValue::as_arr).unwrap();
        subs.len() == 1
            && subs[0].get("lag_frames").and_then(rh_obs::JsonValue::as_u64) == Some(0)
            && subs[0].get("shipped_lsn").and_then(rh_obs::JsonValue::as_u64) >= Some(bound)
    });
    assert!(caught_up, "primary registry never showed a caught-up subscriber");
    let doc = primary.repl_registry().to_json().render_pretty();
    assert!(doc.contains("\"schema\": \"repl.v1\""), "schema tag missing: {doc}");

    runner.stop();
    let _set = replica.shutdown_replica().expect("replica drain");
    let _db = primary.shutdown().expect("primary drain");
}

#[test]
fn bounced_primary_resumes_the_stream_without_reseeding() {
    let dir = scratch("bounce");
    let stable = StableLog::open_dir(&dir).expect("open dir");
    let primary = Server::bind(
        "127.0.0.1:0",
        RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable),
        ServerConfig::default(),
    )
    .expect("bind primary");
    let addr = primary.local_addr();

    let set = Arc::new(ReplicaSet::new_mem(Strategy::Rh, 1, 0));
    let registry = Arc::new(ReplRegistry::new());
    let runner = ReplicaRunner::start(
        Arc::clone(&set),
        Arc::clone(&registry),
        addr.to_string(),
        quick_runner(None), // retry forever: this replica outlives the bounce
    );

    let (ob1, ob2) = (ObjectId(1), ObjectId(2));
    let mut p = connect(addr);
    let t = ok_txn(call(&mut p, 1, Op::Begin));
    assert_eq!(call(&mut p, 2, Op::Write(t, ob1, 10)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut p, 3, Op::Commit(t)), Reply::Ok(ReplyBody::Unit));
    assert!(wait_until(5, || set.value_of(ob1).ok() == Some(10)), "replica never caught up");

    // Kill -9 the primary; the stream dies and the runner re-dials.
    primary.force_stop();

    // Crash-restart the primary on the SAME address from its surviving
    // log; the replica's subscription resumes from its own applied
    // watermark — the primary re-ships only the unapplied suffix.
    let stable = StableLog::open_dir(&dir).expect("reopen dir");
    assert!(!stable.is_empty());
    let db = RhDb::recover(Strategy::Rh, DbConfig::default(), stable, Disk::new())
        .expect("primary recovery");
    let primary =
        Server::bind(&addr.to_string(), db, ServerConfig::default()).expect("rebind primary");

    let mut p = connect(primary.local_addr());
    let t = ok_txn(call(&mut p, 1, Op::Begin));
    assert_eq!(call(&mut p, 2, Op::Write(t, ob2, 20)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut p, 3, Op::Commit(t)), Reply::Ok(ReplyBody::Unit));

    // Both the pre-bounce and post-bounce commits serve from the
    // replica. If the resumed stream had restarted from LSN 0, the
    // replica's continuity check would have refused every duplicate
    // frame and ob2 would never arrive.
    assert!(wait_until(10, || set.value_of(ob2).ok() == Some(20)), "resume never completed");
    assert_eq!(set.value_of(ob1).unwrap(), 10);
    let stats = set.stats();
    assert_eq!(stats.counter(rh_obs::names::M_REPL_APPLY_ERRORS), 0, "resume was not clean");

    // The bounce is visible in the replica's self-report.
    let doc = registry.to_json().render_pretty();
    let parsed = rh_obs::json::parse(&doc).expect("repl json");
    let streams = parsed.get("replica").and_then(rh_obs::JsonValue::as_arr).expect("replica arr");
    assert!(streams[0].get("reconnects").and_then(rh_obs::JsonValue::as_u64) >= Some(1));

    runner.stop();
    let _db = primary.shutdown().expect("drain");
}

/// Shard residents under `% 2` routing (shift 0).
const EVEN: ObjectId = ObjectId(10);
const ODD: ObjectId = ObjectId(11);

#[test]
fn kill9_mid_cross_shard_delegation_promote_satisfies_the_oracle() {
    let primary = Server::bind_sharded(
        "127.0.0.1:0",
        ShardedDb::new_mem(Strategy::Rh, 2, 0),
        ServerConfig::default(),
    )
    .expect("bind primary");
    let set = Arc::new(ReplicaSet::new_mem(Strategy::Rh, 2, 0));
    let registry = Arc::new(ReplRegistry::new());
    // Promote-on-failure budget: a few dead dials declare the source lost.
    let runner = ReplicaRunner::start(
        Arc::clone(&set),
        Arc::clone(&registry),
        primary.local_addr().to_string(),
        quick_runner(Some(3)),
    );

    let mut p = connect(primary.local_addr());
    let mut id = 0u64;
    let mut next = || {
        id += 1;
        id
    };

    // Acked cross-shard delegation: t2 takes responsibility for t1's
    // writes on both shards, t1 aborts, t2 commits through 2PC.
    let t1 = ok_txn(call(&mut p, next(), Op::Begin));
    let t2 = ok_txn(call(&mut p, next(), Op::Begin));
    assert_eq!(call(&mut p, next(), Op::Write(t1, EVEN, 7)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut p, next(), Op::Write(t1, ODD, 8)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(
        call(&mut p, next(), Op::Delegate(t1, t2, vec![EVEN, ODD])),
        Reply::Ok(ReplyBody::Unit)
    );
    assert_eq!(call(&mut p, next(), Op::Abort(t1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut p, next(), Op::Commit(t2)), Reply::Ok(ReplyBody::Unit));

    // A second cross-shard delegation is staged but never committed
    // when the primary dies: its updates and the delegate record are in
    // both logs' tails.
    let (stage_a, stage_b) = (ObjectId(20), ObjectId(21));
    let t3 = ok_txn(call(&mut p, next(), Op::Begin));
    let t4 = ok_txn(call(&mut p, next(), Op::Begin));
    assert_eq!(call(&mut p, next(), Op::Write(t3, stage_a, 666)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut p, next(), Op::Write(t3, stage_b, 667)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(
        call(&mut p, next(), Op::Delegate(t3, t4, vec![stage_a, stage_b])),
        Reply::Ok(ReplyBody::Unit)
    );

    // Marker commits on each shard force both logs, making the staged
    // records durable (prefix durability) — so they SHIP to the replica
    // before the crash, and promotion must roll them back.
    let (mark_e, mark_o) = (ObjectId(30), ObjectId(31));
    let m1 = ok_txn(call(&mut p, next(), Op::Begin));
    assert_eq!(call(&mut p, next(), Op::Write(m1, mark_e, 1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut p, next(), Op::Commit(m1)), Reply::Ok(ReplyBody::Unit));
    let m2 = ok_txn(call(&mut p, next(), Op::Begin));
    assert_eq!(call(&mut p, next(), Op::Write(m2, mark_o, 1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut p, next(), Op::Commit(m2)), Reply::Ok(ReplyBody::Unit));

    // Both shards' streams have applied through the markers (the staged
    // delegation precedes them in LSN order, so it arrived too).
    assert!(
        wait_until(5, || {
            set.value_of(mark_e).ok() == Some(1) && set.value_of(mark_o).ok() == Some(1)
        }),
        "replica never applied through the markers"
    );
    // Pre-crash provenance already serves from the replica.
    let chain = set.provenance(EVEN).expect("chain");
    assert_eq!((chain[0].from, chain[0].to), (t1, t2));

    // Kill -9: volatile state (including t3/t4's in-memory fate) is gone.
    primary.force_stop();

    // The runner exhausts its reconnect budget and flags the loss.
    assert!(wait_until(10, || runner.source_lost()), "source loss never detected");
    runner.stop();

    // Failover: promotion finishes the forward pass, undoes the staged
    // loser clusters, resolves in-doubt 2PC, and opens for writes.
    let promoted = set.promote().expect("promote");
    let db = match promoted {
        PromotedDb::Sharded(db) => *db,
        PromotedDb::Single(_) => panic!("two shards must promote to a sharded engine"),
    };

    // The acked-effects oracle: acked commits serve exactly; the
    // unacked staged delegation never had a decision record, so
    // presumed abort rolls it back to the base value.
    assert_eq!(db.value_of(EVEN).unwrap(), 7);
    assert_eq!(db.value_of(ODD).unwrap(), 8);
    assert_eq!(db.value_of(mark_e).unwrap(), 1);
    assert_eq!(db.value_of(mark_o).unwrap(), 1);
    assert_eq!(db.value_of(stage_a).unwrap(), 0, "staged loser write survived promotion");
    assert_eq!(db.value_of(stage_b).unwrap(), 0, "staged loser write survived promotion");

    // Pre-crash provenance and history survive promotion.
    let chain = db.provenance(EVEN);
    assert_eq!((chain[0].from, chain[0].to), (t1, t2));
    assert_eq!(db.read_as_of(EVEN, Lsn::NULL).unwrap(), 7);

    // The promoted engine is writable — this node is now the primary.
    let t = db.begin().unwrap();
    db.write(t, EVEN, 100).unwrap();
    db.write(t, ODD, 101).unwrap();
    db.commit(t).unwrap();
    assert_eq!(db.value_of(EVEN).unwrap(), 100);
    assert_eq!(db.value_of(ODD).unwrap(), 101);

    // And the consumed replica set refuses further reads.
    assert!(set.value_of(EVEN).is_err(), "promoted set must not serve replica reads");
}
