//! Wire-level tests of the server: hello/admission, the full op
//! surface, pipelined BUSY backpressure, idle timeouts, and the
//! drain-and-checkpoint shutdown — all through raw sockets, with no
//! client library in the loop.

use rh_common::codec::Codec;
use rh_common::{ObjectId, TxnId};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::TxnEngine;
use rh_server::wire::{self, errcode, Hello, Op, Reply, ReplyBody, Request, Response};
use rh_server::{Server, ServerConfig};
use rh_wal::StableLog;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-server-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mem_server(cfg: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", RhDb::new(Strategy::Rh), cfg).expect("bind")
}

/// Connects and consumes the hello, asserting admission.
fn connect(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let hello = read_hello(&mut stream);
    assert!(hello.accepted, "expected admission");
    assert!(hello.session > 0);
    stream
}

fn read_hello(stream: &mut TcpStream) -> Hello {
    let payload = wire::read_frame(stream).expect("hello frame").expect("hello present");
    Hello::from_bytes(&payload).expect("hello decodes")
}

/// One blocking round trip over a raw socket.
fn call(stream: &mut TcpStream, id: u64, op: Op) -> Reply {
    wire::write_frame(stream, &Request { id, trace: wire::NO_TRACE, op }.to_bytes()).expect("send");
    let payload = wire::read_frame(stream).expect("reply frame").expect("reply present");
    let resp = Response::from_bytes(&payload).expect("reply decodes");
    assert_eq!(resp.id, id, "reply correlation");
    resp.reply
}

fn ok_txn(reply: Reply) -> TxnId {
    match reply {
        Reply::Ok(ReplyBody::Txn(t)) => t,
        other => panic!("expected txn reply, got {other:?}"),
    }
}

fn ok_value(reply: Reply) -> i64 {
    match reply {
        Reply::Ok(ReplyBody::Value(v)) => v,
        other => panic!("expected value reply, got {other:?}"),
    }
}

#[test]
fn full_op_surface_round_trips() {
    let server = mem_server(ServerConfig::default());
    let mut c = connect(server.local_addr());
    let mut id = 0u64;
    let mut next = || {
        id += 1;
        id
    };

    assert_eq!(call(&mut c, next(), Op::Ping), Reply::Ok(ReplyBody::Unit));
    let t = ok_txn(call(&mut c, next(), Op::Begin));
    let ob = ObjectId(7);
    assert_eq!(call(&mut c, next(), Op::Write(t, ob, 40)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Add(t, ob, 2)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut c, next(), Op::Read(t, ob))), 42);

    // Savepoint, scribble, roll back: the scribble vanishes.
    let token = match call(&mut c, next(), Op::Savepoint(t)) {
        Reply::Ok(ReplyBody::Token(tok)) => tok,
        other => panic!("expected token, got {other:?}"),
    };
    assert_eq!(call(&mut c, next(), Op::Write(t, ob, -1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::RollbackTo(t, token)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut c, next(), Op::Read(t, ob))), 42);

    assert_eq!(call(&mut c, next(), Op::Commit(t)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut c, next(), Op::ValueOf(ob))), 42);

    // The delegation idiom over the wire: t1 writes, delegates to t2,
    // aborts; the write survives because responsibility moved.
    let t1 = ok_txn(call(&mut c, next(), Op::Begin));
    let t2 = ok_txn(call(&mut c, next(), Op::Begin));
    let ob2 = ObjectId(8);
    assert_eq!(call(&mut c, next(), Op::Write(t1, ob2, 9)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Delegate(t1, t2, vec![ob2])), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Abort(t1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, next(), Op::Commit(t2)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(ok_value(call(&mut c, next(), Op::ValueOf(ob2))), 9);

    let _db = server.shutdown().expect("drain");
}

#[test]
fn engine_errors_surface_with_stable_codes() {
    let server = mem_server(ServerConfig::default());
    let mut a = connect(server.local_addr());
    let mut b = connect(server.local_addr());

    let ta = ok_txn(call(&mut a, 1, Op::Begin));
    let tb = ok_txn(call(&mut b, 1, Op::Begin));
    let ob = ObjectId(1);
    assert_eq!(call(&mut a, 2, Op::Write(ta, ob, 5)), Reply::Ok(ReplyBody::Unit));
    // Cross-session conflict: fail-fast lock manager, typed wire error.
    match call(&mut b, 2, Op::Read(tb, ob)) {
        Reply::Err { code, message } => {
            assert_eq!(code, errcode::LOCK_CONFLICT, "message: {message}");
        }
        other => panic!("expected lock conflict, got {other:?}"),
    }
    // Unknown transaction id.
    match call(&mut a, 3, Op::Commit(TxnId(9999))) {
        Reply::Err { code, .. } => assert_eq!(code, errcode::UNKNOWN_TXN),
        other => panic!("expected unknown txn, got {other:?}"),
    }
    // Self-delegation is rejected, not executed.
    match call(&mut a, 4, Op::Delegate(ta, ta, vec![ob])) {
        Reply::Err { code, .. } => assert_eq!(code, errcode::SELF_DELEGATION),
        other => panic!("expected self-delegation error, got {other:?}"),
    }
    let _db = server.shutdown().expect("drain");
}

#[test]
fn admission_control_rejects_beyond_cap_and_frees_on_close() {
    let server = mem_server(ServerConfig { max_sessions: 1, ..ServerConfig::default() });
    let first = connect(server.local_addr());

    // Second connection: hello with accepted = false.
    let mut second = TcpStream::connect(server.local_addr()).expect("connect");
    let hello = read_hello(&mut second);
    assert!(!hello.accepted, "admission must reject session #2");

    // Close the first; its slot frees (deregistration is asynchronous).
    drop(first);
    let mut admitted = false;
    for _ in 0..200 {
        let mut retry = TcpStream::connect(server.local_addr()).expect("connect");
        if read_hello(&mut retry).accepted {
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(admitted, "slot must free after the first session closes");
    let _db = server.shutdown().expect("drain");
}

#[test]
fn pipelining_beyond_the_cap_earns_busy_not_queueing() {
    // File-backed log so commits carry a real fsync: the worker is
    // slower than the reader, which is what fills the pipeline.
    let dir = scratch("busy");
    let stable = StableLog::open_dir(&dir).expect("open dir");
    let db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
    let server = Server::bind(
        "127.0.0.1:0",
        db,
        ServerConfig { inflight_per_conn: 1, ..ServerConfig::default() },
    )
    .expect("bind");

    let mut c = connect(server.local_addr());
    // Fire a burst of begin+write+commit triples without reading a
    // single reply, far beyond the cap of 1.
    const BURST: u64 = 64;
    let mut sent = 0u64;
    for i in 0..BURST {
        let t = TxnId(0); // placeholder; Begin replies carry real ids but
                          // we only count reply dispositions here, so target
                          // a bogus txn: Err replies are fine for this test.
        let _ = t;
        wire::write_frame(
            &mut c,
            &Request { id: i + 1, trace: wire::NO_TRACE, op: Op::Ping }.to_bytes(),
        )
        .expect("send");
        sent += 1;
    }
    // Every request gets exactly one reply: OK or BUSY, never silence.
    let mut ok = 0u64;
    let mut busy = 0u64;
    for _ in 0..sent {
        let payload = wire::read_frame(&mut c).expect("frame").expect("reply");
        let resp = Response::from_bytes(&payload).expect("decode");
        match resp.reply {
            Reply::Ok(_) => ok += 1,
            Reply::Busy => busy += 1,
            Reply::Err { message, .. } => panic!("unexpected error: {message}"),
        }
    }
    assert_eq!(ok + busy, sent);
    assert!(ok >= 1, "the pipeline must make progress");
    assert!(busy >= 1, "a burst of {sent} against an in-flight cap of 1 must bounce something");
    let _db = server.shutdown().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_aborts_open_txns_checkpoints_and_returns_the_engine() {
    let server = mem_server(ServerConfig::default());
    let mut c = connect(server.local_addr());
    let t = ok_txn(call(&mut c, 1, Op::Begin));
    let ob = ObjectId(3);
    assert_eq!(call(&mut c, 2, Op::Write(t, ob, 77)), Reply::Ok(ReplyBody::Unit));
    // No commit: the drain must abort this transaction.
    let mut db = server.shutdown().expect("drain");
    assert_eq!(db.value_of(ob).expect("value"), 0, "uncommitted write must be undone");
    assert!(!db.log().stable().master().is_null(), "drain must checkpoint");
    let stats = db.stats();
    assert_eq!(stats.counter("server.drains"), 1);
    assert!(stats.counter("server.txns.aborted_on_close") >= 1);
    assert_eq!(stats.counter("server.sessions.active"), 0);
    db.validate_scope_invariants();
}

#[test]
fn idle_sessions_are_closed_and_their_txns_aborted() {
    let server = mem_server(ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let mut c = connect(server.local_addr());
    let t = ok_txn(call(&mut c, 1, Op::Begin));
    let _ = t;
    std::thread::sleep(Duration::from_millis(400));
    // The server hung up on us. The write may still land in OS buffers,
    // but the read must see either EOF or a reset.
    let _ = wire::write_frame(
        &mut c,
        &Request { id: 2, trace: wire::NO_TRACE, op: Op::Ping }.to_bytes(),
    );
    let dead = matches!(wire::read_frame(&mut c), Ok(None) | Err(_));
    assert!(dead, "idle session must be closed by the server");
    let db = server.shutdown().expect("drain");
    let stats = db.stats();
    assert_eq!(stats.counter("server.sessions.closed"), 1);
    assert!(stats.counter("server.txns.aborted_on_close") >= 1);
}

#[test]
fn stats_flow_through_wire_and_introspection_alike() {
    let mut db = RhDb::new(Strategy::Rh);
    let iaddr = db.serve_introspection("127.0.0.1:0").expect("introspection");
    let server = Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
    let mut c = connect(server.local_addr());
    let t = ok_txn(call(&mut c, 1, Op::Begin));
    assert_eq!(call(&mut c, 2, Op::Write(t, ObjectId(1), 1)), Reply::Ok(ReplyBody::Unit));
    assert_eq!(call(&mut c, 3, Op::Commit(t)), Reply::Ok(ReplyBody::Unit));

    // Wire stats: server.* counters present and sane.
    let json = match call(&mut c, 4, Op::Stats) {
        Reply::Ok(ReplyBody::Json(s)) => s,
        other => panic!("expected stats json, got {other:?}"),
    };
    let parsed = rh_obs::json::parse(&json).expect("stats parse");
    let counters = parsed.get("counters").expect("counters");
    let counter = |name: &str| counters.get(name).and_then(rh_obs::JsonValue::as_u64).unwrap_or(0);
    assert!(counter("server.sessions.opened") >= 1);
    assert!(counter("server.requests") >= 4);
    assert_eq!(counter("server.commits"), 1);

    // Same counters through the engine's live introspection endpoint:
    // the server publishes into the engine's registry, so /stats sees it.
    let mut http = TcpStream::connect(iaddr).expect("http connect");
    use std::io::{Read, Write};
    http.write_all(b"GET /stats HTTP/1.0\r\n\r\n").expect("http send");
    let mut raw = String::new();
    http.read_to_string(&mut raw).expect("http receive");
    assert!(raw.contains("server.sessions.opened"), "introspection must carry server.*");
    assert!(raw.contains("server.commits"));
    let _db = server.shutdown().expect("drain");
}
