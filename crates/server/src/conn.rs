//! Per-connection machinery: admission, the frame-reader thread, the
//! op-worker thread, and operation execution.
//!
//! Each admitted socket gets exactly two threads:
//!
//! * the **reader** decodes frames into [`Request`]s and feeds a
//!   bounded channel (capacity = the advertised in-flight cap). A full
//!   channel bounces the request with [`Reply::Busy`] *immediately* —
//!   explicit backpressure instead of unbounded queueing;
//! * the **worker** executes requests in arrival order and writes each
//!   reply (tagged with the request's id) through the shared write
//!   half. When the channel closes (peer gone, idle timeout, drain) the
//!   worker aborts the session's still-open transactions and
//!   deregisters it.
//!
//! Commits are two-phase against the engine mutex: prepare (append
//! commit record, release locks) happens under it, the durable force
//! happens outside it so concurrent sessions share one group-commit
//! fsync. See [`rh_core::engine::RhDb::commit_prepare`] for the safety
//! argument.

use crate::server::Shared;
use crate::wire::{self, errcode, Hello, Op, Reply, ReplyBody, Request, Response};
use parking_lot::Mutex;
use rh_common::codec::Codec;
use rh_common::{Result, TxnId};
use rh_core::engine::RhDb;
use rh_etm::EtmSession;
use rh_obs::{names, Stopwatch};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::Arc;

/// Handles one freshly accepted socket: admission, hello, threads.
/// Runs on the accept thread, so everything here is non-blocking or
/// bounded (the hello write is one small frame to a just-connected
/// peer).
pub(crate) fn accept(shared: &Arc<Shared>, stream: TcpStream) {
    if shared.draining.load(Ordering::SeqCst) {
        reject(shared, stream);
        return;
    }
    let (Ok(table_half), Ok(write_half)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    let admitted = {
        let mut table = shared.sessions.lock();
        table.admit(table_half, shared.cfg.max_sessions)
    };
    let Some(sid) = admitted else {
        reject(shared, stream);
        return;
    };
    let hello =
        Hello { accepted: true, session: sid, inflight_cap: shared.cfg.inflight_per_conn as u32 };
    let mut write_half = write_half;
    if wire::write_frame(&mut write_half, &hello.to_bytes()).is_err() {
        close_session(shared, sid);
        return;
    }
    shared.obs.registry.inc(names::M_SRV_SESSIONS_OPENED);
    shared.session_gauge();

    let out = Arc::new(Mutex::new(write_half));
    let (tx, rx) = std::sync::mpsc::sync_channel::<Request>(shared.cfg.inflight_per_conn.max(1));
    let worker = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(&out);
        std::thread::Builder::new()
            .name(format!("rh-serve-w{sid}"))
            .spawn(move || worker_loop(&shared, sid, &rx, &out))
    };
    let Ok(worker) = worker else {
        // No worker: undo the registration; nothing ran yet.
        close_session(shared, sid);
        return;
    };
    let reader = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(&out);
        std::thread::Builder::new()
            .name(format!("rh-serve-r{sid}"))
            .spawn(move || reader_loop(&shared, stream, tx, &out))
    };
    // A failed reader spawn drops `tx`; the worker then drains an empty
    // channel and closes the session — same path as a normal hangup.
    let mut handles = vec![worker];
    if let Ok(h) = reader {
        handles.push(h);
    }
    {
        let mut reapers = shared.reapers.lock();
        reapers.extend(handles);
    }
}

/// Answers an unadmittable connection: rejected hello, then hang up.
fn reject(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.obs.registry.inc(names::M_SRV_SESSIONS_REJECTED);
    let hello = Hello { accepted: false, session: 0, inflight_cap: 0 };
    let _ = wire::write_frame(&mut stream, &hello.to_bytes());
}

/// The frame-reader loop: decode, admit to the pipeline or bounce BUSY.
/// Exits on peer hangup, idle timeout, garbage, or a slammed socket.
fn reader_loop(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    tx: std::sync::mpsc::SyncSender<Request>,
    out: &Arc<Mutex<TcpStream>>,
) {
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_timeout));
    // Clean EOF, idle/read timeout, or transport error all end the
    // loop: the connection is over either way.
    while let Ok(Some(payload)) = wire::read_frame(&mut stream) {
        shared.obs.registry.inc(names::M_SRV_REQUESTS);
        let req = match Request::from_bytes(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A frame that passed CRC but does not decode is a
                // protocol bug, not line noise: answer once, hang up.
                send_reply(out, Response { id: 0, reply: wire::error_reply(&e) });
                break;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            let reply =
                Reply::Err { code: errcode::DRAINING, message: "server is draining".to_string() };
            send_reply(out, Response { id: req.id, reply });
            continue;
        }
        match tx.try_send(req) {
            Ok(()) => {}
            Err(TrySendError::Full(req)) => {
                // Backpressure: the pipeline is at the advertised cap.
                // The op was NOT attempted; the client may resend.
                shared.obs.registry.inc(names::M_SRV_REPLIES_BUSY);
                send_reply(out, Response { id: req.id, reply: Reply::Busy });
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` lets the worker drain the tail and close up shop.
}

/// The op-worker loop: execute in order, reply, and on channel close
/// tear the session down.
fn worker_loop(
    shared: &Arc<Shared>,
    sid: u64,
    rx: &Receiver<Request>,
    out: &Arc<Mutex<TcpStream>>,
) {
    while let Ok(req) = rx.recv() {
        let sw = Stopwatch::start();
        let wants_shutdown = matches!(req.op, Op::Shutdown);
        let reply = execute(shared, sid, req.op);
        if matches!(reply, Reply::Err { .. }) {
            shared.obs.registry.inc(names::M_SRV_REPLIES_ERR);
        }
        send_reply(out, Response { id: req.id, reply });
        shared.obs.registry.observe(names::M_SRV_REQUEST_US, sw.elapsed_micros());
        if wants_shutdown {
            shared.request_shutdown();
        }
    }
    close_session(shared, sid);
}

/// Serializes one response frame through the connection's write half.
/// Write errors are final for the socket; the reader will notice.
fn send_reply(out: &Arc<Mutex<TcpStream>>, resp: Response) {
    let bytes = resp.to_bytes();
    let mut guard = out.lock();
    let _ = wire::write_frame(&mut *guard, &bytes);
}

/// Deregisters `sid` and aborts its still-open transactions. Idempotent
/// (the second caller finds no entry). After [`Server::force_stop`]
/// set the killed flag, this does nothing — a simulated kill-9 must
/// leave open transactions as recovery losers, not tidily aborted.
///
/// [`Server::force_stop`]: crate::Server::force_stop
pub(crate) fn close_session(shared: &Arc<Shared>, sid: u64) {
    if shared.killed.load(Ordering::SeqCst) {
        return;
    }
    let leftovers = {
        let mut table = shared.sessions.lock();
        table.close(sid)
    };
    let Some(leftovers) = leftovers else { return };
    if !leftovers.is_empty() {
        let mut eng = shared.engine.lock();
        for t in &leftovers {
            if eng.abort(*t).is_ok() {
                shared.obs.registry.inc(names::M_SRV_TXNS_ABORTED_ON_CLOSE);
            }
        }
    }
    shared.obs.registry.inc(names::M_SRV_SESSIONS_CLOSED);
    shared.session_gauge();
}

/// Executes one operation against the shared engine, producing the
/// reply. Engine guards are scoped as tightly as possible: nothing
/// below holds the engine mutex across a socket write or a log force.
fn execute(shared: &Arc<Shared>, sid: u64, op: Op) -> Reply {
    match op {
        Op::Begin => {
            let begun = {
                let mut eng = shared.engine.lock();
                eng.initiate_empty()
            };
            match begun {
                Ok(t) => {
                    {
                        let mut table = shared.sessions.lock();
                        table.note_begin(sid, t);
                    }
                    Reply::Ok(ReplyBody::Txn(t))
                }
                Err(e) => wire::error_reply(&e),
            }
        }
        Op::Read(t, ob) => {
            let read = {
                let mut eng = shared.engine.lock();
                eng.read(t, ob)
            };
            match read {
                Ok(v) => Reply::Ok(ReplyBody::Value(v)),
                Err(e) => wire::error_reply(&e),
            }
        }
        Op::Write(t, ob, v) => engine_unit(shared, |eng| eng.write(t, ob, v)),
        Op::Add(t, ob, d) => engine_unit(shared, |eng| eng.add(t, ob, d)),
        Op::Delegate(tor, tee, obs) => engine_unit(shared, move |eng| eng.delegate(tor, tee, &obs)),
        Op::DelegateAll(tor, tee) => engine_unit(shared, |eng| eng.delegate_all(tor, tee)),
        Op::Permit(g, p, ob) => engine_unit(shared, |eng| eng.permit(g, p, ob)),
        Op::Commit(t) => commit(shared, t),
        Op::Abort(t) => {
            let aborted = {
                let mut eng = shared.engine.lock();
                eng.abort(t)
            };
            match aborted {
                Ok(()) => {
                    {
                        let mut table = shared.sessions.lock();
                        table.note_terminated(t);
                    }
                    Reply::Ok(ReplyBody::Unit)
                }
                Err(e) => wire::error_reply(&e),
            }
        }
        Op::Savepoint(t) => {
            let saved = {
                let mut eng = shared.engine.lock();
                eng.engine().savepoint(t)
            };
            match saved {
                Ok(lsn) => Reply::Ok(ReplyBody::Token(wire::token_of(lsn))),
                Err(e) => wire::error_reply(&e),
            }
        }
        Op::RollbackTo(t, token) => {
            engine_unit(shared, |eng| eng.engine().rollback_to(t, wire::lsn_of(token)))
        }
        Op::ValueOf(ob) => {
            let read = {
                let mut eng = shared.engine.lock();
                eng.value_of(ob)
            };
            match read {
                Ok(v) => Reply::Ok(ReplyBody::Value(v)),
                Err(e) => wire::error_reply(&e),
            }
        }
        Op::Stats => Reply::Ok(ReplyBody::Json(stats_json(shared))),
        Op::Ping | Op::Shutdown => Reply::Ok(ReplyBody::Unit),
    }
}

/// Runs a unit-result engine operation under a tightly scoped guard.
fn engine_unit(shared: &Arc<Shared>, f: impl FnOnce(&mut EtmSession<RhDb>) -> Result<()>) -> Reply {
    let ran = {
        let mut eng = shared.engine.lock();
        f(&mut eng)
    };
    match ran {
        Ok(()) => Reply::Ok(ReplyBody::Unit),
        Err(e) => wire::error_reply(&e),
    }
}

/// The group-committed commit path: prepare under the engine mutex,
/// force the log outside it, acknowledge only after the force.
fn commit(shared: &Arc<Shared>, t: TxnId) -> Reply {
    let prepared = {
        let mut eng = shared.engine.lock();
        eng.commit_with(t, |db, t| db.commit_prepare(t))
    };
    let lsn = match prepared {
        Ok(lsn) => lsn,
        Err(e) => return wire::error_reply(&e),
    };
    // The force: many workers arrive here concurrently and the
    // LogManager's group-commit leader covers them with one fsync.
    if let Err(e) = shared.log.flush_to(lsn) {
        return wire::error_reply(&e);
    }
    {
        let mut table = shared.sessions.lock();
        table.note_terminated(t);
    }
    shared.obs.registry.inc(names::M_SRV_COMMITS);
    Reply::Ok(ReplyBody::Unit)
}

/// One-stop stats: absorb log/disk/lock counters into the registry
/// (same view as `RhDb::stats()` and the `/stats` route — `server.*`
/// series included) and render it. No engine lock needed: every input
/// is an `Arc` captured at bind time.
fn stats_json(shared: &Arc<Shared>) -> String {
    shared.log.metrics().snapshot().export_into(&shared.obs.registry);
    shared.disk.metrics().snapshot().export_into(&shared.obs.registry);
    shared.locks.stats().snapshot().export_into(&shared.obs.registry);
    shared.obs.registry.snapshot().to_json().render_pretty()
}
