//! Per-connection machinery: admission, the frame-reader thread, the
//! op-worker thread, and operation execution.
//!
//! Each admitted socket gets exactly two threads:
//!
//! * the **reader** decodes frames into [`Request`]s and feeds a
//!   bounded channel (capacity = the advertised in-flight cap). A full
//!   channel bounces the request with [`Reply::Busy`] *immediately* —
//!   explicit backpressure instead of unbounded queueing;
//! * the **worker** executes requests in arrival order and writes each
//!   reply (tagged with the request's id) through the shared write
//!   half. When the channel closes (peer gone, idle timeout, drain) the
//!   worker aborts the session's still-open transactions and
//!   deregisters it.
//!
//! Commits are two-phase against the engine mutex: prepare (append
//! commit record, release locks) happens under it, the durable force
//! happens outside it so concurrent sessions share one group-commit
//! fsync. See [`rh_core::engine::RhDb::commit_prepare`] for the safety
//! argument.

use crate::server::Shared;
use crate::wire::{self, errcode, Hello, Op, ReplMsg, Reply, ReplyBody, Request, Response};
use parking_lot::Mutex;
use rh_common::codec::Codec;
use rh_common::ops::Value;
use rh_common::{Lsn, Result, TxnId};
use rh_obs::{names, Stopwatch};
use rh_wal::LogManager;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, TryRecvError, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Handles one freshly accepted socket: admission, hello, threads.
/// Runs on the accept thread, so everything here is non-blocking or
/// bounded (the hello write is one small frame to a just-connected
/// peer).
pub(crate) fn accept(shared: &Arc<Shared>, stream: TcpStream) {
    if shared.draining.load(Ordering::SeqCst) {
        reject(shared, stream);
        return;
    }
    // Replies are small frames; without this they sit in Nagle's buffer
    // waiting for the client's delayed ACK, turning every round trip
    // into a potential 40ms stall.
    let _ = stream.set_nodelay(true);
    let (Ok(table_half), Ok(write_half)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    let admitted = {
        let mut table = shared.sessions.lock();
        table.admit(table_half, shared.cfg.max_sessions)
    };
    let Some(sid) = admitted else {
        reject(shared, stream);
        return;
    };
    let hello =
        Hello { accepted: true, session: sid, inflight_cap: shared.cfg.inflight_per_conn as u32 };
    let mut write_half = write_half;
    if wire::write_frame(&mut write_half, &hello.to_bytes()).is_err() {
        close_session(shared, sid);
        return;
    }
    shared.obs.registry.inc(names::M_SRV_SESSIONS_OPENED);
    shared.session_gauge();

    let out = Arc::new(Mutex::named(write_half, names::LS_SERVER_OUT));
    let (tx, rx) =
        std::sync::mpsc::sync_channel::<(Request, Stopwatch)>(shared.cfg.inflight_per_conn.max(1));
    let worker = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(&out);
        std::thread::Builder::new()
            .name(format!("rh-serve-w{sid}"))
            .spawn(move || worker_loop(&shared, sid, &rx, &out))
    };
    let Ok(worker) = worker else {
        // No worker: undo the registration; nothing ran yet.
        close_session(shared, sid);
        return;
    };
    let reader = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(&out);
        std::thread::Builder::new()
            .name(format!("rh-serve-r{sid}"))
            .spawn(move || reader_loop(&shared, stream, tx, &out))
    };
    // A failed reader spawn drops `tx`; the worker then drains an empty
    // channel and closes the session — same path as a normal hangup.
    let mut handles = vec![worker];
    if let Ok(h) = reader {
        handles.push(h);
    }
    {
        let mut reapers = shared.reapers.lock();
        reapers.extend(handles);
    }
}

/// Answers an unadmittable connection: rejected hello, then hang up.
fn reject(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.obs.registry.inc(names::M_SRV_SESSIONS_REJECTED);
    let hello = Hello { accepted: false, session: 0, inflight_cap: 0 };
    let _ = wire::write_frame(&mut stream, &hello.to_bytes());
}

/// The frame-reader loop: decode, admit to the pipeline or bounce BUSY.
/// Exits on peer hangup, idle timeout, garbage, or a slammed socket.
fn reader_loop(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    tx: std::sync::mpsc::SyncSender<(Request, Stopwatch)>,
    out: &Arc<Mutex<TcpStream>>,
) {
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_timeout));
    // Clean EOF, idle/read timeout, or transport error all end the
    // loop: the connection is over either way.
    while let Ok(Some(payload)) = wire::read_frame(&mut stream) {
        shared.obs.registry.inc(names::M_SRV_REQUESTS);
        let req = match Request::from_bytes(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A frame that passed CRC but does not decode is a
                // protocol bug, not line noise: answer once, hang up.
                send_reply(out, Response { id: 0, reply: wire::error_reply(&e) });
                break;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            let reply =
                Reply::Err { code: errcode::DRAINING, message: "server is draining".to_string() };
            send_reply(out, Response { id: req.id, reply });
            continue;
        }
        // The stopwatch rides the channel: the worker's dequeue-time
        // reading *is* the session-queue wait (phase.queue_wait).
        match tx.try_send((req, Stopwatch::start())) {
            Ok(()) => {}
            Err(TrySendError::Full((req, _))) => {
                // Backpressure: the pipeline is at the advertised cap.
                // The op was NOT attempted; the client may resend.
                shared.obs.registry.inc(names::M_SRV_REPLIES_BUSY);
                send_reply(out, Response { id: req.id, reply: Reply::Busy });
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` lets the worker drain the tail and close up shop.
}

/// The op-worker loop: execute in order, reply, and on channel close
/// tear the session down.
fn worker_loop(
    shared: &Arc<Shared>,
    sid: u64,
    rx: &Receiver<(Request, Stopwatch)>,
    out: &Arc<Mutex<TcpStream>>,
) {
    while let Ok((req, queued)) = rx.recv() {
        // A subscription handshake converts this worker into the ship
        // loop: one Ok(Unit) response, then the socket carries raw
        // `ReplMsg` frames until the subscriber (or the server) goes
        // away. The connection is dedicated from here on.
        if let Op::ReplSubscribe { shard, from } = req.op {
            match shared.backend.ship_log(shard) {
                Ok(log) => {
                    send_reply(out, Response { id: req.id, reply: Reply::Ok(ReplyBody::Unit) });
                    ship_loop(shared, &log, shard, from, rx, out);
                    break;
                }
                Err(e) => {
                    send_reply(out, Response { id: req.id, reply: wire::error_reply(&e) });
                    continue;
                }
            }
        }
        let queue_us = queued.elapsed_micros();
        let sw = Stopwatch::start();
        let txn = txn_of(&req.op);
        let label = op_name(&req.op);
        let wants_shutdown = matches!(req.op, Op::Shutdown);
        shared.obs.registry.observe(names::M_SRV_QUEUE_US, queue_us);
        shared.obs.tracer.phase(names::PH_QUEUE_WAIT, txn, req.trace, queue_us);
        let (reply, mut phases) = execute(shared, sid, req.op, req.trace);
        if matches!(reply, Reply::Err { .. }) {
            shared.obs.registry.inc(names::M_SRV_REPLIES_ERR);
        }
        // Snapshot *before* the reply write: once the reply is on the
        // wire the client's round-trip clock may stop, so any time this
        // thread loses afterwards must not be attributed to the request
        // (a waterfall summing past the round trip reads as overlap).
        let pre_reply_us = sw.elapsed_micros();
        send_reply(out, Response { id: req.id, reply });
        let service_us = sw.elapsed_micros();
        shared.obs.registry.observe(names::M_SRV_REQUEST_US, service_us);
        if !phases.is_empty() {
            // Whatever the instrumented phases did not cover — dispatch
            // and router orchestration between forces — becomes its own
            // disjoint phase, so the stitched waterfall sums to the
            // whole pre-reply service interval and can be held against
            // the client-observed round trip.
            let attributed: u64 = phases.iter().map(|&(_, us)| us).sum();
            let other_us = pre_reply_us.saturating_sub(attributed);
            shared.obs.tracer.phase(names::PH_SERVE_OTHER, txn, req.trace, other_us);
            phases.push((names::PH_SERVE_OTHER, other_us));
        }
        for &(name, us) in &phases {
            observe_phase(&shared.obs, name, us);
        }
        // Slow-op admission uses the *client-visible* total (queue wait
        // included), and the retained entry carries the full phase
        // breakdown so a postmortem waterfall needs nothing else.
        let total_us = queue_us + service_us;
        if total_us >= shared.obs.slowops.threshold_us() {
            phases.insert(0, (names::PH_QUEUE_WAIT, queue_us));
            shared.obs.record_slow_op(label, txn, req.trace, total_us, phases);
        }
        if wants_shutdown {
            shared.request_shutdown();
        }
    }
    close_session(shared, sid);
}

/// The transaction an op acts on, as a raw id for trace attribution
/// (`rh_obs::trace::NONE` for transaction-less ops).
fn txn_of(op: &Op) -> u64 {
    match op {
        Op::Read(t, _)
        | Op::Write(t, _, _)
        | Op::Add(t, _, _)
        | Op::Delegate(t, _, _)
        | Op::DelegateAll(t, _)
        | Op::Permit(t, _, _)
        | Op::Commit(t)
        | Op::Abort(t)
        | Op::Savepoint(t)
        | Op::RollbackTo(t, _) => t.0,
        Op::Begin
        | Op::ValueOf(_)
        | Op::ValueOfMin(..)
        | Op::Durable(_)
        | Op::ReadAsOf(..)
        | Op::History(..)
        | Op::ReplSubscribe { .. }
        | Op::ReplAck(_)
        | Op::Stats
        | Op::Ping
        | Op::Shutdown => rh_obs::trace::NONE,
    }
}

/// A stable label for the slow-op log.
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Begin => "begin",
        Op::Read(..) => "read",
        Op::Write(..) => "write",
        Op::Add(..) => "add",
        Op::Delegate(..) => "delegate",
        Op::DelegateAll(..) => "delegate_all",
        Op::Permit(..) => "permit",
        Op::Commit(..) => "commit",
        Op::Abort(..) => "abort",
        Op::Savepoint(..) => "savepoint",
        Op::RollbackTo(..) => "rollback_to",
        Op::ValueOf(..) => "value_of",
        Op::ValueOfMin(..) => "value_of_min",
        Op::Durable(..) => "durable",
        Op::ReadAsOf(..) => "read_as_of",
        Op::History(..) => "history",
        Op::ReplSubscribe { .. } => "repl_subscribe",
        Op::ReplAck(..) => "repl_ack",
        Op::Stats => "stats",
        Op::Ping => "ping",
        Op::Shutdown => "shutdown",
    }
}

/// Feeds one measured phase into its per-phase latency histogram. The
/// tracer points were already emitted where the phase ran (see
/// `Backend::commit`); the histograms all land here, on the *serving*
/// obs, so `/stats` and `/metrics` aggregate them in one place without
/// double-counting against shard registries.
fn observe_phase(obs: &rh_obs::Obs, name: &'static str, us: u64) {
    let hist = match name {
        names::PH_ENGINE_HOLD => names::M_SRV_ENGINE_US,
        names::PH_COMMIT_PREPARE => names::M_SRV_COMMIT_PREPARE_US,
        names::PH_FLUSH_WAIT => names::M_SRV_FLUSH_US,
        names::PH_2PC_PREPARE => names::M_SHARD_PREPARE_US,
        names::PH_2PC_COORD => names::M_SHARD_COORD_US,
        names::PH_2PC_RESOLVE => names::M_SHARD_RESOLVE_US,
        _ => return,
    };
    obs.registry.observe(hist, us);
}

/// Serializes one response frame through the connection's write half.
/// Write errors are final for the socket; the reader will notice.
fn send_reply(out: &Arc<Mutex<TcpStream>>, resp: Response) {
    let bytes = resp.to_bytes();
    let mut guard = out.lock();
    // `out` IS the socket write-half mutex: holding it across the send
    // is the mechanism that keeps frames whole, not a hazard.
    // rh-analyze: allow(L7)
    let _ = wire::write_frame(&mut *guard, &bytes); // rh-analyze: allow(L6)
}

/// Deregisters `sid` and aborts its still-open transactions. Idempotent
/// (the second caller finds no entry). After [`Server::force_stop`]
/// set the killed flag, this does nothing — a simulated kill-9 must
/// leave open transactions as recovery losers, not tidily aborted.
///
/// [`Server::force_stop`]: crate::Server::force_stop
pub(crate) fn close_session(shared: &Arc<Shared>, sid: u64) {
    if shared.killed.load(Ordering::SeqCst) {
        return;
    }
    let leftovers = {
        let mut table = shared.sessions.lock();
        table.close(sid)
    };
    let Some(leftovers) = leftovers else { return };
    for t in &leftovers {
        if shared.backend.abort(*t).is_ok() {
            shared.obs.registry.inc(names::M_SRV_TXNS_ABORTED_ON_CLOSE);
        }
    }
    shared.obs.registry.inc(names::M_SRV_SESSIONS_CLOSED);
    shared.session_gauge();
}

/// Executes one operation against the shared backend, producing the
/// reply plus the op's measured commit phases (empty for everything but
/// `Commit`). Engine guards (single backend) live inside the `Backend`
/// methods and are scoped as tightly as possible: nothing here holds an
/// engine mutex across a socket write, and commit forces happen outside
/// the mutex on both backends.
fn execute(
    shared: &Arc<Shared>,
    sid: u64,
    op: Op,
    trace: u64,
) -> (Reply, Vec<(&'static str, u64)>) {
    let reply = match op {
        Op::Begin => match shared.backend.begin() {
            Ok(t) => {
                {
                    let mut table = shared.sessions.lock();
                    table.note_begin(sid, t);
                }
                Reply::Ok(ReplyBody::Txn(t))
            }
            Err(e) => wire::error_reply(&e),
        },
        Op::Read(t, ob) => value_reply(shared.backend.read(t, ob)),
        Op::Write(t, ob, v) => unit_reply(shared.backend.write(t, ob, v)),
        Op::Add(t, ob, d) => unit_reply(shared.backend.add(t, ob, d)),
        Op::Delegate(tor, tee, obs) => unit_reply(shared.backend.delegate(tor, tee, &obs)),
        Op::DelegateAll(tor, tee) => unit_reply(shared.backend.delegate_all(tor, tee)),
        Op::Permit(g, p, ob) => unit_reply(shared.backend.permit(g, p, ob)),
        Op::Commit(t) => return commit(shared, t, trace),
        Op::Abort(t) => match shared.backend.abort(t) {
            Ok(()) => {
                {
                    let mut table = shared.sessions.lock();
                    table.note_terminated(t);
                }
                Reply::Ok(ReplyBody::Unit)
            }
            Err(e) => wire::error_reply(&e),
        },
        Op::Savepoint(t) => match shared.backend.savepoint(t) {
            Ok(token) => Reply::Ok(ReplyBody::Token(token)),
            Err(e) => wire::error_reply(&e),
        },
        Op::RollbackTo(t, token) => unit_reply(shared.backend.rollback_to(t, token)),
        Op::ValueOf(ob) => value_reply(shared.backend.value_of(ob)),
        // The staleness-bounded read: a primary answers immediately, a
        // replica blocks (up to the configured deadline) for its forward
        // pass to reach the bound — or refuses with REPL_LAGGING.
        Op::ValueOfMin(ob, min_lsn) => {
            value_reply(shared.backend.value_of_min(ob, min_lsn, shared.cfg.staleness_deadline))
        }
        Op::Durable(ob) => match shared.backend.durable_watermark(ob) {
            Ok(token) => Reply::Ok(ReplyBody::Token(token)),
            Err(e) => wire::error_reply(&e),
        },
        // A subscription request reaching `execute` means the worker
        // declined to enter the ship loop (invalid shard / replica
        // backend); acks are only meaningful inside a subscription.
        Op::ReplSubscribe { .. } | Op::ReplAck(_) => {
            wire::error_reply(&rh_common::RhError::Protocol(
                "replication ops are valid only on a dedicated subscription connection",
            ))
        }
        // Time-travel ops replay the WAL without any engine mutex (see
        // `Backend::read_as_of`), so a deep-history reenactment never
        // stalls concurrent writers.
        Op::ReadAsOf(ob, as_of) => value_reply(shared.backend.read_as_of(ob, as_of, &shared.obs)),
        Op::History(ob, from, to) => match shared.backend.history_json(ob, from, to, &shared.obs) {
            Ok(json) => Reply::Ok(ReplyBody::Json(json)),
            Err(e) => wire::error_reply(&e),
        },
        Op::Stats => Reply::Ok(ReplyBody::Json(shared.backend.stats_json(&shared.obs))),
        Op::Ping | Op::Shutdown => Reply::Ok(ReplyBody::Unit),
    };
    (reply, Vec::new())
}

/// How often the ship loop emits a heartbeat when the log is quiet —
/// the subscriber's liveness signal and its cue to ack/flush. Must be
/// comfortably below the subscriber's heartbeat-grace read timeout.
const SHIP_HEARTBEAT: Duration = Duration::from_millis(500);

/// The log-shipping loop a worker becomes after a `ReplSubscribe`
/// handshake: stream every **durable** record from `from` upward as
/// [`ReplMsg::Frame`]s, heartbeat when caught up, and fold in the
/// subscriber's `ReplAck`s (which arrive on the ordinary request
/// channel and are never replied to). Shipping only durable records
/// keeps the stream a prefix of what a crash of this primary would
/// preserve — a replica can never hold state the primary itself would
/// lose — and [`rh_wal::LogManager::wait_durable`] provides exactly
/// that watermark without ever forcing a sync of its own: committers
/// drive durability, the ship loop rides their group commits.
fn ship_loop(
    shared: &Arc<Shared>,
    log: &Arc<LogManager>,
    shard: u32,
    from: Lsn,
    rx: &Receiver<(Request, Stopwatch)>,
    out: &Arc<Mutex<TcpStream>>,
) {
    let sub = shared.repl.subscribe(shard, from);
    shared.obs.registry.set(names::M_REPL_SUBSCRIBERS, shared.repl.subscriber_count());
    let mut next = from;
    'ship: loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        // Fold in whatever the reader queued: acks update the registry,
        // anything else on a subscription connection is a protocol bug.
        // A disconnected channel means the reader is gone (peer hangup
        // or idle timeout with no acks) — the subscription is over.
        loop {
            match rx.try_recv() {
                Ok((req, _)) => match req.op {
                    Op::ReplAck(acked) => {
                        shared.repl.acked(sub, acked);
                        shared.obs.registry.inc(names::M_REPL_ACKS);
                    }
                    _ => {
                        let e = rh_common::RhError::Protocol(
                            "subscription connections accept only acks",
                        );
                        send_reply(out, Response { id: req.id, reply: wire::error_reply(&e) });
                    }
                },
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'ship,
            }
        }
        let durable = log.wait_durable(next.0 + 1, SHIP_HEARTBEAT);
        if durable > next.0 {
            let mut shipped = 0u64;
            let mut alive = true;
            while next.0 < durable {
                let Ok(rec) = log.read(next) else {
                    alive = false;
                    break;
                };
                let msg = ReplMsg::Frame { lsn: next, record: rec.to_bytes() };
                if !send_msg(out, &msg) {
                    alive = false;
                    break;
                }
                next = next.next();
                shipped += 1;
            }
            shared.repl.shipped(sub, next, shipped);
            shared.obs.registry.add(names::M_REPL_FRAMES_SHIPPED, shipped);
            if !alive {
                break;
            }
        } else {
            // Caught up and quiet: tell the subscriber we are alive and
            // where durability stands.
            if !send_msg(out, &ReplMsg::Heartbeat { durable: Lsn(durable) }) {
                break;
            }
            shared.repl.heartbeat(sub);
            shared.obs.registry.inc(names::M_REPL_HEARTBEATS);
        }
    }
    shared.repl.unsubscribe(sub);
    shared.obs.registry.set(names::M_REPL_SUBSCRIBERS, shared.repl.subscriber_count());
}

/// Frames one stream message through the connection's write half;
/// `false` means the socket is dead and the subscription is over.
fn send_msg(out: &Arc<Mutex<TcpStream>>, msg: &ReplMsg) -> bool {
    let bytes = msg.to_bytes();
    let mut guard = out.lock();
    // `out` IS the socket write-half mutex: holding it across the send
    // is the mechanism that keeps frames whole, not a hazard.
    // rh-analyze: allow(L7)
    wire::write_frame(&mut *guard, &bytes).is_ok() // rh-analyze: allow(L6)
}

/// Renders a unit-result backend operation.
fn unit_reply(ran: Result<()>) -> Reply {
    match ran {
        Ok(()) => Reply::Ok(ReplyBody::Unit),
        Err(e) => wire::error_reply(&e),
    }
}

/// Renders a value-result backend operation.
fn value_reply(read: Result<Value>) -> Reply {
    match read {
        Ok(v) => Reply::Ok(ReplyBody::Value(v)),
        Err(e) => wire::error_reply(&e),
    }
}

/// The durable commit path: acknowledge only after the backend's force
/// (group-committed per engine — see `Backend::commit`). Returns the
/// phase breakdown the backend measured, for histograms + the slow-op
/// log.
fn commit(shared: &Arc<Shared>, t: TxnId, trace: u64) -> (Reply, Vec<(&'static str, u64)>) {
    let phases = match shared.backend.commit(t, trace, &shared.obs) {
        Ok(phases) => phases,
        Err(e) => return (wire::error_reply(&e), Vec::new()),
    };
    {
        let mut table = shared.sessions.lock();
        table.note_terminated(t);
    }
    shared.obs.registry.inc(names::M_SRV_COMMITS);
    if shared.first_ack_pending.swap(false, Ordering::Relaxed) {
        shared
            .obs
            .registry
            .observe(names::M_RECOVERY_FIRST_ACK_US, shared.started.elapsed_micros());
    }
    (Reply::Ok(ReplyBody::Unit), phases)
}
