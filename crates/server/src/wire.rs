//! The rh-server wire protocol: length-prefixed, CRC-framed binary
//! messages over a byte stream.
//!
//! Every message — request, reply, and the per-connection hello — is one
//! frame in exactly the stable log's on-disk convention
//! ([`rh_wal::frame`]): `[len: u32 LE][crc32: u32 LE][payload]`. Reusing
//! the WAL framing means the same torn/corrupt-detection logic guards
//! both the disk and the network, and a protocol trace can be decoded
//! with the same tooling as a log segment.
//!
//! Payloads use the workspace binary codec ([`rh_common::codec`]):
//!
//! ```text
//! request  := req_id: u64, trace_id: u64, opcode: u8, args…
//! response := req_id: u64, status: u8, body…        (status: OK/ERR/BUSY)
//! hello    := magic: u32, version: u32, status: u8, session: u64, cap: u32
//! ```
//!
//! `trace_id` (v2) is the client-assigned trace context: the server
//! attributes every measured phase of the request (queue wait, engine
//! hold, flush wait, 2PC edges) to it in the trace ring, and `rh-trace`
//! stitches them back into a waterfall. [`NO_TRACE`] means "untraced".
//! The field is negotiated implicitly by [`PROTOCOL_VERSION`]: a v1
//! peer rejects the v2 hello before any request is exchanged.
//!
//! Requests are answered exactly once, tagged with the request's
//! `req_id`; clients may pipeline any number of requests subject to the
//! advertised in-flight cap (excess is bounced with [`Reply::Busy`], not
//! queued unboundedly — §backpressure in DESIGN.md §12).

use rh_common::codec::{Codec, Reader, Writer};
use rh_common::ops::Value;
use rh_common::{Lsn, ObjectId, Result, RhError, TxnId};
use std::io::{self, Read, Write};

/// Protocol version carried in the hello frame. Bumped on any change to
/// the frame layout, opcode numbering, or reply encoding.
/// v2: requests carry a `trace_id` field after `req_id`.
/// v3: time-travel ops `ReadAsOf` (16) and `History` (17).
/// v4: replication — staleness-bounded reads `ValueOfMin` (18) and the
/// durable-watermark probe `Durable` (19), plus the log-shipping
/// subscription ops `ReplSubscribe` (20) / `ReplAck` (21) and the
/// server→subscriber [`ReplMsg`] stream frames.
pub const PROTOCOL_VERSION: u32 = 4;

/// The `trace_id` value meaning "this request is untraced".
pub const NO_TRACE: u64 = u64::MAX;

/// Magic prefix of the hello frame (`b"RHSV"` little-endian).
pub const HELLO_MAGIC: u32 = u32::from_le_bytes(*b"RHSV");

/// Hard cap on one wire payload. Requests are tiny (the largest is a
/// delegate with an object list); anything larger is a framing error,
/// rejected before allocation. Replies carrying stats JSON stay well
/// under this.
pub const MAX_WIRE_PAYLOAD: u32 = 1 << 20;

// ---- framing over a byte stream ---------------------------------------

/// Writes one frame (WAL conventions: `[len][crc][payload]`).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&rh_wal::frame::encode(payload))?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` means the peer closed the
/// stream cleanly *between* frames; EOF inside a frame, an implausible
/// length, or a CRC mismatch are errors (a torn network read, unlike a
/// torn log tail, has no benign interpretation — the connection dies).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; rh_wal::frame::HEADER_LEN];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame header"))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len == 0 || len > MAX_WIRE_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible frame length {len}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if rh_wal::frame::crc32(&payload) != crc {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame crc mismatch"));
    }
    Ok(Some(payload))
}

// ---- operations -------------------------------------------------------

/// One engine operation, as carried on the wire. The surface mirrors
/// [`rh_core::TxnEngine`] plus the savepoint pair and three
/// server-level verbs (`Stats`, `Ping`, `Shutdown`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Start a transaction; replies [`ReplyBody::Txn`].
    Begin,
    /// Transactional read; replies [`ReplyBody::Value`].
    Read(TxnId, ObjectId),
    /// Transactional overwrite.
    Write(TxnId, ObjectId, Value),
    /// Transactional commutative increment.
    Add(TxnId, ObjectId, Value),
    /// `delegate(tor, tee, obs)` — responsibility transfer (§2.1.2).
    Delegate(TxnId, TxnId, Vec<ObjectId>),
    /// `delegate(tor, tee)` of everything (the join idiom).
    DelegateAll(TxnId, TxnId),
    /// Commit; the reply is sent only after the commit record is
    /// durable (group-committed with concurrent sessions).
    Commit(TxnId),
    /// Abort (undo + CLRs).
    Abort(TxnId),
    /// Establish a savepoint; replies [`ReplyBody::Token`].
    Savepoint(TxnId),
    /// Partial rollback to a savepoint token.
    RollbackTo(TxnId, u64),
    /// ASSET `permit(granter, permittee, ob)`.
    Permit(TxnId, TxnId, ObjectId),
    /// Non-transactional peek; replies [`ReplyBody::Value`].
    ValueOf(ObjectId),
    /// One-stop metrics snapshot; replies [`ReplyBody::Json`].
    Stats,
    /// Liveness probe; replies [`ReplyBody::Unit`].
    Ping,
    /// Ask the server to drain and exit (abort leftovers, checkpoint,
    /// stop accepting). The reply is sent before the drain begins.
    Shutdown,
    /// Time-travel read: the committed value of the object at the LSN
    /// ([`rh_common::Lsn::NULL`] means the log tail), reenacted from
    /// the log without touching live pages or the engine mutex; replies
    /// [`ReplyBody::Value`].
    ReadAsOf(ObjectId, Lsn),
    /// The object's version timeline with update LSNs in the inclusive
    /// range, as a rendered `history.v1` JSON artifact; replies
    /// [`ReplyBody::Json`].
    History(ObjectId, Lsn, Lsn),
    /// Staleness-bounded peek (v4): like [`Op::ValueOf`], but the server
    /// must answer from state at least as fresh as the LSN. A primary is
    /// trivially fresh; a read replica blocks until its forward pass has
    /// applied that far (or replies [`errcode::REPL_LAGGING`] at its
    /// wait deadline). Replies [`ReplyBody::Value`].
    ValueOfMin(ObjectId, Lsn),
    /// Durable-watermark probe (v4): the raw LSN up to which the log
    /// owning this object is durable, as [`ReplyBody::Token`]. A commit
    /// ack precedes this probe, so the token bounds every effect that
    /// commit made durable — pass it as the `min_lsn` of a replica read
    /// for read-your-writes. On a replica backend the token is its
    /// `applied_lsn` instead, so the same probe measures apply progress.
    Durable(ObjectId),
    /// Subscribe this connection to the shard's log-shipping feed,
    /// starting at the LSN (v4). Answered with one `Ok(Unit)` response;
    /// the server then streams [`ReplMsg`] frames on the same socket
    /// until the subscriber disconnects. The connection stops being a
    /// request/response channel except for [`Op::ReplAck`].
    ReplSubscribe {
        /// Which shard's log to ship (0 for an unsharded server).
        shard: u32,
        /// First LSN wanted; must be ≥ the shard's retained horizon.
        from: Lsn,
    },
    /// Subscriber → server progress report (v4): the replica's
    /// `applied_lsn` for the subscribed shard. Fire-and-forget — the
    /// server records it for `/replication` lag accounting and sends
    /// **no** reply (the socket's server→client direction is the
    /// [`ReplMsg`] stream).
    ReplAck(Lsn),
}

const OP_BEGIN: u8 = 1;
const OP_READ: u8 = 2;
const OP_WRITE: u8 = 3;
const OP_ADD: u8 = 4;
const OP_DELEGATE: u8 = 5;
const OP_DELEGATE_ALL: u8 = 6;
const OP_COMMIT: u8 = 7;
const OP_ABORT: u8 = 8;
const OP_SAVEPOINT: u8 = 9;
const OP_ROLLBACK_TO: u8 = 10;
const OP_PERMIT: u8 = 11;
const OP_VALUE_OF: u8 = 12;
const OP_STATS: u8 = 13;
const OP_PING: u8 = 14;
const OP_SHUTDOWN: u8 = 15;
const OP_READ_AS_OF: u8 = 16;
const OP_HISTORY: u8 = 17;
const OP_VALUE_OF_MIN: u8 = 18;
const OP_DURABLE: u8 = 19;
const OP_REPL_SUBSCRIBE: u8 = 20;
const OP_REPL_ACK: u8 = 21;

impl Codec for Op {
    fn encode(&self, w: &mut Writer) {
        match self {
            Op::Begin => w.put_u8(OP_BEGIN),
            Op::Read(t, ob) => {
                w.put_u8(OP_READ);
                w.put_u64(t.0);
                w.put_u64(ob.0);
            }
            Op::Write(t, ob, v) => {
                w.put_u8(OP_WRITE);
                w.put_u64(t.0);
                w.put_u64(ob.0);
                w.put_i64(*v);
            }
            Op::Add(t, ob, d) => {
                w.put_u8(OP_ADD);
                w.put_u64(t.0);
                w.put_u64(ob.0);
                w.put_i64(*d);
            }
            Op::Delegate(tor, tee, obs) => {
                w.put_u8(OP_DELEGATE);
                w.put_u64(tor.0);
                w.put_u64(tee.0);
                w.put_u32(obs.len() as u32);
                for ob in obs {
                    w.put_u64(ob.0);
                }
            }
            Op::DelegateAll(tor, tee) => {
                w.put_u8(OP_DELEGATE_ALL);
                w.put_u64(tor.0);
                w.put_u64(tee.0);
            }
            Op::Commit(t) => {
                w.put_u8(OP_COMMIT);
                w.put_u64(t.0);
            }
            Op::Abort(t) => {
                w.put_u8(OP_ABORT);
                w.put_u64(t.0);
            }
            Op::Savepoint(t) => {
                w.put_u8(OP_SAVEPOINT);
                w.put_u64(t.0);
            }
            Op::RollbackTo(t, sp) => {
                w.put_u8(OP_ROLLBACK_TO);
                w.put_u64(t.0);
                w.put_u64(*sp);
            }
            Op::Permit(g, p, ob) => {
                w.put_u8(OP_PERMIT);
                w.put_u64(g.0);
                w.put_u64(p.0);
                w.put_u64(ob.0);
            }
            Op::ValueOf(ob) => {
                w.put_u8(OP_VALUE_OF);
                w.put_u64(ob.0);
            }
            Op::Stats => w.put_u8(OP_STATS),
            Op::Ping => w.put_u8(OP_PING),
            Op::Shutdown => w.put_u8(OP_SHUTDOWN),
            Op::ReadAsOf(ob, lsn) => {
                w.put_u8(OP_READ_AS_OF);
                w.put_u64(ob.0);
                w.put_u64(lsn.0);
            }
            Op::History(ob, from, to) => {
                w.put_u8(OP_HISTORY);
                w.put_u64(ob.0);
                w.put_u64(from.0);
                w.put_u64(to.0);
            }
            Op::ValueOfMin(ob, min) => {
                w.put_u8(OP_VALUE_OF_MIN);
                w.put_u64(ob.0);
                w.put_u64(min.0);
            }
            Op::Durable(ob) => {
                w.put_u8(OP_DURABLE);
                w.put_u64(ob.0);
            }
            Op::ReplSubscribe { shard, from } => {
                w.put_u8(OP_REPL_SUBSCRIBE);
                w.put_u32(*shard);
                w.put_u64(from.0);
            }
            Op::ReplAck(applied) => {
                w.put_u8(OP_REPL_ACK);
                w.put_u64(applied.0);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            OP_BEGIN => Op::Begin,
            OP_READ => Op::Read(TxnId(r.take_u64()?), ObjectId(r.take_u64()?)),
            OP_WRITE => Op::Write(TxnId(r.take_u64()?), ObjectId(r.take_u64()?), r.take_i64()?),
            OP_ADD => Op::Add(TxnId(r.take_u64()?), ObjectId(r.take_u64()?), r.take_i64()?),
            OP_DELEGATE => {
                let tor = TxnId(r.take_u64()?);
                let tee = TxnId(r.take_u64()?);
                let n = r.take_u32()?;
                if n as usize > MAX_WIRE_PAYLOAD as usize / 8 {
                    return Err(RhError::Codec("delegate object list implausibly long"));
                }
                let mut obs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    obs.push(ObjectId(r.take_u64()?));
                }
                Op::Delegate(tor, tee, obs)
            }
            OP_DELEGATE_ALL => Op::DelegateAll(TxnId(r.take_u64()?), TxnId(r.take_u64()?)),
            OP_COMMIT => Op::Commit(TxnId(r.take_u64()?)),
            OP_ABORT => Op::Abort(TxnId(r.take_u64()?)),
            OP_SAVEPOINT => Op::Savepoint(TxnId(r.take_u64()?)),
            OP_ROLLBACK_TO => Op::RollbackTo(TxnId(r.take_u64()?), r.take_u64()?),
            OP_PERMIT => {
                Op::Permit(TxnId(r.take_u64()?), TxnId(r.take_u64()?), ObjectId(r.take_u64()?))
            }
            OP_VALUE_OF => Op::ValueOf(ObjectId(r.take_u64()?)),
            OP_STATS => Op::Stats,
            OP_PING => Op::Ping,
            OP_SHUTDOWN => Op::Shutdown,
            OP_READ_AS_OF => Op::ReadAsOf(ObjectId(r.take_u64()?), Lsn(r.take_u64()?)),
            OP_HISTORY => {
                Op::History(ObjectId(r.take_u64()?), Lsn(r.take_u64()?), Lsn(r.take_u64()?))
            }
            OP_VALUE_OF_MIN => Op::ValueOfMin(ObjectId(r.take_u64()?), Lsn(r.take_u64()?)),
            OP_DURABLE => Op::Durable(ObjectId(r.take_u64()?)),
            OP_REPL_SUBSCRIBE => {
                Op::ReplSubscribe { shard: r.take_u32()?, from: Lsn(r.take_u64()?) }
            }
            OP_REPL_ACK => Op::ReplAck(Lsn(r.take_u64()?)),
            _ => return Err(RhError::Codec("unknown opcode")),
        })
    }
}

/// One request: a client-chosen correlation id, the trace context, and
/// the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Correlation id, echoed verbatim in the reply. Client-chosen;
    /// `0` is reserved for the hello exchange.
    pub id: u64,
    /// Client-assigned trace context, or [`NO_TRACE`]. The server tags
    /// every phase timer of this request with it.
    pub trace: u64,
    /// The operation to perform.
    pub op: Op,
}

impl Codec for Request {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u64(self.trace);
        self.op.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Request { id: r.take_u64()?, trace: r.take_u64()?, op: Op::decode(r)? })
    }
}

// ---- replies ----------------------------------------------------------

/// The payload of a successful reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// Nothing beyond success.
    Unit,
    /// A transaction id (from `Begin`).
    Txn(TxnId),
    /// An object value (from `Read` / `ValueOf`).
    Value(Value),
    /// A savepoint token (from `Savepoint`) — the savepoint LSN's raw
    /// value, opaque to clients.
    Token(u64),
    /// A rendered JSON document (from `Stats`).
    Json(String),
}

const BODY_UNIT: u8 = 0;
const BODY_TXN: u8 = 1;
const BODY_VALUE: u8 = 2;
const BODY_TOKEN: u8 = 3;
const BODY_JSON: u8 = 4;

impl Codec for ReplyBody {
    fn encode(&self, w: &mut Writer) {
        match self {
            ReplyBody::Unit => w.put_u8(BODY_UNIT),
            ReplyBody::Txn(t) => {
                w.put_u8(BODY_TXN);
                w.put_u64(t.0);
            }
            ReplyBody::Value(v) => {
                w.put_u8(BODY_VALUE);
                w.put_i64(*v);
            }
            ReplyBody::Token(sp) => {
                w.put_u8(BODY_TOKEN);
                w.put_u64(*sp);
            }
            ReplyBody::Json(s) => {
                w.put_u8(BODY_JSON);
                w.put_bytes(s.as_bytes());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            BODY_UNIT => ReplyBody::Unit,
            BODY_TXN => ReplyBody::Txn(TxnId(r.take_u64()?)),
            BODY_VALUE => ReplyBody::Value(r.take_i64()?),
            BODY_TOKEN => ReplyBody::Token(r.take_u64()?),
            BODY_JSON => {
                let bytes = r.take_bytes()?;
                let s = String::from_utf8(bytes).map_err(|_| RhError::Codec("non-utf8 json"))?;
                ReplyBody::Json(s)
            }
            _ => return Err(RhError::Codec("unknown reply body tag")),
        })
    }
}

/// The outcome of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Success, with an operation-specific body.
    Ok(ReplyBody),
    /// The engine (or the server) refused the operation. `code` is an
    /// [`errcode`] constant; `message` is human-readable context.
    Err {
        /// Stable numeric error class (see [`errcode`]).
        code: u8,
        /// Rendered error detail.
        message: String,
    },
    /// Backpressure: the per-connection in-flight cap was exceeded.
    /// The operation was **not** attempted; resend after draining
    /// outstanding replies.
    Busy,
}

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;
const STATUS_BUSY: u8 = 2;

/// One response frame: the request's correlation id plus the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The originating request's `id`.
    pub id: u64,
    /// Outcome.
    pub reply: Reply,
}

impl Codec for Response {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        match &self.reply {
            Reply::Ok(body) => {
                w.put_u8(STATUS_OK);
                body.encode(w);
            }
            Reply::Err { code, message } => {
                w.put_u8(STATUS_ERR);
                w.put_u8(*code);
                w.put_bytes(message.as_bytes());
            }
            Reply::Busy => w.put_u8(STATUS_BUSY),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let id = r.take_u64()?;
        let reply = match r.take_u8()? {
            STATUS_OK => Reply::Ok(ReplyBody::decode(r)?),
            STATUS_ERR => {
                let code = r.take_u8()?;
                let bytes = r.take_bytes()?;
                let message =
                    String::from_utf8(bytes).map_err(|_| RhError::Codec("non-utf8 message"))?;
                Reply::Err { code, message }
            }
            STATUS_BUSY => Reply::Busy,
            _ => return Err(RhError::Codec("unknown reply status")),
        };
        Ok(Response { id, reply })
    }
}

// ---- hello ------------------------------------------------------------

/// The server's first frame on every accepted socket: protocol
/// identification plus the admission verdict. A rejected hello
/// (`accepted == false`) is followed by the server closing the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Whether the session was admitted (admission control: bounded
    /// session count; `false` also while the server is draining).
    pub accepted: bool,
    /// Server-assigned session id (0 when rejected).
    pub session: u64,
    /// Per-connection in-flight request cap; pipelining beyond this
    /// earns [`Reply::Busy`].
    pub inflight_cap: u32,
}

impl Codec for Hello {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(HELLO_MAGIC);
        w.put_u32(PROTOCOL_VERSION);
        w.put_u8(u8::from(self.accepted));
        w.put_u64(self.session);
        w.put_u32(self.inflight_cap);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        if r.take_u32()? != HELLO_MAGIC {
            return Err(RhError::Codec("bad hello magic"));
        }
        let got = r.take_u32()?;
        if got != PROTOCOL_VERSION {
            return Err(RhError::VersionMismatch { got, want: PROTOCOL_VERSION });
        }
        let accepted = r.take_u8()? != 0;
        Ok(Hello { accepted, session: r.take_u64()?, inflight_cap: r.take_u32()? })
    }
}

// ---- replication stream -----------------------------------------------

/// One server→subscriber frame on a log-shipping connection (v4).
///
/// After a [`Op::ReplSubscribe`] is acknowledged, the server's side of
/// the socket becomes a stream of these — each its own CRC frame, so a
/// subscriber detects torn/corrupt ships exactly as recovery detects a
/// torn log tail. Records are shipped **only once durable** on the
/// primary (`lsn < durable_len`), so a subscriber's applied prefix is
/// always a prefix of the log that would survive a primary crash — a
/// promoted replica can never know history the primary's disk lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// One log record: its primary-assigned LSN plus the encoded
    /// [`rh_wal::record::LogRecord`] bytes, opaque at this layer. LSNs
    /// arrive dense and in order; a gap is a protocol error.
    Frame {
        /// The record's LSN on the primary.
        lsn: Lsn,
        /// The encoded `LogRecord` (same codec as the stable log).
        record: Vec<u8>,
    },
    /// Liveness + progress when there is nothing to ship: the primary's
    /// durable watermark. Lets the subscriber distinguish "caught up"
    /// from "primary dead" and feeds lag-in-µs accounting.
    Heartbeat {
        /// The shard log's durable length (exclusive upper LSN bound).
        durable: Lsn,
    },
}

const REPL_FRAME: u8 = 1;
const REPL_HEARTBEAT: u8 = 2;

impl Codec for ReplMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            ReplMsg::Frame { lsn, record } => {
                w.put_u8(REPL_FRAME);
                w.put_u64(lsn.0);
                w.put_bytes(record);
            }
            ReplMsg::Heartbeat { durable } => {
                w.put_u8(REPL_HEARTBEAT);
                w.put_u64(durable.0);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            REPL_FRAME => ReplMsg::Frame { lsn: Lsn(r.take_u64()?), record: r.take_bytes()? },
            REPL_HEARTBEAT => ReplMsg::Heartbeat { durable: Lsn(r.take_u64()?) },
            _ => return Err(RhError::Codec("unknown repl message tag")),
        })
    }
}

// ---- error codes ------------------------------------------------------

/// Stable numeric classes for [`Reply::Err`]. The engine's
/// [`RhError`] carries `&'static str` and typed ids that cannot
/// round-trip a process boundary; the wire carries class + rendered
/// message instead.
pub mod errcode {
    /// Unclassified server-side failure.
    pub const OTHER: u8 = 0;
    /// [`rh_common::RhError::UnknownTxn`].
    pub const UNKNOWN_TXN: u8 = 1;
    /// [`rh_common::RhError::TxnNotActive`].
    pub const TXN_NOT_ACTIVE: u8 = 2;
    /// [`rh_common::RhError::NotResponsible`].
    pub const NOT_RESPONSIBLE: u8 = 3;
    /// [`rh_common::RhError::SelfDelegation`].
    pub const SELF_DELEGATION: u8 = 4;
    /// [`rh_common::RhError::LockConflict`].
    pub const LOCK_CONFLICT: u8 = 5;
    /// [`rh_common::RhError::Deadlock`].
    pub const DEADLOCK: u8 = 6;
    /// [`rh_common::RhError::UnknownObject`].
    pub const UNKNOWN_OBJECT: u8 = 7;
    /// [`rh_common::RhError::CorruptLog`].
    pub const CORRUPT_LOG: u8 = 8;
    /// [`rh_common::RhError::Codec`].
    pub const CODEC: u8 = 9;
    /// [`rh_common::RhError::Storage`].
    pub const STORAGE: u8 = 10;
    /// [`rh_common::RhError::DependencyCycle`].
    pub const DEPENDENCY_CYCLE: u8 = 11;
    /// [`rh_common::RhError::Protocol`].
    pub const PROTOCOL: u8 = 12;
    /// The server is draining and takes no new work.
    pub const DRAINING: u8 = 13;
    /// [`rh_common::RhError::VersionMismatch`] — the peers speak
    /// different wire-protocol versions.
    pub const VERSION_MISMATCH: u8 = 14;
    /// [`rh_common::RhError::Reenact`] — a time-travel target the log
    /// can no longer answer (history truncated past it).
    pub const REENACT: u8 = 15;
    /// [`rh_common::RhError::ReplLagging`] — a replica could not reach
    /// the read's `min_lsn` freshness bound within its wait deadline.
    pub const REPL_LAGGING: u8 = 16;
}

/// Maps an engine error to its wire class.
pub fn error_code(e: &RhError) -> u8 {
    match e {
        RhError::UnknownTxn(_) => errcode::UNKNOWN_TXN,
        RhError::TxnNotActive(_) => errcode::TXN_NOT_ACTIVE,
        RhError::NotResponsible { .. } => errcode::NOT_RESPONSIBLE,
        RhError::SelfDelegation(_) => errcode::SELF_DELEGATION,
        RhError::LockConflict { .. } => errcode::LOCK_CONFLICT,
        RhError::Deadlock { .. } => errcode::DEADLOCK,
        RhError::UnknownObject(_) => errcode::UNKNOWN_OBJECT,
        RhError::CorruptLog { .. } => errcode::CORRUPT_LOG,
        RhError::Codec(_) => errcode::CODEC,
        RhError::Storage(_) => errcode::STORAGE,
        RhError::DependencyCycle { .. } => errcode::DEPENDENCY_CYCLE,
        RhError::Protocol(_) => errcode::PROTOCOL,
        RhError::VersionMismatch { .. } => errcode::VERSION_MISMATCH,
        RhError::Reenact { .. } => errcode::REENACT,
        RhError::ReplLagging { .. } => errcode::REPL_LAGGING,
    }
}

/// Builds the [`Reply::Err`] for an engine error.
pub fn error_reply(e: &RhError) -> Reply {
    Reply::Err { code: error_code(e), message: e.to_string() }
}

/// Converts a savepoint LSN to its wire token.
pub fn token_of(lsn: Lsn) -> u64 {
    lsn.0
}

/// Converts a wire token back to the savepoint LSN.
pub fn lsn_of(token: u64) -> Lsn {
    Lsn(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + core::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn ops_round_trip() {
        for op in [
            Op::Begin,
            Op::Read(TxnId(1), ObjectId(2)),
            Op::Write(TxnId(1), ObjectId(2), -3),
            Op::Add(TxnId(1), ObjectId(2), 40),
            Op::Delegate(TxnId(1), TxnId(2), vec![ObjectId(3), ObjectId(4)]),
            Op::DelegateAll(TxnId(1), TxnId(2)),
            Op::Commit(TxnId(9)),
            Op::Abort(TxnId(9)),
            Op::Savepoint(TxnId(9)),
            Op::RollbackTo(TxnId(9), 77),
            Op::Permit(TxnId(1), TxnId(2), ObjectId(3)),
            Op::ValueOf(ObjectId(5)),
            Op::Stats,
            Op::Ping,
            Op::Shutdown,
            Op::ReadAsOf(ObjectId(5), Lsn(17)),
            Op::ReadAsOf(ObjectId(5), Lsn::NULL),
            Op::History(ObjectId(5), Lsn(0), Lsn::NULL),
            Op::ValueOfMin(ObjectId(5), Lsn(17)),
            Op::Durable(ObjectId(5)),
            Op::ReplSubscribe { shard: 3, from: Lsn(200) },
            Op::ReplAck(Lsn(199)),
        ] {
            round_trip(Request { id: 42, trace: 99, op });
        }
    }

    #[test]
    fn repl_msgs_round_trip() {
        round_trip(ReplMsg::Frame { lsn: Lsn(12), record: vec![1, 2, 3, 4] });
        round_trip(ReplMsg::Heartbeat { durable: Lsn(99) });
        // An unknown tag is a codec error, not a panic.
        assert!(ReplMsg::from_bytes(&[9, 0, 0]).is_err());
    }

    #[test]
    fn responses_round_trip() {
        for reply in [
            Reply::Ok(ReplyBody::Unit),
            Reply::Ok(ReplyBody::Txn(TxnId(7))),
            Reply::Ok(ReplyBody::Value(-12)),
            Reply::Ok(ReplyBody::Token(123)),
            Reply::Ok(ReplyBody::Json("{\"a\": 1}".into())),
            Reply::Err { code: errcode::LOCK_CONFLICT, message: "conflict".into() },
            Reply::Busy,
        ] {
            round_trip(Response { id: 7, reply });
        }
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_magic() {
        round_trip(Hello { accepted: true, session: 3, inflight_cap: 32 });
        let mut bytes = Hello { accepted: true, session: 3, inflight_cap: 32 }.to_bytes();
        bytes[0] ^= 0xff;
        assert!(Hello::from_bytes(&bytes).is_err());
    }

    #[test]
    fn hello_version_mismatch_is_a_dedicated_error_class() {
        // A peer announcing a different version must surface as
        // VersionMismatch (stable class, both versions named) — not as a
        // generic Codec failure.
        let mut bytes = Hello { accepted: true, session: 3, inflight_cap: 32 }.to_bytes();
        bytes[4..8].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
        let err = Hello::from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            RhError::VersionMismatch { got: PROTOCOL_VERSION + 1, want: PROTOCOL_VERSION }
        );
        assert_eq!(error_code(&err), errcode::VERSION_MISMATCH);
        let msg = err.to_string();
        assert!(msg.contains(&format!("v{}", PROTOCOL_VERSION + 1)), "message: {msg}");
        assert!(msg.contains(&format!("v{PROTOCOL_VERSION}")), "message: {msg}");
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let req = Request { id: 1, trace: NO_TRACE, op: Op::Ping }.to_bytes();
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        write_frame(&mut buf, &req).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(req.clone()));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(req));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn corrupt_frames_are_io_errors() {
        let req = Request { id: 1, trace: NO_TRACE, op: Op::Ping }.to_bytes();
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        // Flip a payload bit: CRC mismatch.
        let n = buf.len();
        buf[n - 1] ^= 0x01;
        assert!(read_frame(&mut &buf[..]).unwrap_err().kind() == io::ErrorKind::InvalidData);
        // Truncate mid-payload: unexpected EOF.
        let mut short = Vec::new();
        write_frame(&mut short, &req).unwrap();
        short.truncate(short.len() - 2);
        assert!(read_frame(&mut &short[..]).is_err());
        // Implausible length.
        let mut bogus = vec![0xff; 8];
        bogus.extend_from_slice(&[0; 4]);
        assert!(read_frame(&mut &bogus[..]).is_err());
    }

    #[test]
    fn error_codes_cover_every_variant() {
        assert_eq!(error_code(&RhError::UnknownTxn(TxnId(1))), errcode::UNKNOWN_TXN);
        assert_eq!(
            error_code(&RhError::ReplLagging { min_lsn: Lsn(9), applied: Lsn(4) }),
            errcode::REPL_LAGGING
        );
        assert_eq!(
            error_code(&RhError::LockConflict { txn: TxnId(1), object: ObjectId(2) }),
            errcode::LOCK_CONFLICT
        );
        let r = error_reply(&RhError::SelfDelegation(TxnId(3)));
        match r {
            Reply::Err { code, message } => {
                assert_eq!(code, errcode::SELF_DELEGATION);
                assert!(message.contains("t3"));
            }
            other => panic!("expected Err reply, got {other:?}"),
        }
    }
}
