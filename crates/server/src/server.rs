//! The serving core: shared state, admission control, session table,
//! and the drain / force-stop lifecycle.
//!
//! One [`Server`] owns one [`Backend`] — either a single engine
//! ([`rh_core::engine::RhDb`] wrapped in the [`rh_etm::EtmSession`]
//! synchronization layer) behind a mutex, or a range-sharded
//! [`rh_core::sharded::ShardedDb`] router — plus a
//! [`rh_obs::TcpService`] accept loop and a table of live sessions.
//! Each accepted connection gets two threads (frame reader + op worker,
//! see [`crate::conn`]); the worker executes operations under the
//! engine mutex (per shard, for the sharded backend) but forces commits
//! *outside* it, so concurrent sessions' commit records share the WAL's
//! group-commit fsync (the point of the
//! [`rh_core::engine::RhDb::commit_prepare`] split).
//!
//! Lock order in this crate (declared in the `rh-analyze` L2 manifest):
//! `sessions` before `engine` before `out`. In practice guards are
//! scoped so tightly that nesting never happens — the order exists so
//! the analyzer can prove it.

use crate::conn;
use crate::repl::ReplRegistry;
use crate::wire;
use parking_lot::{Condvar, Mutex};
use rh_common::ops::Value;
use rh_common::{Lsn, ObjectId, Result, RhError, TxnId};
use rh_core::engine::RhDb;
use rh_core::replica::ReplicaSet;
use rh_core::sharded::ShardedDb;
use rh_etm::EtmSession;
use rh_lock::LockManager;
use rh_obs::{names, Obs, Stopwatch, TcpService};
use rh_storage::Disk;
use rh_wal::{LogManager, StableLog};
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission control: sessions beyond this are answered with a
    /// rejected hello and closed.
    pub max_sessions: usize,
    /// Per-connection pipelining depth; requests beyond this many
    /// outstanding are bounced with BUSY (never queued unboundedly).
    pub inflight_per_conn: usize,
    /// A connection idle (or mid-frame stalled) longer than this is
    /// closed, its open transactions aborted.
    pub idle_timeout: Duration,
    /// How long a replica backend blocks a staleness-bounded read
    /// (`ValueOfMin`) waiting for the forward pass to reach the bound
    /// before refusing it with `ReplLagging`. Ignored on primaries.
    pub staleness_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            inflight_per_conn: 32,
            idle_timeout: Duration::from_secs(30),
            staleness_deadline: Duration::from_secs(5),
        }
    }
}

/// One registered session.
struct SessionEntry {
    /// A handle to the socket, kept to force-close it at drain.
    stream: TcpStream,
    /// Transactions begun by this session and not yet terminated.
    open: HashSet<TxnId>,
}

/// The session table: admission state plus transaction ownership, all
/// behind one mutex (`sessions` in the lock-order manifest).
pub(crate) struct SessionTable {
    next_id: u64,
    entries: HashMap<u64, SessionEntry>,
    /// Which session began each live transaction (for abort-on-close).
    owners: HashMap<TxnId, u64>,
}

impl SessionTable {
    fn new() -> Self {
        SessionTable { next_id: 1, entries: HashMap::new(), owners: HashMap::new() }
    }

    /// Admits a connection if below `max`, returning its session id.
    pub(crate) fn admit(&mut self, stream: TcpStream, max: usize) -> Option<u64> {
        if self.entries.len() >= max {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries.insert(id, SessionEntry { stream, open: HashSet::new() });
        Some(id)
    }

    /// Records that `sid` began `txn`.
    pub(crate) fn note_begin(&mut self, sid: u64, txn: TxnId) {
        if let Some(e) = self.entries.get_mut(&sid) {
            e.open.insert(txn);
            self.owners.insert(txn, sid);
        }
    }

    /// Records that `txn` terminated (committed or aborted), whoever
    /// owned it.
    pub(crate) fn note_terminated(&mut self, txn: TxnId) {
        if let Some(sid) = self.owners.remove(&txn) {
            if let Some(e) = self.entries.get_mut(&sid) {
                e.open.remove(&txn);
            }
        }
    }

    /// Deregisters `sid`, returning its still-open transactions.
    /// `None` if the session was already gone (closure is idempotent).
    pub(crate) fn close(&mut self, sid: u64) -> Option<Vec<TxnId>> {
        let entry = self.entries.remove(&sid)?;
        let mut open: Vec<TxnId> = entry.open.into_iter().collect();
        open.sort_unstable();
        for t in &open {
            self.owners.remove(t);
        }
        Some(open)
    }

    /// Live session count.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Force-closes every session's socket (drain / force-stop): the
    /// readers see EOF and the per-connection threads wind down.
    fn slam_sockets(&self) {
        for e in self.entries.values() {
            let _ = e.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Removes every entry, returning all still-open transactions.
    fn drain_all(&mut self) -> Vec<TxnId> {
        let mut open: Vec<TxnId> = self.owners.keys().copied().collect();
        open.sort_unstable();
        self.entries.clear();
        self.owners.clear();
        open
    }
}

/// The engine behind the wire: either one [`RhDb`] under the ETM layer
/// and a single mutex (the original configuration), or a range-sharded
/// [`ShardedDb`] whose router synchronizes internally — per-shard engine
/// mutexes instead of one global one, which is what lets independent
/// shards commit concurrently.
pub(crate) enum Backend {
    /// One engine, one mutex; commit forces happen on `log` *outside*
    /// the mutex (group commit).
    Single {
        /// The engine, behind the ETM layer.
        engine: Box<Mutex<EtmSession<RhDb>>>,
        /// The engine's log manager (commit forcing + stats absorption
        /// without the engine mutex).
        log: Arc<LogManager>,
        /// The engine's disk (stats absorption).
        disk: Arc<Disk>,
        /// The engine's lock manager (stats absorption).
        locks: Arc<LockManager>,
    },
    /// N shards behind the router; all methods take `&self`.
    Sharded(Arc<ShardedDb>),
    /// A read replica in perpetual forward pass: serves reads,
    /// time-travel, and introspection; every mutating op is refused
    /// with [`Backend::read_only`]. Promotion happens *outside* the
    /// server (the set is `Arc`-shared with whoever drives failover).
    Replica(Arc<ReplicaSet>),
}

impl Backend {
    /// The uniform refusal every mutating op gets on a replica.
    fn read_only<T>() -> Result<T> {
        Err(RhError::Protocol("replica is read-only: writes go to the primary"))
    }

    pub(crate) fn begin(&self) -> Result<TxnId> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.initiate_empty()
            }
            Backend::Sharded(db) => db.begin(),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn read(&self, t: TxnId, ob: ObjectId) -> Result<Value> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.read(t, ob)
            }
            Backend::Sharded(db) => db.read(t, ob),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn write(&self, t: TxnId, ob: ObjectId, v: Value) -> Result<()> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.write(t, ob, v)
            }
            Backend::Sharded(db) => db.write(t, ob, v),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn add(&self, t: TxnId, ob: ObjectId, d: Value) -> Result<()> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.add(t, ob, d)
            }
            Backend::Sharded(db) => db.add(t, ob, d),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn delegate(&self, tor: TxnId, tee: TxnId, obs: &[ObjectId]) -> Result<()> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.delegate(tor, tee, obs)
            }
            Backend::Sharded(db) => db.delegate(tor, tee, obs),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn delegate_all(&self, tor: TxnId, tee: TxnId) -> Result<()> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.delegate_all(tor, tee)
            }
            Backend::Sharded(db) => db.delegate_all(tor, tee),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn permit(&self, g: TxnId, p: TxnId, ob: ObjectId) -> Result<()> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.permit(g, p, ob)
            }
            Backend::Sharded(db) => db.permit(g, p, ob),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    /// The durable commit. Single: prepare under the engine mutex, force
    /// the log outside it so concurrent sessions share one group-commit
    /// fsync. Sharded: the router picks the single-shard fast path (same
    /// prepare/force split, per shard) or the cross-shard 2PC protocol.
    ///
    /// Returns the commit's measured phases `(name, micros)`, already
    /// emitted as `phase.*` trace points attributed to `(t, trace)` on
    /// the obs context where each phase ran (this engine's for the
    /// single backend; the owning shard's for 2PC edges). The phases are
    /// disjoint by construction — `phase.engine_hold` *excludes* the
    /// `commit_prepare` body it brackets — so their sum approximates the
    /// server-side commit latency.
    pub(crate) fn commit(
        &self,
        t: TxnId,
        trace: u64,
        obs: &Obs,
    ) -> Result<Vec<(&'static str, u64)>> {
        match self {
            Backend::Single { engine, log, .. } => {
                let held = Stopwatch::start();
                let mut prepare_us = 0u64;
                let lsn = {
                    let mut eng = engine.lock();
                    eng.commit_with(t, |db, t| {
                        let sw = Stopwatch::start();
                        // The commit-record force under the engine mutex is the
                        // single-node durability point (group commit happens
                        // below, in flush_to). rh-analyze: allow(L6)
                        let lsn = db.commit_prepare(t);
                        prepare_us = sw.elapsed_micros();
                        lsn
                    })?
                };
                let engine_us = held.elapsed_micros().saturating_sub(prepare_us);
                parking_lot::witness::note_hold(
                    names::LS_SERVER_ENGINE,
                    names::LW_SUB_COMMIT_PREPARE,
                    prepare_us,
                );
                let forced = Stopwatch::start();
                log.flush_to(lsn)?;
                let flush_us = forced.elapsed_micros();
                let phases = vec![
                    (names::PH_ENGINE_HOLD, engine_us),
                    (names::PH_COMMIT_PREPARE, prepare_us),
                    (names::PH_FLUSH_WAIT, flush_us),
                ];
                for &(name, us) in &phases {
                    obs.tracer.phase(name, t.0, trace, us);
                }
                Ok(phases)
            }
            Backend::Sharded(db) => db.commit_traced(t, trace),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn abort(&self, t: TxnId) -> Result<()> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.abort(t)
            }
            Backend::Sharded(db) => db.abort(t),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn savepoint(&self, t: TxnId) -> Result<u64> {
        match self {
            Backend::Single { engine, .. } => {
                let lsn = {
                    let mut eng = engine.lock();
                    eng.engine().savepoint(t)?
                };
                Ok(wire::token_of(lsn))
            }
            Backend::Sharded(db) => db.savepoint(t),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn rollback_to(&self, t: TxnId, token: u64) -> Result<()> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.engine().rollback_to(t, wire::lsn_of(token))
            }
            Backend::Sharded(db) => db.rollback_to(t, token),
            Backend::Replica(_) => Self::read_only(),
        }
    }

    pub(crate) fn value_of(&self, ob: ObjectId) -> Result<Value> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                eng.value_of(ob)
            }
            Backend::Sharded(db) => db.value_of(ob),
            Backend::Replica(set) => set.value_of(ob),
        }
    }

    /// Staleness-bounded read (wire `ValueOfMin`). On a primary every
    /// read is current, so the bound is trivially satisfied and this is
    /// a plain peek. On a replica the owning shard's forward pass must
    /// reach `min_lsn` within `deadline` or the read is refused with
    /// `ReplLagging` — it never answers from state older than its bound.
    pub(crate) fn value_of_min(
        &self,
        ob: ObjectId,
        min_lsn: Lsn,
        deadline: Duration,
    ) -> Result<Value> {
        match self {
            Backend::Single { .. } | Backend::Sharded(_) => self.value_of(ob),
            Backend::Replica(set) => set.value_of_min(ob, min_lsn, deadline),
        }
    }

    /// The durable-watermark probe (wire `Durable`): an LSN-space token
    /// usable as a `ValueOfMin` bound for read-your-writes. Primaries
    /// answer the owning shard's durable length — a commit ack implies
    /// the commit record is below it. Replicas answer their applied
    /// watermark (what a bounded read against *this* node can rely on).
    pub(crate) fn durable_watermark(&self, ob: ObjectId) -> Result<u64> {
        match self {
            Backend::Single { log, .. } => Ok(log.durable_len()),
            Backend::Sharded(db) => {
                let shard = db.shard_of(ob);
                let log =
                    db.shard_log(shard).ok_or(RhError::Protocol("shard index out of range"))?;
                Ok(log.durable_len())
            }
            Backend::Replica(set) => Ok(set.applied_lsn(set.shard_of(ob))?.0),
        }
    }

    /// The log a `ReplSubscribe { shard }` streams from. Only primaries
    /// ship; chaining replicas off replicas is refused.
    pub(crate) fn ship_log(&self, shard: u32) -> Result<Arc<LogManager>> {
        match self {
            Backend::Single { log, .. } => {
                if shard == 0 {
                    Ok(Arc::clone(log))
                } else {
                    Err(RhError::Protocol("shard index out of range"))
                }
            }
            Backend::Sharded(db) => db
                .shard_log(shard as usize)
                .cloned()
                .ok_or(RhError::Protocol("shard index out of range")),
            Backend::Replica(_) => {
                Err(RhError::Protocol("replicas do not ship the log; subscribe to the primary"))
            }
        }
    }

    /// Time-travel read (wire `ReadAsOf`): reenact the object's history
    /// at `as_of` from the WAL alone. Neither arm takes an engine mutex
    /// — the single backend replays through the `log` Arc captured at
    /// bind time, the sharded router replays the owning shard's log and
    /// stitches coordinator decisions from every shard's log — so a
    /// long deep-history replay never stalls the write path.
    pub(crate) fn read_as_of(&self, ob: ObjectId, as_of: Lsn, obs: &Arc<Obs>) -> Result<Value> {
        match self {
            Backend::Single { log, .. } => {
                let r = rh_core::reenact::query(log, obs, ob, as_of)?;
                Ok(r.value())
            }
            Backend::Sharded(db) => db.read_as_of(ob, as_of),
            Backend::Replica(set) => set.read_as_of(ob, as_of),
        }
    }

    /// Version timeline (wire `History`) rendered as a `history.v1`
    /// JSON document. Same no-engine-mutex property as
    /// [`Backend::read_as_of`].
    pub(crate) fn history_json(
        &self,
        ob: ObjectId,
        from: Lsn,
        to: Lsn,
        obs: &Arc<Obs>,
    ) -> Result<String> {
        match self {
            Backend::Single { log, .. } => {
                let r = rh_core::reenact::query(log, obs, ob, to)?;
                Ok(r.to_json_range(from, r.as_of, |_| false).render_pretty())
            }
            Backend::Sharded(db) => {
                let (r, decided) = db.reenact(ob, to)?;
                Ok(r.to_json_range(from, r.as_of, |t| decided.contains(&t)).render_pretty())
            }
            Backend::Replica(set) => {
                let (r, decided) = set.reenact(ob, to)?;
                Ok(r.to_json_range(from, r.as_of, |t| decided.contains(&t)).render_pretty())
            }
        }
    }

    pub(crate) fn checkpoint(&self) -> Result<()> {
        match self {
            Backend::Single { engine, .. } => {
                let mut eng = engine.lock();
                // The checkpoint's master-record force runs under the engine
                // mutex: a quiesced engine is what makes the snapshot
                // consistent. rh-analyze: allow(L6)
                eng.engine().checkpoint()
            }
            Backend::Sharded(db) => db.checkpoint_all(),
            // A replica cannot checkpoint (it does not own the
            // database); drain just forces its local logs, best-effort
            // — a promoted-away set has nothing left to flush.
            Backend::Replica(set) => {
                let _ = set.flush();
                Ok(())
            }
        }
    }

    /// One-stop stats, rendered. No engine mutex on either arm: the
    /// single backend absorbs through Arcs captured at bind time, the
    /// sharded router merge-sums per-shard registries.
    pub(crate) fn stats_json(&self, obs: &Arc<Obs>) -> String {
        match self {
            Backend::Single { log, disk, locks, .. } => {
                log.metrics().snapshot().export_into(&obs.registry);
                disk.metrics().snapshot().export_into(&obs.registry);
                locks.stats().snapshot().export_into(&obs.registry);
                obs.registry.snapshot().to_json().render_pretty()
            }
            Backend::Sharded(db) => db.stats().to_json().render_pretty(),
            Backend::Replica(set) => set.stats().to_json().render_pretty(),
        }
    }
}

/// State shared by the accept loop and every per-connection thread.
pub(crate) struct Shared {
    /// The engine backend (single or sharded). See the lock-order
    /// note in the module docs.
    pub(crate) backend: Backend,
    /// The backend's observability hub; `server.*` counters land here,
    /// which is what makes them visible to `RhDb::stats()` and the
    /// `/stats` introspection route.
    pub(crate) obs: Arc<Obs>,
    /// The replication subscriber registry: the ship loops report
    /// shipped/acked watermarks here, the `/replication` introspection
    /// route renders it.
    pub(crate) repl: Arc<ReplRegistry>,
    /// The session table.
    pub(crate) sessions: Mutex<SessionTable>,
    /// Join handles of per-connection threads, reaped at shutdown.
    pub(crate) reapers: Mutex<Vec<JoinHandle<()>>>,
    /// Set during drain: new connections and new requests are refused.
    pub(crate) draining: AtomicBool,
    /// Set by [`Server::force_stop`]: skip all tidy-up (simulated
    /// kill-9 — open transactions must become recovery losers).
    pub(crate) killed: AtomicBool,
    /// Tunables.
    pub(crate) cfg: ServerConfig,
    /// When this incarnation serves a *recovered* engine, the first
    /// committed ack observes `recovery.first_ack_us` against this
    /// watch — the operational "time until the restarted server did
    /// useful durable work" number the recovery report cannot see.
    pub(crate) started: Stopwatch,
    /// Armed at bind iff the engine came out of recovery; the first
    /// commit ack disarms it.
    pub(crate) first_ack_pending: AtomicBool,
    /// Flag + condvar behind [`Server::run_until_shutdown`].
    stop_flag: Mutex<bool>,
    stop_cv: Condvar,
}

impl Shared {
    /// Signals `run_until_shutdown` to return (wire `Shutdown` op).
    pub(crate) fn request_shutdown(&self) {
        let mut stopped = self.stop_flag.lock();
        *stopped = true;
        self.stop_cv.notify_all();
    }

    /// Current session count, for the active-sessions gauge.
    pub(crate) fn session_gauge(&self) {
        let n = { self.sessions.lock().len() } as u64;
        self.obs.registry.set(names::M_SRV_SESSIONS_ACTIVE, n);
    }
}

/// A running transaction front-end.
///
/// ```no_run
/// use rh_core::engine::{RhDb, Strategy};
/// use rh_server::{Server, ServerConfig};
///
/// let db = RhDb::new(Strategy::Rh);
/// let server = Server::bind("127.0.0.1:0", db, ServerConfig::default()).unwrap();
/// println!("serving on {}", server.local_addr());
/// server.run_until_shutdown();          // returns after a wire Shutdown op
/// let _db = server.shutdown().unwrap(); // drain: abort leftovers, checkpoint
/// ```
pub struct Server {
    shared: Arc<Shared>,
    service: TcpService,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `db`.
    ///
    /// The engine is wrapped in an [`EtmSession`] and owned by the
    /// server until [`Server::shutdown`] returns it. If the engine has
    /// a flight recorder, a "server-start" black box is frozen so a
    /// post-crash incarnation's postmortem covers the serving period.
    pub fn bind(addr: &str, db: RhDb, cfg: ServerConfig) -> std::io::Result<Server> {
        let log = Arc::clone(db.log());
        let disk = Arc::clone(db.disk());
        let locks = Arc::clone(db.locks());
        let obs = Arc::clone(db.obs());
        let recovered = db.last_recovery().is_some();
        db.record_blackbox("server-start");
        let backend = Backend::Single {
            engine: Box::new(Mutex::named(EtmSession::new(db), names::LS_SERVER_ENGINE)),
            log,
            disk,
            locks,
        };
        Self::bind_backend(addr, backend, obs, recovered, cfg, Arc::new(ReplRegistry::new()))
    }

    /// [`Server::bind`] with a caller-supplied replication registry, so
    /// the `/replication` introspection route (wired up before the
    /// engine moves into the server) and the ship loops share one view.
    pub fn bind_with_repl(
        addr: &str,
        db: RhDb,
        cfg: ServerConfig,
        repl: Arc<ReplRegistry>,
    ) -> std::io::Result<Server> {
        let log = Arc::clone(db.log());
        let disk = Arc::clone(db.disk());
        let locks = Arc::clone(db.locks());
        let obs = Arc::clone(db.obs());
        let recovered = db.last_recovery().is_some();
        db.record_blackbox("server-start");
        let backend = Backend::Single {
            engine: Box::new(Mutex::named(EtmSession::new(db), names::LS_SERVER_ENGINE)),
            log,
            disk,
            locks,
        };
        Self::bind_backend(addr, backend, obs, recovered, cfg, repl)
    }

    /// Binds `addr` and serves a range-sharded engine: requests are
    /// routed by object id at the wire layer, single-shard transactions
    /// take the per-shard fast path, cross-shard ones commit through
    /// 2PC. The router's internal synchronization replaces the single
    /// engine mutex, so sessions on different shards execute
    /// concurrently. Tear down with [`Server::shutdown_sharded`] (or
    /// [`Server::force_stop`] for a simulated kill-9).
    pub fn bind_sharded(addr: &str, db: ShardedDb, cfg: ServerConfig) -> std::io::Result<Server> {
        Self::bind_sharded_with_repl(addr, db, cfg, Arc::new(ReplRegistry::new()))
    }

    /// [`Server::bind_sharded`] with a caller-supplied replication
    /// registry (see [`Server::bind_with_repl`]).
    pub fn bind_sharded_with_repl(
        addr: &str,
        db: ShardedDb,
        cfg: ServerConfig,
        repl: Arc<ReplRegistry>,
    ) -> std::io::Result<Server> {
        let obs = Arc::clone(db.obs());
        let recovered = db.stats().counter(names::M_RECOVERY_RUNS) > 0;
        Self::bind_backend(addr, Backend::Sharded(Arc::new(db)), obs, recovered, cfg, repl)
    }

    /// Binds `addr` and serves a read replica: reads, staleness-bounded
    /// reads, time-travel, and stats answer from the set's perpetual
    /// forward pass; every mutating op is refused. The set stays
    /// `Arc`-shared with the caller, which keeps feeding it via a
    /// [`crate::repl::ReplicaRunner`] and promotes it on failover
    /// (tear this server down with [`Server::shutdown_replica`] first,
    /// then bind a writable server over the promoted engine).
    pub fn bind_replica(
        addr: &str,
        set: Arc<ReplicaSet>,
        cfg: ServerConfig,
        repl: Arc<ReplRegistry>,
    ) -> std::io::Result<Server> {
        let obs = Arc::clone(set.obs());
        Self::bind_backend(addr, Backend::Replica(set), obs, false, cfg, repl)
    }

    fn bind_backend(
        addr: &str,
        backend: Backend,
        obs: Arc<Obs>,
        recovered: bool,
        cfg: ServerConfig,
        repl: Arc<ReplRegistry>,
    ) -> std::io::Result<Server> {
        let shared = Arc::new(Shared {
            backend,
            obs,
            repl,
            sessions: Mutex::named(SessionTable::new(), names::LS_SERVER_SESSIONS),
            reapers: Mutex::named(Vec::new(), names::LS_SERVER_REAPERS),
            draining: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            cfg,
            started: Stopwatch::start(),
            first_ack_pending: AtomicBool::new(recovered),
            stop_flag: Mutex::named(false, names::LS_SERVER_STOP_FLAG),
            stop_cv: Condvar::new(),
        });
        let on_conn = Arc::clone(&shared);
        let service = TcpService::bind(
            addr,
            "rh-serve",
            Box::new(move |stream| conn::accept(&on_conn, stream)),
        )?;
        Ok(Server { shared, service })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.service.local_addr()
    }

    /// The stable half of the engine's log (crash tests keep this to
    /// recover a post-`force_stop` incarnation). For a sharded server
    /// this is shard 0's stable log; crash tests over sharded servers
    /// should keep per-shard handles from the [`ShardedDb`] instead.
    pub fn stable(&self) -> Arc<StableLog> {
        match &self.shared.backend {
            Backend::Single { log, .. } => log.stable(),
            Backend::Sharded(db) => db.primary_log().stable(),
            Backend::Replica(set) => {
                // Test-support accessor; a consumed (promoted) set is a
                // harness bug, not a durability path.
                set.shard_stable(0).expect("replica set not yet promoted") // rh-analyze: allow(L1)
            }
        }
    }

    /// The replication subscriber registry this server's ship loops
    /// report into (render it behind a `/replication` route).
    pub fn repl_registry(&self) -> Arc<ReplRegistry> {
        Arc::clone(&self.shared.repl)
    }

    /// The engine's disk handle (crash tests pair it with
    /// [`Server::stable`] for [`RhDb::recover`]). Shard 0's disk for a
    /// sharded server.
    pub fn disk(&self) -> Arc<Disk> {
        match &self.shared.backend {
            Backend::Single { disk, .. } => Arc::clone(disk),
            Backend::Sharded(db) => Arc::clone(db.primary_disk()),
            Backend::Replica(set) => {
                // Test-support accessor, as in `stable` above.
                set.shard_disk(0).expect("replica set not yet promoted") // rh-analyze: allow(L1)
            }
        }
    }

    /// Blocks until a client sends the wire `Shutdown` op.
    pub fn run_until_shutdown(&self) {
        let mut stopped = self.shared.stop_flag.lock();
        while !*stopped {
            self.shared.stop_cv.wait(&mut stopped);
        }
    }

    /// Waits up to `timeout` for a wire `Shutdown` op; `true` once one
    /// arrived. The polling form of [`Server::run_until_shutdown`], for
    /// callers that interleave another liveness check (a failover
    /// driver watching its replication source, say).
    pub fn wait_shutdown_for(&self, timeout: Duration) -> bool {
        let mut stopped = self.shared.stop_flag.lock();
        if !*stopped {
            let _ = self.shared.stop_cv.wait_for(&mut stopped, timeout);
        }
        *stopped
    }

    /// Graceful drain: stop accepting, close every session (their open
    /// transactions abort), checkpoint, and hand the engine back.
    ///
    /// The checkpoint moves the master record, so the next incarnation
    /// of this database must be opened from a surviving disk image —
    /// the normal path for a *graceful* stop. (Crash restarts instead
    /// rely on the master staying NULL while serving: the server never
    /// checkpoints mid-flight.)
    pub fn shutdown(self) -> Result<RhDb> {
        match Self::drain(self)? {
            Backend::Single { engine, .. } => {
                let db = engine.into_inner().into_engine();
                db.record_blackbox("server-drain");
                Ok(db)
            }
            _ => Err(RhError::Protocol("not a single-engine server: drain with its own shutdown")),
        }
    }

    /// Graceful drain of a sharded server: stop accepting, close every
    /// session (their open transactions abort in every shard they
    /// touched), checkpoint every shard, and hand the sharded engine
    /// back.
    pub fn shutdown_sharded(self) -> Result<ShardedDb> {
        match Self::drain(self)? {
            Backend::Sharded(db) => Arc::try_unwrap(db)
                .map_err(|_| RhError::Protocol("sharded engine still shared at drain")),
            _ => Err(RhError::Protocol("not a sharded server: drain with its own shutdown")),
        }
    }

    /// Graceful stop of a replica server: refuse new work, close every
    /// session, force the local logs, and hand the (still `Arc`-shared)
    /// set back. The failover path: stop the runner, `promote()` the
    /// set, call this to free the address, then bind a writable server
    /// over the promoted engine.
    pub fn shutdown_replica(self) -> Result<Arc<ReplicaSet>> {
        match Self::drain(self)? {
            Backend::Replica(set) => Ok(set),
            _ => Err(RhError::Protocol("not a replica server: drain with its own shutdown")),
        }
    }

    /// The common drain: refuse new work, close sessions, abort
    /// leftovers, checkpoint, and unwrap the shared state.
    fn drain(server: Server) -> Result<Backend> {
        let Server { shared, mut service } = server;
        shared.draining.store(true, Ordering::SeqCst);
        service.shutdown();
        {
            let table = shared.sessions.lock();
            table.slam_sockets();
        }
        join_reapers(&shared);
        let leftovers = {
            let mut table = shared.sessions.lock();
            table.drain_all()
        };
        for t in &leftovers {
            // Already-terminated ids are fine: abort is best-effort
            // here, the session workers normally beat us to it.
            let _ = shared.backend.abort(*t);
            shared.obs.registry.inc(names::M_SRV_TXNS_ABORTED_ON_CLOSE);
        }
        shared.backend.checkpoint()?;
        shared.obs.registry.inc(names::M_SRV_DRAINS);
        shared.obs.registry.set(names::M_SRV_SESSIONS_ACTIVE, 0);
        drop(service);
        let shared = Arc::try_unwrap(shared)
            .map_err(|_| RhError::Protocol("server state still shared at drain"))?;
        Ok(shared.backend)
    }

    /// Simulated kill-9: stop everything *without* aborting open
    /// transactions, flushing the log tail, or checkpointing. Volatile
    /// state evaporates exactly as in [`RhDb::crash`]; pair the handles
    /// from [`Server::stable`] / [`Server::disk`] with
    /// [`RhDb::recover`] to bring up the next incarnation.
    pub fn force_stop(self) {
        let Server { shared, mut service } = self;
        shared.killed.store(true, Ordering::SeqCst);
        shared.draining.store(true, Ordering::SeqCst);
        service.shutdown();
        {
            let table = shared.sessions.lock();
            table.slam_sockets();
        }
        join_reapers(&shared);
        // Dropping `shared` drops the engine: buffer pool, transaction
        // table, scopes, unflushed log tail — all gone, as in a crash.
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.service.local_addr()).finish()
    }
}

/// Joins every per-connection thread spawned so far.
fn join_reapers(shared: &Arc<Shared>) {
    let handles = {
        let mut reapers = shared.reapers.lock();
        std::mem::take(&mut *reapers)
    };
    for h in handles {
        let _ = h.join();
    }
}
