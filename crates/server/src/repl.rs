//! Replication plumbing around the wire protocol: the primary-side
//! **subscriber registry** behind the `/replication` introspection
//! route, and the replica-side **runner** that keeps one subscription
//! per shard alive — reconnecting with backoff and resuming from the
//! replica's own applied watermark, so a bounced primary (or a dropped
//! link) never requires re-seeding the replica.
//!
//! The registry is deliberately wire-agnostic bookkeeping: the ship
//! loop ([`crate::conn`]) reports shipped/heartbeat progress, acks
//! arrive on the same request channel as everything else, and the lag a
//! subscriber carries is derived on render — `lag_frames` from the
//! shipped/acked watermarks, `lag_us` from how long the subscriber has
//! been behind (cleared the moment it catches up).

use crate::wire::{self, Hello, Op, ReplMsg, Reply, ReplyBody, Request, Response};
use parking_lot::Mutex;
use rh_common::codec::Codec;
use rh_common::{Lsn, RhError};
use rh_core::replica::ReplicaSet;
use rh_obs::{names, JsonValue, Stopwatch};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One live subscription, as the ship loop reports it.
#[derive(Debug, Clone)]
pub struct SubscriberState {
    /// The shard whose log this subscriber consumes.
    pub shard: u32,
    /// Exclusive shipped watermark: every record below it is on the wire.
    pub shipped: Lsn,
    /// Exclusive acked watermark: the subscriber confirmed applying below it.
    pub acked: Lsn,
    /// Frames shipped over this subscription's lifetime.
    pub frames: u64,
    /// Heartbeats sent while caught up.
    pub heartbeats: u64,
    /// Acks received.
    pub acks: u64,
    /// When the subscriber first fell behind (registry clock, µs);
    /// `None` while caught up. `lag_us` on render is now minus this.
    pending_since_us: Option<u64>,
}

/// Replica-node self-report: the runner's view of one shard stream,
/// rendered under `"replica"` so a replica's `/replication` shows what
/// it has applied and how often it had to reconnect.
#[derive(Debug, Clone, Default)]
struct ApplyState {
    applied: Lsn,
    reconnects: u64,
}

struct RegistryInner {
    next_id: u64,
    entries: BTreeMap<u64, SubscriberState>,
    /// Keyed by shard; present only on replica nodes.
    apply: BTreeMap<u32, ApplyState>,
}

/// The `/replication` registry: every live subscription's watermarks on
/// a primary, every stream's applied watermark on a replica. One of
/// these is shared between the serving [`crate::Server`] and the
/// introspection route.
pub struct ReplRegistry {
    /// Registry-relative clock for lag-in-µs accounting.
    clock: Stopwatch,
    subscribers: Mutex<RegistryInner>,
}

impl Default for ReplRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplRegistry {
    /// An empty registry.
    pub fn new() -> ReplRegistry {
        ReplRegistry {
            clock: Stopwatch::start(),
            subscribers: Mutex::named(
                RegistryInner { next_id: 1, entries: BTreeMap::new(), apply: BTreeMap::new() },
                names::LS_SRV_SUBSCRIBERS,
            ),
        }
    }

    /// Registers a subscription starting at `from`, returning its id.
    pub fn subscribe(&self, shard: u32, from: Lsn) -> u64 {
        let mut inner = self.subscribers.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.insert(
            id,
            SubscriberState {
                shard,
                shipped: from,
                acked: from,
                frames: 0,
                heartbeats: 0,
                acks: 0,
                pending_since_us: None,
            },
        );
        id
    }

    /// Deregisters a subscription (connection gone).
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers.lock().entries.remove(&id);
    }

    /// Live subscription count (the `repl.ship.subscribers` gauge).
    pub fn subscriber_count(&self) -> u64 {
        self.subscribers.lock().entries.len() as u64
    }

    /// Advances a subscription's shipped watermark by `frames` frames.
    pub fn shipped(&self, id: u64, shipped: Lsn, frames: u64) {
        let now = self.clock.elapsed_micros();
        let mut inner = self.subscribers.lock();
        if let Some(s) = inner.entries.get_mut(&id) {
            s.shipped = shipped;
            s.frames += frames;
            if s.acked < s.shipped && s.pending_since_us.is_none() {
                s.pending_since_us = Some(now);
            }
        }
    }

    /// Counts a caught-up heartbeat.
    pub fn heartbeat(&self, id: u64) {
        let mut inner = self.subscribers.lock();
        if let Some(s) = inner.entries.get_mut(&id) {
            s.heartbeats += 1;
        }
    }

    /// Advances a subscription's acked watermark.
    pub fn acked(&self, id: u64, acked: Lsn) {
        let mut inner = self.subscribers.lock();
        if let Some(s) = inner.entries.get_mut(&id) {
            s.acked = s.acked.max(acked);
            s.acks += 1;
            if s.acked >= s.shipped {
                s.pending_since_us = None;
            }
        }
    }

    /// Replica-node self-report: the runner applied through `applied` on
    /// `shard`.
    pub fn note_applied(&self, shard: u32, applied: Lsn) {
        let mut inner = self.subscribers.lock();
        inner.apply.entry(shard).or_default().applied = applied;
    }

    /// Replica-node self-report: `shard`'s stream dropped and will be
    /// re-dialed.
    pub fn note_reconnect(&self, shard: u32) {
        let mut inner = self.subscribers.lock();
        inner.apply.entry(shard).or_default().reconnects += 1;
    }

    /// The `/replication` document (`repl.v1`): per-subscriber shipped /
    /// acked watermarks with lag in frames and µs, plus (on a replica)
    /// per-shard applied watermarks and reconnect counts.
    pub fn to_json(&self) -> JsonValue {
        let now = self.clock.elapsed_micros();
        let inner = self.subscribers.lock();
        let subscribers: Vec<JsonValue> = inner
            .entries
            .iter()
            .map(|(id, s)| {
                JsonValue::obj(vec![
                    ("id", JsonValue::U64(*id)),
                    ("shard", JsonValue::U64(u64::from(s.shard))),
                    ("shipped_lsn", JsonValue::U64(s.shipped.0)),
                    ("acked_lsn", JsonValue::U64(s.acked.0)),
                    ("frames", JsonValue::U64(s.frames)),
                    ("heartbeats", JsonValue::U64(s.heartbeats)),
                    ("acks", JsonValue::U64(s.acks)),
                    ("lag_frames", JsonValue::U64(s.shipped.0.saturating_sub(s.acked.0))),
                    (
                        "lag_us",
                        JsonValue::U64(
                            s.pending_since_us.map_or(0, |since| now.saturating_sub(since)),
                        ),
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            ("schema", JsonValue::Str("repl.v1".to_string())),
            ("subscribers", JsonValue::Arr(subscribers)),
        ];
        if !inner.apply.is_empty() {
            let streams: Vec<JsonValue> = inner
                .apply
                .iter()
                .map(|(shard, a)| {
                    JsonValue::obj(vec![
                        ("shard", JsonValue::U64(u64::from(*shard))),
                        ("applied_lsn", JsonValue::U64(a.applied.0)),
                        ("reconnects", JsonValue::U64(a.reconnects)),
                    ])
                })
                .collect();
            fields.push(("replica", JsonValue::Arr(streams)));
        }
        JsonValue::obj(fields)
    }
}

/// Tunables for the replica-side subscriber runner.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Ack after this many applied frames (heartbeats always ack, so a
    /// quiet stream still confirms within one heartbeat interval).
    pub ack_every: u64,
    /// Socket read timeout: a stream silent longer than this — no
    /// frames, no heartbeats — is declared dead and re-dialed. Must
    /// comfortably exceed the primary's heartbeat interval.
    pub heartbeat_grace: Duration,
    /// Sleep between reconnect attempts.
    pub reconnect_backoff: Duration,
    /// After this many *consecutive* failed attempts, declare the
    /// source lost ([`ReplicaRunner::source_lost`] turns true — the
    /// promote-on-failure trigger). `None` retries forever.
    pub max_reconnect_failures: Option<u32>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            ack_every: 32,
            heartbeat_grace: Duration::from_secs(2),
            reconnect_backoff: Duration::from_millis(200),
            max_reconnect_failures: None,
        }
    }
}

/// Keeps one wire subscription per shard of a [`ReplicaSet`] alive
/// against a primary address: dial, hello, `ReplSubscribe` from the
/// local applied watermark, then apply [`ReplMsg`] frames as they
/// arrive — acking every [`RunnerConfig::ack_every`] frames and on
/// every heartbeat. A dropped stream re-dials with backoff and resumes
/// from `applied_lsn`; the primary re-ships only the unapplied suffix,
/// so neither a bounced primary nor a bounced replica needs re-seeding.
pub struct ReplicaRunner {
    stop: Arc<AtomicBool>,
    lost: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl ReplicaRunner {
    /// Spawns one subscriber thread per shard of `set`, streaming from
    /// `source` (the primary's serving address).
    pub fn start(
        set: Arc<ReplicaSet>,
        registry: Arc<ReplRegistry>,
        source: String,
        cfg: RunnerConfig,
    ) -> ReplicaRunner {
        let stop = Arc::new(AtomicBool::new(false));
        let lost = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(set.shard_count());
        for shard in 0..set.shard_count() as u32 {
            let set = Arc::clone(&set);
            let registry = Arc::clone(&registry);
            let source = source.clone();
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            let lost = Arc::clone(&lost);
            let spawned =
                std::thread::Builder::new().name(format!("rh-repl-s{shard}")).spawn(move || {
                    subscriber_loop(&set, &registry, &source, shard, &cfg, &stop, &lost)
                });
            if let Ok(h) = spawned {
                handles.push(h);
            }
        }
        ReplicaRunner { stop, lost, handles }
    }

    /// True once some shard's stream exhausted its reconnect budget —
    /// the primary is gone as far as this replica can tell.
    pub fn source_lost(&self) -> bool {
        self.lost.load(Ordering::SeqCst)
    }

    /// Stops every subscriber thread and joins them.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Why one subscription attempt ended.
enum StreamEnd {
    /// Stop requested, or the set was promoted out from under us.
    Done,
    /// Transport / protocol failure after applying `progressed` frames.
    Failed { progressed: bool },
}

fn subscriber_loop(
    set: &ReplicaSet,
    registry: &ReplRegistry,
    source: &str,
    shard: u32,
    cfg: &RunnerConfig,
    stop: &AtomicBool,
    lost: &AtomicBool,
) {
    let mut failures: u32 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream_once(set, registry, source, shard, cfg, stop) {
            StreamEnd::Done => return,
            StreamEnd::Failed { progressed } => {
                if progressed {
                    // A stream that shipped real frames was a live
                    // primary; only consecutive dead dials count toward
                    // declaring it lost.
                    failures = 0;
                }
                failures += 1;
                registry.note_reconnect(shard);
                set.obs().registry.inc(names::M_REPL_RECONNECTS);
            }
        }
        if let Some(max) = cfg.max_reconnect_failures {
            if failures >= max {
                lost.store(true, Ordering::SeqCst);
                return;
            }
        }
        std::thread::sleep(cfg.reconnect_backoff);
    }
}

/// One subscription attempt: dial, resume from the local applied
/// watermark, and stream until something ends it.
fn stream_once(
    set: &ReplicaSet,
    registry: &ReplRegistry,
    source: &str,
    shard: u32,
    cfg: &RunnerConfig,
    stop: &AtomicBool,
) -> StreamEnd {
    let failed = |progressed| StreamEnd::Failed { progressed };
    // Promoted sets refuse `applied_lsn`: the stream's job is over.
    let Ok(from) = set.applied_lsn(shard as usize) else { return StreamEnd::Done };
    let Ok(mut stream) = TcpStream::connect(source) else { return failed(false) };
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.heartbeat_grace)).is_err() {
        return failed(false);
    }
    // Hello exchange, then the subscription handshake: one Ok(Unit)
    // response and the socket becomes a ReplMsg stream.
    let Ok(Some(payload)) = wire::read_frame(&mut stream) else { return failed(false) };
    let Ok(hello) = Hello::from_bytes(&payload) else { return failed(false) };
    if !hello.accepted {
        return failed(false);
    }
    let req = Request { id: 1, trace: wire::NO_TRACE, op: Op::ReplSubscribe { shard, from } };
    if wire::write_frame(&mut stream, &req.to_bytes()).is_err() {
        return failed(false);
    }
    let Ok(Some(payload)) = wire::read_frame(&mut stream) else { return failed(false) };
    let Ok(resp) = Response::from_bytes(&payload) else { return failed(false) };
    if !matches!(resp.reply, Reply::Ok(ReplyBody::Unit)) {
        return failed(false);
    }

    let mut progressed = false;
    let mut since_ack = 0u64;
    let mut ack_id = 2u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return StreamEnd::Done;
        }
        let Ok(Some(payload)) = wire::read_frame(&mut stream) else {
            // EOF, heartbeat-grace timeout, or transport error: the
            // stream is dead either way; resume from `applied_lsn`.
            return failed(progressed);
        };
        let Ok(msg) = ReplMsg::from_bytes(&payload) else { return failed(progressed) };
        match msg {
            ReplMsg::Frame { lsn, record } => {
                let applied = match set.apply_frame(shard as usize, lsn, &record) {
                    Ok(applied) => applied,
                    Err(RhError::Protocol(_)) => return StreamEnd::Done, // promoted
                    Err(_) => return failed(progressed),
                };
                progressed = true;
                registry.note_applied(shard, applied);
                since_ack += 1;
                if since_ack >= cfg.ack_every {
                    since_ack = 0;
                    if send_ack(&mut stream, &mut ack_id, applied).is_err() {
                        return failed(progressed);
                    }
                }
            }
            ReplMsg::Heartbeat { durable: _ } => {
                // Quiet stream: flush the local log (bounding the
                // re-ship window a replica bounce would need) and
                // confirm the watermark.
                let Ok(applied) = set.applied_lsn(shard as usize) else { return StreamEnd::Done };
                if set.flush_shard(shard as usize).is_err() {
                    return StreamEnd::Done;
                }
                registry.note_applied(shard, applied);
                since_ack = 0;
                if send_ack(&mut stream, &mut ack_id, applied).is_err() {
                    return failed(progressed);
                }
            }
        }
    }
}

/// Frames one `ReplAck` onto the subscription socket. The server never
/// replies to acks, so this is fire-and-forget.
fn send_ack(stream: &mut TcpStream, ack_id: &mut u64, applied: Lsn) -> std::io::Result<()> {
    let id = *ack_id;
    *ack_id += 1;
    let req = Request { id, trace: wire::NO_TRACE, op: Op::ReplAck(applied) };
    wire::write_frame(stream, &req.to_bytes())
}
