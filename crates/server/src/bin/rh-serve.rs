//! `rh-serve` — run the ARIES/RH engine as a network server.
//!
//! ```text
//! rh-serve --dir target/obs/db --addr 127.0.0.1:7411 \
//!          [--shards N] [--introspect 127.0.0.1:7412] [--strategy rh|lazy] \
//!          [--max-sessions N] [--inflight N] [--idle-ms N]
//! ```
//!
//! Opens (or creates) a file-backed WAL in `--dir`. A non-empty log
//! with a NULL master record is the crash-restart case: the server
//! runs restart recovery first and prints the report, so a kill-9'd
//! predecessor's acknowledged commits are back before the first
//! connection is accepted. A non-NULL master means the directory was
//! closed by a *graceful* drain-and-checkpoint; its page state lives in
//! the drained process's disk image, which files alone cannot rebuild —
//! the server refuses such a directory rather than serve wrong data.
//!
//! With `--shards N` (N > 1) the engine is range-sharded: each shard
//! keeps its own WAL segment directory `--dir/shard-K/` (plus its own
//! flight-recorder sidecar), requests route by object id, and
//! cross-shard transactions commit through two-phase commit. A
//! crash-restart recovers every shard in parallel and resolves in-doubt
//! 2PC transactions against the coordinator records before serving.
//!
//! The process exits on a wire `Shutdown` op (graceful drain +
//! checkpoint). Kill it with a signal to exercise the crash path
//! instead.

use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::sharded::{ShardMap, ShardedDb};
use rh_server::{Server, ServerConfig};
use rh_storage::Disk;
use rh_wal::StableLog;
use std::time::Duration;

struct Args {
    dir: String,
    addr: String,
    introspect: Option<String>,
    strategy: Strategy,
    shards: usize,
    cfg: ServerConfig,
}

fn usage(reason: &str) -> ! {
    eprintln!("rh-serve: {reason}");
    eprintln!(
        "usage: rh-serve --dir PATH [--addr HOST:PORT] [--shards N] \
         [--introspect HOST:PORT] [--strategy rh|lazy] [--max-sessions N] \
         [--inflight N] [--idle-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        dir: String::new(),
        addr: "127.0.0.1:7411".to_string(),
        introspect: None,
        strategy: Strategy::Rh,
        shards: 1,
        cfg: ServerConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => usage(&format!("{name} needs a value")),
        };
        match flag.as_str() {
            "--dir" => out.dir = value("--dir"),
            "--addr" => out.addr = value("--addr"),
            "--introspect" => out.introspect = Some(value("--introspect")),
            "--strategy" => {
                out.strategy = match value("--strategy").as_str() {
                    "rh" => Strategy::Rh,
                    "lazy" => Strategy::LazyRewrite,
                    other => usage(&format!("unknown strategy {other}")),
                }
            }
            "--shards" => match value("--shards").parse() {
                Ok(n) if n >= 1 => out.shards = n,
                _ => usage("--shards needs an integer >= 1"),
            },
            "--max-sessions" => match value("--max-sessions").parse() {
                Ok(n) => out.cfg.max_sessions = n,
                Err(_) => usage("--max-sessions needs an integer"),
            },
            "--inflight" => match value("--inflight").parse() {
                Ok(n) => out.cfg.inflight_per_conn = n,
                Err(_) => usage("--inflight needs an integer"),
            },
            "--idle-ms" => match value("--idle-ms").parse() {
                Ok(n) => out.cfg.idle_timeout = Duration::from_millis(n),
                Err(_) => usage("--idle-ms needs an integer"),
            },
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if out.dir.is_empty() {
        usage("--dir is required");
    }
    out
}

/// The graceful-drain refusal, shared by both configurations.
fn refuse_drained(dir: &str, master: rh_common::Lsn) -> String {
    format!(
        "{dir} was closed by a graceful drain (checkpoint taken at {master}); its page state \
         lives in the drained process's disk image and cannot be rebuilt from the log \
         alone. Serve a fresh --dir, or restart only after crashes."
    )
}

fn open_engine(args: &Args) -> Result<RhDb, String> {
    let stable = StableLog::open_dir(&args.dir).map_err(|e| format!("open {}: {e}", args.dir))?;
    if stable.is_empty() {
        println!("rh-serve: fresh database in {}", args.dir);
        return Ok(RhDb::with_stable_log(args.strategy, DbConfig::default(), stable));
    }
    if !stable.master().is_null() {
        return Err(refuse_drained(&args.dir, stable.master()));
    }
    println!("rh-serve: crash-restart of {} ({} stable records)", args.dir, stable.len());
    let db = RhDb::recover(args.strategy, DbConfig::default(), stable, Disk::new())
        .map_err(|e| format!("recovery failed: {e}"))?;
    if let Some(report) = db.last_recovery() {
        println!("rh-serve: recovery report: {report:?}");
    }
    Ok(db)
}

/// Opens (or creates / crash-recovers) the per-shard WAL directories
/// `--dir/shard-0 .. shard-N-1`. The tri-state is uniform across
/// shards: any shard closed by a graceful drain refuses the whole
/// directory; all-empty is a fresh database; anything else is a
/// crash-restart, recovered shard-parallel with in-doubt 2PC resolution.
fn open_sharded(args: &Args) -> Result<ShardedDb, String> {
    let mut stables = Vec::with_capacity(args.shards);
    let mut empty = 0usize;
    for k in 0..args.shards {
        let dir = format!("{}/shard-{k}", args.dir);
        let stable = StableLog::open_dir(&dir).map_err(|e| format!("open {dir}: {e}"))?;
        if !stable.master().is_null() {
            return Err(refuse_drained(&dir, stable.master()));
        }
        if stable.is_empty() {
            empty += 1;
        }
        stables.push(stable);
    }
    if empty == args.shards {
        println!("rh-serve: fresh sharded database in {} ({} shards)", args.dir, args.shards);
        return ShardedDb::with_stable_logs(
            args.strategy,
            DbConfig::default(),
            stables,
            ShardMap::RANGE_SHIFT,
        )
        .map_err(|e| format!("open sharded: {e}"));
    }
    let records: usize = stables.iter().map(|s| s.len()).sum();
    println!(
        "rh-serve: crash-restart of {} ({} shards, {} stable records)",
        args.dir, args.shards, records
    );
    let parts = stables.into_iter().map(|s| (s, Disk::new())).collect();
    let db = ShardedDb::recover(args.strategy, DbConfig::default(), parts, ShardMap::RANGE_SHIFT)
        .map_err(|e| format!("recovery failed: {e}"))?;
    for k in 0..db.shard_count() {
        if let Some(report) = db.shard_recovery(k) {
            println!(
                "rh-serve: shard {k} recovery: losers={:?} indoubt={:?} coord-commits={}",
                report.losers,
                report.indoubt,
                report.coord_commits.len()
            );
        }
    }
    let stats = db.stats();
    println!(
        "rh-serve: in-doubt resolution: resolved={} committed={}",
        stats.counter("shard.indoubt.resolved"),
        stats.counter("shard.indoubt.committed"),
    );
    Ok(db)
}

fn die(reason: &str) -> ! {
    eprintln!("rh-serve: {reason}");
    std::process::exit(1);
}

fn print_drained(stats: &rh_obs::RegistrySnapshot) {
    println!(
        "rh-serve: drained. commits={} sessions={} fsyncs={}",
        stats.counter("server.commits"),
        stats.counter("server.sessions.opened"),
        stats.counter("log.fsyncs"),
    );
}

fn run_single(args: &Args) {
    let mut db = match open_engine(args) {
        Ok(db) => db,
        Err(reason) => die(&reason),
    };
    if let Some(iaddr) = &args.introspect {
        match db.serve_introspection(iaddr) {
            Ok(bound) => println!("rh-serve: introspection on http://{bound}"),
            Err(e) => die(&format!("cannot bind introspection {iaddr}: {e}")),
        }
    }
    let server = match Server::bind(&args.addr, db, args.cfg.clone()) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {}: {e}", args.addr)),
    };
    println!("rh-serve: listening on {}", server.local_addr());
    server.run_until_shutdown();
    println!("rh-serve: shutdown requested, draining");
    match server.shutdown() {
        Ok(db) => print_drained(&db.stats()),
        Err(e) => die(&format!("drain failed: {e}")),
    }
}

fn run_sharded(args: &Args) {
    let db = match open_sharded(args) {
        Ok(db) => db,
        Err(reason) => die(&reason),
    };
    if let Some(iaddr) = &args.introspect {
        match db.serve_introspection(iaddr) {
            Ok(bound) => println!("rh-serve: introspection on http://{bound}"),
            Err(e) => die(&format!("cannot bind introspection {iaddr}: {e}")),
        }
    }
    let server = match Server::bind_sharded(&args.addr, db, args.cfg.clone()) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {}: {e}", args.addr)),
    };
    println!("rh-serve: listening on {} ({} shards)", server.local_addr(), args.shards);
    server.run_until_shutdown();
    println!("rh-serve: shutdown requested, draining");
    match server.shutdown_sharded() {
        Ok(db) => print_drained(&db.stats()),
        Err(e) => die(&format!("drain failed: {e}")),
    }
}

fn main() {
    let args = parse_args();
    if args.shards > 1 {
        run_sharded(&args);
    } else {
        run_single(&args);
    }
}
