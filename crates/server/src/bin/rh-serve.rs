//! `rh-serve` — run the ARIES/RH engine as a network server.
//!
//! ```text
//! rh-serve --dir target/obs/db --addr 127.0.0.1:7411 \
//!          [--introspect 127.0.0.1:7412] [--strategy rh|lazy] \
//!          [--max-sessions N] [--inflight N] [--idle-ms N]
//! ```
//!
//! Opens (or creates) a file-backed WAL in `--dir`. A non-empty log
//! with a NULL master record is the crash-restart case: the server
//! runs restart recovery first and prints the report, so a kill-9'd
//! predecessor's acknowledged commits are back before the first
//! connection is accepted. A non-NULL master means the directory was
//! closed by a *graceful* drain-and-checkpoint; its page state lives in
//! the drained process's disk image, which files alone cannot rebuild —
//! the server refuses such a directory rather than serve wrong data.
//!
//! The process exits on a wire `Shutdown` op (graceful drain +
//! checkpoint). Kill it with a signal to exercise the crash path
//! instead.

use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_server::{Server, ServerConfig};
use rh_storage::Disk;
use rh_wal::StableLog;
use std::time::Duration;

struct Args {
    dir: String,
    addr: String,
    introspect: Option<String>,
    strategy: Strategy,
    cfg: ServerConfig,
}

fn usage(reason: &str) -> ! {
    eprintln!("rh-serve: {reason}");
    eprintln!(
        "usage: rh-serve --dir PATH [--addr HOST:PORT] [--introspect HOST:PORT] \
         [--strategy rh|lazy] [--max-sessions N] [--inflight N] [--idle-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        dir: String::new(),
        addr: "127.0.0.1:7411".to_string(),
        introspect: None,
        strategy: Strategy::Rh,
        cfg: ServerConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => usage(&format!("{name} needs a value")),
        };
        match flag.as_str() {
            "--dir" => out.dir = value("--dir"),
            "--addr" => out.addr = value("--addr"),
            "--introspect" => out.introspect = Some(value("--introspect")),
            "--strategy" => {
                out.strategy = match value("--strategy").as_str() {
                    "rh" => Strategy::Rh,
                    "lazy" => Strategy::LazyRewrite,
                    other => usage(&format!("unknown strategy {other}")),
                }
            }
            "--max-sessions" => match value("--max-sessions").parse() {
                Ok(n) => out.cfg.max_sessions = n,
                Err(_) => usage("--max-sessions needs an integer"),
            },
            "--inflight" => match value("--inflight").parse() {
                Ok(n) => out.cfg.inflight_per_conn = n,
                Err(_) => usage("--inflight needs an integer"),
            },
            "--idle-ms" => match value("--idle-ms").parse() {
                Ok(n) => out.cfg.idle_timeout = Duration::from_millis(n),
                Err(_) => usage("--idle-ms needs an integer"),
            },
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if out.dir.is_empty() {
        usage("--dir is required");
    }
    out
}

fn open_engine(args: &Args) -> Result<RhDb, String> {
    let stable = StableLog::open_dir(&args.dir).map_err(|e| format!("open {}: {e}", args.dir))?;
    if stable.is_empty() {
        println!("rh-serve: fresh database in {}", args.dir);
        return Ok(RhDb::with_stable_log(args.strategy, DbConfig::default(), stable));
    }
    if !stable.master().is_null() {
        return Err(format!(
            "{} was closed by a graceful drain (checkpoint taken at {}); its page state \
             lives in the drained process's disk image and cannot be rebuilt from the log \
             alone. Serve a fresh --dir, or restart only after crashes.",
            args.dir,
            stable.master()
        ));
    }
    println!("rh-serve: crash-restart of {} ({} stable records)", args.dir, stable.len());
    let db = RhDb::recover(args.strategy, DbConfig::default(), stable, Disk::new())
        .map_err(|e| format!("recovery failed: {e}"))?;
    if let Some(report) = db.last_recovery() {
        println!("rh-serve: recovery report: {report:?}");
    }
    Ok(db)
}

fn main() {
    let args = parse_args();
    let mut db = match open_engine(&args) {
        Ok(db) => db,
        Err(reason) => {
            eprintln!("rh-serve: {reason}");
            std::process::exit(1);
        }
    };
    if let Some(iaddr) = &args.introspect {
        match db.serve_introspection(iaddr) {
            Ok(bound) => println!("rh-serve: introspection on http://{bound}"),
            Err(e) => {
                eprintln!("rh-serve: cannot bind introspection {iaddr}: {e}");
                std::process::exit(1);
            }
        }
    }
    let server = match Server::bind(&args.addr, db, args.cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rh-serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("rh-serve: listening on {}", server.local_addr());
    server.run_until_shutdown();
    println!("rh-serve: shutdown requested, draining");
    match server.shutdown() {
        Ok(db) => {
            let stats = db.stats();
            println!(
                "rh-serve: drained. commits={} sessions={} fsyncs={}",
                stats.counter("server.commits"),
                stats.counter("server.sessions.opened"),
                stats.counter("log.fsyncs"),
            );
        }
        Err(e) => {
            eprintln!("rh-serve: drain failed: {e}");
            std::process::exit(1);
        }
    }
}
