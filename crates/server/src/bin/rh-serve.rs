//! `rh-serve` — run the ARIES/RH engine as a network server.
//!
//! ```text
//! rh-serve --dir target/obs/db --addr 127.0.0.1:7411 \
//!          [--shards N] [--introspect 127.0.0.1:7412] [--strategy rh|lazy] \
//!          [--max-sessions N] [--inflight N] [--idle-ms N]
//! ```
//!
//! Opens (or creates) a file-backed WAL in `--dir`. A non-empty log
//! with a NULL master record is the crash-restart case: the server
//! runs restart recovery first and prints the report, so a kill-9'd
//! predecessor's acknowledged commits are back before the first
//! connection is accepted. A non-NULL master means the directory was
//! closed by a *graceful* drain-and-checkpoint; its page state lives in
//! the drained process's disk image, which files alone cannot rebuild —
//! the server refuses such a directory rather than serve wrong data.
//!
//! With `--shards N` (N > 1) the engine is range-sharded: each shard
//! keeps its own WAL segment directory `--dir/shard-K/` (plus its own
//! flight-recorder sidecar), requests route by object id, and
//! cross-shard transactions commit through two-phase commit. A
//! crash-restart recovers every shard in parallel and resolves in-doubt
//! 2PC transactions against the coordinator records before serving.
//!
//! The process exits on a wire `Shutdown` op (graceful drain +
//! checkpoint). Kill it with a signal to exercise the crash path
//! instead.
//!
//! **Replication.** With `--replica-of HOST:PORT` the process runs as a
//! read replica: it subscribes to the primary's per-shard WAL streams
//! (resuming from its own durable prefix after a bounce), serves
//! read-only sessions on `--addr`, and exposes `/replication` on the
//! introspection address. Add `--promote` and a primary that stays
//! unreachable past the reconnect budget triggers failover: the replica
//! finishes its forward pass, runs the backward pass over loser
//! clusters, resolves in-doubt 2PC, and re-binds `--addr` as a writable
//! primary. Primaries always accept `ReplSubscribe`, so any server
//! started by this binary can feed replicas.

use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::replica::{PromotedDb, ReplicaSet};
use rh_core::sharded::{ShardMap, ShardedDb};
use rh_server::{ReplRegistry, ReplicaRunner, RunnerConfig, Server, ServerConfig};
use rh_storage::Disk;
use rh_wal::StableLog;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    dir: String,
    addr: String,
    introspect: Option<String>,
    strategy: Strategy,
    shards: usize,
    replica_of: Option<String>,
    promote: bool,
    cfg: ServerConfig,
}

fn usage(reason: &str) -> ! {
    eprintln!("rh-serve: {reason}");
    eprintln!(
        "usage: rh-serve --dir PATH [--addr HOST:PORT] [--shards N] \
         [--introspect HOST:PORT] [--strategy rh|lazy] [--max-sessions N] \
         [--inflight N] [--idle-ms N] [--replica-of HOST:PORT [--promote]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        dir: String::new(),
        addr: "127.0.0.1:7411".to_string(),
        introspect: None,
        strategy: Strategy::Rh,
        shards: 1,
        replica_of: None,
        promote: false,
        cfg: ServerConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => usage(&format!("{name} needs a value")),
        };
        match flag.as_str() {
            "--dir" => out.dir = value("--dir"),
            "--addr" => out.addr = value("--addr"),
            "--introspect" => out.introspect = Some(value("--introspect")),
            "--strategy" => {
                out.strategy = match value("--strategy").as_str() {
                    "rh" => Strategy::Rh,
                    "lazy" => Strategy::LazyRewrite,
                    other => usage(&format!("unknown strategy {other}")),
                }
            }
            "--shards" => match value("--shards").parse() {
                Ok(n) if n >= 1 => out.shards = n,
                _ => usage("--shards needs an integer >= 1"),
            },
            "--max-sessions" => match value("--max-sessions").parse() {
                Ok(n) => out.cfg.max_sessions = n,
                Err(_) => usage("--max-sessions needs an integer"),
            },
            "--inflight" => match value("--inflight").parse() {
                Ok(n) => out.cfg.inflight_per_conn = n,
                Err(_) => usage("--inflight needs an integer"),
            },
            "--idle-ms" => match value("--idle-ms").parse() {
                Ok(n) => out.cfg.idle_timeout = Duration::from_millis(n),
                Err(_) => usage("--idle-ms needs an integer"),
            },
            "--replica-of" => out.replica_of = Some(value("--replica-of")),
            "--promote" => out.promote = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if out.dir.is_empty() {
        usage("--dir is required");
    }
    if out.promote && out.replica_of.is_none() {
        usage("--promote only makes sense with --replica-of");
    }
    out
}

/// The graceful-drain refusal, shared by both configurations.
fn refuse_drained(dir: &str, master: rh_common::Lsn) -> String {
    format!(
        "{dir} was closed by a graceful drain (checkpoint taken at {master}); its page state \
         lives in the drained process's disk image and cannot be rebuilt from the log \
         alone. Serve a fresh --dir, or restart only after crashes."
    )
}

fn open_engine(args: &Args) -> Result<RhDb, String> {
    let stable = StableLog::open_dir(&args.dir).map_err(|e| format!("open {}: {e}", args.dir))?;
    if stable.is_empty() {
        println!("rh-serve: fresh database in {}", args.dir);
        return Ok(RhDb::with_stable_log(args.strategy, DbConfig::default(), stable));
    }
    if !stable.master().is_null() {
        return Err(refuse_drained(&args.dir, stable.master()));
    }
    println!("rh-serve: crash-restart of {} ({} stable records)", args.dir, stable.len());
    let db = RhDb::recover(args.strategy, DbConfig::default(), stable, Disk::new())
        .map_err(|e| format!("recovery failed: {e}"))?;
    if let Some(report) = db.last_recovery() {
        println!("rh-serve: recovery report: {report:?}");
    }
    Ok(db)
}

/// Opens (or creates / crash-recovers) the per-shard WAL directories
/// `--dir/shard-0 .. shard-N-1`. The tri-state is uniform across
/// shards: any shard closed by a graceful drain refuses the whole
/// directory; all-empty is a fresh database; anything else is a
/// crash-restart, recovered shard-parallel with in-doubt 2PC resolution.
fn open_sharded(args: &Args) -> Result<ShardedDb, String> {
    let mut stables = Vec::with_capacity(args.shards);
    let mut empty = 0usize;
    for k in 0..args.shards {
        let dir = format!("{}/shard-{k}", args.dir);
        let stable = StableLog::open_dir(&dir).map_err(|e| format!("open {dir}: {e}"))?;
        if !stable.master().is_null() {
            return Err(refuse_drained(&dir, stable.master()));
        }
        if stable.is_empty() {
            empty += 1;
        }
        stables.push(stable);
    }
    if empty == args.shards {
        println!("rh-serve: fresh sharded database in {} ({} shards)", args.dir, args.shards);
        return ShardedDb::with_stable_logs(
            args.strategy,
            DbConfig::default(),
            stables,
            ShardMap::RANGE_SHIFT,
        )
        .map_err(|e| format!("open sharded: {e}"));
    }
    let records: usize = stables.iter().map(|s| s.len()).sum();
    println!(
        "rh-serve: crash-restart of {} ({} shards, {} stable records)",
        args.dir, args.shards, records
    );
    let parts = stables.into_iter().map(|s| (s, Disk::new())).collect();
    let db = ShardedDb::recover(args.strategy, DbConfig::default(), parts, ShardMap::RANGE_SHIFT)
        .map_err(|e| format!("recovery failed: {e}"))?;
    for k in 0..db.shard_count() {
        if let Some(report) = db.shard_recovery(k) {
            println!(
                "rh-serve: shard {k} recovery: losers={:?} indoubt={:?} coord-commits={}",
                report.losers,
                report.indoubt,
                report.coord_commits.len()
            );
        }
    }
    let stats = db.stats();
    println!(
        "rh-serve: in-doubt resolution: resolved={} committed={}",
        stats.counter("shard.indoubt.resolved"),
        stats.counter("shard.indoubt.committed"),
    );
    Ok(db)
}

fn die(reason: &str) -> ! {
    eprintln!("rh-serve: {reason}");
    std::process::exit(1);
}

fn print_drained(stats: &rh_obs::RegistrySnapshot) {
    println!(
        "rh-serve: drained. commits={} sessions={} fsyncs={}",
        stats.counter("server.commits"),
        stats.counter("server.sessions.opened"),
        stats.counter("log.fsyncs"),
    );
}

/// The `/replication` route, mounted on every configuration's
/// introspection endpoint: the registry the server's ship loops (on a
/// primary) or the subscriber runner (on a replica) report into.
fn repl_route(repl: &Arc<ReplRegistry>) -> rh_obs::Handler {
    let repl = Arc::clone(repl);
    Arc::new(move |path: &str| match path {
        "/replication" => Some(rh_obs::HttpResponse::Json(repl.to_json())),
        _ => None,
    })
}

fn run_single(args: &Args) {
    let mut db = match open_engine(args) {
        Ok(db) => db,
        Err(reason) => die(&reason),
    };
    let repl = Arc::new(ReplRegistry::new());
    if let Some(iaddr) = &args.introspect {
        match db.serve_introspection_with(iaddr, &["/replication"], Some(repl_route(&repl))) {
            Ok(bound) => println!("rh-serve: introspection on http://{bound}"),
            Err(e) => die(&format!("cannot bind introspection {iaddr}: {e}")),
        }
    }
    let server = match Server::bind_with_repl(&args.addr, db, args.cfg.clone(), repl) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {}: {e}", args.addr)),
    };
    println!("rh-serve: listening on {}", server.local_addr());
    server.run_until_shutdown();
    println!("rh-serve: shutdown requested, draining");
    match server.shutdown() {
        Ok(db) => print_drained(&db.stats()),
        Err(e) => die(&format!("drain failed: {e}")),
    }
}

fn run_sharded(args: &Args) {
    let db = match open_sharded(args) {
        Ok(db) => db,
        Err(reason) => die(&reason),
    };
    let repl = Arc::new(ReplRegistry::new());
    if let Some(iaddr) = &args.introspect {
        match db.serve_introspection_with(iaddr, &["/replication"], Some(repl_route(&repl))) {
            Ok(bound) => println!("rh-serve: introspection on http://{bound}"),
            Err(e) => die(&format!("cannot bind introspection {iaddr}: {e}")),
        }
    }
    let server = match Server::bind_sharded_with_repl(&args.addr, db, args.cfg.clone(), repl) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {}: {e}", args.addr)),
    };
    println!("rh-serve: listening on {} ({} shards)", server.local_addr(), args.shards);
    server.run_until_shutdown();
    println!("rh-serve: shutdown requested, draining");
    match server.shutdown_sharded() {
        Ok(db) => print_drained(&db.stats()),
        Err(e) => die(&format!("drain failed: {e}")),
    }
}

// ---- replica mode ------------------------------------------------------

/// How many consecutive dead dials (at [`RunnerConfig::reconnect_backoff`]
/// apart, each bounded by the heartbeat grace) declare the primary lost
/// when `--promote` is armed.
const PROMOTE_AFTER_FAILURES: u32 = 10;

/// How often the replica main loop interleaves its two wake conditions:
/// a wire `Shutdown` op and the runner's source-lost flag.
const FAILOVER_POLL: Duration = Duration::from_millis(200);

/// One shard's stable state: its WAL mirror and its disk.
type ReplicaPart = (Arc<StableLog>, Arc<Disk>);

/// Opens the replica's local per-shard stable state under `--dir` —
/// the same layout the primary uses (`--dir` itself for one shard,
/// `--dir/shard-K` otherwise), so a promoted replica's directory is
/// indistinguishable from a primary's.
fn open_replica_parts(args: &Args) -> Result<Vec<ReplicaPart>, String> {
    let mut parts = Vec::with_capacity(args.shards);
    for k in 0..args.shards {
        let dir =
            if args.shards == 1 { args.dir.clone() } else { format!("{}/shard-{k}", args.dir) };
        let stable = StableLog::open_dir(&dir).map_err(|e| format!("open {dir}: {e}"))?;
        if !stable.master().is_null() {
            return Err(refuse_drained(&dir, stable.master()));
        }
        parts.push((stable, Disk::new()));
    }
    Ok(parts)
}

/// Serves the promoted engine on the replica's own addresses: the
/// moment `bind` succeeds, this node *is* the primary — writable, and
/// itself shipping to any replica that subscribes.
fn run_promoted(args: &Args, db: PromotedDb, repl: Arc<ReplRegistry>) {
    match db {
        PromotedDb::Single(db) => {
            let mut db = *db;
            if let Some(iaddr) = &args.introspect {
                match db.serve_introspection_with(iaddr, &["/replication"], Some(repl_route(&repl)))
                {
                    Ok(bound) => println!("rh-serve: introspection on http://{bound}"),
                    Err(e) => die(&format!("cannot bind introspection {iaddr}: {e}")),
                }
            }
            let server = match Server::bind_with_repl(&args.addr, db, args.cfg.clone(), repl) {
                Ok(s) => s,
                Err(e) => die(&format!("cannot bind {}: {e}", args.addr)),
            };
            println!("rh-serve: promoted to primary on {}", server.local_addr());
            server.run_until_shutdown();
            println!("rh-serve: shutdown requested, draining");
            match server.shutdown() {
                Ok(db) => print_drained(&db.stats()),
                Err(e) => die(&format!("drain failed: {e}")),
            }
        }
        PromotedDb::Sharded(db) => {
            let db = *db;
            if let Some(iaddr) = &args.introspect {
                match db.serve_introspection_with(iaddr, &["/replication"], Some(repl_route(&repl)))
                {
                    Ok(bound) => println!("rh-serve: introspection on http://{bound}"),
                    Err(e) => die(&format!("cannot bind introspection {iaddr}: {e}")),
                }
            }
            let server =
                match Server::bind_sharded_with_repl(&args.addr, db, args.cfg.clone(), repl) {
                    Ok(s) => s,
                    Err(e) => die(&format!("cannot bind {}: {e}", args.addr)),
                };
            println!("rh-serve: promoted to primary on {}", server.local_addr());
            server.run_until_shutdown();
            println!("rh-serve: shutdown requested, draining");
            match server.shutdown_sharded() {
                Ok(db) => print_drained(&db.stats()),
                Err(e) => die(&format!("drain failed: {e}")),
            }
        }
    }
}

fn run_replica(args: &Args, source: &str) {
    let parts = match open_replica_parts(args) {
        Ok(p) => p,
        Err(reason) => die(&reason),
    };
    let resumed: u64 = parts.iter().map(|(s, _)| s.len() as u64).sum();
    let set =
        match ReplicaSet::open(args.strategy, DbConfig::default(), parts, ShardMap::RANGE_SHIFT) {
            Ok(set) => Arc::new(set),
            Err(e) => die(&format!("replica open failed: {e}")),
        };
    if resumed > 0 {
        println!("rh-serve: replica resumes from {resumed} local records");
    }
    let repl = Arc::new(ReplRegistry::new());
    // A replica has no engine to host introspection; serve the routes
    // standalone (the promoted incarnation swaps to engine-hosted).
    let mut intro = None;
    if let Some(iaddr) = &args.introspect {
        let stats_set = Arc::clone(&set);
        let route = repl_route(&repl);
        let handler: rh_obs::Handler = Arc::new(move |path: &str| match path {
            "/replication" => route(path),
            "/stats" => Some(rh_obs::HttpResponse::Json(stats_set.stats().to_json())),
            "/metrics" => Some(rh_obs::HttpResponse::Text {
                content_type: rh_obs::serve::PROMETHEUS_CONTENT_TYPE,
                body: rh_obs::promtext::render(&stats_set.stats()),
            }),
            _ => None,
        });
        match rh_obs::IntrospectionServer::bind(
            iaddr,
            &["/replication", "/stats", "/metrics"],
            handler,
        ) {
            Ok(server) => {
                println!("rh-serve: introspection on http://{}", server.local_addr());
                intro = Some(server);
            }
            Err(e) => die(&format!("cannot bind introspection {iaddr}: {e}")),
        }
    }
    let runner_cfg = RunnerConfig {
        max_reconnect_failures: args.promote.then_some(PROMOTE_AFTER_FAILURES),
        ..RunnerConfig::default()
    };
    let runner =
        ReplicaRunner::start(Arc::clone(&set), Arc::clone(&repl), source.to_string(), runner_cfg);
    let server = match Server::bind_replica(
        &args.addr,
        Arc::clone(&set),
        args.cfg.clone(),
        Arc::clone(&repl),
    ) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {}: {e}", args.addr)),
    };
    println!("rh-serve: replica of {source}, read-only on {}", server.local_addr());
    loop {
        if server.wait_shutdown_for(FAILOVER_POLL) {
            println!("rh-serve: shutdown requested, stopping replica");
            runner.stop();
            match server.shutdown_replica() {
                Ok(_) => println!("rh-serve: replica stopped"),
                Err(e) => die(&format!("replica drain failed: {e}")),
            }
            return;
        }
        if runner.source_lost() {
            println!("rh-serve: primary {source} lost, promoting");
            break;
        }
    }
    runner.stop();
    drop(intro); // free the introspection addr for the promoted server
    let promoted = match set.promote() {
        Ok(db) => db,
        Err(e) => die(&format!("promotion failed: {e}")),
    };
    if let Err(e) = server.shutdown_replica() {
        die(&format!("replica drain failed: {e}"));
    }
    run_promoted(args, promoted, repl);
}

fn main() {
    let args = parse_args();
    if let Some(source) = args.replica_of.clone() {
        run_replica(&args, &source);
    } else if args.shards > 1 {
        run_sharded(&args);
    } else {
        run_single(&args);
    }
}
