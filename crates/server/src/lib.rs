//! # rh-server
//!
//! A pipelined TCP front-end for the ARIES/RH engine.
//!
//! The paper's recovery and delegation machinery runs inside one
//! process; this crate puts a network edge on it so many client
//! processes can drive one engine concurrently — and so crash-recovery
//! claims can be exercised the way the original systems were: kill the
//! server mid-load, restart, and check that exactly the acknowledged
//! commits survived.
//!
//! * [`wire`] — the frame layout (the WAL's `[len][crc][payload]`
//!   convention on a socket), opcodes, replies, the hello exchange, and
//!   error classes;
//! * [`Server`] — sessions, admission control, bounded pipelining with
//!   explicit BUSY backpressure, idle timeouts, graceful
//!   drain-and-checkpoint, and a `force_stop` crash hatch for tests;
//! * commits are **group-committed**: each worker prepares its commit
//!   under the engine mutex and forces the log outside it, so
//!   concurrent sessions share fsyncs
//!   ([`rh_core::engine::RhDb::commit_prepare`]).
//!
//! Counters appear under `server.*` in the engine's unified registry —
//! visible through the wire `Stats` op, `RhDb::stats()`, and the
//! `/stats` introspection route alike. The binary is `rh-serve`; the
//! matching client library and load generator live in `rh-client`.

mod conn;
pub mod repl;
pub mod server;
pub mod wire;

pub use repl::{ReplRegistry, ReplicaRunner, RunnerConfig};
pub use server::{Server, ServerConfig};
