//! E14 — what following the feed costs, and what failover costs.
//!
//! Three rows over one 300-commit shipped workload (the shared
//! [`rh_bench::replication`] fixture):
//!
//! * **primary_commit** — nanoseconds per committed transaction on the
//!   primary, the rate the replication feed is produced at.
//! * **apply_frame** — nanoseconds per frame applied by the replica
//!   (local log append + incremental forward pass). The replica keeps
//!   up iff frames apply faster than the primary emits them; the
//!   exported workload doc records frames-per-commit so the ratio is
//!   computable from the artifact.
//! * **promote** — one `ReplicaSet::promote()` over a caught-up
//!   replica: finish the forward pass, backward pass over losers, open
//!   for writes. The failover outage floor after detection.
//!
//! Besides the Criterion medians, the run writes its rows to
//! `target/obs/BENCH_repl.json`; the first measured rows are checked in
//! at `crates/bench/baselines/BENCH_repl.json` and re-measured by
//! `rh-bench --check-baselines`.

use criterion::{criterion_group, criterion_main, Criterion};
use rh_bench::replication::{self, COMMITS};
use rh_obs::JsonValue;
use std::path::PathBuf;

fn bench_replication(c: &mut Criterion) {
    let fixture = replication::build();
    let mut group = c.benchmark_group("e14_replication");
    // Whole-workload iterations; Criterion reports per-workload time,
    // the export divides down to per-commit / per-frame.
    group.bench_function("primary_commit_300", |b| b.iter(replication::commit_workload));
    group.bench_function("apply_frames_all", |b| b.iter(|| fixture.apply_workload()));
    group.bench_function("catch_up_and_promote", |b| b.iter(|| fixture.promote_workload()));
    group.finish();
}

/// Writes the three rows to `target/obs/BENCH_repl.json` (the
/// checked-in baseline at `crates/bench/baselines/BENCH_repl.json` is a
/// copy of this file from the first run).
fn export_rows(_c: &mut Criterion) {
    let fixture = replication::build();
    let rows = vec![
        ("repl_primary_commit", replication::commit_ns_floor(60), "ns/commit"),
        ("repl_apply_frame", replication::apply_ns_floor(&fixture, 60), "ns/frame"),
        ("repl_promote", replication::promote_ns_floor(&fixture, 60), "ns/promote"),
    ];
    let rows: Vec<JsonValue> = rows
        .into_iter()
        .map(|(name, median, unit)| {
            JsonValue::obj(vec![
                ("name", JsonValue::Str(name.to_string())),
                ("median_ns", JsonValue::U64(median)),
                ("unit", JsonValue::Str(unit.to_string())),
            ])
        })
        .collect();
    let doc = JsonValue::obj(vec![
        ("bench", JsonValue::Str("e14_replication".to_string())),
        (
            "workload",
            JsonValue::obj(vec![
                ("commits", JsonValue::U64(COMMITS)),
                ("frames", JsonValue::U64(fixture.frames.len() as u64)),
            ]),
        ),
        ("rows", JsonValue::Arr(rows)),
    ]);
    // Benches run with the package as cwd; aim at the workspace target
    // dir, where CI archives `target/obs/*.json` from.
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs"));
    std::fs::create_dir_all(&dir).expect("create target/obs");
    let path = dir.join("BENCH_repl.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_repl.json");
    println!("e14_replication: wrote {}", path.display());
}

criterion_group!(benches, bench_replication, export_rows);
criterion_main!(benches);
