//! E1 under Criterion: normal processing + recovery of a zero-delegation
//! workload on ARIES/RH vs the baselines. The paper's claim is that the
//! RH bars match the plain-ARIES bars ("no delegation, no overhead").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rh_core::eager::EagerDb;
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_workload::{boring, WorkloadSpec};

fn spec() -> WorkloadSpec {
    WorkloadSpec { txns: 300, updates_per_txn: 8, straggler_rate: 0.05, ..WorkloadSpec::default() }
}

fn bench_normal_processing(c: &mut Criterion) {
    let events = boring(&spec());
    let mut group = c.benchmark_group("e1_normal_processing");
    group.bench_function(BenchmarkId::new("engine", "aries_rh"), |b| {
        b.iter(|| replay_engine(RhDb::new(Strategy::Rh), &events).unwrap())
    });
    group.bench_function(BenchmarkId::new("engine", "lazy"), |b| {
        b.iter(|| replay_engine(RhDb::new(Strategy::LazyRewrite), &events).unwrap())
    });
    group.bench_function(BenchmarkId::new("engine", "eager_plain_aries"), |b| {
        b.iter(|| replay_engine(EagerDb::new(), &events).unwrap())
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let events = boring(&spec());
    let mut group = c.benchmark_group("e1_recovery");
    group.bench_function("aries_rh", |b| {
        b.iter_batched(
            || {
                let e = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
                e.log().flush_all().unwrap();
                e
            },
            |e| e.crash_and_recover().unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("eager_plain_aries", |b| {
        b.iter_batched(
            || {
                let e = replay_engine(EagerDb::new(), &events).unwrap();
                e.log().flush_all().unwrap();
                e
            },
            |e| e.crash_and_recover().unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_normal_processing, bench_recovery);
criterion_main!(benches);
