//! E11 — serving throughput: concurrent sessions funnelling through
//! one engine (or a range-sharded set of engines), with commits
//! group-committed per log.
//!
//! Each measured point stands up a fresh file-backed `rh-server`
//! in-process, drives it with the `rh-load` closed-loop generator
//! (`threads` connections, mixed writes/adds, optionally the delegation
//! idiom), verifies the oracle, and drains — the shared cycle lives in
//! [`rh_bench::serve_cycle`] so the `rh-bench --check-baselines` CI
//! gate re-runs exactly this workload. The grid is
//! threads ∈ {1, 4, 16} × delegation ∈ {0, 0.3}, plus the headline
//! sharded point `serve_s4_t16_d30` (4 shards, 16 threads, 30%
//! delegation, 25% cross-shard traffic committing through 2PC):
//!
//! * scaling threads shows group commit amortizing fsyncs — committed
//!   txns/s grows while `log.fsyncs` per commit falls;
//! * the delegation axis shows the paper's claim surviving the wire:
//!   routing effects through delegate → abort → commit costs a couple
//!   of extra round trips, not a different asymptote;
//! * the sharded point shows range partitioning buying parallel commit
//!   (and cross-shard delegation paying exactly one extra forced log
//!   flush for the non-coordinator prepare).
//!
//! Besides the Criterion medians, the run writes throughput rows to
//! `target/obs/BENCH_server.json`; first measured rows are checked in
//! at `crates/bench/baselines/BENCH_server.json` and guarded by the
//! `rh-bench` regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rh_bench::serve_cycle::{self, CyclePoint, TXNS_PER_THREAD, UPDATES_PER_TXN};
use rh_obs::JsonValue;
use std::path::PathBuf;

/// The measured grid: the unsharded thread/delegation matrix plus the
/// 4-shard headline point the CI speedup bar reads.
fn grid() -> Vec<CyclePoint> {
    vec![
        CyclePoint::single(1, 0.0),
        CyclePoint::single(1, 0.3),
        CyclePoint::single(4, 0.0),
        CyclePoint::single(4, 0.3),
        CyclePoint::single(16, 0.0),
        CyclePoint::single(16, 0.3),
        CyclePoint::sharded(4, 16, 0.3),
    ]
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    for point in grid() {
        group.throughput(Throughput::Elements(point.commits()));
        // Criterion ids keep the historical short form (`t16_d30`).
        let name = point.name().trim_start_matches("serve_").to_string();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| serve_cycle::one_cycle(&point))
        });
    }
    group.finish();
}

/// Writes the throughput rows to `target/obs/BENCH_server.json` (the
/// checked-in baseline at `crates/bench/baselines/BENCH_server.json` is
/// a copy of this file, regenerated when the serving stack changes).
fn export_rows(_c: &mut Criterion) {
    let mut rows: Vec<JsonValue> = Vec::new();
    for point in grid() {
        let commits = point.commits();
        let (median_ns, fsyncs) = serve_cycle::median_cycle_ns(&point, 3);
        rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(point.name())),
            ("median_ns", JsonValue::U64(median_ns)),
            ("unit", JsonValue::Str("ns/cycle".to_string())),
            ("commits", JsonValue::U64(commits)),
            ("fsyncs", JsonValue::U64(fsyncs)),
            ("txns_per_sec", JsonValue::U64(serve_cycle::txns_per_sec(commits, median_ns))),
        ]));
    }

    let doc = JsonValue::obj(vec![
        ("bench", JsonValue::Str("server_throughput".to_string())),
        (
            "workload",
            JsonValue::obj(vec![
                ("txns_per_thread", JsonValue::U64(TXNS_PER_THREAD as u64)),
                ("updates_per_txn", JsonValue::U64(UPDATES_PER_TXN as u64)),
            ]),
        ),
        ("rows", JsonValue::Arr(rows)),
    ]);
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs"));
    std::fs::create_dir_all(&dir).expect("create target/obs");
    let path = dir.join("BENCH_server.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_server.json");
    println!("server_throughput: wrote {}", path.display());
}

criterion_group!(benches, bench_serving, export_rows);
criterion_main!(benches);
