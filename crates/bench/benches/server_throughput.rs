//! E11 — serving throughput: concurrent sessions funnelling through
//! one engine, with commits group-committed across them.
//!
//! Each measured point stands up a fresh file-backed `rh-server`
//! in-process, drives it with the `rh-load` closed-loop generator
//! (`threads` connections, mixed writes/adds, optionally the delegation
//! idiom), verifies the oracle, and drains. The grid is
//! threads ∈ {1, 4, 16} × delegation ∈ {0, 0.3}:
//!
//! * scaling threads shows group commit amortizing fsyncs — committed
//!   txns/s grows while `log.fsyncs` per commit falls;
//! * the delegation axis shows the paper's claim surviving the wire:
//!   routing effects through delegate → abort → commit costs a couple
//!   of extra round trips, not a different asymptote.
//!
//! Besides the Criterion medians, the run writes throughput rows to
//! `target/obs/BENCH_server.json`; first measured rows are checked in
//! at `crates/bench/baselines/BENCH_server.json` for eyeball
//! regression comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rh_client::load::{run_load, LoadSpec};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_obs::{JsonValue, Stopwatch};
use rh_server::{Server, ServerConfig};
use rh_wal::StableLog;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TXNS_PER_THREAD: usize = 10;
const UPDATES_PER_TXN: usize = 4;
const GRID: &[(usize, f64)] = &[(1, 0.0), (1, 0.3), (4, 0.0), (4, 0.3), (16, 0.0), (16, 0.3)];

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-bench-server-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(threads: usize, delegation: f64) -> LoadSpec {
    LoadSpec {
        threads,
        txns_per_thread: TXNS_PER_THREAD,
        updates_per_txn: UPDATES_PER_TXN,
        delegation_fraction: delegation,
        seed: 42,
        base_offset: 0,
    }
}

/// One full serve/load/drain cycle on a fresh directory. Object ids are
/// deterministic per thread, so every cycle needs its own engine — a
/// reused one would see the generator's `add` objects twice.
fn one_cycle(threads: usize, delegation: f64) -> (u64, u64, u64) {
    let dir = scratch();
    let stable = StableLog::open_dir(&dir).expect("bench log dir");
    let db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
    let server = Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let report = run_load(&addr, &spec(threads, delegation)).expect("load");
    assert_eq!(report.divergences, 0, "bench run diverged: {report:?}");
    assert_eq!(report.errors, 0, "bench run errored: {report:?}");
    let out = (report.txns_committed, report.server_commits_delta, report.server_fsyncs_delta);
    drop(server.shutdown().expect("drain"));
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    for &(threads, delegation) in GRID {
        group.throughput(Throughput::Elements((threads * TXNS_PER_THREAD) as u64));
        let name = format!("t{threads}_d{}", (delegation * 100.0) as u32);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| one_cycle(threads, delegation))
        });
    }
    group.finish();
}

/// Writes the throughput rows to `target/obs/BENCH_server.json` (the
/// checked-in baseline at `crates/bench/baselines/BENCH_server.json` is
/// a copy of this file from the first run).
fn export_rows(_c: &mut Criterion) {
    let mut rows: Vec<JsonValue> = Vec::new();
    for &(threads, delegation) in GRID {
        let commits = (threads * TXNS_PER_THREAD) as u64;
        // Median of a few full cycles; also keep the batching evidence
        // (fsyncs per commit) from the median-timed run's neighborhood.
        let mut times: Vec<(u64, u64)> = Vec::new();
        for _ in 0..3 {
            let sw = Stopwatch::start();
            let (_, _, fsyncs) = one_cycle(threads, delegation);
            times.push((sw.elapsed().as_nanos() as u64, fsyncs));
        }
        times.sort_unstable();
        let (median_ns, fsyncs) = times[times.len() / 2];
        let name = format!("serve_t{threads}_d{}", (delegation * 100.0) as u32);
        rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(name)),
            ("median_ns", JsonValue::U64(median_ns)),
            ("unit", JsonValue::Str("ns/cycle".to_string())),
            ("commits", JsonValue::U64(commits)),
            ("fsyncs", JsonValue::U64(fsyncs)),
            (
                "txns_per_sec",
                JsonValue::U64((commits * 1_000_000_000).checked_div(median_ns).unwrap_or(0)),
            ),
        ]));
    }

    let doc = JsonValue::obj(vec![
        ("bench", JsonValue::Str("server_throughput".to_string())),
        (
            "workload",
            JsonValue::obj(vec![
                ("txns_per_thread", JsonValue::U64(TXNS_PER_THREAD as u64)),
                ("updates_per_txn", JsonValue::U64(UPDATES_PER_TXN as u64)),
            ]),
        ),
        ("rows", JsonValue::Arr(rows)),
    ]);
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs"));
    std::fs::create_dir_all(&dir).expect("create target/obs");
    let path = dir.join("BENCH_server.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_server.json");
    println!("server_throughput: wrote {}", path.display());
}

criterion_group!(benches, bench_serving, export_rows);
criterion_main!(benches);
