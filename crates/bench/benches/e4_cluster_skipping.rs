//! E4 under Criterion: recovery time as loser density varies — the
//! backward pass's cluster skipping keeps sparse-loser recovery cheap
//! regardless of log length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_workload::{boring, WorkloadSpec};

fn bench_recovery_vs_loser_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_recovery_vs_loser_density");
    for rate in [0.0, 0.01, 0.1, 1.0] {
        let spec = WorkloadSpec {
            txns: 500,
            updates_per_txn: 4,
            straggler_rate: rate,
            abort_rate: 0.0,
            ..WorkloadSpec::default()
        };
        let events = boring(&spec);
        group.bench_with_input(BenchmarkId::new("straggler_rate", rate), &events, |b, ev| {
            b.iter_batched(
                || {
                    let e = replay_engine(RhDb::new(Strategy::Rh), ev).unwrap();
                    e.log().flush_all().unwrap();
                    e
                },
                |e| e.crash_and_recover().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_log_length_with_fixed_losers(c: &mut Criterion) {
    // Fixed loser count, growing committed middle. A checkpoint right
    // after the build bounds the *forward* pass to a few records, so the
    // measured recovery is dominated by the backward pass — which must
    // stay flat: it jumps between the two single-record loser clusters
    // and never touches the committed middle, however large.
    let mut group = c.benchmark_group("e4_backward_pass_vs_log_length");
    group.sample_size(20);
    for committed in [100usize, 400, 1600] {
        group.bench_with_input(
            BenchmarkId::new("committed_txns", committed),
            &committed,
            |b, &committed| {
                b.iter_batched(
                    || {
                        use rh_common::ObjectId;
                        let mut d = RhDb::new(Strategy::Rh);
                        let early = d.begin().unwrap();
                        d.add(early, ObjectId(0), 1).unwrap();
                        for i in 0..committed {
                            let t = d.begin().unwrap();
                            d.add(t, ObjectId(10 + i as u64), 1).unwrap();
                            d.commit(t).unwrap();
                        }
                        let late = d.begin().unwrap();
                        d.add(late, ObjectId(1), 1).unwrap();
                        d.checkpoint().unwrap();
                        d.log().flush_all().unwrap();
                        d
                    },
                    |d| d.crash_and_recover().unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recovery_vs_loser_density, bench_log_length_with_fixed_losers);
criterion_main!(benches);
