//! E13 — what a time-travel read costs, and what checkpoint seeding
//! buys it.
//!
//! Three query regimes against one 600-commit log with a checkpoint at
//! the midpoint (the shared [`rh_bench::time_travel`] fixture):
//!
//! * **near_tip** — target = log tail; seeds from the midpoint
//!   checkpoint and scans the younger half.
//! * **deep_history** — target just below the checkpoint; seedless,
//!   folds forward from the log's first record through as many
//!   committed versions as the near-tip query replays.
//! * **checkpoint_adjacent** — target right after the checkpoint;
//!   seed + near-zero scan (the best case).
//!
//! The deep-history row is the price of *not* having a checkpoint below
//! the target, which is the quantitative argument for the
//! checkpoint-seeding design in DESIGN.md §16.
//!
//! Besides the Criterion medians, the run writes its rows to
//! `target/obs/BENCH_history.json`; the first measured rows are checked
//! in at `crates/bench/baselines/BENCH_history.json` and re-measured by
//! `rh-bench --check-baselines`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rh_bench::time_travel::{self, COMMITS_PER_HALF};
use rh_obs::JsonValue;
use std::path::PathBuf;

fn bench_read_as_of(c: &mut Criterion) {
    let fixture = time_travel::build();
    let mut group = c.benchmark_group("e13_read_as_of");
    for name in ["asof_near_tip", "asof_deep_history", "asof_checkpoint_adjacent"] {
        let target = fixture.target(name).expect("known row");
        group.bench_function(name, |b| b.iter(|| black_box(fixture.query(target))));
    }
    group.finish();
}

/// Writes the three rows to `target/obs/BENCH_history.json` (the
/// checked-in baseline at `crates/bench/baselines/BENCH_history.json`
/// is a copy of this file from the first run).
fn export_rows(_c: &mut Criterion) {
    let fixture = time_travel::build();
    let mut rows: Vec<JsonValue> = Vec::new();
    for name in ["asof_near_tip", "asof_deep_history", "asof_checkpoint_adjacent"] {
        let target = fixture.target(name).expect("known row");
        let median = time_travel::median_asof_ns(&fixture, target, 30);
        rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(name.to_string())),
            ("median_ns", JsonValue::U64(median)),
            ("unit", JsonValue::Str("ns/query".to_string())),
        ]));
    }
    let doc = JsonValue::obj(vec![
        ("bench", JsonValue::Str("e13_time_travel".to_string())),
        (
            "workload",
            JsonValue::obj(vec![
                ("commits", JsonValue::U64(2 * COMMITS_PER_HALF)),
                ("checkpoint_at_commit", JsonValue::U64(COMMITS_PER_HALF)),
            ]),
        ),
        ("rows", JsonValue::Arr(rows)),
    ]);
    // Benches run with the package as cwd; aim at the workspace target
    // dir, where CI archives `target/obs/*.json` from.
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs"));
    std::fs::create_dir_all(&dir).expect("create target/obs");
    let path = dir.join("BENCH_history.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_history.json");
    println!("e13_time_travel: wrote {}", path.display());
}

criterion_group!(benches, bench_read_as_of, export_rows);
criterion_main!(benches);
