//! Log-backend microbenchmarks: append and append+force throughput of
//! the in-memory stable log (unit-test default, upper bound) vs the
//! durable segmented file log. The file backend's force cost is dominated
//! by `fdatasync`; group commit amortizes it across concurrent callers,
//! which the `experiments` binary's E1b table shows directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rh_common::{Lsn, ObjectId, TxnId, UpdateOp};
use rh_wal::{LogManager, RecordBody, StableLog};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const BATCH: u64 = 64;

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-bench-walbackend-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn append_batch(log: &LogManager, force: bool) {
    let mut prev = Lsn::NULL;
    for i in 0..BATCH {
        prev = log.append(
            TxnId(1),
            prev,
            RecordBody::Update { ob: ObjectId(i % 32), op: UpdateOp::Add { delta: 1 } },
        );
    }
    if force {
        log.flush_to(prev).expect("force");
    }
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_backend");
    group.throughput(Throughput::Elements(BATCH));

    for force in [false, true] {
        // `append_volatile` measures the backend-independent tail push
        // (the cost a transaction pays at `write` time); `append_force`
        // adds frame encoding, file writes, and the group-committed
        // fdatasync (the cost it pays at commit).
        let mode = if force { "append_force" } else { "append_volatile" };
        group.bench_function(BenchmarkId::new(mode, "in_memory"), |b| {
            let log = LogManager::new();
            b.iter(|| append_batch(&log, force));
        });
        group.bench_function(BenchmarkId::new(mode, "file_backed"), |b| {
            let dir = scratch();
            let log = LogManager::attach(StableLog::open_dir(&dir).expect("open"));
            b.iter(|| append_batch(&log, force));
            drop(log);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
