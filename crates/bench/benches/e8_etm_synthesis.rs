//! E8 under Criterion: synthesized extended transaction models vs
//! hand-rolled flat transactions doing the same updates — the cost of
//! the ETM abstraction must be a small constant per session.

use criterion::{criterion_group, criterion_main, Criterion};
use rh_common::ObjectId;
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;
use rh_etm::nested::run_trip;
use rh_etm::reporting::ReportingTxn;
use rh_etm::split::{join, split};
use rh_etm::EtmSession;

const SESSIONS: usize = 50;
const UPDATES: u64 = 8;

fn bench_flat_vs_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_split_join");
    group.bench_function("flat_baseline", |b| {
        b.iter(|| {
            let mut db = RhDb::new(Strategy::Rh);
            for i in 0..SESSIONS {
                let t = db.begin().unwrap();
                for u in 0..UPDATES {
                    db.add(t, ObjectId(i as u64 * UPDATES + u), 1).unwrap();
                }
                db.commit(t).unwrap();
            }
            db
        })
    });
    group.bench_function("split_join_sessions", |b| {
        b.iter(|| {
            let mut s = EtmSession::new(RhDb::new(Strategy::Rh));
            for i in 0..SESSIONS {
                let base = i as u64 * UPDATES;
                let t1 = s.initiate_empty().unwrap();
                for u in 0..UPDATES {
                    s.add(t1, ObjectId(base + u), 1).unwrap();
                }
                let half: Vec<ObjectId> =
                    (UPDATES / 2..UPDATES).map(|u| ObjectId(base + u)).collect();
                let t2 = split(&mut s, t1, &half).unwrap();
                join(&mut s, t2, t1).unwrap();
                s.commit(t1).unwrap();
            }
            s
        })
    });
    group.finish();
}

fn bench_nested_trips(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_nested_trip");
    group.bench_function("trips_mixed_success", |b| {
        b.iter(|| {
            let mut s = EtmSession::new(RhDb::new(Strategy::Rh));
            for i in 0..SESSIONS {
                let _ = run_trip(&mut s, ObjectId(0), ObjectId(1), true, i % 3 != 2).unwrap();
            }
            s
        })
    });
    group.finish();
}

fn bench_reporting(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_reporting");
    group.bench_function("worker_with_periodic_reports", |b| {
        b.iter(|| {
            let mut s = EtmSession::new(RhDb::new(Strategy::Rh));
            let mut w = ReportingTxn::begin(&mut s).unwrap();
            for round in 0..SESSIONS {
                s.add(w.id(), ObjectId(round as u64 % 4), 1).unwrap();
                if round % 5 == 4 {
                    w.report_all(&mut s).unwrap();
                }
            }
            w.finish(&mut s).unwrap();
            s
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flat_vs_split, bench_nested_trips, bench_reporting);
criterion_main!(benches);
