//! E6 under Criterion: forward-pass (analysis+redo) time with and
//! without delegation in the log — RH's delegation processing must add
//! only O(1) work per delegate record, no extra sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_workload::{delegation_mix, WorkloadSpec};

fn bench_forward_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_recovery_vs_delegation_rate");
    for rate in [0.0, 0.25, 0.5, 1.0] {
        let spec = WorkloadSpec {
            txns: 400,
            updates_per_txn: 6,
            delegation_rate: rate,
            chain_len: 1,
            straggler_rate: 0.1,
            abort_rate: 0.0,
            ..WorkloadSpec::default()
        };
        let events = delegation_mix(&spec);
        group.bench_with_input(BenchmarkId::new("delegation_rate", rate), &events, |b, ev| {
            b.iter_batched(
                || {
                    let e = replay_engine(RhDb::new(Strategy::Rh), ev).unwrap();
                    e.log().flush_all().unwrap();
                    e
                },
                |e| e.crash_and_recover().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_checkpointed_recovery(c: &mut Criterion) {
    // A checkpoint right before the crash bounds the forward pass; the
    // scope tables (delegation state) restore from the snapshot.
    let mut group = c.benchmark_group("e6_checkpointed_recovery");
    for rate in [0.0, 1.0] {
        let spec = WorkloadSpec {
            txns: 400,
            updates_per_txn: 6,
            delegation_rate: rate,
            straggler_rate: 0.1,
            abort_rate: 0.0,
            ..WorkloadSpec::default()
        };
        let events = delegation_mix(&spec);
        group.bench_with_input(BenchmarkId::new("delegation_rate", rate), &events, |b, ev| {
            b.iter_batched(
                || {
                    let mut e = replay_engine(RhDb::new(Strategy::Rh), ev).unwrap();
                    e.checkpoint().unwrap();
                    e.log().flush_all().unwrap();
                    e
                },
                |e| e.crash_and_recover().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_pass, bench_checkpointed_recovery);
criterion_main!(benches);
