//! E7 under Criterion: the EOS NO-UNDO/REDO engine vs ARIES/RH under a
//! delegation workload — normal processing (EOS defers, RH applies in
//! place) and recovery (EOS replays committed items only; RH redoes and
//! undoes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_eos::EosDb;
use rh_workload::{delegation_mix, WorkloadSpec};

fn spec(rate: f64) -> WorkloadSpec {
    WorkloadSpec {
        txns: 300,
        updates_per_txn: 6,
        delegation_rate: rate,
        straggler_rate: 0.2,
        abort_rate: 0.1,
        ..WorkloadSpec::default()
    }
}

fn bench_normal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_normal_processing");
    for rate in [0.0, 1.0] {
        let events = delegation_mix(&spec(rate));
        group.bench_with_input(BenchmarkId::new("eos", rate), &events, |b, ev| {
            b.iter(|| replay_engine(EosDb::new(), ev).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("aries_rh", rate), &events, |b, ev| {
            b.iter(|| replay_engine(RhDb::new(Strategy::Rh), ev).unwrap())
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_recovery");
    for rate in [0.0, 1.0] {
        let events = delegation_mix(&spec(rate));
        group.bench_with_input(BenchmarkId::new("eos", rate), &events, |b, ev| {
            b.iter_batched(
                || replay_engine(EosDb::new(), ev).unwrap(),
                |e| e.crash_and_recover().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("aries_rh", rate), &events, |b, ev| {
            b.iter_batched(
                || {
                    let e = replay_engine(RhDb::new(Strategy::Rh), ev).unwrap();
                    e.log().flush_all().unwrap();
                    e
                },
                |e| e.crash_and_recover().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normal, bench_recovery);
criterion_main!(benches);
