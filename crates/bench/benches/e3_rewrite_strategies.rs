//! E3 under Criterion: RH vs eager vs lazy rewriting on an interleaved,
//! delegation-heavy workload — normal processing (where eager pays) and
//! recovery (where lazy pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rh_core::eager::EagerDb;
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_workload::{interleaved_mix, WorkloadSpec};

fn spec(rate: f64) -> WorkloadSpec {
    WorkloadSpec {
        txns: 60,
        updates_per_txn: 6,
        objects_per_txn: 3,
        delegation_rate: rate,
        chain_len: 2,
        straggler_rate: 0.25,
        abort_rate: 0.0,
        ..WorkloadSpec::default()
    }
}

fn bench_normal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_normal_processing");
    for rate in [0.0, 0.5, 1.0] {
        let events = interleaved_mix(&spec(rate));
        group.bench_with_input(BenchmarkId::new("aries_rh", rate), &events, |b, ev| {
            b.iter(|| replay_engine(RhDb::new(Strategy::Rh), ev).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lazy", rate), &events, |b, ev| {
            b.iter(|| replay_engine(RhDb::new(Strategy::LazyRewrite), ev).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("eager", rate), &events, |b, ev| {
            b.iter(|| replay_engine(EagerDb::new(), ev).unwrap())
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_recovery");
    for rate in [0.0, 0.5, 1.0] {
        let events = interleaved_mix(&spec(rate));
        group.bench_with_input(BenchmarkId::new("aries_rh", rate), &events, |b, ev| {
            b.iter_batched(
                || {
                    let e = replay_engine(RhDb::new(Strategy::Rh), ev).unwrap();
                    e.log().flush_all().unwrap();
                    e
                },
                |e| e.crash_and_recover().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("lazy", rate), &events, |b, ev| {
            b.iter_batched(
                || {
                    let e = replay_engine(RhDb::new(Strategy::LazyRewrite), ev).unwrap();
                    e.log().flush_all().unwrap();
                    e
                },
                |e| e.crash_and_recover().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("eager", rate), &events, |b, ev| {
            b.iter_batched(
                || {
                    let e = replay_engine(EagerDb::new(), ev).unwrap();
                    e.log().flush_all().unwrap();
                    e
                },
                |e| e.crash_and_recover().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normal, bench_recovery);
criterion_main!(benches);
