//! How much the observability layer costs when it is on, and that it
//! costs ~nothing when it is off.
//!
//! Two comparisons:
//!
//! * **tracer hot path** — `Tracer::point` on an enabled tracer (mutex +
//!   ring push + timestamp) vs a disabled one (a single branch). The
//!   disabled arm is the "no-op" bar every engine operation pays when
//!   tracing is off.
//! * **flight recorder** — the E1-style zero-delegation workload on a
//!   file-backed engine with the black-box recorder attached (freezing a
//!   record every `COMMIT_PERIOD` commits) vs detached. This is the
//!   whole-system overhead of `obs/` sidecar persistence.
//! * **2PC tracing** — a run of cross-shard commits on a two-shard
//!   in-memory router with the phase tracers enabled (every commit
//!   carries a trace id; each 2PC edge lands in a shard ring) vs
//!   disabled. This is the tracing tentpole's whole-path cost, gated
//!   ≤ 10% by `rh-bench --check-baselines`.
//! * **lock witness** — the E1-style file-backed workload with the
//!   `parking_lot` lock-witness recording (held stacks, edge graph,
//!   hold histograms) vs off. The off arm is the production
//!   configuration — one relaxed atomic load per acquisition — and the
//!   witnessed arm is gated ≤ 1.10× of it by `--check-baselines`. (The
//!   in-memory 2PC workload is deliberately *not* the bar: a mem-only
//!   lock-per-microsecond loop would put any recording witness over
//!   10×; the budget is for witnessing real durability work.)
//!
//! Besides the usual Criterion medians, the run writes its rows to
//! `target/obs/BENCH_obs.json`; the first measured rows are checked in
//! at `crates/bench/baselines/BENCH_obs.json` for eyeball regression
//! comparison (the compat harness does no statistics).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rh_common::ObjectId;
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::sharded::ShardedDb;
use rh_obs::trace::Tracer;
use rh_obs::{JsonValue, Stopwatch};
use rh_wal::StableLog;
use rh_workload::{boring, WorkloadSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const POINTS: u64 = 10_000;
/// Cross-shard commits per tracing-overhead workload run.
const TWO_PC_COMMITS: u64 = 100;

fn spec() -> WorkloadSpec {
    WorkloadSpec { txns: 200, updates_per_txn: 4, straggler_rate: 0.05, ..WorkloadSpec::default() }
}

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-bench-obsoverhead-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh file-backed engine; `flight` controls the black-box recorder.
fn file_backed(flight: bool) -> (RhDb, PathBuf) {
    let dir = scratch();
    let stable = StableLog::open_dir(&dir).expect("bench log dir");
    let mut db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
    if !flight {
        db.disable_flight_recorder();
    }
    (db, dir)
}

fn bench_tracer_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_tracer_points");
    group.throughput(Throughput::Elements(POINTS));
    group.bench_function("enabled", |b| {
        let tracer = Tracer::default();
        b.iter(|| {
            for i in 0..POINTS {
                tracer.point(black_box("bench_point"), i, i, 1, 0);
            }
        })
    });
    group.bench_function("disabled_noop", |b| {
        let tracer = Tracer::disabled();
        b.iter(|| {
            for i in 0..POINTS {
                tracer.point(black_box("bench_point"), i, i, 1, 0);
            }
        })
    });
    group.finish();
}

fn bench_flight_recorder(c: &mut Criterion) {
    let events = boring(&spec());
    let mut group = c.benchmark_group("obs_flight_recorder");
    group.sample_size(10);
    // Both arms replay the identical workload and pay the same teardown,
    // so the delta between them is the recorder alone.
    for (label, flight) in [("attached", true), ("detached", false)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || file_backed(flight),
                |(db, dir)| {
                    let db = replay_engine(db, &events).unwrap();
                    drop(db);
                    let _ = std::fs::remove_dir_all(&dir);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// One tracing-overhead workload run: `TWO_PC_COMMITS` cross-shard
/// commits against a two-shard in-memory router. The traced arm tags
/// every commit with a trace id; the untraced arm disables the shard
/// tracers, turning every phase emission into its no-op branch — the
/// delta is the full cost of 2PC phase tracing.
fn sharded_2pc_workload(traced: bool) {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    if !traced {
        for k in 0..2 {
            db.shard_obs(k).expect("shard obs").tracer.set_enabled(false);
        }
    }
    for i in 0..TWO_PC_COMMITS {
        let t = db.begin().unwrap();
        // Even object ids land on shard 0, odd on shard 1 (shift 0).
        db.write(t, ObjectId(4 * i), 1).unwrap();
        db.write(t, ObjectId(4 * i + 2), 2).unwrap();
        db.write(t, ObjectId(4 * i + 1), 3).unwrap();
        db.write(t, ObjectId(4 * i + 3), 4).unwrap();
        if traced {
            db.commit_traced(t, i + 1).unwrap();
        } else {
            db.commit(t).unwrap();
        }
    }
}

fn bench_sharded_2pc_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_sharded_2pc");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TWO_PC_COMMITS));
    for (label, traced) in [("traced", true), ("untraced", false)] {
        group.bench_function(label, |b| b.iter(|| sharded_2pc_workload(black_box(traced))));
    }
    group.finish();
}

fn bench_lock_witness(c: &mut Criterion) {
    let events = boring(&spec());
    let mut group = c.benchmark_group("obs_lock_witness");
    group.sample_size(10);
    // Flight recorder attached in both arms; the delta is the witness.
    for (label, on) in [("witness_on", true), ("witness_off", false)] {
        group.bench_function(label, |b| {
            parking_lot::witness::set_enabled(on);
            b.iter_batched(
                || file_backed(true),
                |(db, dir)| {
                    let db = replay_engine(db, &events).unwrap();
                    drop(db);
                    let _ = std::fs::remove_dir_all(&dir);
                },
                criterion::BatchSize::LargeInput,
            );
            parking_lot::witness::set_enabled(false);
        });
    }
    group.finish();
}

/// Medians over `iters` timed calls (one untimed warmup), nanoseconds.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u64> = (0..iters)
        .map(|_| {
            let sw = Stopwatch::start();
            f();
            sw.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Writes the overhead rows to `target/obs/BENCH_obs.json` (the
/// checked-in baseline at `crates/bench/baselines/BENCH_obs.json` is a
/// copy of this file from the first run).
fn export_rows(_c: &mut Criterion) {
    let mut rows: Vec<JsonValue> = Vec::new();
    let mut row = |name: &str, median: u64, unit: &str| {
        rows.push(JsonValue::obj(vec![
            ("name", JsonValue::Str(name.to_string())),
            ("median_ns", JsonValue::U64(median)),
            ("unit", JsonValue::Str(unit.to_string())),
        ]));
    };

    let tracer = Tracer::default();
    let m = median_ns(30, || {
        for i in 0..POINTS {
            tracer.point(black_box("bench_point"), i, i, 1, 0);
        }
    });
    row("tracer_point_enabled", m / POINTS, "ns/point");
    let tracer = Tracer::disabled();
    let m = median_ns(30, || {
        for i in 0..POINTS {
            tracer.point(black_box("bench_point"), i, i, 1, 0);
        }
    });
    row("tracer_point_disabled", m / POINTS, "ns/point");

    let events = boring(&spec());
    for (name, flight) in [("workload_flight_attached", true), ("workload_flight_detached", false)]
    {
        let m = median_ns(5, || {
            let (db, dir) = file_backed(flight);
            let db = replay_engine(db, &events).unwrap();
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
        });
        row(name, m, "ns/workload");
    }

    // Untraced first: the baseline checker reads the pair in row order
    // when applying the ≤10% tracing-overhead bar.
    for (name, traced) in [("sharded_2pc_untraced", false), ("sharded_2pc_traced", true)] {
        let m = median_ns(10, || sharded_2pc_workload(traced));
        row(name, m, "ns/workload");
    }

    // Witness-off first, same row-order convention for the ≤1.10× bar.
    // Interleaved pairs, min per arm: pairing cancels drift between
    // the arms and the min sheds fsync stalls (see rh-bench, which
    // measures the gate rows the same way).
    let once = |on: bool| {
        parking_lot::witness::set_enabled(on);
        let sw = Stopwatch::start();
        let (db, dir) = file_backed(true);
        let db = replay_engine(db, &events).unwrap();
        drop(db);
        let ns = sw.elapsed().as_nanos() as u64;
        parking_lot::witness::set_enabled(false);
        let _ = std::fs::remove_dir_all(&dir);
        ns
    };
    once(false); // warmup
                 // Alternate which arm goes first so drift cannot systematically tax
                 // the second arm.
    let (mut off, mut on) = (u64::MAX, u64::MAX);
    for i in 0..15 {
        if i % 2 == 0 {
            off = off.min(once(false));
            on = on.min(once(true));
        } else {
            on = on.min(once(true));
            off = off.min(once(false));
        }
    }
    row("workload_witness_off", off, "ns/workload");
    row("workload_witness_on", on, "ns/workload");

    let doc = JsonValue::obj(vec![
        ("bench", JsonValue::Str("obs_overhead".to_string())),
        (
            "workload",
            JsonValue::obj(vec![
                ("txns", JsonValue::U64(spec().txns as u64)),
                ("updates_per_txn", JsonValue::U64(spec().updates_per_txn as u64)),
            ]),
        ),
        ("rows", JsonValue::Arr(rows)),
    ]);
    // Benches run with the package as cwd; aim at the workspace target
    // dir, where CI archives `target/obs/*.json` from.
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs"));
    std::fs::create_dir_all(&dir).expect("create target/obs");
    let path = dir.join("BENCH_obs.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_obs.json");
    println!("obs_overhead: wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_tracer_points,
    bench_flight_recorder,
    bench_sharded_2pc_tracing,
    bench_lock_witness,
    export_rows
);
criterion_main!(benches);
