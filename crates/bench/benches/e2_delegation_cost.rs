//! E2 under Criterion: the cost of a single `delegate` call as a
//! function of the number of objects delegated — the §4.2 claim is
//! linear in-memory cost plus exactly one log append.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rh_common::ObjectId;
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;

fn bench_delegate_call(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_delegate_cost");
    for k in [1u64, 8, 64, 512, 2048] {
        group.throughput(Throughput::Elements(k));
        group.bench_with_input(BenchmarkId::new("objects", k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let mut db = RhDb::new(Strategy::Rh);
                    let tor = db.begin().unwrap();
                    let tee = db.begin().unwrap();
                    for ob in 0..k {
                        db.add(tor, ObjectId(ob), 1).unwrap();
                    }
                    let obs: Vec<ObjectId> = (0..k).map(ObjectId).collect();
                    (db, tor, tee, obs)
                },
                |(mut db, tor, tee, obs)| {
                    db.delegate(tor, tee, &obs).unwrap();
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_delegate_all_call(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_delegate_all_cost");
    for k in [1u64, 64, 2048] {
        group.throughput(Throughput::Elements(k));
        group.bench_with_input(BenchmarkId::new("objects", k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let mut db = RhDb::new(Strategy::Rh);
                    let tor = db.begin().unwrap();
                    let tee = db.begin().unwrap();
                    for ob in 0..k {
                        db.add(tor, ObjectId(ob), 1).unwrap();
                    }
                    (db, tor, tee)
                },
                |(mut db, tor, tee)| {
                    db.delegate_all(tor, tee).unwrap();
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delegate_call, bench_delegate_all_call);
criterion_main!(benches);
