//! Regenerates the paper-claim experiments (E1–E10) and prints their
//! tables. `EXPERIMENTS.md` records a full run.
//!
//! ```text
//! cargo run --release -p rh-bench --bin experiments           # all, full scale
//! cargo run --release -p rh-bench --bin experiments -- e3 e4  # a subset
//! cargo run -p rh-bench --bin experiments -- --quick all      # smoke sizes
//! ```

use rh_bench::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    println!("# ARIES/RH experiments ({:?} scale)\n", scale);
    for id in ids {
        match experiments::run(id, scale) {
            None => {
                eprintln!("unknown experiment id: {id} (known: {:?})", experiments::ALL);
                std::process::exit(2);
            }
            Some(tables) => {
                for t in tables {
                    t.print();
                }
            }
        }
    }
}
