//! Regenerates the paper-claim experiments (E1–E10) and prints their
//! tables. `EXPERIMENTS.md` records a full run.
//!
//! ```text
//! cargo run --release -p rh-bench --bin experiments           # all, full scale
//! cargo run --release -p rh-bench --bin experiments -- e3 e4  # a subset
//! cargo run -p rh-bench --bin experiments -- --quick all      # smoke sizes
//! cargo run -p rh-bench --bin experiments -- --smoke          # CI gate
//! ```
//!
//! `--smoke` runs every requested experiment at tiny sizes and asserts
//! that each one produced at least one table — CI uses it to catch
//! experiments that panic, hang, or silently go empty, in seconds.

use rh_bench::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let quick = smoke || args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let ids: Vec<String> =
        args.iter().filter(|a| !a.starts_with("--")).map(|a| a.to_lowercase()).collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    println!("# ARIES/RH experiments ({:?} scale)\n", scale);
    let mut ran = 0usize;
    for id in ids {
        match experiments::run(id, scale) {
            None => {
                eprintln!("unknown experiment id: {id} (known: {:?})", experiments::ALL);
                std::process::exit(2);
            }
            Some(tables) => {
                if smoke && tables.is_empty() {
                    eprintln!("smoke FAILED: experiment {id} produced no tables");
                    std::process::exit(1);
                }
                for t in tables {
                    t.print();
                }
                ran += 1;
            }
        }
    }
    if smoke {
        println!("smoke OK: {ran} experiments completed");
    }
}
