//! Regenerates the paper-claim experiments (E1–E10), prints their
//! tables, and writes one JSON metrics/timeline artifact per experiment.
//! `EXPERIMENTS.md` records a full run and documents the artifact schema.
//!
//! ```text
//! cargo run --release -p rh-bench --bin experiments           # all, full scale
//! cargo run --release -p rh-bench --bin experiments -- e3 e4  # a subset
//! cargo run -p rh-bench --bin experiments -- --quick all      # smoke sizes
//! cargo run -p rh-bench --bin experiments -- --smoke          # CI gate
//! cargo run -p rh-bench --bin experiments -- --out-dir=/tmp/obs e1
//! ```
//!
//! `--smoke` runs every requested experiment at tiny sizes, asserts that
//! each one produced at least one table, and re-parses every written
//! artifact to check it is well-formed JSON carrying the log, disk,
//! scope-table, and recovery-timeline metrics — CI uses it to catch
//! experiments that panic, hang, or silently go empty, in seconds.

use rh_bench::experiments::{self, Scale};
use rh_bench::obs_export;
use rh_obs::JsonValue;
use std::path::PathBuf;

/// Keys every artifact's probe must carry for the smoke gate to pass.
const REQUIRED_COUNTERS: [&str; 4] = [
    rh_obs::names::M_LOG_APPENDS,
    rh_obs::names::M_DISK_PAGE_READS,
    rh_obs::names::M_SCOPE_OPENS,
    rh_obs::names::M_RECOVERY_RUNS,
];

fn validate_artifact(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let parsed = rh_obs::json::parse(&text).map_err(|e| format!("parse: {e:?}"))?;
    let probe = parsed.get("probe").ok_or("no probe")?;
    let counters =
        probe.get("metrics").and_then(|m| m.get("counters")).ok_or("no metrics.counters")?;
    for key in REQUIRED_COUNTERS {
        counters.get(key).and_then(JsonValue::as_u64).ok_or(format!("counter {key} missing"))?;
    }
    let events = probe
        .get("timeline")
        .and_then(|t| t.get("events"))
        .and_then(JsonValue::as_arr)
        .ok_or("no timeline.events")?;
    if events.is_empty() {
        return Err("empty recovery timeline".into());
    }
    probe.get("recovery").ok_or("no recovery report")?;
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let quick = smoke || args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let out_dir: PathBuf = args
        .iter()
        .find_map(|a| a.strip_prefix("--out-dir="))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/obs"));
    let ids: Vec<String> =
        args.iter().filter(|a| !a.starts_with("--")).map(|a| a.to_lowercase()).collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    println!("# ARIES/RH experiments ({:?} scale)\n", scale);
    let mut ran = 0usize;
    let mut artifacts: Vec<PathBuf> = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        match experiments::run(id, scale) {
            None => {
                eprintln!("unknown experiment id: {id} (known: {:?})", experiments::ALL);
                std::process::exit(2);
            }
            Some(tables) => {
                if smoke && tables.is_empty() {
                    eprintln!("smoke FAILED: experiment {id} produced no tables");
                    std::process::exit(1);
                }
                for t in &tables {
                    t.print();
                }
                let probe = obs_export::canonical_probe(scale, i as u64 + 1);
                let art = obs_export::artifact(id, scale, &tables, probe);
                match obs_export::write_artifact(&out_dir, id, &art) {
                    Ok(path) => {
                        println!("[artifact] {}", path.display());
                        artifacts.push(path);
                    }
                    Err(e) => {
                        eprintln!("failed to write artifact for {id}: {e}");
                        std::process::exit(1);
                    }
                }
                ran += 1;
            }
        }
    }
    if smoke {
        for path in &artifacts {
            if let Err(e) = validate_artifact(path) {
                eprintln!("smoke FAILED: bad artifact {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        println!("smoke OK: {ran} experiments completed, {} artifacts verified", artifacts.len());
    }
}
