//! `rh-bench` — the CI bench-regression gate.
//!
//! ```text
//! rh-bench --check-baselines [--tolerance F]
//! rh-bench --measure NAME [--iters N]
//! ```
//!
//! `--check-baselines` re-runs the workload behind every row of the
//! checked-in baselines (`crates/bench/baselines/BENCH_server.json`,
//! `BENCH_obs.json`, `BENCH_history.json` — the time-travel
//! `read_as_of` rows — and `BENCH_repl.json` — the log-shipping
//! apply/commit/promote rows) on this machine, compares against the
//! recorded
//! medians with a relative tolerance (default ±25%, overridable with
//! `--tolerance` or `RH_BENCH_TOLERANCE`), writes the full comparison
//! to `target/obs/bench_delta.json`, and exits nonzero if any row
//! regressed. Sub-100ns rows additionally get an absolute slack of
//! 100ns — a timer tick on a loaded CI box is not a regression.
//!
//! The sharded serving row is held to a stronger bar than
//! no-regression: `serve_s4_t16_d30` must deliver at least 2.5× the
//! throughput of the *unsharded* `serve_t16_d30` baseline, which is the
//! headline scaling claim for range-sharding the engine. Sharding buys
//! parallel commit across cores, so the bar is only physical on a
//! machine with at least as many cores as shards — on smaller boxes
//! (`available_parallelism() < shards`) the ratio is printed as
//! information and the floor does not fail the run.
//!
//! The tracing rows get a same-machine bar on top of no-regression:
//! `sharded_2pc_traced` must land within 1.10× of `sharded_2pc_untraced`
//! *as measured in the same run*, the ≤10% whole-path tracing-overhead
//! budget. Comparing two fresh measurements sidesteps the cross-machine
//! noise the relative tolerance exists to absorb. The lock-witness rows
//! (`workload_witness_on` vs `workload_witness_off`, the E1-style
//! file-backed workload) get the same treatment: the witnessed run must
//! land within 1.10× of the witness-off run, whose per-acquisition cost
//! is one relaxed atomic load.
//!
//! `--measure NAME` runs one row's workload and prints the freshly
//! measured row, for regenerating baselines.

use rh_bench::serve_cycle::{self, CyclePoint};
use rh_obs::{JsonValue, Stopwatch};

/// Relative tolerance applied to every baseline comparison.
const DEFAULT_TOLERANCE: f64 = 0.25;
/// Absolute slack for rows whose baseline is under 100ns.
const ABSOLUTE_SLACK_NS: u64 = 100;
/// The sharded row must beat the matching unsharded row by this factor.
const SHARDED_SPEEDUP_FLOOR: f64 = 2.5;
/// The traced 2PC workload may cost at most this multiple of the
/// untraced run *measured in the same process* — a same-machine bar,
/// immune to the cross-machine noise the relative tolerance absorbs.
const TRACING_OVERHEAD_CEILING: f64 = 1.10;
/// The same 2PC workload under the lock-witness may cost at most this
/// multiple of the witness-off run measured in the same process — the
/// whole-path budget for the deadlock-witness instrumentation. The
/// witness-off arm is the production configuration: one relaxed atomic
/// load per acquisition (`parking_lot::witness::enabled`).
const WITNESS_OVERHEAD_CEILING: f64 = 1.10;
/// Cycles per serving point when re-measuring (median taken).
const SERVE_ITERS: usize = 3;

fn usage(reason: &str) -> ! {
    eprintln!("rh-bench: {reason}");
    eprintln!("usage: rh-bench --check-baselines [--tolerance F] | --measure NAME [--iters N]");
    std::process::exit(2);
}

fn baselines_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines"))
}

fn out_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs"))
}

fn load_rows(file: &str) -> Vec<JsonValue> {
    let path = baselines_dir().join(file);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => usage(&format!("cannot read baseline {}: {e}", path.display())),
    };
    let doc = match rh_obs::json::parse(&text) {
        Ok(d) => d,
        Err(e) => usage(&format!("cannot parse {}: {e:?}", path.display())),
    };
    match doc.get("rows") {
        Some(JsonValue::Arr(rows)) => rows.clone(),
        _ => usage(&format!("{} has no rows array", path.display())),
    }
}

fn row_str(row: &JsonValue, key: &str) -> String {
    row.get(key).and_then(|v| v.as_str().map(String::from)).unwrap_or_default()
}

fn row_u64(row: &JsonValue, key: &str) -> u64 {
    row.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// One freshly measured value for a named baseline row.
struct Measured {
    /// Metric compared against the baseline (`txns_per_sec` for serving
    /// rows — higher is better; `median_ns` for obs rows — lower is
    /// better).
    value: u64,
    /// True if larger values are better for this row.
    higher_is_better: bool,
    /// Extra fields worth carrying into the delta artifact.
    extra: Vec<(&'static str, JsonValue)>,
}

/// The time-travel fixture, built once and shared by the three `asof_*`
/// rows (the fixture is the workload; only the query target varies).
fn asof_fixture() -> &'static rh_bench::time_travel::AsofFixture {
    static FIXTURE: std::sync::OnceLock<rh_bench::time_travel::AsofFixture> =
        std::sync::OnceLock::new();
    FIXTURE.get_or_init(rh_bench::time_travel::build)
}

/// The replication feed fixture, built once and shared by the
/// `repl_apply_frame` and `repl_promote` rows (one shipped workload;
/// only what is timed over it varies).
fn repl_fixture() -> &'static rh_bench::replication::ReplFixture {
    static FIXTURE: std::sync::OnceLock<rh_bench::replication::ReplFixture> =
        std::sync::OnceLock::new();
    FIXTURE.get_or_init(rh_bench::replication::build)
}

/// Re-runs the workload behind one baseline row.
fn measure(name: &str, iters: usize) -> Option<Measured> {
    if name.starts_with("asof_") {
        let fixture = asof_fixture();
        let target = fixture.target(name)?;
        let median = rh_bench::time_travel::median_asof_ns(fixture, target, 30.max(iters));
        return Some(Measured { value: median, higher_is_better: false, extra: Vec::new() });
    }
    if name.starts_with("repl_") {
        let median = match name {
            "repl_primary_commit" => rh_bench::replication::commit_ns_floor(60.max(iters)),
            "repl_apply_frame" => {
                rh_bench::replication::apply_ns_floor(repl_fixture(), 60.max(iters))
            }
            "repl_promote" => {
                rh_bench::replication::promote_ns_floor(repl_fixture(), 60.max(iters))
            }
            _ => return None,
        };
        return Some(Measured { value: median, higher_is_better: false, extra: Vec::new() });
    }
    if let Some(point) = CyclePoint::parse(name) {
        let (median_ns, fsyncs) = serve_cycle::median_cycle_ns(&point, iters);
        let commits = point.commits();
        return Some(Measured {
            value: serve_cycle::txns_per_sec(commits, median_ns),
            higher_is_better: true,
            extra: vec![
                ("median_ns", JsonValue::U64(median_ns)),
                ("commits", JsonValue::U64(commits)),
                ("fsyncs", JsonValue::U64(fsyncs)),
            ],
        });
    }
    let ns = match name {
        "tracer_point_enabled" => obs_tracer_ns(true),
        "tracer_point_disabled" => obs_tracer_ns(false),
        "workload_flight_attached" => obs_workload_ns(true),
        "workload_flight_detached" => obs_workload_ns(false),
        "sharded_2pc_traced" => obs_sharded_2pc_ns(true),
        "sharded_2pc_untraced" => obs_sharded_2pc_ns(false),
        "workload_witness_on" => obs_witness_workload_pair_ns().1,
        "workload_witness_off" => obs_witness_workload_pair_ns().0,
        _ => return None,
    };
    Some(Measured { value: ns, higher_is_better: false, extra: Vec::new() })
}

/// Median nanoseconds per `Tracer::point` call, matching the
/// `obs_overhead` bench's export exactly.
fn obs_tracer_ns(enabled: bool) -> u64 {
    use rh_obs::trace::Tracer;
    const POINTS: u64 = 10_000;
    let tracer = if enabled { Tracer::default() } else { Tracer::disabled() };
    let loop_ns = median_ns(30, || {
        for i in 0..POINTS {
            tracer.point(std::hint::black_box("bench_point"), i, i, 1, 0);
        }
    });
    loop_ns / POINTS
}

/// Median nanoseconds for the E1-style workload with or without the
/// flight recorder, matching the `obs_overhead` bench's export.
fn obs_workload_ns(flight: bool) -> u64 {
    use rh_core::engine::{DbConfig, RhDb, Strategy};
    use rh_core::history::replay_engine;
    use rh_wal::StableLog;
    use rh_workload::{boring, WorkloadSpec};
    let spec = WorkloadSpec {
        txns: 200,
        updates_per_txn: 4,
        straggler_rate: 0.05,
        ..WorkloadSpec::default()
    };
    let events = boring(&spec);
    let mut n = 0u64;
    median_ns(5, || {
        n += 1;
        let dir =
            std::env::temp_dir().join(format!("rh-bench-gate-obs-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stable = StableLog::open_dir(&dir).expect("gate log dir");
        let mut db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
        if !flight {
            db.disable_flight_recorder();
        }
        let db = replay_engine(db, &events).expect("gate replay");
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    })
}

/// Median nanoseconds for a run of cross-shard 2PC commits on a
/// two-shard in-memory router, with the shard tracers enabled (traced
/// commits) or disabled — matching the `obs_overhead` bench's export.
fn obs_sharded_2pc_ns(traced: bool) -> u64 {
    use rh_common::ObjectId;
    use rh_core::engine::Strategy;
    use rh_core::sharded::ShardedDb;
    const COMMITS: u64 = 100;
    median_ns(10, || {
        let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
        if !traced {
            for k in 0..2 {
                db.shard_obs(k).expect("shard obs").tracer.set_enabled(false);
            }
        }
        for i in 0..COMMITS {
            let t = db.begin().unwrap();
            // Even object ids land on shard 0, odd on shard 1 (shift 0).
            db.write(t, ObjectId(4 * i), 1).unwrap();
            db.write(t, ObjectId(4 * i + 2), 2).unwrap();
            db.write(t, ObjectId(4 * i + 1), 3).unwrap();
            db.write(t, ObjectId(4 * i + 3), 4).unwrap();
            if traced {
                db.commit_traced(t, i + 1).unwrap();
            } else {
                db.commit(t).unwrap();
            }
        }
    })
}

/// The E1-style file-backed workload timed with the lock-witness off
/// and on, as `(off_ns, on_ns)` — matching the `obs_overhead` bench's
/// export. The arms are measured as *interleaved pairs* with the min
/// taken per arm: pairing cancels machine drift between the arms, and
/// the min sheds fsync stalls — both would otherwise dominate the
/// ≤1.10× ratio on a loaded runner. The flight recorder stays attached
/// in both arms (the production configuration), so the delta is the
/// witness alone; the off arm pays one relaxed atomic load per
/// acquisition. Cached: both rows and the overhead bar read one pass.
fn obs_witness_workload_pair_ns() -> (u64, u64, u64) {
    use rh_core::engine::{DbConfig, RhDb, Strategy};
    use rh_core::history::replay_engine;
    use rh_wal::StableLog;
    use rh_workload::{boring, WorkloadSpec};
    static PAIR: std::sync::OnceLock<(u64, u64, u64)> = std::sync::OnceLock::new();
    *PAIR.get_or_init(|| {
        let spec = WorkloadSpec {
            txns: 200,
            updates_per_txn: 4,
            straggler_rate: 0.05,
            ..WorkloadSpec::default()
        };
        let events = boring(&spec);
        let mut n = 0u64;
        let mut once = |on: bool| {
            n += 1;
            parking_lot::witness::set_enabled(on);
            let dir = std::env::temp_dir()
                .join(format!("rh-bench-gate-witness-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let sw = Stopwatch::start();
            let stable = StableLog::open_dir(&dir).expect("gate log dir");
            let db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
            let db = replay_engine(db, &events).expect("gate replay");
            drop(db);
            let ns = sw.elapsed().as_nanos() as u64;
            parking_lot::witness::set_enabled(false);
            let _ = std::fs::remove_dir_all(&dir);
            ns
        };
        once(false); // warmup
                     // 15 pairs, alternating which arm goes first. Row values are the
                     // min per arm (the stall-free floor). The bar is NOT the ratio of
                     // those mins — an fsync stall dodged by one arm but not the other
                     // would decide it — but the median of the per-pair ratios: the
                     // two runs of a pair share the machine's mood, so their ratio
                     // isolates the witness, and the median sheds outlier pairs.
        let (mut off, mut on) = (u64::MAX, u64::MAX);
        let mut ratios = Vec::new();
        for i in 0..15 {
            let (o, w) = if i % 2 == 0 {
                (once(false), once(true))
            } else {
                let w = once(true);
                (once(false), w)
            };
            off = off.min(o);
            on = on.min(w);
            ratios.push(w as f64 / o as f64);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let median = ratios[ratios.len() / 2];
        (off, on, (median * 1000.0) as u64)
    })
}

/// Median over `iters` timed calls (one untimed warmup), nanoseconds.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u64> = (0..iters)
        .map(|_| {
            let sw = Stopwatch::start();
            f();
            sw.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Whether `measured` is an acceptable showing against `baseline`.
fn within(measured: u64, baseline: u64, higher_is_better: bool, tolerance: f64) -> bool {
    let floor_slack =
        if baseline < ABSOLUTE_SLACK_NS && !higher_is_better { ABSOLUTE_SLACK_NS } else { 0 };
    if higher_is_better {
        measured as f64 >= baseline as f64 * (1.0 - tolerance)
    } else {
        measured as f64 <= baseline as f64 * (1.0 + tolerance) + floor_slack as f64
    }
}

fn check_baselines(tolerance: f64) -> ! {
    let mut rows = load_rows("BENCH_server.json");
    rows.extend(load_rows("BENCH_obs.json"));
    rows.extend(load_rows("BENCH_history.json"));
    rows.extend(load_rows("BENCH_repl.json"));

    // The unsharded 16-thread/30%-delegation baseline anchors the
    // sharded speedup claim.
    let t16_d30_baseline = rows
        .iter()
        .find(|r| row_str(r, "name") == "serve_t16_d30")
        .map(|r| row_u64(r, "txns_per_sec"))
        .unwrap_or(0);

    let mut deltas: Vec<JsonValue> = Vec::new();
    let mut failures = 0usize;
    let mut measured: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for row in &rows {
        let name = row_str(row, "name");
        let Some(m) = measure(&name, SERVE_ITERS) else {
            println!("rh-bench: SKIP {name} (no measurement defined)");
            continue;
        };
        measured.insert(name.clone(), m.value);
        let key = if m.higher_is_better { "txns_per_sec" } else { "median_ns" };
        let baseline = row_u64(row, key);
        let mut ok = within(m.value, baseline, m.higher_is_better, tolerance);
        let mut bar = String::new();
        if name == "serve_s4_t16_d30" && t16_d30_baseline > 0 {
            let shards = CyclePoint::parse(&name).map_or(4, |p| p.shards);
            let cores =
                std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);
            let floor = (t16_d30_baseline as f64 * SHARDED_SPEEDUP_FLOOR) as u64;
            let ratio = m.value as f64 / t16_d30_baseline as f64;
            if cores < shards {
                // One engine per shard can only commit in parallel on
                // distinct cores; on a smaller box the floor measures
                // the scheduler, not the sharding.
                bar = format!(
                    " (speedup bar skipped: {cores} core(s) < {shards} shards; \
                     measured {ratio:.2}x unsharded t16_d30)"
                );
            } else {
                if m.value < floor {
                    ok = false;
                }
                bar = format!(
                    " (speedup bar: >= {floor} = {SHARDED_SPEEDUP_FLOOR}x unsharded t16_d30, \
                     measured {ratio:.2}x)"
                );
            }
        }
        if name == "sharded_2pc_traced" {
            // Same-run comparison: the untraced row precedes this one in
            // the baseline file, so its fresh measurement is already in
            // hand (re-measure as a fallback if the file was reordered).
            let untraced = measured
                .get("sharded_2pc_untraced")
                .copied()
                .unwrap_or_else(|| obs_sharded_2pc_ns(false));
            let ceiling = (untraced as f64 * TRACING_OVERHEAD_CEILING) as u64;
            let ratio = m.value as f64 / untraced as f64;
            if m.value > ceiling {
                ok = false;
            }
            bar = format!(
                " (overhead bar: <= {ceiling} = {TRACING_OVERHEAD_CEILING}x untraced measured \
                 {untraced}, ratio {ratio:.3}x)"
            );
        }
        if name == "workload_witness_on" {
            // Same-run comparison against the witness-off arm, like the
            // tracing bar above — both arms come from the one cached
            // interleaved-pair measurement, and the gated figure is the
            // median per-pair ratio (robust to an fsync stall landing in
            // one arm of one pair).
            let (off, _, ratio_milli) = obs_witness_workload_pair_ns();
            let ratio = ratio_milli as f64 / 1000.0;
            if ratio > WITNESS_OVERHEAD_CEILING {
                ok = false;
            }
            bar = format!(
                " (overhead bar: median paired ratio {ratio:.3}x <= \
                 {WITNESS_OVERHEAD_CEILING}x; witness-off floor {off})"
            );
        }
        let delta =
            if baseline > 0 { (m.value as f64 - baseline as f64) / baseline as f64 } else { 0.0 };
        println!(
            "rh-bench: {} {name}: {key} baseline={baseline} measured={} ({:+.1}%){bar}",
            if ok { "ok  " } else { "FAIL" },
            m.value,
            delta * 100.0,
        );
        if !ok {
            failures += 1;
        }
        let mut fields = vec![
            ("name", JsonValue::Str(name)),
            ("metric", JsonValue::Str(key.to_string())),
            ("baseline", JsonValue::U64(baseline)),
            ("measured", JsonValue::U64(m.value)),
            ("delta_pct", JsonValue::Str(format!("{:+.1}", delta * 100.0))),
            ("ok", JsonValue::Bool(ok)),
        ];
        fields.extend(m.extra);
        deltas.push(JsonValue::obj(fields));
    }

    let doc = JsonValue::obj(vec![
        ("tolerance", JsonValue::Str(format!("{tolerance}"))),
        ("failures", JsonValue::U64(failures as u64)),
        ("rows", JsonValue::Arr(deltas)),
    ]);
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create target/obs");
    let path = dir.join("bench_delta.json");
    std::fs::write(&path, doc.render_pretty()).expect("write bench_delta.json");
    println!("rh-bench: wrote {}", path.display());

    if failures > 0 {
        eprintln!("rh-bench: {failures} row(s) regressed beyond ±{:.0}%", tolerance * 100.0);
        std::process::exit(1);
    }
    println!("rh-bench: all rows within ±{:.0}%", tolerance * 100.0);
    std::process::exit(0);
}

fn measure_one(name: &str, iters: usize) -> ! {
    match measure(name, iters) {
        Some(m) => {
            let mut fields = vec![
                ("name", JsonValue::Str(name.to_string())),
                (
                    if m.higher_is_better { "txns_per_sec" } else { "median_ns" },
                    JsonValue::U64(m.value),
                ),
            ];
            fields.extend(m.extra);
            println!("{}", JsonValue::obj(fields).render_pretty());
            std::process::exit(0);
        }
        None => usage(&format!("no measurement defined for row {name}")),
    }
}

fn main() {
    let mut tolerance = match std::env::var("RH_BENCH_TOLERANCE") {
        Ok(v) => v.parse().unwrap_or(DEFAULT_TOLERANCE),
        Err(_) => DEFAULT_TOLERANCE,
    };
    let mut check = false;
    let mut measure_name: Option<String> = None;
    let mut iters = SERVE_ITERS;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => usage(&format!("{name} needs a value")),
        };
        match flag.as_str() {
            "--check-baselines" => check = true,
            "--tolerance" => match value("--tolerance").parse() {
                Ok(f) => tolerance = f,
                Err(_) => usage("--tolerance needs a float"),
            },
            "--measure" => measure_name = Some(value("--measure")),
            "--iters" => match value("--iters").parse() {
                Ok(n) => iters = n,
                Err(_) => usage("--iters needs an integer"),
            },
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if let Some(name) = measure_name {
        measure_one(&name, iters);
    }
    if check {
        check_baselines(tolerance);
    }
    usage("pass --check-baselines or --measure NAME");
}
