//! # rh-bench
//!
//! The benchmark harness reproducing the paper's efficiency claims
//! (§4.2) as measured experiments E1–E10. Each experiment lives in
//! [`experiments`] and returns printable tables, consumed by
//!
//! * the `experiments` binary (`cargo run -p rh-bench --bin experiments
//!   [--quick] [e1 ... e10 | all]`), whose output is recorded in
//!   `EXPERIMENTS.md`, and
//! * the Criterion benches (`cargo bench`), which re-run the same
//!   workloads under the statistics harness.

pub mod experiments;
pub mod harness;
pub mod obs_export;
pub mod replication;
pub mod serve_cycle;
pub mod table;
pub mod time_travel;

pub use harness::{measure, timed, Measurement};
pub use table::Table;
