//! Shared fixture + measurement for the time-travel (reenactment)
//! bench rows, used by both the `e13_time_travel` Criterion bench and
//! the `rh-bench --check-baselines` gate so the checked-in
//! `BENCH_history.json` rows are re-measured with the exact workload
//! that produced them.
//!
//! One in-memory engine, one hot object, 600 committed increments with
//! a checkpoint after the first 300 — and three query targets that
//! exercise the three cost regimes of `RhDb::read_as_of`:
//!
//! * **`asof_near_tip`** — target = the log tail. The newest checkpoint
//!   sits 300 commits below, so the replay seeds there and scans the
//!   younger half of the log.
//! * **`asof_deep_history`** — target = the last pre-checkpoint
//!   commit. No checkpoint at-or-below the target exists, so the
//!   replay is seedless: it folds forward from the log's first record
//!   through the same number of committed versions the near-tip query
//!   replays, which is what makes the pair comparable — the delta is
//!   what having *any* checkpoint below the target is worth.
//! * **`asof_checkpoint_adjacent`** — target = the LSN right after the
//!   checkpoint. The replay seeds from the snapshot and scans almost
//!   nothing, the best case the checkpoint-seeding optimization buys.

use rh_common::{Lsn, ObjectId};
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;
use rh_obs::Stopwatch;

/// Committed increments on each side of the checkpoint.
pub const COMMITS_PER_HALF: u64 = 300;
/// The hot object every query reenacts.
pub const OB: ObjectId = ObjectId(7);

/// The built engine plus the three per-regime query targets.
pub struct AsofFixture {
    /// The engine whose log the queries replay.
    pub db: RhDb,
    /// Target at the last pre-checkpoint commit (seedless).
    pub deep: Lsn,
    /// Target right after the checkpoint (seed + near-zero scan).
    pub ckpt_adjacent: Lsn,
}

/// Builds the fixture: 300 increments, a checkpoint, 300 more. Each
/// transaction also touches a cold neighbor object so the replay has to
/// skip records that are not about `OB`, like any real log.
pub fn build() -> AsofFixture {
    let mut db = RhDb::new(Strategy::Rh);
    let mut deep = Lsn::NULL;
    for i in 0..COMMITS_PER_HALF {
        commit_one(&mut db, i);
        if i == COMMITS_PER_HALF - 1 {
            deep = db.log().last_lsn();
        }
    }
    TxnEngine::checkpoint(&mut db).expect("bench checkpoint");
    let ckpt_adjacent = db.log().last_lsn();
    for i in COMMITS_PER_HALF..2 * COMMITS_PER_HALF {
        commit_one(&mut db, i);
    }
    AsofFixture { db, deep, ckpt_adjacent }
}

fn commit_one(db: &mut RhDb, i: u64) {
    let t = db.begin().expect("bench begin");
    db.add(t, OB, 1).expect("bench add");
    db.write(t, ObjectId(1000 + i), i as i64).expect("bench write");
    db.commit(t).expect("bench commit");
}

impl AsofFixture {
    /// The query target behind a named baseline row, or `None` if the
    /// name is not a time-travel row.
    pub fn target(&self, name: &str) -> Option<Lsn> {
        match name {
            "asof_near_tip" => Some(Lsn::NULL),
            "asof_deep_history" => Some(self.deep),
            "asof_checkpoint_adjacent" => Some(self.ckpt_adjacent),
            _ => None,
        }
    }

    /// Runs one `read_as_of` at `target`, returning the value (for
    /// black-boxing) and asserting the reenactment answered.
    pub fn query(&self, target: Lsn) -> i64 {
        self.db.read_as_of(OB, target).expect("bench reenactment")
    }
}

/// Median nanoseconds per `read_as_of` at `target`: `iters` timed
/// batches of [`QUERIES_PER_BATCH`] queries each (one untimed warmup),
/// batch median divided down to per-query.
pub fn median_asof_ns(fixture: &AsofFixture, target: Lsn, iters: usize) -> u64 {
    const QUERIES_PER_BATCH: u64 = 20;
    let run = || {
        for _ in 0..QUERIES_PER_BATCH {
            std::hint::black_box(fixture.query(target));
        }
    };
    run();
    let mut times: Vec<u64> = (0..iters)
        .map(|_| {
            let sw = Stopwatch::start();
            run();
            sw.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] / QUERIES_PER_BATCH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_targets_hit_their_regimes() {
        let f = build();
        // All three targets answer, with the values the increments imply.
        assert_eq!(f.query(Lsn::NULL), 2 * COMMITS_PER_HALF as i64);
        assert_eq!(f.query(f.ckpt_adjacent), COMMITS_PER_HALF as i64);
        assert_eq!(f.query(f.deep), COMMITS_PER_HALF as i64);
        // The regimes are real: the checkpoint-adjacent replay seeds
        // from the snapshot, the deep-history one cannot.
        let adj = f.db.reenact(OB, f.ckpt_adjacent).expect("reenact");
        assert!(adj.seeded_from.is_some(), "adjacent target must seed");
        let deep = f.db.reenact(OB, f.deep).expect("reenact");
        assert!(deep.seeded_from.is_none(), "deep target must be seedless");
        assert!(
            deep.records_scanned > adj.records_scanned,
            "deep replay must scan more than the seeded one ({} vs {})",
            deep.records_scanned,
            adj.records_scanned
        );
    }
}
