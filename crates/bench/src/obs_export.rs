//! JSON metric/timeline artifacts for the experiment harness.
//!
//! Every `experiments` run (including `--smoke`) writes one JSON file per
//! experiment: `{experiment, scale, tables, probe}`. The `probe` is a
//! full observability report from an instrumented crash-recovery run —
//! unified `log.*`/`disk.*`/`lock.*`/`scope.*`/`recovery.*` metrics, the
//! recovery trace timeline, and the structured [`RecoveryReport`] — so
//! the artifact carries machine-readable evidence for the §4.2 claims
//! alongside the human-readable tables. See EXPERIMENTS.md for the
//! schema.

use crate::experiments::Scale;
use crate::table::Table;
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::recovery::RecoveryReport;
use rh_core::TxnEngine;
use rh_obs::JsonValue;
use rh_wal::StableLog;
use rh_workload::{delegation_mix, WorkloadSpec};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Renders a [`RecoveryReport`] as a JSON object.
pub fn recovery_report_json(r: &RecoveryReport) -> JsonValue {
    JsonValue::obj(vec![
        (
            "forward",
            JsonValue::obj(vec![
                ("redo_from", JsonValue::U64(r.forward.redo_from.raw())),
                ("records_scanned", JsonValue::U64(r.forward.records_scanned)),
                ("redone", JsonValue::U64(r.forward.redone)),
                ("commits_seen", JsonValue::U64(r.forward.commits_seen)),
                ("aborts_seen", JsonValue::U64(r.forward.aborts_seen)),
                ("delegations_seen", JsonValue::U64(r.forward.delegations_seen)),
                ("wall_us", JsonValue::U64(r.forward_wall.as_micros() as u64)),
            ]),
        ),
        (
            "undo",
            JsonValue::obj(vec![
                ("visited", JsonValue::U64(r.undo.visited)),
                ("undone", JsonValue::U64(r.undo.undone)),
                ("skipped_compensated", JsonValue::U64(r.undo.skipped_compensated)),
                ("clusters", JsonValue::U64(r.undo.clusters)),
                ("rewrites", JsonValue::U64(r.undo.rewrites)),
                ("wall_us", JsonValue::U64(r.undo_wall.as_micros() as u64)),
            ]),
        ),
        ("losers", JsonValue::U64(r.losers.len() as u64)),
        ("winners_seen", JsonValue::U64(r.winners_seen)),
        ("elapsed_us", JsonValue::U64(r.elapsed.as_micros() as u64)),
        (
            "log_delta",
            JsonValue::obj(vec![
                ("appends", JsonValue::U64(r.log_delta.appends)),
                ("records_read", JsonValue::U64(r.log_delta.records_read)),
                ("seeks", JsonValue::U64(r.log_delta.seeks)),
                ("in_place_rewrites", JsonValue::U64(r.log_delta.in_place_rewrites)),
            ]),
        ),
        (
            "disk_delta",
            JsonValue::obj(vec![
                ("page_reads", JsonValue::U64(r.disk_delta.page_reads)),
                ("page_writes", JsonValue::U64(r.disk_delta.page_writes)),
            ]),
        ),
    ])
}

/// Full observability report for an engine: unified metrics (absorbing
/// the current log/disk/lock counters), the trace timeline, every
/// object's delegation-provenance chain, the predecessor postmortem
/// (when the engine recovered next to a black box), and — when the
/// engine came out of restart recovery — the structured report.
pub fn engine_report(db: &RhDb) -> JsonValue {
    let mut fields = vec![
        ("metrics", db.stats().to_json()),
        ("timeline", db.trace_snapshot().to_json()),
        ("provenance", db.provenance_json()),
        ("postmortem", db.postmortem().unwrap_or(JsonValue::Null)),
    ];
    if let Some(r) = db.last_recovery() {
        fields.push(("recovery", recovery_report_json(r)));
    }
    JsonValue::obj(fields)
}

/// Runs the canonical instrumented crash-recovery scenario (a delegation
/// mix with stragglers, run file-backed so the flight recorder engages,
/// black-boxed, crashed, and recovered under ARIES/RH) and returns its
/// [`engine_report`]. `seed` varies the workload so each experiment's
/// artifact carries an independent run.
pub fn canonical_probe(scale: Scale, seed: u64) -> JsonValue {
    static PROBE: AtomicU64 = AtomicU64::new(0);
    let spec = WorkloadSpec {
        txns: scale.pick(40, 400),
        updates_per_txn: 4,
        objects_per_txn: 2,
        delegation_rate: 0.5,
        chain_len: 2,
        straggler_rate: 0.3,
        abort_rate: 0.1,
        seed,
        ..WorkloadSpec::default()
    };
    let events = delegation_mix(&spec);
    let dir = std::env::temp_dir().join(format!(
        "rh-bench-probe-{}-{seed}-{}",
        std::process::id(),
        PROBE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let stable = StableLog::open_dir(&dir).expect("probe log dir");
    let db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
    let engine = replay_engine(db, &events).expect("probe replay");
    engine.log().flush_all().expect("probe flush");
    // Freeze the pre-crash black box the recovery will diff against.
    engine.record_blackbox("pre-crash");
    let engine = engine.crash_and_recover().expect("probe recovery");
    let report = engine_report(&engine);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Assembles one experiment's artifact object.
pub fn artifact(id: &str, scale: Scale, tables: &[Table], probe: JsonValue) -> JsonValue {
    JsonValue::obj(vec![
        ("experiment", JsonValue::Str(id.to_string())),
        ("scale", JsonValue::Str(format!("{scale:?}").to_lowercase())),
        ("tables", JsonValue::Arr(tables.iter().map(Table::to_json).collect())),
        ("probe", probe),
    ])
}

/// Writes an artifact as pretty-printed JSON to `dir/<id>.json`,
/// creating `dir` if needed. Returns the written path.
pub fn write_artifact(dir: &Path, id: &str, value: &JsonValue) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.json"));
    std::fs::write(&path, value.render_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_probe_carries_all_metric_families() {
        let probe = canonical_probe(Scale::Quick, 7);
        let metrics = probe.get("metrics").expect("metrics");
        for key in ["counters", "histograms"] {
            assert!(metrics.get(key).is_some(), "metrics.{key} missing");
        }
        let counters = metrics.get("counters").unwrap();
        for key in ["log.appends", "disk.page_reads", "scope.opens", "recovery.runs"] {
            assert!(counters.get(key).is_some(), "counter {key} missing");
        }
        // The RH probe never rewrites the log in place.
        assert_eq!(counters.get("log.in_place_rewrites").and_then(JsonValue::as_u64), Some(0));
        let timeline = probe.get("timeline").expect("timeline");
        let events = timeline.get("events").and_then(JsonValue::as_arr).expect("events");
        assert!(!events.is_empty(), "recovery left no trace events");
        assert!(probe.get("recovery").is_some(), "recovery report missing");

        // The probe runs file-backed with a pre-crash freeze, so the
        // artifact must carry both new sections: a postmortem diffing
        // the predecessor and at least one delegation chain.
        let pm = probe.get("postmortem").expect("postmortem section");
        assert_ne!(*pm, JsonValue::Null, "file-backed probe must find its predecessor");
        assert_eq!(
            pm.get("predecessor").and_then(|p| p.get("reason")).and_then(JsonValue::as_str),
            Some("pre-crash"),
        );
        let prov = probe.get("provenance").expect("provenance section");
        let JsonValue::Obj(chains) = prov else { panic!("provenance must be an object") };
        assert!(!chains.is_empty(), "a 50% delegation mix must delegate something");
    }

    #[test]
    fn artifact_roundtrips_through_the_parser() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let art = artifact("e0", Scale::Quick, &[t], JsonValue::Null);
        let text = art.render_pretty();
        let parsed = rh_obs::json::parse(&text).expect("parse back");
        assert_eq!(
            parsed.get("experiment").and_then(|v| v.as_str().map(String::from)),
            Some("e0".to_string())
        );
        let tables = parsed.get("tables").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(tables.len(), 1);
    }
}
