//! Shared fixture + measurement for the replication (log-shipping)
//! bench rows, used by both the `e14_replication` Criterion bench and
//! the `rh-bench --check-baselines` gate so the checked-in
//! `BENCH_repl.json` rows are re-measured with the exact workload that
//! produced them.
//!
//! One workload, three rows:
//!
//! * **`repl_primary_commit`** — nanoseconds per committed
//!   transaction on an in-memory primary. This is the rate the shipped
//!   stream is produced at: the replica must apply at least this fast
//!   or it falls behind without bound.
//! * **`repl_apply_frame`** — median nanoseconds per shipped frame
//!   applied by a [`ReplicaSet`] (append to the local log + incremental
//!   forward pass). Each committed transaction emits several log
//!   records (begin/update/commit bookkeeping), so the replica keeps up
//!   iff `repl_apply_frame × frames_per_commit < repl_primary_commit`
//!   — the exported workload doc carries both counts so the ratio is
//!   computable from the artifact alone.
//! * **`repl_promote`** — nanoseconds for
//!   [`ReplicaSet::promote`] over a fully caught-up replica: finish the
//!   forward pass, run the backward pass over losers, open for writes.
//!   This is the failover outage floor — what promote-on-failure costs
//!   *after* the failure has been detected.

use rh_common::codec::Codec;
use rh_common::{Lsn, ObjectId, Value};
use rh_core::engine::{RhDb, Strategy};
use rh_core::replica::ReplicaSet;
use rh_core::TxnEngine;
use rh_obs::Stopwatch;

/// Committed transactions in the shipped workload.
pub const COMMITS: u64 = 300;

/// The pre-encoded replication feed: every durable record of the
/// primary's log, in LSN order, exactly as `ship_loop` frames them.
pub struct ReplFixture {
    /// `(lsn, record bytes)` per frame.
    pub frames: Vec<(Lsn, Vec<u8>)>,
}

/// Builds the fixture: [`COMMITS`] single-object committed transactions
/// on an in-memory primary, then the whole durable log encoded as
/// frames. Each transaction touches its own object so the replica's
/// forward pass grows real scope-table state, like any real feed.
pub fn build() -> ReplFixture {
    let mut db = RhDb::new(Strategy::Rh);
    run_commits(&mut db);
    db.log().flush_all().expect("bench flush");
    let log = db.log();
    let mut frames = Vec::new();
    let mut lsn = Lsn(0);
    while lsn.raw() < log.durable_len() {
        let rec = log.read(lsn).expect("bench record readable");
        frames.push((lsn, rec.to_bytes()));
        lsn = lsn.next();
    }
    ReplFixture { frames }
}

/// One full primary-side workload: a fresh in-memory primary
/// committing [`COMMITS`] transactions (the Criterion iteration unit
/// for the commit-rate row).
pub fn commit_workload() {
    let mut db = RhDb::new(Strategy::Rh);
    run_commits(&mut db);
}

fn run_commits(db: &mut RhDb) {
    for i in 0..COMMITS {
        let t = db.begin().expect("bench begin");
        db.write(t, ObjectId(100 + i), i as Value).expect("bench write");
        db.commit(t).expect("bench commit");
    }
}

impl ReplFixture {
    /// A fresh in-memory single-shard replica with every frame applied
    /// — the caught-up state promotion starts from.
    pub fn caught_up_replica(&self) -> ReplicaSet {
        let set = ReplicaSet::new_mem(Strategy::Rh, 1, 0);
        self.apply_all(&set);
        set
    }

    /// Applies every frame to `set`, in order.
    pub fn apply_all(&self, set: &ReplicaSet) {
        for (lsn, bytes) in &self.frames {
            set.apply_frame(0, *lsn, bytes).expect("bench apply");
        }
    }

    /// One full replica-side workload: a fresh in-memory replica
    /// consuming the whole feed (the Criterion iteration unit for the
    /// apply-rate row).
    pub fn apply_workload(&self) {
        let set = ReplicaSet::new_mem(Strategy::Rh, 1, 0);
        self.apply_all(&set);
    }

    /// One full failover: catch a fresh replica up (dominated by the
    /// feed replay) and promote it (the Criterion iteration unit for
    /// the promote row; the gated row isolates the promote itself).
    pub fn promote_workload(&self) {
        let set = self.caught_up_replica();
        std::hint::black_box(set.promote().expect("bench promote"));
    }
}

/// Nanoseconds per committed transaction on a fresh in-memory primary
/// (the production rate of the shipped stream). Like every row in this
/// module, the statistic is the *min* over the iterations — the
/// stall-free floor — because these sub-millisecond workloads swing
/// with scheduler mood on a loaded runner far beyond the gate's
/// tolerance, and the floor is the number the baseline comparison can
/// hold stable (the same reasoning as the lock-witness rows' min).
pub fn commit_ns_floor(iters: usize) -> u64 {
    min_ns(iters, || {
        let mut db = RhDb::new(Strategy::Rh);
        run_commits(&mut db);
    }) / COMMITS
}

/// Nanoseconds per frame (min over iterations) applied by a fresh
/// in-memory replica consuming the whole fixture feed (the replica's
/// consumption rate).
pub fn apply_ns_floor(fixture: &ReplFixture, iters: usize) -> u64 {
    let frames = fixture.frames.len() as u64;
    min_ns(iters, || {
        let set = ReplicaSet::new_mem(Strategy::Rh, 1, 0);
        fixture.apply_all(&set);
    }) / frames.max(1)
}

/// Nanoseconds (min over iterations) for one `promote()` of a fully
/// caught-up replica. The catch-up is rebuilt untimed each iteration —
/// promotion consumes the replica's engine, so a promoted set cannot be
/// promoted again.
pub fn promote_ns_floor(fixture: &ReplFixture, iters: usize) -> u64 {
    let mut best = u64::MAX;
    // One untimed warmup.
    fixture.caught_up_replica().promote().expect("bench promote");
    for _ in 0..iters {
        let set = fixture.caught_up_replica();
        let sw = Stopwatch::start();
        let promoted = set.promote().expect("bench promote");
        best = best.min(sw.elapsed().as_nanos() as u64);
        drop(promoted);
    }
    best
}

/// Min over `iters` timed calls (one untimed warmup), nanoseconds.
fn min_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    (0..iters)
        .map(|_| {
            let sw = Stopwatch::start();
            f();
            sw.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_feed_replays_and_promotes() {
        let f = build();
        assert!(f.frames.len() as u64 >= COMMITS, "feed shorter than the commits it carries");
        let set = f.caught_up_replica();
        // The caught-up replica serves every acked effect.
        for i in 0..COMMITS {
            assert_eq!(set.value_of(ObjectId(100 + i)).unwrap(), i as Value);
        }
        // Promotion opens the same state for writes.
        match set.promote().expect("promote") {
            rh_core::replica::PromotedDb::Single(mut db) => {
                let t = db.begin().unwrap();
                assert_eq!(db.read(t, ObjectId(100)).unwrap(), 0);
                db.commit(t).unwrap();
            }
            rh_core::replica::PromotedDb::Sharded(_) => panic!("one shard promotes single"),
        }
    }
}
