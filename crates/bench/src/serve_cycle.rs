//! One full serve/load/drain cycle against an in-process server —
//! the measurement unit shared by the `server_throughput` Criterion
//! bench and the `rh-bench --check-baselines` regression gate, so the
//! gate re-runs exactly the workload the checked-in baselines measured.
//!
//! A cycle stands up a fresh file-backed server (single-engine or
//! range-sharded), drives it with the `rh-load` closed-loop generator,
//! verifies the oracle, and drains. Points are named the way baseline
//! rows are named: `serve_t16_d30` (16 threads, 30% delegation) or
//! `serve_s4_t16_d30` (the same mix on 4 shards, with the standard
//! cross-shard fraction mixed in).

use rh_client::load::{run_load, LoadSpec};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::sharded::{ShardMap, ShardedDb};
use rh_obs::Stopwatch;
use rh_server::{Server, ServerConfig};
use rh_wal::StableLog;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Transactions each load thread runs per cycle.
pub const TXNS_PER_THREAD: usize = 10;
/// Updates each transaction applies.
pub const UPDATES_PER_TXN: usize = 4;
/// Fraction of transactions that touch a second shard on sharded
/// points. Fixed so a point is fully determined by its name.
pub const CROSS_SHARD_FRACTION: f64 = 0.25;

/// One point on the serving grid: a thread count, a delegation mix,
/// and a shard count (1 = the unsharded fast path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CyclePoint {
    /// Concurrent client connections.
    pub threads: usize,
    /// Fraction of transactions routed through the delegation idiom.
    pub delegation: f64,
    /// Engine shards (1 = single engine, no 2PC anywhere).
    pub shards: usize,
}

/// What one serve/load/drain cycle observed.
#[derive(Debug, Clone, Copy)]
pub struct CycleOutcome {
    /// Transactions the oracle saw acknowledged.
    pub txns: u64,
    /// Server-side commit counter delta.
    pub commits: u64,
    /// Server-side fsync counter delta (summed over shards).
    pub fsyncs: u64,
}

impl CyclePoint {
    /// The unsharded grid point `serve_t{threads}_d{delegation%}`.
    pub fn single(threads: usize, delegation: f64) -> Self {
        CyclePoint { threads, delegation, shards: 1 }
    }

    /// The sharded grid point `serve_s{shards}_t{threads}_d{delegation%}`.
    pub fn sharded(shards: usize, threads: usize, delegation: f64) -> Self {
        CyclePoint { threads, delegation, shards }
    }

    /// The baseline row name for this point.
    pub fn name(&self) -> String {
        let d = (self.delegation * 100.0) as u32;
        if self.shards > 1 {
            format!("serve_s{}_t{}_d{d}", self.shards, self.threads)
        } else {
            format!("serve_t{}_d{d}", self.threads)
        }
    }

    /// Parses a baseline row name back into its point; `None` for rows
    /// that are not serving points.
    pub fn parse(name: &str) -> Option<Self> {
        let rest = name.strip_prefix("serve_")?;
        let mut shards = 1usize;
        let mut rest = rest;
        if let Some(r) = rest.strip_prefix('s') {
            let (s, r) = r.split_once('_')?;
            shards = s.parse().ok()?;
            rest = r;
        }
        let rest = rest.strip_prefix('t')?;
        let (t, d) = rest.split_once("_d")?;
        Some(CyclePoint {
            threads: t.parse().ok()?,
            delegation: d.parse::<u32>().ok()? as f64 / 100.0,
            shards,
        })
    }

    /// The load-generator spec this point drives.
    pub fn spec(&self) -> LoadSpec {
        LoadSpec {
            threads: self.threads,
            txns_per_thread: TXNS_PER_THREAD,
            updates_per_txn: UPDATES_PER_TXN,
            delegation_fraction: self.delegation,
            seed: 42,
            base_offset: 0,
            cross_shard_fraction: if self.shards > 1 { CROSS_SHARD_FRACTION } else { 0.0 },
            shards: self.shards,
            trace: false,
            audit_fraction: 0.0,
            replica: None,
        }
    }

    /// Commits one cycle of this point is expected to acknowledge.
    pub fn commits(&self) -> u64 {
        (self.threads * TXNS_PER_THREAD) as u64
    }
}

fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-bench-cycle-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One full serve/load/drain cycle on a fresh directory. Object ids are
/// deterministic per thread, so every cycle needs its own engine — a
/// reused one would see the generator's `add` objects twice.
pub fn one_cycle(point: &CyclePoint) -> CycleOutcome {
    let dir = scratch();
    let server = if point.shards > 1 {
        let stables = (0..point.shards)
            .map(|k| StableLog::open_dir(dir.join(format!("shard-{k}"))).expect("bench shard dir"))
            .collect();
        let db = ShardedDb::with_stable_logs(
            Strategy::Rh,
            DbConfig::default(),
            stables,
            ShardMap::RANGE_SHIFT,
        )
        .expect("bench sharded open");
        Server::bind_sharded("127.0.0.1:0", db, ServerConfig::default()).expect("bind")
    } else {
        let stable = StableLog::open_dir(&dir).expect("bench log dir");
        let db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
        Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind")
    };
    let addr = server.local_addr().to_string();
    let report = run_load(&addr, &point.spec()).expect("load");
    assert_eq!(report.divergences, 0, "bench run diverged: {report:?}");
    assert_eq!(report.errors, 0, "bench run errored: {report:?}");
    let out = CycleOutcome {
        txns: report.txns_committed,
        commits: report.server_commits_delta,
        fsyncs: report.server_fsyncs_delta,
    };
    if point.shards > 1 {
        drop(server.shutdown_sharded().expect("drain"));
    } else {
        drop(server.shutdown().expect("drain"));
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Median wall time over `iters` cycles (no warmup — a cycle carries
/// its own server setup, as the baselines did), plus the fsync delta
/// from the median-timed run's neighborhood.
pub fn median_cycle_ns(point: &CyclePoint, iters: usize) -> (u64, u64) {
    let mut times: Vec<(u64, u64)> = (0..iters.max(1))
        .map(|_| {
            let sw = Stopwatch::start();
            let out = one_cycle(point);
            (sw.elapsed().as_nanos() as u64, out.fsyncs)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Committed transactions per second implied by a cycle time.
pub fn txns_per_sec(commits: u64, median_ns: u64) -> u64 {
    (commits * 1_000_000_000).checked_div(median_ns).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for point in [
            CyclePoint::single(1, 0.0),
            CyclePoint::single(16, 0.3),
            CyclePoint::sharded(4, 16, 0.3),
            CyclePoint::sharded(8, 4, 0.25),
        ] {
            let name = point.name();
            assert_eq!(CyclePoint::parse(&name), Some(point), "{name}");
        }
        assert_eq!(CyclePoint::parse("tracer_point_enabled"), None);
        assert_eq!(CyclePoint::parse("serve_bogus"), None);
    }

    #[test]
    fn sharded_points_mix_cross_shard_traffic() {
        let spec = CyclePoint::sharded(4, 16, 0.3).spec();
        assert_eq!(spec.shards, 4);
        assert!(spec.cross_shard_fraction > 0.0);
        assert_eq!(CyclePoint::single(16, 0.3).spec().cross_shard_fraction, 0.0);
    }
}
