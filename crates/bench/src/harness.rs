//! Measurement plumbing shared by the experiments and the Criterion
//! benches.

use rh_core::history::{replay_engine, Event};
use rh_core::TxnEngine;
use rh_obs::Stopwatch;
use std::time::Duration;

/// Wall-clock plus whatever the caller extracted from engine metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Wall-clock time of the measured phase.
    pub wall: Duration,
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Stopwatch::start();
    let out = f();
    (out, start.elapsed())
}

/// Replays `events` on `engine`, returning the engine and the wall time.
pub fn measure<E: TxnEngine>(engine: E, events: &[Event]) -> (E, Measurement) {
    let (engine, wall) = timed(|| replay_engine(engine, events).expect("replay failed"));
    (engine, Measurement { wall })
}

/// Replays a normal-processing prefix, then crashes and recovers,
/// timing the two phases separately. The history must not itself contain
/// `Crash` events.
pub fn measure_with_recovery<E: TxnEngine>(
    engine: E,
    events: &[Event],
) -> (E, Measurement, Measurement) {
    debug_assert!(!events.iter().any(|e| matches!(e, Event::Crash)));
    let (engine, normal) = measure(engine, events);
    let (engine, recovery_wall) = timed(|| engine.crash_and_recover().expect("recovery failed"));
    (engine, normal, Measurement { wall: recovery_wall })
}

/// Runs `f` `iters` times and returns the mean duration.
pub fn mean_of(iters: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let total: Duration = (0..iters).map(|_| f()).sum();
    total / iters.max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_common::ObjectId;
    use rh_core::engine::{RhDb, Strategy};

    #[test]
    fn measure_replays_and_times() {
        let events = vec![Event::Begin(0), Event::Write(0, ObjectId(0), 5), Event::Commit(0)];
        let (mut engine, m) = measure(RhDb::new(Strategy::Rh), &events);
        assert_eq!(engine.value_of(ObjectId(0)).unwrap(), 5);
        assert!(m.wall > Duration::ZERO);
    }

    #[test]
    fn measure_with_recovery_splits_phases() {
        let events = vec![Event::Begin(0), Event::Write(0, ObjectId(0), 5)];
        let (mut engine, normal, rec) = measure_with_recovery(RhDb::new(Strategy::Rh), &events);
        assert!(normal.wall > Duration::ZERO);
        assert!(rec.wall > Duration::ZERO);
        // Uncommitted write rolled back by the measured recovery.
        assert_eq!(engine.value_of(ObjectId(0)).unwrap(), 0);
    }
}
