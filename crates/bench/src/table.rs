//! Minimal fixed-width table rendering for experiment output.

/// A simple text table: headers plus string rows, rendered with columns
/// padded to their widest cell.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders to lines.
    pub fn render(&self) -> Vec<String> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = Vec::with_capacity(self.rows.len() + 3);
        out.push(format!("## {}", self.title));
        out.push(fmt_row(&self.headers));
        out.push(widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            out.push(fmt_row(row));
        }
        out
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as `{title, headers, rows}` for JSON artifacts.
    pub fn to_json(&self) -> rh_obs::JsonValue {
        use rh_obs::JsonValue;
        let strs =
            |v: &[String]| JsonValue::Arr(v.iter().map(|s| JsonValue::Str(s.clone())).collect());
        JsonValue::obj(vec![
            ("title", JsonValue::Str(self.title.clone())),
            ("headers", strs(&self.headers)),
            ("rows", JsonValue::Arr(self.rows.iter().map(|r| strs(r)).collect())),
        ])
    }

    /// Prints to stdout.
    pub fn print(&self) {
        for line in self.render() {
            println!("{line}");
        }
        println!();
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a duration in milliseconds with 3 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let lines = t.render();
        assert_eq!(lines[0], "## demo");
        assert!(lines[1].contains("name"));
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.500");
    }
}
