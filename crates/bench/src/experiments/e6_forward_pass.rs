//! **E6 — forward-pass overhead of delegation** (§4.2: "the forward pass
//! of recovery is only different from that of ARIES in its processing of
//! update (there is an extra check) and delegate ... ARIES/RH adds
//! neither extra log sweeps, nor costs proportional to the length of the
//! log").
//!
//! Workloads with increasing delegation rates but (approximately) equal
//! update counts are crashed and recovered; forward-pass records
//! scanned must grow only by the delegate records themselves, never by
//! extra sweeps.

use super::Scale;
use crate::harness::timed;
use crate::table::{ms, Table};
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_workload::{delegation_mix, WorkloadSpec};

/// Runs E6.
pub fn run(scale: Scale) -> Vec<Table> {
    let txns = scale.pick(50, 2_000);
    let mut table = Table::new(
        format!("E6: forward pass vs delegation rate ({txns} jobs)"),
        &[
            "delegation rate",
            "log records",
            "delegate recs",
            "fwd scanned",
            "scanned - log",
            "redone",
            "fwd+bwd ms",
        ],
    );

    for rate in [0.0, 0.25, 0.5, 1.0] {
        let spec = WorkloadSpec {
            txns,
            updates_per_txn: 6,
            delegation_rate: rate,
            chain_len: 1,
            straggler_rate: 0.1,
            abort_rate: 0.0,
            ..WorkloadSpec::default()
        };
        let events = delegation_mix(&spec);
        let engine = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
        engine.log().flush_all().unwrap();
        let log_len = engine.log().len() as u64;
        let (engine, rec_wall) = timed(|| engine.crash_and_recover().unwrap());
        let report = engine.last_recovery().unwrap();
        table.row(vec![
            format!("{rate}"),
            log_len.to_string(),
            report.forward.delegations_seen.to_string(),
            report.forward.records_scanned.to_string(),
            (report.forward.records_scanned as i64 - log_len as i64).to_string(),
            report.forward.redone.to_string(),
            ms(rec_wall),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_single_sweep_regardless_of_delegation() {
        let tables = run(Scale::Quick);
        for line in tables[0].render().iter().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            // "scanned - log" must be exactly 0: one sweep, no extras.
            assert_eq!(cells[4], "0", "forward pass must scan the log exactly once: {line}");
        }
    }
}
