//! **E10 — ablation: buffer-pool size (steal pressure) vs recovery
//! work.**
//!
//! A tiny pool steals constantly: dirty pages (with uncommitted values)
//! reach disk before commit, so recovery both *undoes more from disk*
//! and *redoes less* (stolen pages already carry later page-LSNs). A
//! large pool never steals: the disk stays stale, redo does all the
//! work. Correctness is identical everywhere (the oracle suite covers
//! it); this experiment shows the cost surface the steal/no-force design
//! trades over — context for why UNDO/REDO (and hence delegation-aware
//! undo) is needed at all.

use super::Scale;
use crate::harness::timed;
use crate::table::{ms, Table};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_workload::{delegation_mix, WorkloadSpec};

/// Runs E10.
pub fn run(scale: Scale) -> Vec<Table> {
    let txns = scale.pick(100, 2_000);
    let spec = WorkloadSpec {
        txns,
        updates_per_txn: 6,
        objects_per_txn: 3,
        delegation_rate: 0.5,
        straggler_rate: 0.2,
        abort_rate: 0.0,
        ..WorkloadSpec::default()
    };
    let events = delegation_mix(&spec);

    let mut table = Table::new(
        format!("E10: buffer-pool size ablation ({txns} jobs, 50% delegation)"),
        &[
            "pool pages",
            "normal ms",
            "pages stolen (writes)",
            "recovery ms",
            "redone",
            "undone",
            "rec page reads",
        ],
    );

    for pool_pages in [1usize, 8, 64, 1024] {
        let engine = RhDb::with_config(Strategy::Rh, DbConfig { pool_pages });
        let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
        let stolen = engine.disk().metrics().snapshot().page_writes;
        engine.log().flush_all().unwrap();
        let (engine, rec) = timed(|| engine.crash_and_recover().unwrap());
        let report = engine.last_recovery().unwrap();
        let rec_reads = engine.disk().metrics().snapshot().page_reads;
        table.row(vec![
            pool_pages.to_string(),
            ms(normal),
            stolen.to_string(),
            ms(rec),
            report.forward.redone.to_string(),
            report.undo.undone.to_string(),
            rec_reads.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_steal_pressure_shifts_work() {
        let tables = run(Scale::Quick);
        let lines = tables[0].render();
        let tiny: Vec<&str> = lines[3].split_whitespace().collect();
        let large: Vec<&str> = lines.last().unwrap().split_whitespace().collect();
        let tiny_stolen: u64 = tiny[2].parse().unwrap();
        let large_stolen: u64 = large[2].parse().unwrap();
        assert!(tiny_stolen > large_stolen * 2, "tiny pool must steal far more");
        // Redo shrinks as steals persist more updates before the crash.
        let tiny_redone: u64 = tiny[4].parse().unwrap();
        let large_redone: u64 = large[4].parse().unwrap();
        assert!(tiny_redone <= large_redone);
        // Undo counts are identical: losers are losers either way.
        assert_eq!(tiny[5], large[5]);
    }
}
