//! The ten experiments (see DESIGN.md §5 for the index).
//!
//! Each experiment function takes a [`Scale`] and returns the rendered
//! tables; the `experiments` binary prints them and `EXPERIMENTS.md`
//! records a full-scale run. The paper has no quantitative evaluation
//! section — its §4.2 makes efficiency *claims* — so each experiment
//! operationalizes one claim (or one worked example) as a measurement.

pub mod e10_pool_ablation;
pub mod e1_no_delegation;
pub mod e2_delegation_cost;
pub mod e3_rewrite_strategies;
pub mod e4_cluster_skipping;
pub mod e5_fig2;
pub mod e6_forward_pass;
pub mod e7_eos;
pub mod e8_etm;
pub mod e9_checkpoint_ablation;

use crate::table::Table;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for smoke tests (seconds total).
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Picks a size by scale.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Runs one experiment by id ("e1".."e8"), returning its tables.
pub fn run(id: &str, scale: Scale) -> Option<Vec<Table>> {
    Some(match id {
        "e1" => e1_no_delegation::run(scale),
        "e2" => e2_delegation_cost::run(scale),
        "e3" => e3_rewrite_strategies::run(scale),
        "e4" => e4_cluster_skipping::run(scale),
        "e5" => e5_fig2::run(scale),
        "e6" => e6_forward_pass::run(scale),
        "e7" => e7_eos::run(scale),
        "e8" => e8_etm::run(scale),
        "e9" => e9_checkpoint_ablation::run(scale),
        "e10" => e10_pool_ablation::run(scale),
        _ => return None,
    })
}

/// All experiment ids in order.
pub const ALL: [&str; 10] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];
