//! **E8 — ETM synthesis cost** (the paper's thesis: delegation lets ETMs
//! be synthesized "at a performance comparable to that of tailor-made
//! implementations", §6).
//!
//! Two synthesized models run against hand-rolled flat-transaction
//! equivalents doing the same updates:
//!
//! * split/join sessions vs one flat transaction per session;
//! * the §2.2.2 nested trip vs a flat reservation transaction.
//!
//! The interesting number is the overhead factor: the synthesized model's
//! extra cost is a handful of begin/delegate/commit records, independent
//! of data size.

use super::Scale;
use crate::harness::timed;
use crate::table::{f2, ms, Table};
use rh_common::ObjectId;
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;
use rh_etm::nested::run_trip;
use rh_etm::split::{join, split};
use rh_etm::EtmSession;

/// Runs E8.
pub fn run(scale: Scale) -> Vec<Table> {
    let sessions = scale.pick(20, 1_000);
    let updates = 8u64;
    let mut table = Table::new(
        format!("E8: synthesized ETMs vs hand-rolled flat transactions ({sessions} sessions)"),
        &["model", "wall ms", "log records", "overhead x (wall)", "log records x"],
    );

    // --- flat baseline ------------------------------------------------------
    let (flat_wall, flat_records) = {
        let mut db = RhDb::new(Strategy::Rh);
        let ((), wall) = timed(|| {
            for i in 0..sessions {
                let t = db.begin().unwrap();
                for u in 0..updates {
                    db.add(t, ObjectId(i as u64 * updates + u), 1).unwrap();
                }
                db.commit(t).unwrap();
            }
        });
        (wall, db.log().len())
    };
    table.row(vec![
        "flat txns".into(),
        ms(flat_wall),
        flat_records.to_string(),
        "1.00".into(),
        "1.00".into(),
    ]);

    // --- split/join sessions --------------------------------------------------
    let (split_wall, split_records) = {
        let mut s = EtmSession::new(RhDb::new(Strategy::Rh));
        let ((), wall) = timed(|| {
            for i in 0..sessions {
                let base = i as u64 * updates;
                let t1 = s.initiate_empty().unwrap();
                for u in 0..updates {
                    s.add(t1, ObjectId(base + u), 1).unwrap();
                }
                // Split off the second half, then join it back and commit.
                let half: Vec<ObjectId> =
                    (updates / 2..updates).map(|u| ObjectId(base + u)).collect();
                let t2 = split(&mut s, t1, &half).unwrap();
                join(&mut s, t2, t1).unwrap();
                s.commit(t1).unwrap();
            }
        });
        let records = s.engine().log().len();
        (wall, records)
    };
    table.row(vec![
        "split+join".into(),
        ms(split_wall),
        split_records.to_string(),
        f2(split_wall.as_secs_f64() / flat_wall.as_secs_f64()),
        f2(split_records as f64 / flat_records as f64),
    ]);

    // --- nested trips ----------------------------------------------------------
    let (trip_wall, trip_records, booked) = {
        let mut s = EtmSession::new(RhDb::new(Strategy::Rh));
        let seats = ObjectId(1_000_000);
        let rooms = ObjectId(1_000_001);
        let mut booked = 0usize;
        let ((), wall) = timed(|| {
            for i in 0..sessions {
                // Every third hotel reservation fails.
                let hotel_ok = i % 3 != 2;
                if run_trip(&mut s, seats, rooms, true, hotel_ok).unwrap() {
                    booked += 1;
                }
            }
        });
        let records = s.engine().log().len();
        (wall, records, booked)
    };
    table.row(vec![
        format!("nested trip ({booked} booked)"),
        ms(trip_wall),
        trip_records.to_string(),
        f2(trip_wall.as_secs_f64() / flat_wall.as_secs_f64()),
        f2(trip_records as f64 / flat_records as f64),
    ]);

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_smoke() {
        let tables = run(Scale::Quick);
        let text = tables[0].render().join("\n");
        assert!(text.contains("split+join"));
        assert!(text.contains("nested trip"));
    }
}
