//! **E3 — RH vs eager vs lazy rewriting** (§3.2's critique, §4.2's
//! claims, and the reason ARIES/RH exists).
//!
//! The same interleaved, delegation-heavy workload (plus a crash) runs on
//! all three strategies. Reported per engine and delegation rate:
//!
//! * normal-processing wall time and the log *reads/rewrites during
//!   normal processing* — the eager baseline pays its backward sweep
//!   here ("a single delegation will generate many accesses, in
//!   principle sweeping the whole log");
//! * recovery wall time, records read, in-place rewrites, and seeks —
//!   the lazy baseline pays here; ARIES/RH pays nowhere.

use super::Scale;
use crate::harness::timed;
use crate::table::{ms, Table};
use rh_core::eager::EagerDb;
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_wal::LogMetricsSnapshot;
use rh_workload::{interleaved_mix, WorkloadSpec};

struct Row {
    engine: &'static str,
    normal: std::time::Duration,
    normal_log: LogMetricsSnapshot,
    recovery: std::time::Duration,
    rec_log: LogMetricsSnapshot,
    rec_rewrites: u64,
}

fn spec_for(scale: Scale, rate: f64) -> WorkloadSpec {
    WorkloadSpec {
        txns: scale.pick(20, 400),
        updates_per_txn: 6,
        objects_per_txn: 3,
        delegation_rate: rate,
        chain_len: 2,
        straggler_rate: 0.25,
        abort_rate: 0.0,
        ..WorkloadSpec::default()
    }
}

fn run_rh(strategy: Strategy, name: &'static str, spec: &WorkloadSpec) -> Row {
    let events = interleaved_mix(spec);
    let engine = RhDb::new(strategy);
    let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
    engine.log().flush_all().unwrap();
    let normal_log = engine.log().metrics().snapshot();
    let (engine, recovery) = timed(|| engine.crash_and_recover().unwrap());
    let rec_log = engine.log().metrics().snapshot();
    let rec_rewrites = engine.last_recovery().unwrap().undo.rewrites;
    Row { engine: name, normal, normal_log, recovery, rec_log, rec_rewrites }
}

fn run_eager(spec: &WorkloadSpec) -> Row {
    let events = interleaved_mix(spec);
    let engine = EagerDb::new();
    let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
    engine.log().flush_all().unwrap();
    let normal_log = engine.log().metrics().snapshot();
    let (engine, recovery) = timed(|| engine.crash_and_recover().unwrap());
    let rec_log = engine.log().metrics().snapshot();
    Row { engine: "eager", normal, normal_log, recovery, rec_log, rec_rewrites: 0 }
}

/// Runs E3.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for rate in [0.0, 0.25, 0.5, 1.0] {
        let spec = spec_for(scale, rate);
        let rows = vec![
            run_rh(Strategy::Rh, "ARIES/RH", &spec),
            run_rh(Strategy::LazyRewrite, "lazy", &spec),
            run_eager(&spec),
        ];
        let mut table = Table::new(
            format!("E3: rewrite strategies, delegation rate {rate} ({} txns, chain 2)", spec.txns),
            &[
                "engine",
                "normal ms",
                "nrm reads",
                "nrm rewrites",
                "recovery ms",
                "rec reads",
                "rec rewrites",
                "rec seeks",
            ],
        );
        for r in rows {
            table.row(vec![
                r.engine.into(),
                ms(r.normal),
                r.normal_log.records_read.to_string(),
                r.normal_log.in_place_rewrites.to_string(),
                ms(r.recovery),
                r.rec_log.records_read.to_string(),
                (r.rec_log.in_place_rewrites + r.rec_rewrites).to_string(),
                r.rec_log.seeks.to_string(),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(line: &str, idx: usize) -> String {
        line.split_whitespace().nth(idx).unwrap().to_string()
    }

    #[test]
    fn e3_shapes_hold_at_quick_scale() {
        let tables = run(Scale::Quick);
        // Heaviest-delegation table: last one (rate 1.0).
        let lines = tables.last().unwrap().render();
        let rh = &lines[3];
        let lazy = &lines[4];
        let eager = &lines[5];
        // RH: no rewrites anywhere.
        assert_eq!(cell(rh, 3), "0");
        assert_eq!(cell(rh, 6), "0");
        // Lazy: rewrites at recovery, none during normal processing.
        assert_eq!(cell(lazy, 3), "0");
        assert!(cell(lazy, 6).parse::<u64>().unwrap() > 0);
        // Eager: rewrites + heavy reads during normal processing.
        assert!(cell(eager, 3).parse::<u64>().unwrap() > 0);
        let eager_reads: u64 = cell(eager, 2).parse().unwrap();
        let rh_reads: u64 = cell(rh, 2).parse().unwrap();
        assert!(
            eager_reads > 10 * rh_reads.max(1),
            "eager normal-processing reads ({eager_reads}) must dwarf RH's ({rh_reads})"
        );
    }
}
