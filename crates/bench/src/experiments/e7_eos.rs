//! **E7 — delegation on EOS (NO-UNDO/REDO)** (§3.7).
//!
//! The same delegation workload runs on EOS and on ARIES/RH; both crash
//! and recover. The shape to reproduce: EOS recovery replays *only
//! committed* items (no undo at all, losers cost nothing at restart),
//! while it defers all update visibility to commit time; ARIES/RH pays
//! an undo pass but applies updates in place. Both must agree with the
//! oracle, which the correctness suite already asserts — here we measure.

use super::Scale;
use crate::harness::timed;
use crate::table::{ms, Table};
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_eos::EosDb;
use rh_workload::{delegation_mix, WorkloadSpec};

/// Runs E7.
pub fn run(scale: Scale) -> Vec<Table> {
    let txns = scale.pick(50, 2_000);
    let mut table = Table::new(
        format!("E7: EOS vs ARIES/RH under delegation ({txns} jobs, crash, recover)"),
        &[
            "engine",
            "deleg rate",
            "normal ms",
            "recovery ms",
            "replayed/redone",
            "undone",
            "discarded",
        ],
    );

    for rate in [0.0, 0.5, 1.0] {
        let spec = WorkloadSpec {
            txns,
            updates_per_txn: 6,
            delegation_rate: rate,
            chain_len: 1,
            straggler_rate: 0.2,
            abort_rate: 0.1,
            ..WorkloadSpec::default()
        };
        let events = delegation_mix(&spec);

        // --- EOS ---------------------------------------------------------
        let engine = EosDb::new();
        let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
        let before = engine.global().metrics().snapshot();
        let (engine, rec) = timed(|| engine.crash_and_recover().unwrap());
        let after = engine.global().metrics().snapshot();
        table.row(vec![
            "EOS".into(),
            format!("{rate}"),
            ms(normal),
            ms(rec),
            (after.items_replayed - before.items_replayed).to_string(),
            "0 (no undo)".into(),
            after.items_discarded.to_string(),
        ]);

        // --- ARIES/RH ------------------------------------------------------
        let engine = RhDb::new(Strategy::Rh);
        let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
        engine.log().flush_all().unwrap();
        let (engine, rec) = timed(|| engine.crash_and_recover().unwrap());
        let report = engine.last_recovery().unwrap();
        table.row(vec![
            "ARIES/RH".into(),
            format!("{rate}"),
            ms(normal),
            ms(rec),
            report.forward.redone.to_string(),
            report.undo.undone.to_string(),
            "-".into(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_smoke() {
        let tables = run(Scale::Quick);
        let text = tables[0].render().join("\n");
        assert!(text.contains("EOS"));
        assert!(text.contains("ARIES/RH"));
        assert!(text.contains("no undo"));
    }
}
