//! **E4 — backward-pass cluster skipping** (§3.6.2, Fig. 7/8; §4.2:
//! "log records are visited at most once and in strict decreasing
//! order").
//!
//! A long log of committed work is salted with a varying number of
//! losers (stragglers). The backward pass must visit only the loser-scope
//! clusters: its visited-record count should track the loser count, not
//! the log length.

use super::Scale;
use crate::harness::timed;
use crate::table::{f2, ms, Table};
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_workload::{boring, WorkloadSpec};

/// Runs E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let txns = scale.pick(100, 4_000);
    let mut table = Table::new(
        format!("E4: backward pass visits vs loser density ({txns} txns)"),
        &[
            "straggler rate",
            "log records",
            "losers",
            "clusters",
            "bwd visited",
            "visited/log %",
            "undone",
            "bwd ms",
        ],
    );

    for rate in [0.0, 0.005, 0.02, 0.1, 0.5, 1.0] {
        let spec = WorkloadSpec {
            txns,
            updates_per_txn: 4,
            straggler_rate: rate,
            abort_rate: 0.0,
            ..WorkloadSpec::default()
        };
        let events = boring(&spec);
        let engine = RhDb::new(Strategy::Rh);
        let engine = replay_engine(engine, &events).unwrap();
        engine.log().flush_all().unwrap();
        let log_len = engine.log().len();
        let (engine, rec_wall) = timed(|| engine.crash_and_recover().unwrap());
        let report = engine.last_recovery().unwrap();
        table.row(vec![
            format!("{rate}"),
            log_len.to_string(),
            report.losers.len().to_string(),
            report.undo.clusters.to_string(),
            report.undo.visited.to_string(),
            f2(report.undo.visited as f64 * 100.0 / log_len as f64),
            report.undo.undone.to_string(),
            ms(rec_wall),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_visited_tracks_losers_not_log_length() {
        let tables = run(Scale::Quick);
        let lines = tables[0].render();
        // rate 0.0 row: zero visits.
        let zero: Vec<&str> = lines[3].split_whitespace().collect();
        assert_eq!(zero[4], "0");
        // Low-rate rows visit a small fraction of the log.
        let low: Vec<&str> = lines[4].split_whitespace().collect();
        let visited: f64 = low[5].parse().unwrap();
        assert!(visited < 50.0, "visited {visited}% of the log at low loser rate");
    }
}
