//! **E9 — ablation: checkpoint interval and log truncation.**
//!
//! The paper ignores checkpoints "for simplicity"; this reproduction
//! implements them (snapshotting the scope tables — the delegation state
//! — alongside the classic ARIES tables). The ablation quantifies the
//! design point: more frequent checkpoints cost normal-processing time
//! (page flushes + snapshot encoding) and buy shorter recovery, and with
//! `truncate_log` they also bound the stable log's size.

use super::Scale;
use crate::harness::timed;
use crate::table::{ms, Table};
use rh_common::ObjectId;
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;

/// Runs E9.
pub fn run(scale: Scale) -> Vec<Table> {
    let txns = scale.pick(200, 5_000);
    let mut table = Table::new(
        format!("E9: checkpoint interval ablation ({txns} txns, 1 delegation each)"),
        &[
            "chkpt every",
            "normal ms",
            "checkpoints",
            "recovery ms",
            "fwd scanned",
            "log kept (records)",
            "truncated away",
        ],
    );

    for interval in [usize::MAX, txns / 2, txns / 10, txns / 50] {
        let mut db = RhDb::new(Strategy::Rh);
        let mut checkpoints = 0u64;
        let mut truncated = 0u64;
        let ((), normal) = timed(|| {
            for i in 0..txns {
                let t = db.begin().unwrap();
                let tee = db.begin().unwrap();
                let ob = ObjectId(i as u64);
                db.add(t, ob, 1).unwrap();
                db.delegate(t, tee, &[ob]).unwrap();
                db.commit(t).unwrap();
                db.commit(tee).unwrap();
                if interval != usize::MAX && (i + 1) % interval == 0 {
                    db.checkpoint().unwrap();
                    truncated += db.truncate_log().unwrap();
                    checkpoints += 1;
                }
            }
        });
        // A straggler so recovery has something to undo.
        let straggler = db.begin().unwrap();
        db.add(straggler, ObjectId(999_999), 7).unwrap();
        db.log().flush_all().unwrap();
        let kept = db.log().len() as u64 - db.log().first_lsn().raw();
        let (db, rec) = timed(|| db.crash_and_recover().unwrap());
        let report = db.last_recovery().unwrap();
        let label = if interval == usize::MAX { "never".to_string() } else { interval.to_string() };
        table.row(vec![
            label,
            ms(normal),
            checkpoints.to_string(),
            ms(rec),
            report.forward.records_scanned.to_string(),
            kept.to_string(),
            truncated.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_checkpoints_shrink_recovery_scan_and_log() {
        let tables = run(Scale::Quick);
        let lines = tables[0].render();
        let never: Vec<&str> = lines[3].split_whitespace().collect();
        let frequent: Vec<&str> = lines.last().unwrap().split_whitespace().collect();
        let never_scan: u64 = never[4].parse().unwrap();
        let frequent_scan: u64 = frequent[4].parse().unwrap();
        assert!(
            frequent_scan * 4 < never_scan,
            "frequent checkpoints should cut the forward scan: {frequent_scan} vs {never_scan}"
        );
        let truncated: u64 = frequent[6].parse().unwrap();
        assert!(truncated > 0, "truncation should have discarded records");
    }
}
