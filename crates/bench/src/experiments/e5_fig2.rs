//! **E5 — the worked example of §3.1 (Example 1 / Fig. 2)**, executed.
//!
//! The exact six-update log of Example 1 is produced by real
//! transactions, then `delegate(t1, t2, a)` is issued. The experiment
//! prints the log as kept by ARIES/RH (unchanged — history is
//! *interpreted*) next to the log as mutated by the eager baseline
//! (records 2 and 6 physically rewritten to t2, Fig. 2's "after"
//! picture), and verifies both engines agree on the surviving state for
//! every fate combination of t1/t2.

use super::Scale;
use crate::table::Table;
use rh_common::ObjectId;
use rh_core::eager::EagerDb;
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::{replay_engine, Event};
use rh_core::TxnEngine;

/// Example 1's history, through the delegation. Objects: a=0, x=1, b=2,
/// y=3; labels 1 and 2 play t1 and t2. `Add`s are used so both
/// transactions can update `a` concurrently (increment locks), exactly
/// the concurrent-responsibility situation of §3.4.
pub fn example1_events() -> Vec<Event> {
    let (a, x, b, y) = (ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(3));
    vec![
        Event::Begin(1),
        Event::Begin(2),
        Event::Add(1, a, 1),            // paper LSN 100
        Event::Add(2, x, 1),            // 101
        Event::Add(2, a, 10),           // 102
        Event::Add(1, b, 1),            // 103
        Event::Add(1, a, 100),          // 104
        Event::Add(2, y, 1),            // 105
        Event::Delegate(1, 2, vec![a]), // 106
    ]
}

/// Runs E5.
pub fn run(_scale: Scale) -> Vec<Table> {
    let events = example1_events();

    let rh = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
    let eager = replay_engine(EagerDb::new(), &events).unwrap();

    let rh_dump = rh.dump_log();
    let eager_dump = {
        // Render the eager engine's (rewritten) log.
        let log = eager.log();
        let mut out = Vec::new();
        let mut lsn = rh_common::Lsn::FIRST;
        while lsn < log.curr_lsn() {
            out.push(log.read(lsn).unwrap().render());
            lsn = lsn.next();
        }
        out
    };

    let mut table = Table::new(
        "E5: Fig. 2 — the same history, RH (log interpreted) vs eager (log rewritten)",
        &["LSN", "ARIES/RH log (before==after)", "eager log (after rewriting)"],
    );
    for (i, (l, r)) in rh_dump.iter().zip(eager_dump.iter()).enumerate() {
        table.row(vec![i.to_string(), l.clone(), r.clone()]);
    }

    // Fate matrix: every (t1, t2) fate combination must agree between the
    // two implementations.
    let mut fates = Table::new(
        "E5b: surviving value of object a (invoked +1 and +100 by t1 — delegated to t2 — and +10 by t2) per fate",
        &["t1 fate", "t2 fate", "RH: a", "eager: a", "agree"],
    );
    for (f1, f2) in
        [("commit", "commit"), ("commit", "abort"), ("abort", "commit"), ("abort", "abort")]
    {
        let mut events = example1_events();
        events.push(if f1 == "commit" { Event::Commit(1) } else { Event::Abort(1) });
        events.push(if f2 == "commit" { Event::Commit(2) } else { Event::Abort(2) });
        events.push(Event::Crash);
        let mut rh = replay_engine(RhDb::new(Strategy::Rh), &events).unwrap();
        let mut eg = replay_engine(EagerDb::new(), &events).unwrap();
        let a = ObjectId(0);
        let (va, vb) = (rh.value_of(a).unwrap(), eg.value_of(a).unwrap());
        fates.row(vec![
            f1.into(),
            f2.into(),
            va.to_string(),
            vb.to_string(),
            (va == vb).to_string(),
        ]);
    }

    vec![table, fates]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_rh_log_untouched_eager_log_rewritten() {
        let tables = run(Scale::Quick);
        let log_table = tables[0].render().join("\n");
        // Labels 1/2 map to engine ids t0/t1. RH column: the update at
        // paper-LSN 100 (our LSN 2) still carries the delegator t0.
        assert!(log_table.contains("2 update[t0, ob0]"), "{log_table}");
        // Eager column: the same position was rewritten to t1 (the tee).
        assert!(log_table.contains("2 update[t1, ob0]"), "{log_table}");
        // b's update (our LSN 5) stays the delegator's in both columns.
        assert_eq!(log_table.matches("update[t0, ob2]").count(), 2, "{log_table}");
    }

    #[test]
    fn e5_all_fates_agree() {
        let tables = run(Scale::Quick);
        for line in tables[1].render().iter().skip(3) {
            assert!(line.trim_end().ends_with("true"), "fate divergence: {line}");
        }
    }
}
