//! **E1 — "No delegation, no overhead"** (§4.2, first claim).
//!
//! "In the absence of delegation ARIES/RH reduces to the original
//! algorithm, so no penalty is incurred due to the extra functionality
//! when it is not used."
//!
//! A boring (delegation-free) workload runs on ARIES/RH, on the lazy
//! variant (identical normal processing), and on the eager engine (whose
//! delegation machinery is pay-per-use too, making it a plain-ARIES
//! stand-in). Normal-processing throughput, log traffic, and recovery
//! cost must be indistinguishable, and the delegation-only counters must
//! be exactly zero.

use super::Scale;
use crate::harness::timed;
use crate::table::{ms, Table};
use rh_core::eager::EagerDb;
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_workload::{boring, WorkloadSpec};

/// Runs E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let spec = WorkloadSpec {
        txns: scale.pick(50, 5_000),
        updates_per_txn: 8,
        straggler_rate: 0.05,
        abort_rate: 0.05,
        ..WorkloadSpec::default()
    };
    let events = boring(&spec);
    let updates = spec.txns * spec.updates_per_txn;

    let mut table = Table::new(
        format!(
            "E1: zero-delegation workload ({} txns x {} updates) — RH vs baselines",
            spec.txns, spec.updates_per_txn
        ),
        &[
            "engine",
            "normal ms",
            "us/update",
            "log appends",
            "rewrites",
            "recovery ms",
            "fwd reads",
            "bwd visited",
        ],
    );

    // --- ARIES/RH ---------------------------------------------------------
    for (name, strategy) in [("ARIES/RH", Strategy::Rh), ("lazy-rewrite", Strategy::LazyRewrite)] {
        let engine = RhDb::new(strategy);
        let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
        engine.log().flush_all().unwrap();
        let normal_log = engine.log().metrics().snapshot();
        let (engine, rec_wall) = timed(|| engine.crash_and_recover().unwrap());
        let report = engine.last_recovery().unwrap();
        table.row(vec![
            name.into(),
            ms(normal),
            format!("{:.2}", normal.as_secs_f64() * 1e6 / updates as f64),
            normal_log.appends.to_string(),
            (normal_log.in_place_rewrites + report.undo.rewrites).to_string(),
            ms(rec_wall),
            report.forward.records_scanned.to_string(),
            report.undo.visited.to_string(),
        ]);
    }

    // --- eager (plain-ARIES stand-in) --------------------------------------
    let engine = EagerDb::new();
    let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
    engine.log().flush_all().unwrap();
    let normal_log = engine.log().metrics().snapshot();
    let (engine, rec_wall) = timed(|| engine.crash_and_recover().unwrap());
    let rec_log = engine.log().metrics().snapshot();
    table.row(vec![
        "eager (≈ARIES)".into(),
        ms(normal),
        format!("{:.2}", normal.as_secs_f64() * 1e6 / updates as f64),
        normal_log.appends.to_string(),
        normal_log.in_place_rewrites.to_string(),
        ms(rec_wall),
        rec_log.records_read.to_string(),
        "-".into(),
    ]);

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_smoke() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        let text = tables[0].render().join("\n");
        // The rewrite column must be zero for every engine on a
        // delegation-free workload.
        for line in tables[0].render().iter().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cells[cells.len() - 4], "0", "rewrites must be 0 in: {text}");
        }
    }
}
