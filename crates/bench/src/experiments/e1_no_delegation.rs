//! **E1 — "No delegation, no overhead"** (§4.2, first claim).
//!
//! "In the absence of delegation ARIES/RH reduces to the original
//! algorithm, so no penalty is incurred due to the extra functionality
//! when it is not used."
//!
//! A boring (delegation-free) workload runs on ARIES/RH, on the lazy
//! variant (identical normal processing), and on the eager engine (whose
//! delegation machinery is pay-per-use too, making it a plain-ARIES
//! stand-in). Normal-processing throughput, log traffic, and recovery
//! cost must be indistinguishable, and the delegation-only counters must
//! be exactly zero.

use super::Scale;
use crate::harness::timed;
use crate::table::{ms, Table};
use rh_common::{Lsn, ObjectId, TxnId, UpdateOp};
use rh_core::eager::EagerDb;
use rh_core::engine::{RhDb, Strategy};
use rh_core::history::replay_engine;
use rh_core::TxnEngine;
use rh_wal::{LogManager, RecordBody, StableLog};
use rh_workload::{boring, WorkloadSpec};

/// Runs E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let spec = WorkloadSpec {
        txns: scale.pick(50, 5_000),
        updates_per_txn: 8,
        straggler_rate: 0.05,
        abort_rate: 0.05,
        ..WorkloadSpec::default()
    };
    let events = boring(&spec);
    let updates = spec.txns * spec.updates_per_txn;

    let mut table = Table::new(
        format!(
            "E1: zero-delegation workload ({} txns x {} updates) — RH vs baselines",
            spec.txns, spec.updates_per_txn
        ),
        &[
            "engine",
            "normal ms",
            "us/update",
            "log appends",
            "rewrites",
            "recovery ms",
            "fwd reads",
            "bwd visited",
        ],
    );

    // --- ARIES/RH ---------------------------------------------------------
    for (name, strategy) in [("ARIES/RH", Strategy::Rh), ("lazy-rewrite", Strategy::LazyRewrite)] {
        let engine = RhDb::new(strategy);
        let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
        engine.log().flush_all().unwrap();
        let normal_log = engine.log().metrics().snapshot();
        let (engine, rec_wall) = timed(|| engine.crash_and_recover().unwrap());
        let report = engine.last_recovery().unwrap();
        table.row(vec![
            name.into(),
            ms(normal),
            format!("{:.2}", normal.as_secs_f64() * 1e6 / updates as f64),
            normal_log.appends.to_string(),
            (normal_log.in_place_rewrites + report.undo.rewrites).to_string(),
            ms(rec_wall),
            report.forward.records_scanned.to_string(),
            report.undo.visited.to_string(),
        ]);
    }

    // --- eager (plain-ARIES stand-in) --------------------------------------
    let engine = EagerDb::new();
    let (engine, normal) = timed(|| replay_engine(engine, &events).unwrap());
    engine.log().flush_all().unwrap();
    let normal_log = engine.log().metrics().snapshot();
    let (engine, rec_wall) = timed(|| engine.crash_and_recover().unwrap());
    let rec_log = engine.log().metrics().snapshot();
    table.row(vec![
        "eager (≈ARIES)".into(),
        ms(normal),
        format!("{:.2}", normal.as_secs_f64() * 1e6 / updates as f64),
        normal_log.appends.to_string(),
        normal_log.in_place_rewrites.to_string(),
        ms(rec_wall),
        rec_log.records_read.to_string(),
        "-".into(),
    ]);

    vec![table, backend_table(scale)]
}

/// **E1b** — the same append+force traffic against both stable-log
/// backends. The in-memory log is the unit-test default and the upper
/// bound; the file-backed log pays real frames and real `fdatasync`s,
/// and the fsync column shows group commit holding the sync count to one
/// per force (and fewer than one per force once callers overlap).
fn backend_table(scale: Scale) -> Table {
    let txns = scale.pick(50, 2_000);
    let updates_per_txn = 8usize;

    let mut table = Table::new(
        format!("E1b: log backend — append+force, {txns} txns x {updates_per_txn} updates"),
        &["backend", "wall ms", "us/txn", "appends", "fsyncs", "bytes flushed", "MB/s"],
    );

    let mut run_backend = |name: &str, log: LogManager| {
        let (log, wall) = timed(|| {
            for t in 0..txns {
                let mut prev = Lsn::NULL;
                for u in 0..updates_per_txn {
                    prev = log.append(
                        TxnId(t as u64),
                        prev,
                        RecordBody::Update {
                            ob: ObjectId((t * updates_per_txn + u) as u64 % 512),
                            op: UpdateOp::Add { delta: 1 },
                        },
                    );
                }
                let commit = log.append(TxnId(t as u64), prev, RecordBody::Commit);
                log.flush_to(commit).expect("force");
            }
            log
        });
        let snap = log.metrics().snapshot();
        let secs = wall.as_secs_f64();
        table.row(vec![
            name.into(),
            ms(wall),
            format!("{:.2}", secs * 1e6 / txns as f64),
            snap.appends.to_string(),
            snap.fsyncs.to_string(),
            snap.bytes_flushed.to_string(),
            format!("{:.1}", snap.bytes_flushed as f64 / 1e6 / secs.max(1e-9)),
        ]);
    };

    run_backend("in-memory", LogManager::new());

    let dir = std::env::temp_dir().join(format!("rh-bench-e1b-{}-{txns}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    run_backend(
        "file-backed",
        LogManager::attach(StableLog::open_dir(&dir).expect("open log dir")),
    );
    let _ = std::fs::remove_dir_all(&dir);

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_smoke() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        let text = tables[0].render().join("\n");
        // The rewrite column must be zero for every engine on a
        // delegation-free workload.
        for line in tables[0].render().iter().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cells[cells.len() - 4], "0", "rewrites must be 0 in: {text}");
        }
    }

    #[test]
    fn e1b_backends_report_sane_numbers() {
        let table = backend_table(Scale::Quick);
        let text = table.render().join("\n");
        assert!(text.contains("in-memory"), "{text}");
        assert!(text.contains("file-backed"), "{text}");
        // The file backend must report real durability work; the mem
        // backend must report none.
        let rendered = table.render();
        let rows: Vec<&str> = rendered.iter().skip(3).map(String::as_str).map(str::trim).collect();
        let fsyncs = |row: &str| -> u64 {
            let cells: Vec<&str> = row.split_whitespace().collect();
            cells[cells.len() - 3].parse().unwrap()
        };
        let mem = rows.iter().find(|r| r.starts_with("in-memory")).unwrap();
        let file = rows.iter().find(|r| r.starts_with("file-backed")).unwrap();
        assert_eq!(fsyncs(mem), 0, "{text}");
        assert!(fsyncs(file) >= 1, "{text}");
    }
}
