//! **E2 — normal-processing delegation cost** (§4.2, second claim).
//!
//! "Posting one delegation during normal processing has the cost of
//! adding a log entry and updating the object bindings. The cost of
//! delegations is linear in the number of operations delegated."
//!
//! One transaction updates `k` objects, then delegates all `k` in a
//! single call. Measured: the wall time of the `delegate` call itself,
//! and the number of log records it appended — which must be **1**
//! regardless of `k` (the linear part is purely the in-memory scope
//! moves).

use super::Scale;
use crate::harness::timed;
use crate::table::Table;
use rh_common::ObjectId;
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;

/// Runs E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let ks: Vec<u64> = match scale {
        Scale::Quick => vec![1, 4, 16],
        Scale::Full => vec![1, 4, 16, 64, 256, 1024, 4096],
    };
    let iters = scale.pick(3, 20);

    let mut table = Table::new(
        "E2: cost of one delegate() call vs objects delegated (k)",
        &["k objects", "delegate us (mean)", "log appends by delegate", "us per object"],
    );

    for &k in &ks {
        let mut total = std::time::Duration::ZERO;
        let mut appends_delta = 0u64;
        for seed in 0..iters {
            let mut db = RhDb::new(Strategy::Rh);
            let tor = db.begin().unwrap();
            let tee = db.begin().unwrap();
            for ob in 0..k {
                db.add(tor, ObjectId(ob), seed as i64 + 1).unwrap();
            }
            let obs: Vec<ObjectId> = (0..k).map(ObjectId).collect();
            let before = db.log().metrics().snapshot();
            let ((), d) = timed(|| db.delegate(tor, tee, &obs).unwrap());
            let after = db.log().metrics().snapshot();
            appends_delta = after.appends - before.appends;
            total += d;
            db.commit(tee).unwrap();
            db.commit(tor).unwrap();
        }
        let mean_us = total.as_secs_f64() * 1e6 / iters as f64;
        table.row(vec![
            k.to_string(),
            format!("{mean_us:.2}"),
            appends_delta.to_string(),
            format!("{:.3}", mean_us / k as f64),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_smoke_one_log_record_per_delegation() {
        let tables = run(Scale::Quick);
        for line in tables[0].render().iter().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            // Column 2 (0-indexed): log appends by delegate — always 1.
            assert_eq!(cells[2], "1", "delegate must append exactly one record");
        }
    }
}
