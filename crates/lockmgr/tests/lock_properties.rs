//! Property tests: under arbitrary sequences of try-acquire / permit /
//! transfer / release operations, the lock table never holds two
//! incompatible, un-permitted locks on one object.

use proptest::prelude::*;
use rh_common::{ObjectId, TxnId};
use rh_lock::{LockManager, LockMode};

#[derive(Debug, Clone, Copy)]
enum Op {
    Acquire(u8, u8, u8), // txn, ob, mode
    Permit(u8, u8, u8),  // granter, permittee, ob
    Transfer(u8, u8, u8),
    TransferAll(u8, u8),
    Release(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..6, 0u8..4, 0u8..3).prop_map(|(t, o, m)| Op::Acquire(t, o, m)),
        1 => (0u8..6, 0u8..6, 0u8..4).prop_map(|(g, p, o)| Op::Permit(g, p, o)),
        2 => (0u8..6, 0u8..6, 0u8..4).prop_map(|(f, t, o)| Op::Transfer(f, t, o)),
        1 => (0u8..6, 0u8..6).prop_map(|(f, t)| Op::TransferAll(f, t)),
        2 => (0u8..6).prop_map(Op::Release),
    ]
}

fn mode(m: u8) -> LockMode {
    match m % 3 {
        0 => LockMode::Shared,
        1 => LockMode::Increment,
        _ => LockMode::Exclusive,
    }
}

proptest! {
    #[test]
    fn invariants_hold_under_arbitrary_ops(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let lm = LockManager::new();
        for op in ops {
            match op {
                Op::Acquire(t, o, m) => {
                    let _ = lm.try_acquire(TxnId(t as u64), ObjectId(o as u64), mode(m));
                }
                Op::Permit(g, p, o) => {
                    if g != p {
                        lm.permit(TxnId(g as u64), TxnId(p as u64), ObjectId(o as u64));
                    }
                }
                Op::Transfer(f, t, o) => {
                    if f != t {
                        lm.transfer(TxnId(f as u64), TxnId(t as u64), ObjectId(o as u64));
                    }
                }
                Op::TransferAll(f, t) => {
                    if f != t {
                        lm.transfer_all(TxnId(f as u64), TxnId(t as u64));
                    }
                }
                Op::Release(t) => lm.release_all(TxnId(t as u64)),
            }
            lm.validate_invariants();
        }
    }

    #[test]
    fn strict_compatibility_without_permits(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        // With permits filtered out entirely, transfers can never create
        // incompatible coexistence: strict pairwise compatibility holds.
        let lm = LockManager::new();
        for op in ops {
            match op {
                Op::Acquire(t, o, m) => {
                    let _ = lm.try_acquire(TxnId(t as u64), ObjectId(o as u64), mode(m));
                }
                Op::Permit(..) => {}
                Op::Transfer(f, t, o) => {
                    if f != t {
                        lm.transfer(TxnId(f as u64), TxnId(t as u64), ObjectId(o as u64));
                    }
                }
                Op::TransferAll(f, t) => {
                    if f != t {
                        lm.transfer_all(TxnId(f as u64), TxnId(t as u64));
                    }
                }
                Op::Release(t) => lm.release_all(TxnId(t as u64)),
            }
            lm.validate_invariants();
        }
    }

    #[test]
    fn acquire_then_release_leaves_no_trace(txns in proptest::collection::vec((0u8..5, 0u8..3, 0u8..3), 1..50)) {
        let lm = LockManager::new();
        for &(t, o, m) in &txns {
            let _ = lm.try_acquire(TxnId(t as u64), ObjectId(o as u64), mode(m));
        }
        for t in 0..5u64 {
            lm.release_all(TxnId(t));
        }
        for t in 0..5u64 {
            prop_assert!(lm.held_objects(TxnId(t)).is_empty());
        }
        // The table is empty: any exclusive acquisition now succeeds.
        for o in 0..3u64 {
            prop_assert!(lm.try_acquire(TxnId(99), ObjectId(o), LockMode::Exclusive).is_ok());
        }
    }
}
