//! Multi-threaded stress for the blocking path: contending workers using
//! `acquire` (condvar parking + wait-for-graph deadlock detection) must
//! all make progress — deadlock victims abort-and-retry — and leave a
//! clean table.

use rh_common::{ObjectId, RhError, TxnId};
use rh_lock::{LockManager, LockMode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn contending_workers_all_complete() {
    const WORKERS: u64 = 8;
    const ROUNDS: u64 = 50;
    const OBJECTS: u64 = 3;

    let lm = Arc::new(LockManager::new());
    let completed = Arc::new(AtomicU64::new(0));
    let deadlocks = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let lm = Arc::clone(&lm);
            let completed = Arc::clone(&completed);
            let deadlocks = Arc::clone(&deadlocks);
            thread::spawn(move || {
                for round in 0..ROUNDS {
                    // Each "transaction" takes two objects in a
                    // worker-dependent order — a deadlock recipe.
                    let txn = TxnId(w * ROUNDS + round);
                    let first = ObjectId((w + round) % OBJECTS);
                    let second = ObjectId((w + round + 1) % OBJECTS);
                    loop {
                        match lm
                            .acquire(txn, first, LockMode::Exclusive)
                            .and_then(|()| lm.acquire(txn, second, LockMode::Exclusive))
                        {
                            Ok(()) => {
                                // "Work", then commit.
                                std::hint::black_box(txn);
                                lm.release_all(txn);
                                completed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(RhError::Deadlock { .. }) => {
                                // Victim: abort (release) and retry.
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                lm.release_all(txn);
                                thread::yield_now();
                            }
                            Err(other) => panic!("unexpected lock error: {other}"),
                        }
                    }
                }
            })
        })
        .collect();

    for h in handles {
        h.join().expect("worker panicked");
    }

    assert_eq!(completed.load(Ordering::Relaxed), WORKERS * ROUNDS);
    // Deadlocks are timing-dependent; when they do occur the victims must
    // have retried to completion (asserted above). The deterministic
    // deadlock-detection test lives in the manager's unit tests.
    let _ = deadlocks.load(Ordering::Relaxed);
    // Table drained: a fresh transaction can take everything exclusively.
    lm.validate_invariants();
    for ob in 0..OBJECTS {
        lm.try_acquire(TxnId(u64::MAX - 1), ObjectId(ob), LockMode::Exclusive).unwrap();
    }
}

#[test]
fn blocking_readers_share_then_writer_proceeds() {
    let lm = Arc::new(LockManager::new());
    let ob = ObjectId(0);
    // Writer takes the lock first.
    lm.try_acquire(TxnId(0), ob, LockMode::Exclusive).unwrap();

    let readers: Vec<_> = (1..=4)
        .map(|i| {
            let lm = Arc::clone(&lm);
            thread::spawn(move || {
                lm.acquire(TxnId(i), ob, LockMode::Shared).unwrap();
                // Hold briefly, then release.
                thread::yield_now();
                lm.release_all(TxnId(i));
            })
        })
        .collect();

    thread::sleep(std::time::Duration::from_millis(10));
    lm.release_all(TxnId(0)); // unblock the readers
    for r in readers {
        r.join().unwrap();
    }
    lm.validate_invariants();
}
