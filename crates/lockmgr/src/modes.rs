//! Lock modes and their compatibility/upgrade lattice.

/// Lock modes at object granularity.
///
/// `Increment` is the classic commutative-update mode: increments commute
/// with each other but not with reads (a reader would observe a half-done
/// sum) or writes. It corresponds to [`rh_common::UpdateOp::Add`];
/// [`rh_common::UpdateOp::Write`] requires `Exclusive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared read lock.
    Shared,
    /// Commutative-increment lock.
    Increment,
    /// Exclusive write lock.
    Exclusive,
}

impl LockMode {
    /// Can a holder in `self` coexist with a requester in `other`?
    ///
    /// ```text
    ///            S      I      X
    ///    S      yes    no     no
    ///    I      no     yes    no
    ///    X      no     no     no
    /// ```
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        matches!(
            (self, other),
            (LockMode::Shared, LockMode::Shared) | (LockMode::Increment, LockMode::Increment)
        )
    }

    /// The combined mode after a holder in `self` also acquires `other`
    /// (lock upgrade). The lattice top is `Exclusive`; `Shared` and
    /// `Increment` are incomparable so their join is `Exclusive`.
    #[inline]
    pub fn join(self, other: LockMode) -> LockMode {
        if self == other {
            self
        } else {
            LockMode::Exclusive
        }
    }

    /// True if this mode suffices where `needed` is required (i.e. the
    /// held mode is at least as strong).
    #[inline]
    pub fn covers(self, needed: LockMode) -> bool {
        self == needed || self == LockMode::Exclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    #[test]
    fn compatibility_matrix() {
        assert!(Shared.compatible(Shared));
        assert!(Increment.compatible(Increment));
        for (a, b) in [
            (Shared, Increment),
            (Increment, Shared),
            (Shared, Exclusive),
            (Exclusive, Shared),
            (Increment, Exclusive),
            (Exclusive, Increment),
            (Exclusive, Exclusive),
        ] {
            assert!(!a.compatible(b), "{a:?} vs {b:?} must conflict");
        }
    }

    #[test]
    fn join_is_commutative_and_idempotent() {
        for a in [Shared, Increment, Exclusive] {
            assert_eq!(a.join(a), a);
            for b in [Shared, Increment, Exclusive] {
                assert_eq!(a.join(b), b.join(a));
            }
        }
        assert_eq!(Shared.join(Increment), Exclusive);
        assert_eq!(Shared.join(Exclusive), Exclusive);
    }

    #[test]
    fn covers_reflects_strength() {
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(Increment));
        assert!(Shared.covers(Shared));
        assert!(!Shared.covers(Exclusive));
        assert!(!Increment.covers(Shared));
    }
}
