//! # rh-lock
//!
//! An object-granularity lock manager for the ARIES/RH reproduction.
//!
//! Three facts from the paper shape this design:
//!
//! 1. "Note that it is possible for several transactions to update an
//!    object concurrently (say, when the updates commute)" (§2.1.2) — so
//!    besides classic Shared/Exclusive we provide an **Increment** mode
//!    compatible with itself, letting several transactions hold update
//!    locks on one counter at once. This is what makes the multi-scope
//!    `Ob_List` situation of Fig. 5 reachable.
//! 2. ASSET's **`permit`** primitive "is done by suitably adding the
//!    permittee transaction to the object's access descriptor" (§1) — so
//!    each lock head carries a permit set that selectively disables
//!    conflicts between a granter and a permittee.
//! 3. "In some implementations Ob_List may have pointers to locks on the
//!    objects" (§3.4 footnote) — delegation transfers responsibility, and
//!    with it the delegator's lock on the object moves to the delegatee
//!    ([`LockManager::transfer`]); otherwise the delegatee could commit an
//!    update whose lock a dead delegator still held.
//!
//! Deadlocks are detected, not prevented: a failed acquisition can be
//! registered as a wait, and [`LockManager::acquire`] refuses waits that
//! would close a cycle in the wait-for graph, returning
//! [`RhError::Deadlock`] so the caller aborts the victim (itself).

pub mod manager;
pub mod modes;
pub mod table;
pub mod waits;

pub use manager::{LockManager, LockStats, LockStatsSnapshot};
pub use modes::LockMode;

// Re-exported so engine crates can match on lock errors without importing
// rh-common directly.
pub use rh_common::RhError;
