//! Wait-for graph with cycle detection.
//!
//! Kept small and separate so it can be property-tested in isolation: the
//! invariant is that [`WaitForGraph::would_cycle`] returns true exactly
//! when adding the edge set `waiter -> blockers` creates a directed cycle.

use rh_common::TxnId;
use std::collections::{HashMap, HashSet, VecDeque};

/// A directed graph of `waiter -> holder` edges.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitForGraph {
    /// Is `to` reachable from `from` following existing edges?
    fn reachable(&self, from: TxnId, to: TxnId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if let Some(nexts) = self.edges.get(&n) {
                for &next in nexts {
                    if next == to {
                        return true;
                    }
                    if seen.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        false
    }

    /// Would adding edges `waiter -> b` for every `b` in `blockers`
    /// create a cycle?
    pub fn would_cycle(&self, waiter: TxnId, blockers: &[TxnId]) -> bool {
        blockers.iter().any(|&b| b == waiter || self.reachable(b, waiter))
    }

    /// Records that `waiter` is waiting for all of `blockers`.
    pub fn add_waits(&mut self, waiter: TxnId, blockers: &[TxnId]) {
        if blockers.is_empty() {
            return;
        }
        self.edges.entry(waiter).or_default().extend(blockers.iter().copied());
    }

    /// Removes all edges out of `waiter` (it stopped waiting).
    pub fn clear_waiter(&mut self, waiter: TxnId) {
        self.edges.remove(&waiter);
    }

    /// Removes `txn` entirely: its outgoing edges and every edge pointing
    /// at it (it terminated, so nobody waits for it any more).
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        for targets in self.edges.values_mut() {
            targets.remove(&txn);
        }
        self.edges.retain(|_, v| !v.is_empty());
    }

    /// Number of transactions with outgoing waits (diagnostics).
    pub fn waiting_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_edges_no_cycle() {
        let g = WaitForGraph::default();
        assert!(!g.would_cycle(TxnId(1), &[TxnId(2)]));
    }

    #[test]
    fn self_wait_is_a_cycle() {
        let g = WaitForGraph::default();
        assert!(g.would_cycle(TxnId(1), &[TxnId(1)]));
    }

    #[test]
    fn two_party_cycle() {
        let mut g = WaitForGraph::default();
        g.add_waits(TxnId(1), &[TxnId(2)]);
        assert!(g.would_cycle(TxnId(2), &[TxnId(1)]));
        assert!(!g.would_cycle(TxnId(3), &[TxnId(1)]));
    }

    #[test]
    fn three_party_cycle() {
        let mut g = WaitForGraph::default();
        g.add_waits(TxnId(1), &[TxnId(2)]);
        g.add_waits(TxnId(2), &[TxnId(3)]);
        assert!(g.would_cycle(TxnId(3), &[TxnId(1)]));
        assert!(!g.would_cycle(TxnId(3), &[TxnId(4)]));
    }

    #[test]
    fn clear_waiter_breaks_cycle_potential() {
        let mut g = WaitForGraph::default();
        g.add_waits(TxnId(1), &[TxnId(2)]);
        g.clear_waiter(TxnId(1));
        assert!(!g.would_cycle(TxnId(2), &[TxnId(1)]));
    }

    #[test]
    fn remove_txn_removes_incoming_edges() {
        let mut g = WaitForGraph::default();
        g.add_waits(TxnId(1), &[TxnId(2), TxnId(3)]);
        g.remove_txn(TxnId(2));
        // 1 still waits for 3, so 3 -> 1 would cycle, but via 2 is gone.
        assert!(g.would_cycle(TxnId(3), &[TxnId(1)]));
        g.remove_txn(TxnId(3));
        assert_eq!(g.waiting_count(), 0);
    }
}
