//! The lock manager facade: blocking and non-blocking acquisition,
//! release, ASSET permits, and delegation-driven lock transfer.

use crate::modes::LockMode;
use crate::table::LockTable;
use crate::waits::WaitForGraph;
use parking_lot::{Condvar, Mutex};
use rh_common::{ObjectId, Result, RhError, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Default)]
struct State {
    table: LockTable,
    waits: WaitForGraph,
}

/// Cumulative lock-manager counters (atomic: bumped outside the state
/// mutex where possible, read concurrently by reporters).
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    conflicts: AtomicU64,
    waits: AtomicU64,
    wait_micros: AtomicU64,
    deadlocks: AtomicU64,
    transfers: AtomicU64,
    permits: AtomicU64,
}

/// Plain-data capture of [`LockStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStatsSnapshot {
    /// Locks granted (including re-grants and upgrades).
    pub acquisitions: u64,
    /// Acquisition attempts that hit a conflict.
    pub conflicts: u64,
    /// Times a transaction parked waiting for a lock.
    pub waits: u64,
    /// Total microseconds spent parked.
    pub wait_micros: u64,
    /// Waits refused because they would deadlock.
    pub deadlocks: u64,
    /// Locks moved by delegation ([`LockManager::transfer`]/`transfer_all`).
    pub transfers: u64,
    /// ASSET permits granted.
    pub permits: u64,
}

impl LockStatsSnapshot {
    /// Absorbs this snapshot into a unified [`rh_obs::Registry`] under
    /// the `lock.*` prefix (absolute values; re-absorption overwrites).
    pub fn export_into(&self, registry: &rh_obs::Registry) {
        use rh_obs::names;
        registry.set(names::M_LOCK_ACQUISITIONS, self.acquisitions);
        registry.set(names::M_LOCK_CONFLICTS, self.conflicts);
        registry.set(names::M_LOCK_WAITS, self.waits);
        registry.set(names::M_LOCK_WAIT_MICROS, self.wait_micros);
        registry.set(names::M_LOCK_DEADLOCKS, self.deadlocks);
        registry.set(names::M_LOCK_TRANSFERS, self.transfers);
        registry.set(names::M_LOCK_PERMITS, self.permits);
    }
}

impl LockStats {
    /// Takes a snapshot for reporting.
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            wait_micros: self.wait_micros.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            transfers: self.transfers.load(Ordering::Relaxed),
            permits: self.permits.load(Ordering::Relaxed),
        }
    }
}

/// A synchronized lock manager shared by all transactions of one engine.
///
/// Single-threaded engines use [`LockManager::try_acquire`] and treat
/// [`RhError::LockConflict`] as "abort or retry"; the multi-threaded ETM
/// driver uses the blocking [`LockManager::acquire`], which parks on a
/// condvar and detects deadlocks via the wait-for graph.
#[derive(Debug)]
pub struct LockManager {
    state: Mutex<State>,
    cv: Condvar,
    stats: LockStats,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager {
            state: Mutex::named(State::default(), rh_obs::names::LS_LOCKMGR_STATE),
            cv: Condvar::new(),
            stats: LockStats::default(),
        }
    }
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cumulative counters (see [`LockStats`]).
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Acquires (or upgrades to) `mode` on `ob` for `txn`, failing
    /// immediately with [`RhError::LockConflict`] if it cannot be granted.
    pub fn try_acquire(&self, txn: TxnId, ob: ObjectId, mode: LockMode) -> Result<()> {
        let mut st = self.state.lock();
        self.grant_or_conflict(&mut st, txn, ob, mode)
    }

    fn grant_or_conflict(
        &self,
        st: &mut State,
        txn: TxnId,
        ob: ObjectId,
        mode: LockMode,
    ) -> Result<()> {
        let head = st.table.head_mut(ob);
        if let Some(&held) = head.holders.get(&txn) {
            if held.covers(mode) {
                self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        if head.conflicts(txn, mode) {
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(RhError::LockConflict { txn, object: ob });
        }
        let entry = head.holders.entry(txn).or_insert(mode);
        *entry = entry.join(mode);
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Blocking acquire: waits until the lock is grantable, or returns
    /// [`RhError::Deadlock`] if waiting would close a wait-for cycle (the
    /// requester is the victim and should abort).
    pub fn acquire(&self, txn: TxnId, ob: ObjectId, mode: LockMode) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            match self.grant_or_conflict(&mut st, txn, ob, mode) {
                Ok(()) => {
                    st.waits.clear_waiter(txn);
                    return Ok(());
                }
                Err(RhError::LockConflict { .. }) => {
                    let blockers = st.table.head_mut(ob).blockers(txn, mode);
                    if st.waits.would_cycle(txn, &blockers) {
                        st.waits.clear_waiter(txn);
                        self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                        return Err(RhError::Deadlock { txn, object: ob });
                    }
                    st.waits.add_waits(txn, &blockers);
                    self.stats.waits.fetch_add(1, Ordering::Relaxed);
                    let parked = rh_obs::Stopwatch::start();
                    self.cv.wait(&mut st);
                    self.stats.wait_micros.fetch_add(parked.elapsed_micros(), Ordering::Relaxed);
                    st.waits.clear_waiter(txn);
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Grants `permittee` the right to access `ob` despite `granter`'s
    /// locks (ASSET `permit`, §1: "adding the permittee transaction to the
    /// object's access descriptor"). No dependency is formed.
    pub fn permit(&self, granter: TxnId, permittee: TxnId, ob: ObjectId) {
        let mut st = self.state.lock();
        let head = st.table.head_mut(ob);
        head.permit_tainted = true;
        if !head.permits.contains(&(granter, permittee)) {
            head.permits.push((granter, permittee));
        }
        self.stats.permits.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.cv.notify_all();
    }

    /// Transfers `from`'s lock on `ob` to `to`, joining modes if `to`
    /// already holds one. Called by the engines when applying
    /// `delegate(from, to, ob)` so the delegatee owns the access rights to
    /// the updates it is now responsible for. No-op if `from` holds none.
    pub fn transfer(&self, from: TxnId, to: TxnId, ob: ObjectId) {
        let mut st = self.state.lock();
        let head = st.table.head_mut(ob);
        if let Some(mode) = head.holders.remove(&from) {
            let entry = head.holders.entry(to).or_insert(mode);
            *entry = entry.join(mode);
            // Permits granted by the delegator travel with the access
            // rights, so permittees keep working against the new owner.
            for p in head.permits.iter_mut() {
                if p.0 == from {
                    p.0 = to;
                }
            }
            self.stats.transfers.fetch_add(1, Ordering::Relaxed);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Transfers every lock `from` holds to `to` (`delegate(t, t1)` of the
    /// whole object list, §2.2.1's join).
    pub fn transfer_all(&self, from: TxnId, to: TxnId) {
        let mut st = self.state.lock();
        let obs: Vec<ObjectId> = st
            .table
            .heads
            .iter()
            .filter(|(_, h)| h.holders.contains_key(&from))
            .map(|(&ob, _)| ob)
            .collect();
        for ob in obs {
            let head = st.table.head_mut(ob);
            if let Some(mode) = head.holders.remove(&from) {
                let entry = head.holders.entry(to).or_insert(mode);
                *entry = entry.join(mode);
                for p in head.permits.iter_mut() {
                    if p.0 == from {
                        p.0 = to;
                    }
                }
                self.stats.transfers.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Releases everything `txn` holds or granted: its locks, the permits
    /// it granted, and its wait-for edges. Called at commit/abort/end.
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        let obs: Vec<ObjectId> = st.table.heads.keys().copied().collect();
        for ob in obs {
            if let Some(head) = st.table.heads.get_mut(&ob) {
                head.holders.remove(&txn);
                head.permits.retain(|&(g, p)| g != txn && p != txn);
            }
            st.table.gc(ob);
        }
        st.waits.remove_txn(txn);
        drop(st);
        self.cv.notify_all();
    }

    /// The mode `txn` currently holds on `ob`, if any.
    pub fn held_mode(&self, txn: TxnId, ob: ObjectId) -> Option<LockMode> {
        self.state.lock().table.heads.get(&ob).and_then(|h| h.holders.get(&txn).copied())
    }

    /// Panics if the table violates its invariant: on an object whose
    /// head carries **no permits**, all holders must be pairwise
    /// compatible. (Permits intentionally break isolation — ASSET's
    /// `permit` shares data "without forming inter-transaction
    /// dependencies" — and a later lock transfer can join modes past a
    /// third party's waiver, so permit-bearing heads admit incompatible
    /// holders by design; the application took that responsibility when
    /// it issued the permit.) Exposed for property tests.
    #[doc(hidden)]
    pub fn validate_invariants(&self) {
        let st = self.state.lock();
        for (&ob, head) in &st.table.heads {
            if head.permit_tainted {
                continue;
            }
            let holders: Vec<(TxnId, LockMode)> =
                head.holders.iter().map(|(&t, &m)| (t, m)).collect();
            for (i, &(t1, m1)) in holders.iter().enumerate() {
                for &(t2, m2) in &holders[i + 1..] {
                    assert!(
                        m1.compatible(m2),
                        "incompatible holders on {ob}: {t1}:{m1:?} vs {t2}:{m2:?}"
                    );
                }
            }
        }
    }

    /// All objects `txn` currently holds locks on (sorted, for
    /// deterministic iteration in tests).
    pub fn held_objects(&self, txn: TxnId) -> Vec<ObjectId> {
        let st = self.state.lock();
        let mut obs: Vec<ObjectId> = st
            .table
            .heads
            .iter()
            .filter(|(_, h)| h.holders.contains_key(&txn))
            .map(|(&ob, _)| ob)
            .collect();
        obs.sort();
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn acquire_and_reacquire() {
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Shared).unwrap();
        // Re-acquiring the same or weaker mode is a no-op.
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Shared).unwrap();
        assert_eq!(lm.held_mode(TxnId(1), ObjectId(1)), Some(LockMode::Shared));
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Shared).unwrap();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive).unwrap();
        assert_eq!(lm.held_mode(TxnId(1), ObjectId(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_holder() {
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Shared).unwrap();
        lm.try_acquire(TxnId(2), ObjectId(1), LockMode::Shared).unwrap();
        assert_eq!(
            lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive),
            Err(RhError::LockConflict { txn: TxnId(1), object: ObjectId(1) })
        );
    }

    #[test]
    fn increment_mode_allows_concurrent_updaters() {
        // The §2.1.2 scenario: several transactions update one counter.
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Increment).unwrap();
        lm.try_acquire(TxnId(2), ObjectId(1), LockMode::Increment).unwrap();
        lm.try_acquire(TxnId(3), ObjectId(1), LockMode::Increment).unwrap();
        // But a writer cannot join.
        assert!(lm.try_acquire(TxnId(4), ObjectId(1), LockMode::Exclusive).is_err());
    }

    #[test]
    fn permit_lets_permittee_through() {
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive).unwrap();
        assert!(lm.try_acquire(TxnId(2), ObjectId(1), LockMode::Shared).is_err());
        lm.permit(TxnId(1), TxnId(2), ObjectId(1));
        lm.try_acquire(TxnId(2), ObjectId(1), LockMode::Shared).unwrap();
        // Permit is directional: t3 still blocked.
        assert!(lm.try_acquire(TxnId(3), ObjectId(1), LockMode::Shared).is_err());
    }

    #[test]
    fn transfer_moves_lock_to_delegatee() {
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive).unwrap();
        lm.transfer(TxnId(1), TxnId(2), ObjectId(1));
        assert_eq!(lm.held_mode(TxnId(1), ObjectId(1)), None);
        assert_eq!(lm.held_mode(TxnId(2), ObjectId(1)), Some(LockMode::Exclusive));
        // The delegator can no longer assume access...
        assert!(lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive).is_err());
    }

    #[test]
    fn transfer_joins_modes() {
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Increment).unwrap();
        lm.try_acquire(TxnId(2), ObjectId(1), LockMode::Increment).unwrap();
        lm.transfer(TxnId(1), TxnId(2), ObjectId(1));
        assert_eq!(lm.held_mode(TxnId(2), ObjectId(1)), Some(LockMode::Increment));
    }

    #[test]
    fn transfer_all_moves_every_object() {
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive).unwrap();
        lm.try_acquire(TxnId(1), ObjectId(2), LockMode::Shared).unwrap();
        lm.transfer_all(TxnId(1), TxnId(2));
        assert_eq!(lm.held_objects(TxnId(1)), vec![]);
        assert_eq!(lm.held_objects(TxnId(2)), vec![ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn release_all_frees_locks_and_permits() {
        let lm = LockManager::new();
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive).unwrap();
        lm.permit(TxnId(1), TxnId(2), ObjectId(1));
        lm.release_all(TxnId(1));
        assert_eq!(lm.held_mode(TxnId(1), ObjectId(1)), None);
        // Permit granted by t1 is gone with it: t3's new X lock blocks t2.
        lm.try_acquire(TxnId(3), ObjectId(1), LockMode::Exclusive).unwrap();
        assert!(lm.try_acquire(TxnId(2), ObjectId(1), LockMode::Shared).is_err());
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = thread::spawn(move || lm2.acquire(TxnId(2), ObjectId(1), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        lm.release_all(TxnId(1));
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.held_mode(TxnId(2), ObjectId(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn deadlock_detected_and_victim_chosen() {
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(TxnId(1), ObjectId(1), LockMode::Exclusive).unwrap();
        lm.try_acquire(TxnId(2), ObjectId(2), LockMode::Exclusive).unwrap();
        // t1 waits for ob2 (held by t2) on a thread...
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(TxnId(1), ObjectId(2), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        // ...then t2 requesting ob1 closes the cycle and must be refused.
        let res = lm.acquire(TxnId(2), ObjectId(1), LockMode::Exclusive);
        assert_eq!(res, Err(RhError::Deadlock { txn: TxnId(2), object: ObjectId(1) }));
        // Victim aborts, releasing its lock; the waiter proceeds.
        lm.release_all(TxnId(2));
        h.join().unwrap().unwrap();
    }
}
