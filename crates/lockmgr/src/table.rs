//! The lock table: per-object lock heads with holders and permit pairs.

use crate::modes::LockMode;
use rh_common::{ObjectId, TxnId};
use std::collections::HashMap;

/// Per-object lock state.
#[derive(Debug, Default)]
pub(crate) struct LockHead {
    /// Current holders and their (joined) modes.
    pub holders: HashMap<TxnId, LockMode>,
    /// ASSET `permit` pairs `(granter, permittee)`: a conflict between a
    /// holder `g` and a requester `p` is waived when `(g, p)` is present.
    pub permits: Vec<(TxnId, TxnId)>,
    /// True once any permit was ever issued on this object while locks
    /// were live. Permits intentionally break isolation, and their
    /// effects (incompatible coexistence) can outlive the permit itself
    /// (e.g. the granter releases); the flag scopes the strict
    /// compatibility invariant to never-permitted objects.
    pub permit_tainted: bool,
}

impl LockHead {
    /// Would `txn` acquiring `mode` conflict with any current holder,
    /// taking permits into account?
    pub fn conflicts(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders.iter().any(|(&holder, &held)| {
            holder != txn && !held.compatible(mode) && !self.permits.contains(&(holder, txn))
        })
    }

    /// The holders `txn` would have to wait for.
    pub fn blockers(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|(&holder, &held)| {
                holder != txn && !held.compatible(mode) && !self.permits.contains(&(holder, txn))
            })
            .map(|(&holder, _)| holder)
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.holders.is_empty() && self.permits.is_empty()
    }
}

/// The whole table. Not synchronized — [`crate::LockManager`] wraps it.
#[derive(Debug, Default)]
pub(crate) struct LockTable {
    pub heads: HashMap<ObjectId, LockHead>,
}

impl LockTable {
    pub fn head_mut(&mut self, ob: ObjectId) -> &mut LockHead {
        self.heads.entry(ob).or_default()
    }

    /// Drops empty heads so the table does not grow without bound.
    pub fn gc(&mut self, ob: ObjectId) {
        if self.heads.get(&ob).is_some_and(|h| h.is_empty()) {
            self.heads.remove(&ob);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_detection_respects_modes() {
        let mut head = LockHead::default();
        head.holders.insert(TxnId(1), LockMode::Shared);
        assert!(!head.conflicts(TxnId(2), LockMode::Shared));
        assert!(head.conflicts(TxnId(2), LockMode::Exclusive));
        assert!(head.conflicts(TxnId(2), LockMode::Increment));
    }

    #[test]
    fn own_lock_never_conflicts() {
        let mut head = LockHead::default();
        head.holders.insert(TxnId(1), LockMode::Exclusive);
        assert!(!head.conflicts(TxnId(1), LockMode::Exclusive));
        assert!(!head.conflicts(TxnId(1), LockMode::Shared));
    }

    #[test]
    fn permit_waives_conflict_one_way() {
        let mut head = LockHead::default();
        head.holders.insert(TxnId(1), LockMode::Exclusive);
        head.permits.push((TxnId(1), TxnId(2)));
        assert!(!head.conflicts(TxnId(2), LockMode::Shared)); // permitted
        assert!(head.conflicts(TxnId(3), LockMode::Shared)); // not permitted
    }

    #[test]
    fn blockers_lists_conflicting_holders_only() {
        let mut head = LockHead::default();
        head.holders.insert(TxnId(1), LockMode::Increment);
        head.holders.insert(TxnId(2), LockMode::Increment);
        let mut b = head.blockers(TxnId(3), LockMode::Exclusive);
        b.sort();
        assert_eq!(b, vec![TxnId(1), TxnId(2)]);
        assert!(head.blockers(TxnId(3), LockMode::Increment).is_empty());
    }

    #[test]
    fn gc_removes_empty_heads() {
        let mut table = LockTable::default();
        table.head_mut(ObjectId(1)).holders.insert(TxnId(1), LockMode::Shared);
        table.head_mut(ObjectId(1)).holders.remove(&TxnId(1));
        table.gc(ObjectId(1));
        assert!(table.heads.is_empty());
    }
}
