//! The lazy-rewrite baseline (§3.2): after its recovery, the log must
//! *physically* reflect the delegations — every update record covered by
//! a delegated scope carries the final responsible transaction's id —
//! while ARIES/RH's log is byte-identical to what normal processing
//! wrote.

use rh_common::{Lsn, ObjectId};
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;

const A: ObjectId = ObjectId(0);
const B: ObjectId = ObjectId(1);

#[test]
fn lazy_rewrites_chained_delegations_to_final_owner() {
    // t0 -> t1 -> t2 (loser). After lazy recovery, t0's update record
    // must carry t2 — the END of the chain, not an intermediate hop.
    let mut d = RhDb::new(Strategy::LazyRewrite);
    let t0 = d.begin().unwrap(); // id 0
    let t1 = d.begin().unwrap(); // id 1
    let t2 = d.begin().unwrap(); // id 2
    d.add(t0, A, 5).unwrap(); // lsn 3
    d.delegate(t0, t1, &[A]).unwrap();
    d.delegate(t1, t2, &[A]).unwrap();
    d.commit(t0).unwrap();
    d.commit(t1).unwrap();
    d.log().flush_all().unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0); // t2 lost
    let rec = d.log().read(Lsn(3)).unwrap();
    assert!(rec.is_update());
    assert_eq!(rec.txn, t2, "record must carry the final delegatee");
}

#[test]
fn lazy_rewrites_ended_winner_scopes() {
    // Loser invoker -> winner delegatee that committed AND ended before
    // the crash: the lazy pass must still rewrite the record to the
    // winner (its scope left the table with the End record; the forward
    // pass's delegation map supplies it).
    let mut d = RhDb::new(Strategy::LazyRewrite);
    let t0 = d.begin().unwrap();
    let t1 = d.begin().unwrap();
    d.add(t0, A, 5).unwrap(); // lsn 2
    d.delegate(t0, t1, &[A]).unwrap();
    d.commit(t1).unwrap(); // winner, fully ended
                           // t0 stays active: loser at crash (but owns nothing on A).
    d.log().flush_all().unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 5);
    assert_eq!(d.log().read(Lsn(2)).unwrap().txn, t1);
    assert!(d.last_recovery().unwrap().undo.rewrites >= 1);
}

#[test]
fn lazy_leaves_boring_records_alone() {
    let mut d = RhDb::new(Strategy::LazyRewrite);
    let t0 = d.begin().unwrap();
    let t1 = d.begin().unwrap();
    d.add(t0, A, 5).unwrap(); // lsn 2: delegated
    d.add(t0, B, 7).unwrap(); // lsn 3: boring
    d.delegate(t0, t1, &[A]).unwrap();
    d.commit(t1).unwrap();
    d.commit(t0).unwrap();
    d.log().flush_all().unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 5);
    assert_eq!(d.value_of(B).unwrap(), 7);
    assert_eq!(d.log().read(Lsn(2)).unwrap().txn, t1); // rewritten
    assert_eq!(d.log().read(Lsn(3)).unwrap().txn, t0); // untouched
}

#[test]
fn rewritten_log_recovers_like_plain_aries_thereafter() {
    // After one lazy recovery the log is fully rewritten; further
    // crash/recover cycles must be stable (idempotent) and rewrite
    // nothing new for the already-processed prefix.
    let mut d = RhDb::new(Strategy::LazyRewrite);
    let t0 = d.begin().unwrap();
    let t1 = d.begin().unwrap();
    d.add(t0, A, 5).unwrap();
    d.delegate(t0, t1, &[A]).unwrap();
    d.commit(t0).unwrap();
    d.commit(t1).unwrap();
    d.log().flush_all().unwrap();
    let d = d.crash_and_recover().unwrap();
    let first_rewrites = d.last_recovery().unwrap().undo.rewrites;
    assert!(first_rewrites >= 1);
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.last_recovery().unwrap().undo.rewrites, 0, "second pass rewrites nothing");
    assert_eq!(d.value_of(A).unwrap(), 5);
}
