//! Partial rollback (savepoints): the "recovery primitives" extension
//! the paper's conclusion calls for, built on the same scope machinery.

use rh_common::{ObjectId, RhError};
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;

const A: ObjectId = ObjectId(0);
const B: ObjectId = ObjectId(1);

fn db() -> RhDb {
    RhDb::new(Strategy::Rh)
}

#[test]
fn rollback_to_undoes_only_the_tail() {
    let mut d = db();
    let t = d.begin().unwrap();
    d.add(t, A, 1).unwrap();
    let sp = d.savepoint(t).unwrap();
    d.add(t, A, 10).unwrap();
    d.add(t, B, 100).unwrap();
    d.rollback_to(t, sp).unwrap();
    assert_eq!(d.value_of(A).unwrap(), 1);
    assert_eq!(d.value_of(B).unwrap(), 0);
    // The transaction is still alive and can continue + commit.
    d.add(t, A, 5).unwrap();
    d.commit(t).unwrap();
    assert_eq!(d.value_of(A).unwrap(), 6);
}

#[test]
fn rollback_to_beginning_equals_full_undo_but_stays_alive() {
    let mut d = db();
    let t = d.begin().unwrap();
    let sp = d.savepoint(t).unwrap();
    d.write(t, A, 9).unwrap();
    d.write(t, B, 8).unwrap();
    d.rollback_to(t, sp).unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0);
    assert_eq!(d.value_of(B).unwrap(), 0);
    d.commit(t).unwrap(); // commits nothing, legally
}

#[test]
fn nested_savepoints_unwind_in_order() {
    let mut d = db();
    let t = d.begin().unwrap();
    d.add(t, A, 1).unwrap();
    let sp1 = d.savepoint(t).unwrap();
    d.add(t, A, 10).unwrap();
    let sp2 = d.savepoint(t).unwrap();
    d.add(t, A, 100).unwrap();
    d.rollback_to(t, sp2).unwrap();
    assert_eq!(d.value_of(A).unwrap(), 11);
    d.rollback_to(t, sp1).unwrap();
    assert_eq!(d.value_of(A).unwrap(), 1);
    d.commit(t).unwrap();
    assert_eq!(d.value_of(A).unwrap(), 1);
}

#[test]
fn rollback_then_commit_is_crash_durable() {
    let mut d = db();
    let t = d.begin().unwrap();
    d.add(t, A, 1).unwrap();
    let sp = d.savepoint(t).unwrap();
    d.add(t, A, 10).unwrap();
    d.rollback_to(t, sp).unwrap();
    d.commit(t).unwrap();
    let mut d = d.crash_and_recover().unwrap();
    // Redo replays +1, +10, and the CLR (-10): net +1.
    assert_eq!(d.value_of(A).unwrap(), 1);
}

#[test]
fn rollback_then_crash_as_loser_rolls_back_the_rest_once() {
    let mut d = db();
    let t = d.begin().unwrap();
    d.add(t, A, 1).unwrap();
    let sp = d.savepoint(t).unwrap();
    d.add(t, A, 10).unwrap();
    d.rollback_to(t, sp).unwrap();
    d.log().flush_all().unwrap();
    // t never terminates: a loser. Its pre-savepoint +1 must be undone;
    // the rolled-back +10 must not be double-undone.
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0);
    let report = d.last_recovery().unwrap();
    assert_eq!(report.undo.undone, 1);
    assert_eq!(report.undo.skipped_compensated, 1);
}

#[test]
fn rollback_covers_updates_delegated_in_after_savepoint() {
    // Responsibility-based semantics: work delegated to t after the
    // savepoint is rolled back too (t is responsible for it now).
    let mut d = db();
    let t = d.begin().unwrap();
    let other = d.begin().unwrap();
    d.add(other, A, 50).unwrap();
    let sp = d.savepoint(t).unwrap();
    d.delegate(other, t, &[A]).unwrap();
    d.add(t, B, 7).unwrap();
    d.rollback_to(t, sp).unwrap();
    assert_eq!(d.value_of(B).unwrap(), 0);
    // The delegated update was invoked (logged) *before* sp, so it stays:
    // rollback_to is positional, like ARIES savepoints.
    assert_eq!(d.value_of(A).unwrap(), 50);
    d.commit(t).unwrap();
    d.commit(other).unwrap();
    assert_eq!(d.value_of(A).unwrap(), 50);
}

#[test]
fn savepoint_on_terminated_txn_rejected() {
    let mut d = db();
    let t = d.begin().unwrap();
    d.commit(t).unwrap();
    assert!(matches!(d.savepoint(t), Err(RhError::UnknownTxn(_) | RhError::TxnNotActive(_))));
}

#[test]
fn scopes_after_rollback_allow_redelegation() {
    // The truncated scope can still be delegated; the rolled-back tail
    // must not travel with it.
    let mut d = db();
    let t = d.begin().unwrap();
    let tee = d.begin().unwrap();
    d.add(t, A, 1).unwrap();
    let sp = d.savepoint(t).unwrap();
    d.add(t, A, 10).unwrap();
    d.rollback_to(t, sp).unwrap();
    d.delegate(t, tee, &[A]).unwrap();
    d.abort(t).unwrap();
    d.commit(tee).unwrap();
    assert_eq!(d.value_of(A).unwrap(), 1);
}

#[test]
fn full_tail_rollback_empties_scope_and_forbids_delegation() {
    let mut d = db();
    let t = d.begin().unwrap();
    let tee = d.begin().unwrap();
    let sp = d.savepoint(t).unwrap();
    d.add(t, A, 10).unwrap();
    d.rollback_to(t, sp).unwrap();
    // Nothing left to delegate on A.
    assert_eq!(d.delegate(t, tee, &[A]), Err(RhError::NotResponsible { txn: t, object: A }));
    d.commit(t).unwrap();
    d.commit(tee).unwrap();
}

#[test]
fn no_double_undo_when_scope_reextends_past_rollback() {
    // Regression: after rollback_to, the invoker's scope is clipped; a
    // further update re-extends it across the rolled-back region. A
    // later abort must not undo the compensated record a second time.
    let mut d = db();
    let t = d.begin().unwrap();
    d.add(t, A, 1).unwrap();
    let sp = d.savepoint(t).unwrap();
    d.add(t, A, 10).unwrap();
    d.rollback_to(t, sp).unwrap(); // A = 1
    d.add(t, A, 100).unwrap(); // scope re-extends across the CLR'd +10
    assert_eq!(d.value_of(A).unwrap(), 101);
    d.abort(t).unwrap(); // must undo +100 and +1, NOT +10 again
    assert_eq!(d.value_of(A).unwrap(), 0);
}

#[test]
fn trait_savepoints_match_across_engines() {
    use rh_core::eager::EagerDb;
    fn scenario<E: TxnEngine>(mut e: E) -> (i64, i64) {
        let t = e.begin().unwrap();
        let other = e.begin().unwrap();
        e.add(t, A, 1).unwrap();
        let sp = e.savepoint(t).unwrap();
        e.add(t, A, 10).unwrap();
        e.add(other, B, 5).unwrap();
        e.delegate(other, t, &[B]).unwrap(); // delegated in AFTER sp...
        e.rollback_to(t, sp).unwrap(); // ...and invoked after sp: undone
        e.commit(t).unwrap();
        e.commit(other).unwrap();
        (e.value_of(A).unwrap(), e.value_of(B).unwrap())
    }
    assert_eq!(scenario(RhDb::new(Strategy::Rh)), (1, 0));
    assert_eq!(scenario(EagerDb::new()), (1, 0));
}

#[test]
fn delegated_before_savepoint_survives_rollback_on_all_engines() {
    use rh_core::eager::EagerDb;
    fn scenario<E: TxnEngine>(mut e: E) -> i64 {
        let t = e.begin().unwrap();
        let other = e.begin().unwrap();
        e.add(other, B, 5).unwrap(); // invoked before the savepoint...
        let sp = e.savepoint(t).unwrap();
        e.delegate(other, t, &[B]).unwrap(); // ...delegated in after it
        e.rollback_to(t, sp).unwrap(); // positional: +5 predates sp
        e.commit(t).unwrap();
        e.commit(other).unwrap();
        e.value_of(B).unwrap()
    }
    assert_eq!(scenario(RhDb::new(Strategy::Rh)), 5);
    assert_eq!(scenario(EagerDb::new()), 5);
}
