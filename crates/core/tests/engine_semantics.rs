//! Normal-processing semantics of the ARIES/RH engine, pinned to the
//! paper's definitions and worked examples (§2.1, §3.4, §3.5).

use rh_common::Lsn;
use rh_common::{ObjectId, RhError, TxnId};
use rh_core::engine::{RhDb, Strategy};
use rh_core::{Scope, TxnEngine};

const A: ObjectId = ObjectId(0);
const B: ObjectId = ObjectId(1);

fn db() -> RhDb {
    RhDb::new(Strategy::Rh)
}

#[test]
fn read_your_own_write() {
    let mut db = db();
    let t = db.begin().unwrap();
    db.write(t, A, 42).unwrap();
    assert_eq!(db.read(t, A).unwrap(), 42);
    db.commit(t).unwrap();
}

#[test]
fn commit_makes_updates_permanent() {
    let mut db = db();
    let t = db.begin().unwrap();
    db.write(t, A, 1).unwrap();
    db.add(t, B, 5).unwrap();
    db.commit(t).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 1);
    assert_eq!(db.value_of(B).unwrap(), 5);
}

#[test]
fn abort_restores_before_images() {
    let mut db = db();
    let t0 = db.begin().unwrap();
    db.write(t0, A, 10).unwrap();
    db.commit(t0).unwrap();
    let t = db.begin().unwrap();
    db.write(t, A, 99).unwrap();
    db.add(t, B, 3).unwrap();
    db.abort(t).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 10);
    assert_eq!(db.value_of(B).unwrap(), 0);
}

#[test]
fn abort_is_usable_after_many_updates_same_object() {
    let mut db = db();
    let t = db.begin().unwrap();
    for i in 0..20 {
        db.write(t, A, i).unwrap();
    }
    db.abort(t).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 0);
}

// ---- delegation preconditions (§2.1.2) ---------------------------------

#[test]
fn delegate_requires_responsibility() {
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    assert_eq!(db.delegate(t1, t2, &[A]), Err(RhError::NotResponsible { txn: t1, object: A }));
}

#[test]
fn delegate_to_self_rejected() {
    let mut db = db();
    let t1 = db.begin().unwrap();
    db.write(t1, A, 1).unwrap();
    assert_eq!(db.delegate(t1, t1, &[A]), Err(RhError::SelfDelegation(t1)));
}

#[test]
fn delegate_requires_both_active() {
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.write(t1, A, 1).unwrap();
    db.commit(t2).unwrap();
    assert!(matches!(db.delegate(t1, t2, &[A]), Err(RhError::UnknownTxn(_))));
}

#[test]
fn delegator_loses_responsibility_after_delegating() {
    // post(delegate) => ResponsibleTr = t2; a second delegation of the
    // same object by t1 must now be ill-formed.
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    let t3 = db.begin().unwrap();
    db.write(t1, A, 1).unwrap();
    db.delegate(t1, t2, &[A]).unwrap();
    assert_eq!(db.delegate(t1, t3, &[A]), Err(RhError::NotResponsible { txn: t1, object: A }));
    // But the new responsible transaction can delegate onward.
    db.delegate(t2, t3, &[A]).unwrap();
    db.commit(t3).unwrap();
    db.abort(t1).unwrap();
    db.abort(t2).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 1);
}

// ---- commit/abort of delegated updates (§2.1.2) -------------------------

#[test]
fn delegated_update_survives_delegator_abort() {
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.write(t1, A, 7).unwrap();
    db.delegate(t1, t2, &[A]).unwrap();
    db.abort(t1).unwrap();
    db.commit(t2).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 7);
}

#[test]
fn delegated_update_dies_with_delegatee_abort() {
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.write(t1, A, 7).unwrap();
    db.delegate(t1, t2, &[A]).unwrap();
    db.commit(t1).unwrap(); // commits nothing on A
    db.abort(t2).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 0);
}

#[test]
fn example2_mixed_fates() {
    // §3.4 Example 2: update, delegate to t1, update, delegate to t2;
    // abort(t2), commit(t1): first update persists, second undone.
    let mut db = db();
    let t = db.begin().unwrap();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.add(t, A, 10).unwrap();
    db.delegate(t, t1, &[A]).unwrap();
    db.add(t, A, 100).unwrap();
    db.delegate(t, t2, &[A]).unwrap();
    db.abort(t2).unwrap();
    db.commit(t1).unwrap();
    db.commit(t).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 10);
}

#[test]
fn update_after_delegation_with_increment_locks() {
    // "a transaction can perform operations on an object even after it
    // has delegated (an operation on) that object" — possible here with
    // commuting adds (the X lock moved with the delegation).
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.add(t1, A, 1).unwrap();
    db.delegate(t1, t2, &[A]).unwrap();
    db.add(t1, A, 2).unwrap(); // new scope, still t1's responsibility
    db.abort(t1).unwrap(); // undoes only +2
    db.commit(t2).unwrap(); // commits +1
    assert_eq!(db.value_of(A).unwrap(), 1);
}

#[test]
fn delegation_moves_the_lock() {
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.write(t1, A, 5).unwrap();
    db.delegate(t1, t2, &[A]).unwrap();
    // The delegator's exclusive lock moved to t2; t1 can no longer write.
    assert_eq!(db.write(t1, A, 6), Err(RhError::LockConflict { txn: t1, object: A }));
    // ...while t2 can.
    db.write(t2, A, 6).unwrap();
    db.commit(t2).unwrap();
    db.commit(t1).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 6);
}

#[test]
fn delegate_multiple_objects_atomically() {
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.write(t1, A, 1).unwrap();
    db.write(t1, B, 2).unwrap();
    db.delegate(t1, t2, &[A, B]).unwrap();
    db.abort(t1).unwrap();
    db.commit(t2).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 1);
    assert_eq!(db.value_of(B).unwrap(), 2);
}

#[test]
fn delegate_all_is_the_join_idiom() {
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.write(t2, A, 1).unwrap();
    db.add(t2, B, 4).unwrap();
    // t2 joins t1: delegates *all* objects (§2.2.1).
    db.delegate_all(t2, t1).unwrap();
    db.abort(t2).unwrap(); // t2's fate no longer matters
    db.commit(t1).unwrap();
    assert_eq!(db.value_of(A).unwrap(), 1);
    assert_eq!(db.value_of(B).unwrap(), 4);
}

#[test]
fn delegation_chain_three_hops() {
    let mut db = db();
    let t0 = db.begin().unwrap();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    let t3 = db.begin().unwrap();
    db.write(t0, A, 9).unwrap();
    db.delegate(t0, t1, &[A]).unwrap();
    db.delegate(t1, t2, &[A]).unwrap();
    db.delegate(t2, t3, &[A]).unwrap();
    db.commit(t0).unwrap();
    db.commit(t1).unwrap();
    db.commit(t2).unwrap();
    db.abort(t3).unwrap(); // final delegatee decides: undone
    assert_eq!(db.value_of(A).unwrap(), 0);
}

// ---- scope bookkeeping matches Fig. 5 ------------------------------------

#[test]
fn fig5_scope_contents_in_live_engine() {
    // Reproduce Example 1 with real transactions and check the engine's
    // scope tables look like Fig. 5. Adds are used so both transactions
    // can hold update locks on `a` simultaneously.
    let mut db = db();
    let t1 = db.begin().unwrap(); // lsn 0
    let t2 = db.begin().unwrap(); // lsn 1
    let (a, x, b, y) = (ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(3));
    db.add(t1, a, 1).unwrap(); // lsn 2
    db.add(t2, x, 1).unwrap(); // lsn 3
    db.add(t2, a, 1).unwrap(); // lsn 4
    db.add(t1, b, 1).unwrap(); // lsn 5
    db.add(t1, a, 1).unwrap(); // lsn 6
    db.add(t2, y, 1).unwrap(); // lsn 7
    db.delegate(t1, t2, &[a]).unwrap(); // lsn 8

    assert!(db.scopes_of(t1, a).is_empty());
    let mut t2_scopes = db.scopes_of(t2, a);
    t2_scopes.sort_by_key(|s| s.first);
    assert_eq!(
        t2_scopes,
        vec![
            Scope { invoker: t1, first: Lsn(2), last: Lsn(6) },
            Scope { invoker: t2, first: Lsn(4), last: Lsn(4) },
        ]
    );
    assert_eq!(db.scopes_of(t1, b), vec![Scope { invoker: t1, first: Lsn(5), last: Lsn(5) }]);
}

#[test]
fn no_delegation_means_rh_log_matches_plain_shape() {
    // E1's qualitative half: without delegation the log contains exactly
    // the records plain ARIES would write (begin/update/commit/end) and
    // zero in-place rewrites.
    let mut db = db();
    for _ in 0..3 {
        let t = db.begin().unwrap();
        db.write(t, A, 1).unwrap();
        db.commit(t).unwrap();
    }
    let dump = db.dump_log();
    assert!(dump.iter().all(|l| !l.contains("delegate")));
    assert_eq!(db.log().metrics().snapshot().in_place_rewrites, 0);
}

#[test]
fn rh_never_rewrites_the_log_even_with_delegation() {
    // The paper's central claim, asserted mechanically.
    let mut db = db();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.write(t1, A, 5).unwrap();
    db.delegate(t1, t2, &[A]).unwrap();
    db.abort(t1).unwrap();
    db.commit(t2).unwrap();
    assert_eq!(db.log().metrics().snapshot().in_place_rewrites, 0);
}

#[test]
fn operations_on_terminated_txn_rejected() {
    let mut db = db();
    let t = db.begin().unwrap();
    db.commit(t).unwrap();
    assert!(db.write(t, A, 1).is_err());
    assert!(db.read(t, A).is_err());
    assert!(db.commit(t).is_err());
    assert!(db.abort(t).is_err());
}

#[test]
fn unknown_txn_rejected() {
    let mut db = db();
    assert_eq!(db.write(TxnId(99), A, 1), Err(RhError::UnknownTxn(TxnId(99))));
}

#[test]
fn concurrent_increments_by_many_txns() {
    // Several transactions concurrently responsible for scopes on one
    // object (§2.1.2 / §3.4): five adders, mixed fates.
    let mut db = db();
    let txns: Vec<TxnId> = (0..5).map(|_| db.begin().unwrap()).collect();
    for (i, &t) in txns.iter().enumerate() {
        db.add(t, A, 10i64.pow(i as u32)).unwrap();
    }
    db.commit(txns[0]).unwrap(); // +1
    db.abort(txns[1]).unwrap(); // -10
    db.commit(txns[2]).unwrap(); // +100
    db.abort(txns[3]).unwrap(); // -1000
    db.commit(txns[4]).unwrap(); // +10000
    assert_eq!(db.value_of(A).unwrap(), 10101);
}
