//! Trace-context propagation across a cross-shard 2PC commit: the
//! per-shard trace rings must stitch into one waterfall containing
//! every protocol edge exactly once, and — because the edge points are
//! emitted *before* each crash-injection point — a crash mid-protocol
//! must leave the completed edges (and their slow-op entries) in the
//! shards' flight-recorder black boxes.

use rh_common::ObjectId;
use rh_core::engine::DbConfig;
use rh_core::sharded::{ShardedDb, TwoPcFault};
use rh_core::Strategy;
use rh_obs::blackbox::BlackBoxRecord;
use rh_obs::{names, JsonValue};
use rh_wal::sidecar::SidecarLog;
use rh_wal::StableLog;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Objects 0 and 1 land on shards 0 and 1 under shift 0, so shard 0 is
/// the coordinator (lowest participant) and shard 1 the sole preparer.
const OB_A: ObjectId = ObjectId(0);
const OB_B: ObjectId = ObjectId(1);

const TRACE: u64 = 0xBEEF;

fn both_strategies(case: impl Fn(Strategy)) {
    case(Strategy::Rh);
    case(Strategy::LazyRewrite);
}

/// Every `phase.*` point tagged with `trace`, harvested from all shard
/// rings — the stitching a trace consumer performs over `/trace`.
fn stitched_phases(db: &ShardedDb, shards: usize, trace: u64) -> Vec<(&'static str, u64)> {
    let mut out = Vec::new();
    for k in 0..shards {
        let obs = db.shard_obs(k).expect("shard obs");
        for ev in obs.tracer.snapshot().events {
            if ev.lsn_lo == trace && ev.name.starts_with("phase.") {
                out.push((ev.name, ev.txn));
            }
        }
    }
    out
}

#[test]
fn cross_shard_commit_stitches_every_edge_exactly_once() {
    both_strategies(|strategy| {
        let db = ShardedDb::new_mem(strategy, 2, 0);
        let t = db.begin().unwrap();
        db.write(t, OB_A, 7).unwrap();
        db.write(t, OB_B, 9).unwrap();
        let phases = db.commit_traced(t, TRACE).unwrap();

        // The returned phase list and the stitched ring contents must
        // agree: one prepare force (the coordinator never prepares),
        // one coordinator decision force, one lazy catch-up.
        let count = |list: &[(&'static str, u64)], name: &str| {
            list.iter().filter(|(n, _)| *n == name).count()
        };
        let returned: Vec<(&'static str, u64)> = phases.clone();
        let stitched = stitched_phases(&db, 2, TRACE);
        for list in [&returned, &stitched] {
            assert_eq!(count(list, names::PH_2PC_PREPARE), 1, "{strategy:?}: {list:?}");
            assert_eq!(count(list, names::PH_2PC_COORD), 1, "{strategy:?}: {list:?}");
            assert_eq!(count(list, names::PH_2PC_RESOLVE), 1, "{strategy:?}: {list:?}");
        }
        // Stitch key: every ring point carries the global txn id.
        assert!(stitched.iter().all(|&(_, txn)| txn == t.raw()), "{stitched:?}");

        // A second, single-shard commit must contribute *no* 2PC edges
        // under a fresh trace id — the fast path bypasses the protocol.
        let t2 = db.begin().unwrap();
        db.write(t2, ObjectId(2), 5).unwrap(); // shard 0 under % 2
        db.commit_traced(t2, TRACE + 1).unwrap();
        let solo = stitched_phases(&db, 2, TRACE + 1);
        assert_eq!(count(&solo, names::PH_2PC_PREPARE), 0);
        assert_eq!(count(&solo, names::PH_2PC_COORD), 0);
        assert_eq!(count(&solo, names::PH_COMMIT_PREPARE), 1);
        assert_eq!(count(&solo, names::PH_FLUSH_WAIT), 1);
    });
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-trace2pc-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parses the newest black-box record from a shard's sidecar stream.
fn last_blackbox(shard_dir: &Path) -> BlackBoxRecord {
    let sidecar = SidecarLog::open(SidecarLog::dir_for(shard_dir)).expect("sidecar open");
    let (_, payload) = sidecar.last().expect("a black-box record");
    BlackBoxRecord::parse(&payload).expect("parseable record")
}

fn slow_op_names(rec: &BlackBoxRecord) -> Vec<String> {
    rec.slow_ops()
        .iter()
        .filter_map(|op| op.get("op").and_then(JsonValue::as_str).map(str::to_string))
        .collect()
}

#[test]
fn crash_mid_2pc_preserves_slow_edges_in_the_black_box() {
    let dir = scratch("blackbox");
    let shard_dirs: Vec<PathBuf> = (0..2).map(|k| dir.join(format!("shard-{k}"))).collect();
    let stables =
        shard_dirs.iter().map(|d| StableLog::open_dir(d).expect("open shard dir")).collect();
    let db = ShardedDb::with_stable_logs(Strategy::Rh, DbConfig::default(), stables, 0).unwrap();
    // Threshold 0: every completed 2PC edge lands in its shard's
    // slow-op log the moment it finishes.
    for k in 0..2 {
        db.shard_obs(k).unwrap().slowops.set_threshold_us(0);
    }

    let t = db.begin().unwrap();
    db.write(t, OB_A, 21).unwrap();
    db.write(t, OB_B, 23).unwrap();
    // The crash hits after the coordinator decision is durable: the
    // prepare edge (shard 1) and the decision force (shard 0) have both
    // completed — and were traced — but the commit never acks.
    db.inject_fault(TwoPcFault::AfterCoordCommit);
    assert!(db.commit_traced(t, TRACE).is_err());

    // The cadence freeze a real deployment runs before the lights go
    // out (the flight recorder's whole point): then the process dies.
    db.record_blackbox_all("pre-crash");
    drop(db);

    // Postmortem, from the on-disk sidecars alone: each shard's black
    // box carries the slow-op entries for the edges it had completed,
    // still tagged with the client's trace id.
    let coord = last_blackbox(&shard_dirs[0]);
    let coord_slow = slow_op_names(&coord);
    assert!(
        coord_slow.iter().any(|n| n == names::PH_2PC_COORD),
        "coordinator black box lost the decision edge: {coord_slow:?}"
    );
    let part = last_blackbox(&shard_dirs[1]);
    let part_slow = slow_op_names(&part);
    assert!(
        part_slow.iter().any(|n| n == names::PH_2PC_PREPARE),
        "participant black box lost the prepare edge: {part_slow:?}"
    );
    for rec in [&coord, &part] {
        for op in rec.slow_ops() {
            if op.get("op").and_then(JsonValue::as_str).map(|n| n.starts_with("phase.twopc."))
                == Some(true)
            {
                assert_eq!(op.get("trace").and_then(JsonValue::as_u64), Some(TRACE));
            }
        }
    }
    // The run stopped before the resolve edge: no shard may claim one.
    for slow in [&coord_slow, &part_slow] {
        assert!(!slow.iter().any(|n| n == names::PH_2PC_RESOLVE), "{slow:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
