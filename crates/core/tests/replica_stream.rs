//! A replica whose local WAL tears mid-ship: the replica "process" dies
//! while persisting shipped frames (fault-injected I/O cuts a frame in
//! half), the next incarnation reopens the directory, truncates the
//! torn tail, resumes the forward pass over the surviving prefix, and
//! re-consumes the stream from its applied watermark — converging on
//! the primary's state with no re-seed and no duplicate application.

use rh_common::codec::Codec;
use rh_common::{ObjectId, Value};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::replica::ReplicaSet;
use rh_core::TxnEngine;
use rh_storage::Disk;
use rh_wal::{FaultInjector, FaultIo, FileLogConfig, StableLog};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Small segments so the shipped stream spans several files and the
/// torn tail can land on a segment roll too.
const SEGMENT_BYTES: u64 = 512;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-replstream-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_faulty(dir: &PathBuf, injector: &Arc<FaultInjector>) -> Arc<StableLog> {
    StableLog::open_file_with(
        Arc::new(FaultIo::std(Arc::clone(injector))),
        FileLogConfig::new(dir).segment_bytes(SEGMENT_BYTES),
    )
    .expect("pre-crash open cannot fail")
}

/// Ships every durable primary record at or above the replica's applied
/// watermark, flushing the replica's local log after each frame (the
/// per-frame flush is what walks the byte budget toward the tear).
/// Returns `Err` the moment the replica refuses — the simulated replica
/// process just died.
fn ship_from(primary: &RhDb, set: &ReplicaSet) -> Result<(), rh_common::RhError> {
    let log = primary.log();
    let mut next = set.applied_lsn(0)?;
    while next.raw() < log.durable_len() {
        let rec = log.read(next).expect("durable record readable");
        set.apply_frame(0, next, &rec.to_bytes())?;
        set.flush_shard(0)?;
        next = set.applied_lsn(0)?;
    }
    Ok(())
}

/// The primary-side script: `rounds` committed transactions, one object
/// each, value = round index. Returns the acked effects.
fn run_primary(db: &mut RhDb, rounds: u64) -> Vec<(ObjectId, Value)> {
    let mut acked = Vec::new();
    for i in 0..rounds {
        let ob = ObjectId(100 + i);
        let t = db.begin().unwrap();
        db.write(t, ob, i as Value).unwrap();
        db.commit(t).unwrap();
        acked.push((ob, i as Value));
    }
    acked
}

#[test]
fn torn_tail_mid_ship_resumes_from_the_surviving_prefix() {
    // Size the byte budget from a clean run so the tear lands mid-stream.
    let total = {
        let dir = scratch("clean");
        let injector = FaultInjector::unlimited();
        let mut primary = RhDb::new(Strategy::Rh);
        run_primary(&mut primary, 8);
        let set = ReplicaSet::open(
            Strategy::Rh,
            DbConfig::default(),
            vec![(open_faulty(&dir, &injector), Disk::new())],
            0,
        )
        .unwrap();
        ship_from(&primary, &set).expect("clean ship");
        let total: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap())
            .filter(|e| e.path().extension().is_some_and(|x| x == "seg"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        std::fs::remove_dir_all(&dir).unwrap();
        total
    };
    assert!(total > 100, "stream too small to tear: {total} bytes");

    // Sweep tear points across the stream: early, mid-frame, late.
    for &offset in &[total / 5, total / 3, total / 2, 2 * total / 3, total - 7] {
        let dir = scratch("tear");
        let mut primary = RhDb::new(Strategy::Rh);
        let acked = run_primary(&mut primary, 8);

        let injector = FaultInjector::crash_after_bytes(offset);
        let set = ReplicaSet::open(
            Strategy::Rh,
            DbConfig::default(),
            vec![(open_faulty(&dir, &injector), Disk::new())],
            0,
        )
        .expect("replica opens before the budget runs out");
        let died = ship_from(&primary, &set);
        assert!(died.is_err(), "offset {offset} of {total}: ship never hit the tear");
        assert!(injector.crashed(), "offset {offset}: budget never tripped");
        let before_crash = set.applied_lsn(0).unwrap();
        drop(set); // the dead incarnation's memory is gone

        // Next incarnation: real I/O, torn tail truncated on open. The
        // forward pass re-analyzes the surviving prefix; the applied
        // watermark tells the subscriber where to resume — at or below
        // the dead incarnation's, never beyond it.
        let stable = StableLog::open_file(FileLogConfig::new(&dir).segment_bytes(SEGMENT_BYTES))
            .unwrap_or_else(|e| panic!("offset {offset}: reopen failed: {e:?}"));
        let set =
            ReplicaSet::open(Strategy::Rh, DbConfig::default(), vec![(stable, Disk::new())], 0)
                .unwrap_or_else(|e| panic!("offset {offset}: resume open failed: {e:?}"));
        let resumed_from = set.applied_lsn(0).unwrap();
        assert!(
            resumed_from <= before_crash,
            "offset {offset}: watermark ran ahead of the dead incarnation"
        );

        // Re-ship the suffix; the stream must complete cleanly and the
        // replica must converge on every acked effect.
        ship_from(&primary, &set)
            .unwrap_or_else(|e| panic!("offset {offset}: resumed ship failed: {e:?}"));
        for &(ob, v) in &acked {
            assert_eq!(
                set.value_of(ob).unwrap(),
                v,
                "offset {offset}: acked effect lost across the tear"
            );
        }
        assert_eq!(
            set.stats().counter(rh_obs::names::M_REPL_APPLY_ERRORS),
            0,
            "offset {offset}: resumed incarnation refused frames"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
