//! White-box forward-pass tests over hand-built logs: analysis
//! classifications, scope reconstruction, delegate processing, and the
//! checkpoint fast path — asserted through full recovery on crafted
//! stable state.

use rh_common::{Lsn, ObjectId, TxnId, UpdateOp};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::TxnEngine;
use rh_storage::Disk;
use rh_wal::record::{DelegateBody, RecordBody};
use rh_wal::LogManager;

const A: ObjectId = ObjectId(0);

fn add(ob: ObjectId, delta: i64) -> RecordBody {
    RecordBody::Update { ob, op: UpdateOp::Add { delta } }
}

fn recover(log: LogManager) -> RhDb {
    log.flush_all().unwrap();
    RhDb::recover(Strategy::Rh, DbConfig::default(), log.crash(), Disk::new()).unwrap()
}

#[test]
fn losers_by_default_winners_by_commit_record() {
    let log = LogManager::new();
    let (w, l) = (TxnId(0), TxnId(1));
    log.append(w, Lsn::NULL, RecordBody::Begin); // 0
    log.append(l, Lsn::NULL, RecordBody::Begin); // 1
    log.append(w, Lsn(0), add(A, 5)); // 2
    log.append(l, Lsn(1), add(A, 50)); // 3
    log.append(w, Lsn(2), RecordBody::Commit); // 4 (no End: lost in crash)
    let mut db = recover(log);
    assert_eq!(db.value_of(A).unwrap(), 5);
    let report = db.last_recovery().unwrap();
    assert_eq!(report.losers, vec![l]);
    assert_eq!(report.winners_seen, 1);
    assert_eq!(report.undo.undone, 1);
}

#[test]
fn delegate_record_moves_scope_during_analysis() {
    // The delegate record in the log is the ONLY delegation evidence; the
    // forward pass must transfer the scope so the backward pass undoes by
    // the delegatee's fate.
    let log = LogManager::new();
    let (t0, t1) = (TxnId(0), TxnId(1));
    log.append(t0, Lsn::NULL, RecordBody::Begin); // 0
    log.append(t1, Lsn::NULL, RecordBody::Begin); // 1
    log.append(t0, Lsn(0), add(A, 5)); // 2
    log.append(
        t0,
        Lsn(2),
        RecordBody::Delegate { tee: t1, tee_bc: Lsn(1), body: DelegateBody::one(A) },
    ); // 3
    log.append(t0, Lsn(3), RecordBody::Commit); // 4: invoker is a winner
    let mut db = recover(log);
    // t1 (responsible) is a loser: the update dies with it.
    assert_eq!(db.value_of(A).unwrap(), 0);
    assert_eq!(db.last_recovery().unwrap().undo.undone, 1);
}

#[test]
fn delegate_all_record_replays_during_analysis() {
    let log = LogManager::new();
    let (t0, t1) = (TxnId(0), TxnId(1));
    log.append(t0, Lsn::NULL, RecordBody::Begin); // 0
    log.append(t1, Lsn::NULL, RecordBody::Begin); // 1
    log.append(t0, Lsn(0), add(A, 5)); // 2
    log.append(t0, Lsn(2), add(ObjectId(1), 7)); // 3
    log.append(
        t0,
        Lsn(3),
        RecordBody::Delegate { tee: t1, tee_bc: Lsn(1), body: DelegateBody::All },
    ); // 4
    log.append(t1, Lsn(4), RecordBody::Commit); // 5: delegatee wins
    let mut db = recover(log);
    assert_eq!(db.value_of(A).unwrap(), 5);
    assert_eq!(db.value_of(ObjectId(1)).unwrap(), 7);
    // t0 is the loser but owns nothing: zero undos.
    assert_eq!(db.last_recovery().unwrap().undo.undone, 0);
}

#[test]
fn abort_record_clears_scopes_so_backward_pass_skips() {
    // CLRs + abort record present: the rollback completed pre-crash. The
    // backward pass must have nothing to visit.
    let log = LogManager::new();
    let t = TxnId(0);
    log.append(t, Lsn::NULL, RecordBody::Begin); // 0
    log.append(t, Lsn(0), add(A, 5)); // 1
    log.append(
        t,
        Lsn(1),
        RecordBody::Clr {
            ob: A,
            op: UpdateOp::Add { delta: -5 },
            compensated: Lsn(1),
            undo_next: Lsn(0),
        },
    ); // 2
    log.append(t, Lsn(2), RecordBody::Abort); // 3
    let mut db = recover(log);
    assert_eq!(db.value_of(A).unwrap(), 0);
    let undo = db.last_recovery().unwrap().undo;
    assert_eq!(undo.visited, 0, "abort record must have cleared the scopes");
}

#[test]
fn update_without_begin_implies_the_transaction() {
    // Robustness: analysis inserts unknown transactions on first sight
    // (the lazy baseline can rewrite records to ids whose begin is
    // later; torn logs shouldn't panic either).
    let log = LogManager::new();
    let t = TxnId(7);
    log.append(t, Lsn::NULL, add(A, 3)); // 0: no Begin anywhere
    let mut db = recover(log);
    assert_eq!(db.value_of(A).unwrap(), 0); // implied txn is a loser
    assert_eq!(db.last_recovery().unwrap().losers, vec![t]);
}

#[test]
fn post_recovery_txn_ids_clear_the_high_water_mark() {
    let log = LogManager::new();
    log.append(TxnId(41), Lsn::NULL, RecordBody::Begin);
    let mut db = recover(log);
    let t = db.begin().unwrap();
    assert!(t.raw() >= 42, "allocated {t} despite id 41 in the log");
}

#[test]
fn checkpoint_snapshot_restores_delegated_scopes() {
    // Build the state through a real engine, checkpoint, crash, then
    // verify the analysis region is tiny and the (pre-checkpoint)
    // delegated scope still gets undone.
    let mut db = RhDb::new(Strategy::Rh);
    let t0 = db.begin().unwrap();
    let t1 = db.begin().unwrap();
    db.add(t0, A, 5).unwrap();
    db.delegate(t0, t1, &[A]).unwrap();
    db.commit(t0).unwrap();
    db.checkpoint().unwrap();
    db.log().flush_all().unwrap();
    let mut db = db.crash_and_recover().unwrap();
    assert_eq!(db.value_of(A).unwrap(), 0); // t1 lost
    let report = db.last_recovery().unwrap();
    assert!(report.forward.records_scanned <= 2, "analysis must start at the checkpoint");
    assert_eq!(report.undo.undone, 1);
}
