//! End-to-end flight recorder + provenance: build a delegation chain,
//! freeze a black box, crash, crash *again* mid-recovery, then verify
//! the surviving process serves a postmortem with the predecessor's
//! final spans and returns exactly the delegate-hop chain the §2.1
//! oracle predicts — across both engine strategies.

use rh_common::ops::Value;
use rh_common::{ObjectId, TxnId};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::history::{Event, Label, Oracle};
use rh_core::TxnEngine;
use rh_obs::JsonValue;
use rh_storage::Disk;
use rh_wal::{FaultInjector, FaultIo, FileLogConfig, StableLog};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SEGMENT_BYTES: u64 = 512;
const X: ObjectId = ObjectId(7);
const SPARE: ObjectId = ObjectId(99);
const POISON: Value = -4242;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-postmortem-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_real(dir: &PathBuf) -> Arc<StableLog> {
    StableLog::open_file(FileLogConfig::new(dir).segment_bytes(SEGMENT_BYTES)).expect("open")
}

/// The abstract history both the engine and the oracle run: a two-hop
/// delegation chain over `X` (t1 -> t2 -> t3, tee commits), plus a loser
/// that stays active into the crash.
fn history() -> Vec<Event> {
    vec![
        Event::Begin(1),
        Event::Begin(2),
        Event::Begin(3),
        Event::Write(1, X, 10),
        Event::Delegate(1, 2, vec![X]),
        Event::Write(2, X, 20),
        Event::Delegate(2, 3, vec![X]),
        Event::Commit(3),
        Event::Commit(1),
        Event::Begin(4),
        Event::Write(4, SPARE, POISON),
        Event::Crash,
    ]
}

/// The delegate-hop chain for `target` that §2.1 semantics predict: one
/// `(tor, tee)` hop per delegate event issued while the oracle says the
/// delegator is actually responsible for the object.
fn oracle_predicted_chain(events: &[Event], target: ObjectId) -> Vec<(Label, Label)> {
    let mut oracle = Oracle::new();
    let mut chain = Vec::new();
    for ev in events {
        if let Event::Delegate(tor, tee, obs) = ev {
            if obs.contains(&target) && oracle.responsible_objects(*tor).contains(&target) {
                chain.push((*tor, *tee));
            }
        }
        oracle.apply(ev);
    }
    chain
}

fn http_get(addr: SocketAddr, path: &str) -> JsonValue {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.0 200"), "GET {path}: {head}");
    rh_obs::json::parse(body).expect("json body")
}

/// `crash_mid_recovery` additionally kills the *second* incarnation a
/// few bytes into its recovery. Only the RH engine is subjected to that:
/// the lazy baseline physically rewrites records in place during
/// recovery, which is exactly the non-crash-atomic behavior the paper
/// criticizes (§3.2) — a torn in-place rewrite corrupts committed
/// history, so repeated-crash safety is an RH-only property (see also
/// `interrupted_recovery.rs`).
fn chain_survives_crashed_recovery(strategy: Strategy, crash_mid_recovery: bool) {
    let dir = scratch("chain");
    let events = history();

    // ---- incarnation 1: run the history by hand, freeze a black box --
    let mut db = RhDb::with_stable_log(strategy, DbConfig::default(), open_real(&dir));
    assert!(db.has_flight_recorder(), "file-backed engines auto-attach the recorder");
    let mut ids: BTreeMap<Label, TxnId> = BTreeMap::new();
    for ev in &events {
        match ev {
            Event::Begin(l) => {
                ids.insert(*l, db.begin().unwrap());
            }
            Event::Write(l, ob, v) => db.write(ids[l], *ob, *v).unwrap(),
            Event::Delegate(tor, tee, obs) => db.delegate(ids[tor], ids[tee], obs).unwrap(),
            Event::Commit(l) => db.commit(ids[l]).unwrap(),
            Event::Crash => break,
            other => unreachable!("history has no {other:?}"),
        }
    }

    let predicted: Vec<(TxnId, TxnId)> = oracle_predicted_chain(&events, X)
        .into_iter()
        .map(|(tor, tee)| (ids[&tor], ids[&tee]))
        .collect();
    assert_eq!(predicted.len(), 2, "the history delegates X twice");
    let live_chain = db.provenance(X);
    assert_eq!(
        live_chain.iter().map(|h| (h.from, h.to)).collect::<Vec<_>>(),
        predicted,
        "live chain must match the oracle"
    );
    assert!(db.record_blackbox("pre-crash"), "the freeze must land");
    let (stable, _disk) = db.crash();
    drop(stable);

    let oracle = Oracle::run(&events);
    assert_eq!(oracle.value(X), 20, "delegated update committed by the tee survives");
    assert_eq!(oracle.value(SPARE), 0, "the loser's poison is undone");

    // ---- incarnation 2: the recovery itself dies after a few bytes ---
    if crash_mid_recovery {
        let injector = FaultInjector::crash_after_bytes(8);
        let stable = StableLog::open_file_with(
            Arc::new(FaultIo::std(Arc::clone(&injector))),
            FileLogConfig::new(&dir).segment_bytes(SEGMENT_BYTES),
        )
        .expect("attach before any write");
        let died = RhDb::recover(strategy, DbConfig::default(), stable, Disk::new());
        assert!(died.is_err(), "recovery must die mid-flight (loser termination writes)");
        assert!(injector.crashed());
    }

    // ---- incarnation 3: real I/O; recovery completes -----------------
    let mut db =
        RhDb::recover(strategy, DbConfig::default(), open_real(&dir), Disk::new()).unwrap();
    assert_eq!(db.value_of(X).unwrap(), oracle.value(X));
    assert_eq!(db.value_of(SPARE).unwrap(), oracle.value(SPARE));

    // The rebuilt chain is byte-identical to the pre-crash one — same
    // transactions, same delegate-record LSNs — and matches the oracle.
    let recovered_chain = db.provenance(X);
    assert_eq!(recovered_chain, live_chain, "forward pass must rebuild the exact chain");
    assert_eq!(recovered_chain.iter().map(|h| (h.from, h.to)).collect::<Vec<_>>(), predicted,);
    assert!(db.provenance(SPARE).is_empty(), "never-delegated objects have empty chains");

    // The postmortem names the predecessor's last record and final spans.
    let pm = db.postmortem().expect("a predecessor black box exists");
    let pred = pm.get("predecessor").expect("predecessor section");
    assert_eq!(pred.get("reason").and_then(JsonValue::as_str), Some("pre-crash"));
    let spans = pred.get("final_spans").and_then(JsonValue::as_arr).expect("final spans");
    assert!(!spans.is_empty(), "the predecessor recorded trace events");
    let report = db.last_recovery().expect("recovered engines carry a report");
    assert!(report.postmortem.is_some(), "the report carries the same diff");

    // The new incarnation froze its own "recovery" record on the way up.
    assert_eq!(db.stats().counter(rh_obs::names::M_BLACKBOX_RECORDS), 1);

    // ---- live introspection over TCP ---------------------------------
    let addr = db.serve_introspection("127.0.0.1:0").expect("bind");
    let pm_wire = http_get(addr, "/postmortem");
    assert_eq!(
        pm_wire.get("predecessor").and_then(|p| p.get("reason")).and_then(JsonValue::as_str),
        Some("pre-crash"),
        "postmortem served over the wire"
    );
    let chain_wire = http_get(addr, &format!("/provenance/{}", X.raw()));
    let hops = chain_wire.as_arr().expect("chain array");
    assert_eq!(hops.len(), predicted.len());
    for (hop, (from, to)) in hops.iter().zip(&predicted) {
        assert_eq!(hop.get("from").and_then(JsonValue::as_u64), Some(from.raw()));
        assert_eq!(hop.get("to").and_then(JsonValue::as_u64), Some(to.raw()));
    }
    db.stop_introspection();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rh_chain_survives_crashed_recovery() {
    chain_survives_crashed_recovery(Strategy::Rh, true);
}

#[test]
fn lazy_chain_survives_crash() {
    chain_survives_crashed_recovery(Strategy::LazyRewrite, false);
}
