//! Property-based equivalence: every engine must compute exactly the
//! database states the paper's §2.1 semantics (the [`Oracle`]) prescribe,
//! for arbitrary valid histories — delegation chains, delegate-backs,
//! re-updates after delegation, interleaved increments, aborts, crashes,
//! and checkpoints included.

use proptest::prelude::*;
use rh_core::eager::EagerDb;
use rh_core::engine::{DbConfig, RhDb, Strategy as EngineStrategy};
use rh_core::history::synth::{sanitize, RawStep, SynthOpts};
use rh_core::history::{assert_engine_matches_oracle, Event};

fn raw_steps() -> impl Strategy<Value = Vec<RawStep>> {
    proptest::collection::vec(any::<(u8, u8, u8, i8)>(), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn rh_matches_oracle(raw in raw_steps()) {
        let events = sanitize(&raw, SynthOpts::default());
        let db = assert_engine_matches_oracle(RhDb::new(EngineStrategy::Rh), &events);
        // The volatile scope tables must satisfy their invariants at any
        // stopping point (active transactions included).
        db.validate_scope_invariants();
    }

    #[test]
    fn rh_matches_oracle_with_trailing_crash(raw in raw_steps()) {
        let mut events = sanitize(&raw, SynthOpts::default());
        events.push(Event::Crash);
        assert_engine_matches_oracle(RhDb::new(EngineStrategy::Rh), &events);
    }

    #[test]
    fn rh_tiny_pool_matches_oracle(raw in raw_steps()) {
        // A one-page pool maximizes steals, so recovery must undo values
        // that reached disk before commit.
        let mut events = sanitize(&raw, SynthOpts::default());
        events.push(Event::Crash);
        let db = RhDb::with_config(EngineStrategy::Rh, DbConfig { pool_pages: 1 });
        assert_engine_matches_oracle(db, &events);
    }

    #[test]
    fn lazy_matches_oracle(raw in raw_steps()) {
        let mut events = sanitize(&raw, SynthOpts::default());
        events.push(Event::Crash);
        assert_engine_matches_oracle(RhDb::new(EngineStrategy::LazyRewrite), &events);
    }

    #[test]
    fn eager_matches_oracle(raw in raw_steps()) {
        // The eager engine has no checkpoints; crashes are allowed.
        let opts = SynthOpts { allow_checkpoint: false, ..SynthOpts::default() };
        let mut events = sanitize(&raw, opts);
        events.push(Event::Crash);
        assert_engine_matches_oracle(EagerDb::new(), &events);
    }

    #[test]
    fn rh_and_eager_agree_with_each_other(raw in raw_steps()) {
        // Engines are also pairwise equivalent (transitively via the
        // oracle, but asserting directly gives better counterexamples).
        let opts = SynthOpts { allow_checkpoint: false, ..SynthOpts::default() };
        let events = sanitize(&raw, opts);
        use rh_core::history::replay_engine;
        use rh_core::TxnEngine;
        let mut a = replay_engine(RhDb::new(EngineStrategy::Rh), &events).unwrap();
        let mut b = replay_engine(EagerDb::new(), &events).unwrap();
        let oracle = rh_core::Oracle::run(&events);
        for ob in oracle.touched() {
            prop_assert_eq!(a.value_of(ob).unwrap(), b.value_of(ob).unwrap());
        }
    }

    #[test]
    fn rh_never_rewrites_regardless_of_history(raw in raw_steps()) {
        let mut events = sanitize(&raw, SynthOpts::default());
        events.push(Event::Crash);
        let db = assert_engine_matches_oracle(RhDb::new(EngineStrategy::Rh), &events);
        prop_assert_eq!(db.log().metrics().snapshot().in_place_rewrites, 0);
    }

    #[test]
    fn double_crash_is_idempotent(raw in raw_steps()) {
        let mut events = sanitize(&raw, SynthOpts::default());
        events.push(Event::Crash);
        events.push(Event::Crash);
        assert_engine_matches_oracle(RhDb::new(EngineStrategy::Rh), &events);
    }
}
