//! Property tests for the Fig. 8 cluster walk.
//!
//! The precise law: the set of log positions the walk visits equals the
//! union of the scopes' LSN intervals **merged by overlap** (a cluster is
//! a maximal set of overlapping scopes, and within a cluster every
//! position between its extremes is examined; between clusters, none).
//! Plus the paper's efficiency invariants: strictly decreasing positions,
//! each visited at most once, cluster count = number of merged intervals.

use proptest::prelude::*;
use rh_common::{Lsn, ObjectId, TxnId};
use rh_core::recovery::clusters::{ClusterWalk, WalkScope};
use rh_core::Scope;
use std::collections::BTreeSet;

fn scope_strategy() -> impl Strategy<Value = WalkScope> {
    (0u64..6, 0u64..4, 0u64..120, 0u64..12, any::<bool>()).prop_map(
        |(invoker, ob, first, len, loser)| WalkScope {
            owner: TxnId(100 + invoker), // owner distinct from invokers
            ob: ObjectId(ob),
            scope: Scope { invoker: TxnId(invoker), first: Lsn(first), last: Lsn(first + len) },
            loser,
        },
    )
}

/// Reference implementation: merge intervals that overlap (share at
/// least one position), then enumerate every covered position.
fn merged_positions(scopes: &[WalkScope]) -> (BTreeSet<u64>, usize) {
    let mut intervals: Vec<(u64, u64)> =
        scopes.iter().map(|ws| (ws.scope.first.raw(), ws.scope.last.raw())).collect();
    intervals.sort();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (lo, hi) in intervals {
        match merged.last_mut() {
            Some((_, mhi)) if lo <= *mhi => *mhi = (*mhi).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    let mut positions = BTreeSet::new();
    for &(lo, hi) in &merged {
        positions.extend(lo..=hi);
    }
    (positions, merged.len())
}

proptest! {
    #[test]
    fn visited_set_is_the_merged_interval_union(scopes in proptest::collection::vec(scope_strategy(), 0..25)) {
        let (expected, expected_clusters) = merged_positions(&scopes);
        let mut walk = ClusterWalk::new(scopes);
        let mut visited = BTreeSet::new();
        let mut prev: Option<u64> = None;
        while let Some(k) = walk.next_position() {
            // Strictly decreasing — hence each position at most once.
            if let Some(p) = prev {
                prop_assert!(k.raw() < p, "position {k} not below previous {p}");
            }
            prev = Some(k.raw());
            visited.insert(k.raw());
            walk.finish_position();
        }
        prop_assert_eq!(&visited, &expected);
        prop_assert_eq!(walk.visited as usize, expected.len());
        prop_assert_eq!(walk.clusters as usize, expected_clusters);
    }

    #[test]
    fn covering_matches_brute_force(
        scopes in proptest::collection::vec(scope_strategy(), 1..15),
        queries in proptest::collection::vec((0u64..6, 0u64..4, 0u64..135), 1..40),
    ) {
        // Drive the walk and, at each position, compare `covering` for a
        // set of (txn, ob) probes against a brute-force scan of the
        // scopes that are "live" at that position (entered and not yet
        // exited — i.e. simply: interval covers the position).
        let all = scopes.clone();
        let mut walk = ClusterWalk::new(scopes);
        while let Some(k) = walk.next_position() {
            for &(t, ob, _) in &queries {
                let got = walk.covering(TxnId(t), ObjectId(ob), k);
                let want = all.iter().find(|ws| {
                    ws.scope.invoker == TxnId(t) && ws.ob == ObjectId(ob) && ws.scope.covers(k)
                });
                prop_assert_eq!(got.is_some(), want.is_some(),
                    "covering mismatch at {} for t{} ob{}", k, t, ob);
            }
            walk.finish_position();
        }
    }
}
