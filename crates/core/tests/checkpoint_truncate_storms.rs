//! Long-running endurance loop: many rounds of delegation work with
//! checkpoints, log truncation, savepoints, and a crash per round —
//! verifying that the log stays bounded and the cumulative state stays
//! exactly right across incarnations.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rh_common::ObjectId;
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;

const COUNTERS: u64 = 16;

#[test]
fn twenty_rounds_of_checkpointed_crashes() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let mut db = RhDb::new(Strategy::Rh);
    // Shadow of the *committed* state only.
    let mut shadow = vec![0i64; COUNTERS as usize];

    for round in 0..20 {
        // Committed delegated work.
        for _ in 0..10 {
            let worker = db.begin().unwrap();
            let publisher = db.begin().unwrap();
            let ob = rng.random_range(0..COUNTERS);
            let delta = rng.random_range(1..50);
            db.add(worker, ObjectId(ob), delta).unwrap();
            db.delegate(worker, publisher, &[ObjectId(ob)]).unwrap();
            if rng.random_bool(0.5) {
                db.abort(worker).unwrap(); // irrelevant to the delta
            } else {
                db.commit(worker).unwrap();
            }
            if rng.random_bool(0.8) {
                db.commit(publisher).unwrap();
                shadow[ob as usize] += delta;
            } else {
                db.abort(publisher).unwrap();
            }
        }

        // A savepoint user that keeps only its pre-savepoint half.
        let t = db.begin().unwrap();
        let ob = rng.random_range(0..COUNTERS);
        db.add(t, ObjectId(ob), 7).unwrap();
        let sp = db.savepoint(t).unwrap();
        db.add(t, ObjectId(ob), 1000).unwrap();
        db.rollback_to(t, sp).unwrap();
        db.commit(t).unwrap();
        shadow[ob as usize] += 7;

        // Checkpoint + truncation keep the log from growing unboundedly.
        db.checkpoint().unwrap();
        db.truncate_log().unwrap();
        let live = db.log().len() as u64 - db.log().first_lsn().raw();
        assert!(live < 50, "round {round}: live log grew to {live} records");

        // In-flight losers, then the crash.
        for _ in 0..3 {
            let loser = db.begin().unwrap();
            let ob = rng.random_range(0..COUNTERS);
            db.add(loser, ObjectId(ob), 999).unwrap();
        }
        db.log().flush_all().unwrap();
        db = db.crash_and_recover().unwrap();

        for (i, &want) in shadow.iter().enumerate() {
            let got = db.value_of(ObjectId(i as u64)).unwrap();
            assert_eq!(got, want, "round {round}: counter {i} drifted");
        }
        db.validate_scope_invariants();
    }
}

#[test]
fn truncation_point_never_exceeds_live_state() {
    // At any moment, first_lsn must not pass the oldest record that a
    // live scope or active transaction still needs.
    let mut db = RhDb::new(Strategy::Rh);
    let holder = db.begin().unwrap();
    let feeder = db.begin().unwrap();
    db.add(feeder, ObjectId(0), 1).unwrap(); // lsn 2: pinned forever by holder
    db.delegate(feeder, holder, &[ObjectId(0)]).unwrap();
    db.commit(feeder).unwrap();
    for round in 0..10 {
        for _ in 0..20 {
            let t = db.begin().unwrap();
            db.add(t, ObjectId(100 + round), 1).unwrap();
            db.commit(t).unwrap();
        }
        db.checkpoint().unwrap();
        db.truncate_log().unwrap();
        assert!(db.log().first_lsn().raw() <= 2, "round {round}: truncated past the pinned scope");
    }
    // Release the pin: the next checkpoint+truncate can advance.
    db.abort(holder).unwrap();
    db.checkpoint().unwrap();
    db.truncate_log().unwrap();
    assert!(db.log().first_lsn().raw() > 2);
    let mut db = db.crash_and_recover().unwrap();
    assert_eq!(db.value_of(ObjectId(0)).unwrap(), 0); // holder aborted
}
