//! Byte-level crash injection against the file-backed WAL.
//!
//! The harness runs a fixed transactional script over a
//! [`SegmentedFileLog`] whose I/O layer dies after a configurable number
//! of written bytes: the boundary write is torn mid-byte, later writes
//! silently vanish, later fsyncs fail. The crash point is swept across
//! the whole byte stream — including every byte of the first frame's
//! header — and after each crash the directory is reopened with real I/O
//! and recovered onto a **fresh** disk. Two invariants must hold at every
//! single offset:
//!
//! 1. **No committed-transaction loss** — every write of a transaction
//!    whose `commit()` returned `Ok` before the crash reads back exactly.
//! 2. **No resurrected losers** — no object ever carries a poison value
//!    written only by transactions that never (successfully) committed,
//!    even though their records may sit flushed in the log.
//!
//! The disk being fresh makes the claim sharp: durability of committed
//! work is carried *entirely* by the WAL frames that survived the crash.
//!
//! The script also freezes flight-recorder (black-box) records through
//! the **same** fault-injected I/O layer, so the byte sweep cuts the
//! sidecar stream too: a torn black-box tail must truncate cleanly on
//! reopen and must never fail recovery of the main log (invariant 3).

use rh_common::ops::Value;
use rh_common::ObjectId;
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::TxnEngine;
use rh_obs::BlackBoxRecord;
use rh_storage::Disk;
use rh_wal::sidecar::SidecarLog;
use rh_wal::{FaultInjector, FaultIo, FileLogConfig, StableLog};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Value no committed write ever uses; only losers write it.
const POISON: Value = -9999;
/// Small segments so the script spans several files and the crash sweep
/// also hits segment rolls and the frames around them.
const SEGMENT_BYTES: u64 = 512;
const ROUNDS: u64 = 8;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-crashinj-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_faulty(dir: &PathBuf, injector: &Arc<FaultInjector>) -> Arc<StableLog> {
    StableLog::open_file_with(
        Arc::new(FaultIo::std(Arc::clone(injector))),
        FileLogConfig::new(dir).segment_bytes(SEGMENT_BYTES),
    )
    .expect("pre-crash open cannot fail")
}

/// Runs the deterministic script until an operation fails (the simulated
/// machine died) or the script ends. Returns the values acknowledged as
/// committed — recorded only *after* `commit()` returned `Ok` — and the
/// objects losers poisoned.
fn run_script(db: &mut RhDb) -> (BTreeMap<ObjectId, Value>, Vec<ObjectId>) {
    let mut acked = BTreeMap::new();
    let mut poisoned = Vec::new();
    // Any error = crash; the macro exits the script like the machine did.
    macro_rules! or_die {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(_) => return (acked, poisoned),
            }
        };
    }
    for r in 0..ROUNDS {
        // Committer: one hot object (contended across rounds) and one
        // private object, then commit (forces the log).
        let hot = ObjectId(r % 4);
        let cold = ObjectId(100 + r);
        let hot_val = 1000 + r as Value;
        let cold_val = 5000 + r as Value;
        let t = or_die!(db.begin());
        or_die!(db.write(t, hot, hot_val));
        or_die!(db.write(t, cold, cold_val));
        or_die!(db.commit(t));
        acked.insert(hot, hot_val);
        acked.insert(cold, cold_val);

        // Loser: overwrites this round's committed object with poison and
        // touches a private one, then stays active forever. Its records
        // reach the log when later commits force the (prefix) tail, so
        // recovery must actively undo them, not merely never see them.
        if r % 2 == 0 {
            let t = or_die!(db.begin());
            or_die!(db.write(t, cold, POISON));
            or_die!(db.add(t, ObjectId(40 + r), POISON));
            poisoned.push(cold);
            poisoned.push(ObjectId(40 + r));
        }

        // Freeze a black box most rounds: its sidecar frames go through
        // the same fault-injected I/O, so the byte sweep also lands
        // inside (and tears) flight-recorder records. Best-effort by
        // contract — post-crash freezes simply report false.
        if r % 2 == 1 {
            let _ = db.record_blackbox("sweep-round");
        }

        // One delegation round: the update travels tor -> tee and commits
        // as the tee's, putting delegate records among the frames.
        if r == 3 {
            let ob = ObjectId(77);
            let tor = or_die!(db.begin());
            let tee = or_die!(db.begin());
            or_die!(db.write(tor, ob, 4242));
            or_die!(db.delegate(tor, tee, &[ob]));
            or_die!(db.commit(tee));
            acked.insert(ob, 4242);
            or_die!(db.commit(tor));
        }
    }
    (acked, poisoned)
}

/// Total segment bytes a clean (crash-free) run writes; the faulty runs
/// replay the identical deterministic script, so this measures the byte
/// stream the crash sweep cuts.
fn clean_run_total_bytes() -> u64 {
    let dir = scratch("clean");
    let injector = FaultInjector::unlimited();
    let mut db =
        RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), open_faulty(&dir, &injector));
    let (acked, _) = run_script(&mut db);
    // 4 hot objects (rewritten each round), one cold per round, and the
    // delegated object.
    assert_eq!(acked.len() as u64, 4 + ROUNDS + 1, "clean run must ack everything");
    let total: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.path().extension().is_some_and(|x| x == "seg"))
        .map(|e| e.metadata().unwrap().len())
        .sum();
    std::fs::remove_dir_all(&dir).unwrap();
    total
}

#[test]
fn crash_at_any_byte_offset_loses_no_committed_work_and_resurrects_no_loser() {
    let total = clean_run_total_bytes();
    assert!(total > 200, "script too small to sweep: {total} bytes");

    // Every byte of the first frame's header and early payload, plus an
    // even sweep across the rest of the stream (frame interiors, frame
    // boundaries, segment rolls — wherever they land).
    let mut offsets: Vec<u64> = (0..16).collect();
    offsets.extend((1..=32).map(|i| i * total / 33));
    offsets.sort_unstable();
    offsets.dedup();
    assert!(offsets.len() >= 32, "need >= 32 crash offsets, have {}", offsets.len());

    for &offset in &offsets {
        let dir = scratch("sweep");
        let injector = FaultInjector::crash_after_bytes(offset);
        let mut db =
            RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), open_faulty(&dir, &injector));
        let (acked, poisoned) = run_script(&mut db);
        assert!(injector.crashed(), "offset {offset} of {total} did not crash");
        drop(db); // the dead process's memory is gone

        // Reopen with *real* I/O (the next incarnation's filesystem) and
        // recover onto a fresh disk: everything must come from the WAL.
        let stable = StableLog::open_file(FileLogConfig::new(&dir).segment_bytes(SEGMENT_BYTES))
            .unwrap_or_else(|e| panic!("offset {offset}: reopen failed: {e:?}"));
        let mut db = RhDb::recover(Strategy::Rh, DbConfig::default(), stable, Disk::new())
            .unwrap_or_else(|e| panic!("offset {offset}: recovery failed: {e:?}"));

        for (&ob, &val) in &acked {
            let got = db.value_of(ob).unwrap();
            assert_eq!(got, val, "offset {offset}: committed {ob:?}={val} lost (read {got})");
        }
        for &ob in &poisoned {
            if acked.contains_key(&ob) {
                continue; // already checked, and stronger
            }
            let got = db.value_of(ob).unwrap();
            assert_ne!(got, POISON, "offset {offset}: loser write resurrected on {ob:?}");
        }

        // Invariant 3: whatever the sweep did to the black-box stream —
        // torn tail, vanished records, nothing at all — it reopens
        // cleanly and every retained record parses. (Recovery already
        // succeeded above despite it, which is the stronger half.)
        let obs_dir = SidecarLog::dir_for(&dir);
        if obs_dir.is_dir() {
            let sidecar = SidecarLog::open(obs_dir)
                .unwrap_or_else(|e| panic!("offset {offset}: sidecar reopen failed: {e:?}"));
            let horizon = sidecar.next_seq();
            for seq in horizon - sidecar.len()..horizon {
                let payload = sidecar.read(seq).unwrap();
                assert!(
                    BlackBoxRecord::parse(&payload).is_some(),
                    "offset {offset}: retained black-box record {seq} is corrupt"
                );
            }
        }

        // The recovered engine is live: new work commits and survives a
        // second (clean) restart.
        let t = db.begin().unwrap();
        db.write(t, ObjectId(7), 31337).unwrap();
        db.commit(t).unwrap();
        let (stable, _disk) = db.crash();
        drop(stable);
        let stable =
            StableLog::open_file(FileLogConfig::new(&dir).segment_bytes(SEGMENT_BYTES)).unwrap();
        let mut db = RhDb::recover(Strategy::Rh, DbConfig::default(), stable, Disk::new()).unwrap();
        assert_eq!(db.value_of(ObjectId(7)).unwrap(), 31337, "offset {offset}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn dropped_fsyncs_are_what_makes_unacked_commits_possible() {
    // Negative control for the group-commit path: with fsyncs silently
    // swallowed, the log still *believes* everything flushed — proving
    // the injector's sync accounting observes the real sync calls the
    // durable path issues.
    let dir = scratch("dropsync");
    let injector = FaultInjector::unlimited();
    injector.set_drop_syncs(true);
    let mut db =
        RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), open_faulty(&dir, &injector));
    let t = db.begin().unwrap();
    db.write(t, ObjectId(0), 1).unwrap();
    db.commit(t).unwrap();
    assert!(injector.dropped_syncs() > 0, "commit must have tried to fsync");
    assert_eq!(injector.real_syncs(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_blackbox_tail_never_fails_main_log_recovery() {
    // A damaged black box must cost at most the postmortem, never the
    // database. Freeze two records, chop the sidecar tail mid-frame,
    // recover: the main log must come back whole and the postmortem must
    // fall back to the newest *intact* record; chop the stream down to
    // nothing and recovery must still succeed with no postmortem at all.
    let dir = scratch("tornbb");
    let stable =
        StableLog::open_file(FileLogConfig::new(&dir).segment_bytes(SEGMENT_BYTES)).expect("open");
    let mut db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
    let t = db.begin().unwrap();
    db.write(t, ObjectId(0), 77).unwrap();
    db.commit(t).unwrap();
    assert!(db.record_blackbox("first-freeze"));
    assert!(db.record_blackbox("second-freeze"));
    let (stable, _disk) = db.crash();
    drop(stable);

    // Chop the newest sidecar segment a few bytes short: the second
    // record's frame is torn exactly as a mid-write crash would leave it.
    let obs_dir = SidecarLog::dir_for(&dir);
    let newest = std::fs::read_dir(&obs_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .max()
        .expect("sidecar segment");
    let len = newest.metadata().unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&newest).unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    let stable = StableLog::open_file(FileLogConfig::new(&dir).segment_bytes(SEGMENT_BYTES))
        .expect("reopen");
    let mut db =
        RhDb::recover(Strategy::Rh, DbConfig::default(), stable, Disk::new()).expect("recover");
    assert_eq!(db.value_of(ObjectId(0)).unwrap(), 77, "main log must be unaffected");
    let pm = db.postmortem().expect("intact first record still serves a postmortem");
    assert_eq!(
        pm.get("predecessor").and_then(|p| p.get("reason")).and_then(rh_obs::JsonValue::as_str),
        Some("first-freeze"),
        "postmortem falls back past the torn tail"
    );
    let (stable, _disk) = db.crash();
    drop(stable);

    // Total black-box loss: nuke the whole stream (plus the record the
    // recovery above just froze); the database must not care.
    std::fs::remove_dir_all(&obs_dir).unwrap();
    let stable = StableLog::open_file(FileLogConfig::new(&dir).segment_bytes(SEGMENT_BYTES))
        .expect("reopen");
    let mut db =
        RhDb::recover(Strategy::Rh, DbConfig::default(), stable, Disk::new()).expect("recover");
    assert_eq!(db.value_of(ObjectId(0)).unwrap(), 77);
    assert!(db.postmortem().is_none(), "no black box, no postmortem, no error");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpointed_file_log_recovers_with_surviving_disk() {
    // The master record path end-to-end on real files: checkpoint, more
    // work, hard restart. The disk Arc survives (as in the in-memory
    // crash tests) because redo starts at the checkpoint.
    let dir = scratch("ckpt");
    let stable = StableLog::open_dir(&dir).unwrap();
    let mut db = RhDb::with_stable_log(Strategy::Rh, DbConfig::default(), stable);
    let t = db.begin().unwrap();
    db.write(t, ObjectId(0), 11).unwrap();
    db.commit(t).unwrap();
    db.checkpoint().unwrap();
    let t = db.begin().unwrap();
    db.write(t, ObjectId(1), 22).unwrap();
    db.commit(t).unwrap();
    let (_stable, disk) = db.crash();

    let stable = StableLog::open_dir(&dir).unwrap();
    assert!(!stable.master().is_null(), "checkpoint must persist the master record");
    let mut db = RhDb::recover(Strategy::Rh, DbConfig::default(), stable, disk).unwrap();
    assert_eq!(db.value_of(ObjectId(0)).unwrap(), 11);
    assert_eq!(db.value_of(ObjectId(1)).unwrap(), 22);
    std::fs::remove_dir_all(&dir).unwrap();
}
