//! Crashes *during* recovery, simulated faithfully: a first recovery
//! attempt runs the real forward pass and then undoes only part of the
//! loser scopes (as if the machine died mid-backward-pass, after some
//! CLRs were forced), writes no abort/end records, and "crashes". The
//! second, completing recovery must finish the rollback exactly once —
//! the §4.1 correctness argument's "crashes during recovery" case.

use rh_common::ObjectId;
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::history::{replay_engine, Event, Oracle};
use rh_core::recovery::{forward_pass, undo_scopes, WalkScope};
use rh_core::TxnEngine;
use rh_storage::BufferPool;
use rh_wal::LogManager;
use rh_workload::{delegation_mix, WorkloadSpec};
use std::sync::Arc;

/// Replays `events`, crashes, runs a *partial* recovery that undoes only
/// `keep_fraction` of the loser scopes (CLRs flushed), crashes again, and
/// completes recovery. Returns the final engine.
fn crash_partial_recover_crash_recover(events: &[Event], keep_nth: usize) -> RhDb {
    let engine = replay_engine(RhDb::new(Strategy::Rh), events).expect("replay");
    engine.log().flush_all().unwrap();
    let (stable, disk) = engine.crash();

    // ---- interrupted recovery attempt --------------------------------
    {
        let log = LogManager::attach(Arc::clone(&stable));
        let mut pool = BufferPool::new(Arc::clone(&disk), 64);
        let obs = rh_obs::Obs::new();
        let fwd = forward_pass(&log, &mut pool, false, &obs).expect("forward");
        let mut tr = fwd.tr;
        let losers = tr.losers();
        // Only every keep_nth-th loser scope gets undone before the
        // "crash" — an arbitrary prefix-ish subset of the backward work.
        let mut scopes: Vec<WalkScope> = Vec::new();
        for &t in &losers {
            for (ob, scope) in tr.get(t).unwrap().ob_list.all_scopes() {
                scopes.push(WalkScope { owner: t, ob, scope, loser: true });
            }
        }
        let partial: Vec<WalkScope> = scopes
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % keep_nth == 0)
            .map(|(_, s)| s)
            .collect();
        let mut compensated = fwd.compensated;
        undo_scopes(&log, &mut pool, &mut tr, partial, &mut compensated, false, &obs)
            .expect("partial undo");
        // The CLRs written so far are forced... and then the machine dies
        // before any abort/end record is appended.
        log.flush_all().unwrap();
        // Some dirty pages may or may not have been stolen; flush half
        // the state to make the disk image messier.
        pool.flush_all(&log).unwrap();
        // drop(log), drop(pool): the second crash.
    }

    // ---- the completing recovery ---------------------------------------
    RhDb::recover(Strategy::Rh, DbConfig::default(), stable, disk).expect("final recovery")
}

fn check(events: &[Event], keep_nth: usize) {
    let mut expected_events = events.to_vec();
    expected_events.push(Event::Crash);
    let oracle = Oracle::run(&expected_events);
    let mut engine = crash_partial_recover_crash_recover(events, keep_nth);
    for ob in oracle.touched() {
        assert_eq!(
            engine.value_of(ob).unwrap(),
            oracle.value(ob),
            "divergence on {ob} (keep_nth={keep_nth})"
        );
    }
    // And a third recovery is a no-op.
    let engine = engine.crash_and_recover().unwrap();
    assert_eq!(engine.last_recovery().unwrap().undo.undone, 0);
}

fn workload(seed: u64) -> Vec<Event> {
    delegation_mix(&WorkloadSpec {
        txns: 30,
        updates_per_txn: 5,
        objects_per_txn: 2,
        delegation_rate: 0.6,
        chain_len: 2,
        straggler_rate: 0.4, // plenty of losers for the backward pass
        abort_rate: 0.1,
        seed,
        ..WorkloadSpec::default()
    })
}

#[test]
fn interrupted_after_half_the_undo_work() {
    for seed in 0..4 {
        check(&workload(seed), 2);
    }
}

#[test]
fn interrupted_after_a_third_of_the_undo_work() {
    for seed in 0..4 {
        check(&workload(seed), 3);
    }
}

#[test]
fn interrupted_with_all_clrs_but_no_terminal_records() {
    // keep_nth = 1: the full backward pass ran, but no abort/end records
    // were written. The completing recovery must only re-terminate.
    for seed in 0..4 {
        check(&workload(seed), 1);
    }
}

#[test]
fn scripted_delegation_chain_interrupted() {
    let events = vec![
        Event::Begin(0),
        Event::Begin(1),
        Event::Begin(2),
        Event::Add(0, ObjectId(0), 10),
        Event::Add(1, ObjectId(1), 20),
        Event::Delegate(0, 2, vec![ObjectId(0)]),
        Event::Delegate(1, 2, vec![ObjectId(1)]),
        Event::Commit(0),
        Event::Commit(1),
        // t2 (responsible for both) is the loser at the crash.
    ];
    check(&events, 2);
}
