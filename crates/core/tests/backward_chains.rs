//! Backward chains on the *live* engine (paper Fig. 4): every record a
//! transaction writes — updates, CLRs, the shared delegate record —
//! must be reachable by walking its BC from the `Tr_List` head, with
//! delegate records correctly branching between the delegator's and
//! delegatee's chains.

use rh_common::{Lsn, ObjectId};
use rh_core::engine::{RhDb, Strategy};
use rh_core::TxnEngine;
use rh_wal::chain::BackwardChainIter;
use rh_wal::record::RecordBody;

const A: ObjectId = ObjectId(0);
const B: ObjectId = ObjectId(1);

/// Walks a chain from the log's last record of `txn` backwards,
/// returning the visited LSNs. (The engine drops table entries at End,
/// so tests locate the head by scanning the log tail.)
fn chain_from_head(db: &RhDb, txn: rh_common::TxnId) -> Vec<u64> {
    // Find the most recent record on txn's chain: its End record.
    let log = db.log();
    let mut head = Lsn::NULL;
    let mut lsn = log.last_lsn();
    while !lsn.is_null() {
        let rec = log.read(lsn).unwrap();
        let on_chain =
            rec.txn == txn || matches!(&rec.body, RecordBody::Delegate { tee, .. } if *tee == txn);
        if on_chain {
            head = lsn;
            break;
        }
        lsn = lsn.prev();
    }
    BackwardChainIter::new(log, txn, head).map(|r| r.unwrap().lsn.raw()).collect()
}

#[test]
fn chains_partition_a_plain_history() {
    let mut db = RhDb::new(Strategy::Rh);
    let t1 = db.begin().unwrap(); // 0
    let t2 = db.begin().unwrap(); // 1
    db.add(t1, A, 1).unwrap(); // 2
    db.add(t2, B, 1).unwrap(); // 3
    db.add(t1, A, 1).unwrap(); // 4
    db.commit(t1).unwrap(); // 5 commit, 6 end
    db.commit(t2).unwrap(); // 7 commit, 8 end
    assert_eq!(chain_from_head(&db, t1), vec![6, 5, 4, 2, 0]);
    assert_eq!(chain_from_head(&db, t2), vec![8, 7, 3, 1]);
}

#[test]
fn delegate_record_sits_on_both_chains() {
    let mut db = RhDb::new(Strategy::Rh);
    let t1 = db.begin().unwrap(); // 0
    let t2 = db.begin().unwrap(); // 1
    db.add(t1, A, 1).unwrap(); // 2
    db.add(t2, B, 1).unwrap(); // 3
    db.delegate(t1, t2, &[A]).unwrap(); // 4 (on both chains)
    db.commit(t1).unwrap(); // 5, 6
    db.commit(t2).unwrap(); // 7, 8
    let c1 = chain_from_head(&db, t1);
    let c2 = chain_from_head(&db, t2);
    assert_eq!(c1, vec![6, 5, 4, 2, 0]);
    assert_eq!(c2, vec![8, 7, 4, 3, 1]);
    // The delegate record (4) appears on both; nothing else is shared.
    let shared: Vec<u64> = c1.iter().filter(|l| c2.contains(l)).copied().collect();
    assert_eq!(shared, vec![4]);
}

#[test]
fn clrs_chain_onto_the_responsible_transaction() {
    // t1 invokes, delegates to t2; t2 aborts. The CLR compensating t1's
    // update must sit on *t2's* chain (the rollback is t2's).
    let mut db = RhDb::new(Strategy::Rh);
    let t1 = db.begin().unwrap(); // 0
    let t2 = db.begin().unwrap(); // 1
    db.add(t1, A, 5).unwrap(); // 2
    db.delegate(t1, t2, &[A]).unwrap(); // 3
    db.commit(t1).unwrap(); // 4, 5
    db.abort(t2).unwrap(); // 6 CLR, 7 abort, 8 end
    let c2 = chain_from_head(&db, t2);
    assert_eq!(c2, vec![8, 7, 6, 3, 1]);
    let clr = db.log().read(Lsn(6)).unwrap();
    assert_eq!(clr.txn, t2);
    assert!(matches!(clr.body, RecordBody::Clr { compensated, .. } if compensated == Lsn(2)));
}

#[test]
fn chains_stay_walkable_after_recovery() {
    let mut db = RhDb::new(Strategy::Rh);
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    db.add(t1, A, 5).unwrap();
    db.delegate(t1, t2, &[A]).unwrap();
    db.commit(t1).unwrap();
    db.log().flush_all().unwrap();
    let db = db.crash_and_recover().unwrap(); // t2 a loser: CLR+abort+end
                                              // Walk every transaction's chain in the post-recovery log; each walk
                                              // must terminate (no cycles, no dangling pointers) and stay within
                                              // the log.
    let log = db.log();
    let mut heads: std::collections::HashMap<rh_common::TxnId, Lsn> =
        std::collections::HashMap::new();
    let mut lsn = Lsn::FIRST;
    while lsn < log.curr_lsn() {
        let rec = log.read(lsn).unwrap();
        if !rec.txn.is_none() {
            heads.insert(rec.txn, lsn);
            if let RecordBody::Delegate { tee, .. } = rec.body {
                heads.insert(tee, lsn);
            }
        }
        lsn = lsn.next();
    }
    for (txn, head) in heads {
        let visited: Vec<u64> =
            BackwardChainIter::new(log, txn, head).map(|r| r.unwrap().lsn.raw()).collect();
        assert!(!visited.is_empty());
        // Strictly decreasing: acyclic by construction.
        for w in visited.windows(2) {
            assert!(w[0] > w[1], "chain of {txn} not strictly decreasing: {visited:?}");
        }
    }
}
