//! Cross-shard two-phase commit: protocol, fault-injected crash edges,
//! in-doubt resolution, and cross-shard provenance survival.
//!
//! The fault hooks stop the commit protocol *between* its durability
//! points, leaving exactly the stable state a kill-9 at that instant
//! would leave; `crash_and_recover` then checks that sharded recovery
//! resolves the outcome the protocol had (or had not yet) decided.

use rh_common::ObjectId;
use rh_core::sharded::{ShardedDb, TwoPcFault};
use rh_core::{Strategy, TxnEngine};

/// Objects 0 and 1 land on shards 0 and 1 under shift 0.
const OB_A: ObjectId = ObjectId(0);
const OB_B: ObjectId = ObjectId(1);

fn both_strategies(case: impl Fn(Strategy)) {
    case(Strategy::Rh);
    case(Strategy::LazyRewrite);
}

fn counter(db: &ShardedDb, name: &str) -> u64 {
    db.stats().counter(name)
}

#[test]
fn cross_shard_commit_is_durable_and_counted() {
    both_strategies(|strategy| {
        let db = ShardedDb::new_mem(strategy, 2, 0);
        let t = db.begin().unwrap();
        db.write(t, OB_A, 7).unwrap();
        db.write(t, OB_B, 9).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.value_of(OB_A).unwrap(), 7);
        assert_eq!(db.value_of(OB_B).unwrap(), 9);
        assert_eq!(counter(&db, "shard.cross.txns"), 1);
        // One prepare: the coordinator (shard 0) never prepares.
        assert_eq!(counter(&db, "shard.twopc.prepares"), 1);
        assert_eq!(counter(&db, "shard.twopc.commits"), 1);

        // And it survives a clean crash (both shards' decisions were
        // forced before the commit acked).
        let db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(OB_A).unwrap(), 7);
        assert_eq!(db.value_of(OB_B).unwrap(), 9);
    });
}

#[test]
fn single_shard_transactions_skip_the_2pc_machinery() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let t = db.begin().unwrap();
    db.write(t, OB_A, 5).unwrap();
    db.add(t, ObjectId(2), 3).unwrap(); // also shard 0 under % 2
    db.commit(t).unwrap();
    assert_eq!(counter(&db, "shard.cross.txns"), 0);
    assert_eq!(counter(&db, "shard.twopc.prepares"), 0);
    assert_eq!(counter(&db, "shard.twopc.commits"), 0);
    let dump = db.shard_log(0).unwrap().clone();
    let mut lsn = dump.first_lsn();
    while lsn < dump.curr_lsn() {
        let rec = dump.read(lsn).unwrap();
        let kind = rec.body.kind();
        assert!(kind != "prepare" && kind != "coord-commit", "fast path wrote {kind}");
        lsn = lsn.next();
    }
}

#[test]
fn crash_between_prepare_and_coord_commit_presumes_abort() {
    both_strategies(|strategy| {
        let db = ShardedDb::new_mem(strategy, 2, 0);
        let t = db.begin().unwrap();
        db.write(t, OB_A, 11).unwrap();
        db.write(t, OB_B, 13).unwrap();
        // Shard 1 prepares; the coordinator record never lands. (The
        // coordinator, shard 0, never prepares — its updates stay an
        // ordinary loser until the decision record is durable.)
        db.inject_fault(TwoPcFault::AfterPrepare(0));
        assert!(db.commit(t).is_err());
        assert_eq!(db.in_doubt().len(), 1);

        let db = db.crash_and_recover().unwrap();
        // No decision record anywhere → presumed abort in both shards:
        // shard 0 as a plain loser, shard 1 via in-doubt resolution.
        assert_eq!(db.value_of(OB_A).unwrap(), 0);
        assert_eq!(db.value_of(OB_B).unwrap(), 0);
        assert!(db.in_doubt().is_empty());
        assert_eq!(counter(&db, "shard.indoubt.resolved"), 1);
        assert_eq!(counter(&db, "shard.indoubt.committed"), 0);
    });
}

#[test]
fn crash_after_coord_commit_commits_every_participant() {
    both_strategies(|strategy| {
        let db = ShardedDb::new_mem(strategy, 2, 0);
        let t = db.begin().unwrap();
        db.write(t, OB_A, 21).unwrap();
        db.write(t, OB_B, 23).unwrap();
        // The coordinator decision is durable; no participant has
        // written its lazy Commit record yet.
        db.inject_fault(TwoPcFault::AfterCoordCommit);
        assert!(db.commit(t).is_err());

        let db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(OB_A).unwrap(), 21);
        assert_eq!(db.value_of(OB_B).unwrap(), 23);
        assert!(db.in_doubt().is_empty());
        // Shard 0 (the coordinator) replays its own CoordCommit and is
        // never in doubt; shard 1 is resolved from the unioned decision.
        assert_eq!(counter(&db, "shard.indoubt.resolved"), 1);
        assert_eq!(counter(&db, "shard.indoubt.committed"), 1);
    });
}

#[test]
fn crash_mid_phase_two_commits_the_stragglers() {
    both_strategies(|strategy| {
        let db = ShardedDb::new_mem(strategy, 2, 0);
        let t = db.begin().unwrap();
        db.write(t, OB_A, 31).unwrap();
        db.write(t, OB_B, 33).unwrap();
        // The prepared participant (shard 1) resolved — its lazy Commit
        // record is appended but possibly unflushed — and the crash hits
        // before the commit acks. The coordinator's durable CoordCommit
        // must still decide shard 1's way on recovery.
        db.inject_fault(TwoPcFault::AfterResolve(0));
        assert!(db.commit(t).is_err());

        let db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(OB_A).unwrap(), 31);
        assert_eq!(db.value_of(OB_B).unwrap(), 33);
        assert!(db.in_doubt().is_empty());
    });
}

#[test]
fn cross_shard_delegation_commits_via_2pc_and_provenance_survives() {
    both_strategies(|strategy| {
        let db = ShardedDb::new_mem(strategy, 2, 0);
        let t1 = db.begin().unwrap();
        db.write(t1, OB_A, 41).unwrap();
        db.write(t1, OB_B, 43).unwrap();
        let t2 = db.begin().unwrap();
        // The paper's idiom, cross-shard: t2 takes responsibility for
        // t1's updates in BOTH shards, t1 aborts, t2 commits (2PC).
        db.delegate(t1, t2, &[OB_A, OB_B]).unwrap();
        db.abort(t1).unwrap();
        db.commit(t2).unwrap();
        assert_eq!(db.value_of(OB_A).unwrap(), 41);
        assert_eq!(db.value_of(OB_B).unwrap(), 43);
        assert_eq!(counter(&db, "shard.twopc.commits"), 1);

        // One hop per object, stitched by global ids: the same t1→t2
        // transfer reads identically from either shard's chain.
        for ob in [OB_A, OB_B] {
            let chain = db.provenance(ob);
            assert_eq!(chain.len(), 1, "{ob:?}");
            assert_eq!((chain[0].from, chain[0].to), (t1, t2));
        }

        let db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(OB_A).unwrap(), 41);
        assert_eq!(db.value_of(OB_B).unwrap(), 43);
        for ob in [OB_A, OB_B] {
            let chain = db.provenance(ob);
            assert_eq!(chain.len(), 1, "{ob:?} after recovery");
            assert_eq!((chain[0].from, chain[0].to), (t1, t2));
        }
    });
}

#[test]
fn failed_cross_shard_delegation_leaves_no_partial_transfer() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let t1 = db.begin().unwrap();
    db.write(t1, OB_A, 51).unwrap(); // responsible in shard 0 only
    let t2 = db.begin().unwrap();
    // OB_B was never touched by t1: the delegation must fail before
    // shard 0 transfers anything.
    assert!(db.delegate(t1, t2, &[OB_A, OB_B]).is_err());
    // t1 still owns its update: aborting t1 undoes it.
    db.abort(t1).unwrap();
    db.commit(t2).unwrap();
    assert_eq!(db.value_of(OB_A).unwrap(), 0);
}

#[test]
fn savepoint_covers_shards_joined_after_it() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let t = db.begin().unwrap();
    db.write(t, OB_A, 61).unwrap();
    let sp = db.savepoint(t).unwrap();
    db.write(t, OB_B, 63).unwrap(); // joins shard 1 *after* the savepoint
    db.rollback_to(t, sp).unwrap();
    db.commit(t).unwrap();
    assert_eq!(db.value_of(OB_A).unwrap(), 61);
    assert_eq!(db.value_of(OB_B).unwrap(), 0);
}

#[test]
fn indoubt_counter_is_present_even_when_zero() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let db = db.crash_and_recover().unwrap();
    let snap = db.stats();
    assert!(
        snap.counters.contains_key("shard.indoubt.resolved"),
        "crash-cycle CI greps for this counter; it must exist even at zero"
    );
    assert_eq!(snap.counter("shard.indoubt.resolved"), 0);
    assert_eq!(snap.counter("recovery.runs"), 2, "one recovery per shard, merge-summed");
}

#[test]
fn coordinator_checkpoint_does_not_erase_the_decision() {
    both_strategies(|strategy| {
        let db = ShardedDb::new_mem(strategy, 2, 0);
        let t = db.begin().unwrap();
        db.write(t, OB_A, 81).unwrap();
        db.write(t, OB_B, 83).unwrap();
        // Decision durable, participant Commit not yet written — then a
        // full checkpoint sweep moves every shard's recovery anchor past
        // the CoordCommit record. The decision must ride inside the
        // coordinator's snapshot, or shard 1's in-doubt transaction
        // would wrongly presume abort.
        db.inject_fault(TwoPcFault::AfterCoordCommit);
        assert!(db.commit(t).is_err());
        db.checkpoint_all().unwrap();

        let db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(OB_A).unwrap(), 81);
        assert_eq!(db.value_of(OB_B).unwrap(), 83);
        assert!(db.in_doubt().is_empty());
        assert_eq!(counter(&db, "shard.indoubt.resolved"), 1);
        assert_eq!(counter(&db, "shard.indoubt.committed"), 1);
    });
}

#[test]
fn crash_between_shard_checkpoints_keeps_the_commit() {
    both_strategies(|strategy| {
        let db = ShardedDb::new_mem(strategy, 2, 0);
        let t = db.begin().unwrap();
        db.write(t, OB_A, 91).unwrap();
        db.write(t, OB_B, 93).unwrap();
        db.commit(t).unwrap();
        // checkpoint_all dies between shard 0's checkpoint and shard
        // 1's: shard 0's anchor has advanced, shard 1's has not. The
        // flush-all-shards-first rule means shard 1's lazy Commit record
        // is already durable, so recovery sees no in-doubt state at all.
        db.inject_fault(TwoPcFault::AfterShardCheckpoint(0));
        assert!(db.checkpoint_all().is_err());

        let db = db.crash_and_recover().unwrap();
        assert_eq!(db.value_of(OB_A).unwrap(), 91);
        assert_eq!(db.value_of(OB_B).unwrap(), 93);
        assert!(db.in_doubt().is_empty());
    });
}

#[test]
fn resolved_decisions_are_retired_at_checkpoint() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let t = db.begin().unwrap();
    db.write(t, OB_A, 101).unwrap();
    db.write(t, OB_B, 103).unwrap();
    db.commit(t).unwrap();
    assert_eq!(counter(&db, "shard.twopc.retired"), 0);
    // The checkpoint forces every shard's log first, so the lazy Commit
    // record is durable and the decision stops riding in snapshots.
    db.checkpoint_all().unwrap();
    assert_eq!(counter(&db, "shard.twopc.retired"), 1);
    // Retiring must not have cost correctness: the transaction is long
    // decided and fully durable.
    let db = db.crash_and_recover().unwrap();
    assert_eq!(db.value_of(OB_A).unwrap(), 101);
    assert_eq!(db.value_of(OB_B).unwrap(), 103);
    assert!(db.in_doubt().is_empty());
}

#[test]
fn real_prepare_failure_unwinds_instead_of_stranding_locks() {
    use rh_core::engine::DbConfig;
    use rh_wal::{FaultInjector, FaultIo, FileLogConfig, StableLog};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rh-2pc-unwind-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Shard 0 (the coordinator) is mem-backed; shard 1 runs on
    // fault-injected file I/O that we trip mid-protocol, so its Prepare
    // flush fails with a *real* error — no crash follows.
    let injector = FaultInjector::unlimited();
    let s0 = StableLog::new();
    let s1 = StableLog::open_file_with(
        Arc::new(FaultIo::std(Arc::clone(&injector))),
        FileLogConfig::new(&dir),
    )
    .unwrap();
    let db =
        ShardedDb::with_stable_logs(Strategy::Rh, DbConfig::default(), vec![s0, s1], 0).unwrap();

    let t = db.begin().unwrap();
    db.write(t, OB_A, 111).unwrap();
    db.write(t, OB_B, 113).unwrap();
    // Force the update records to disk before tripping the I/O, so the
    // only thing that fails is the Prepare flush itself — the rollback
    // sweep must still be able to read the updates it undoes.
    db.checkpoint_all().unwrap();
    injector.trip();
    // The commit fails before any decision exists; presumed abort must
    // roll the whole transaction back rather than leave shard 1
    // Prepared with its locks held and no resolution path.
    assert!(db.commit(t).is_err());
    assert!(db.in_doubt().is_empty(), "unwind must not leave prepared state");
    assert!(db.active_txns().is_empty(), "router entry must be gone");
    assert_eq!(counter(&db, "shard.twopc.unwound"), 1);

    // The proof the locks were released: a fresh transaction can write
    // both objects immediately (immediate-mode conflicts would error).
    let t2 = db.begin().unwrap();
    db.write(t2, OB_A, 115).unwrap();
    db.write(t2, OB_B, 117).unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn txn_ids_stay_global_across_recovery() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let t0 = db.begin().unwrap();
    db.write(t0, OB_A, 71).unwrap();
    db.write(t0, OB_B, 72).unwrap();
    db.commit(t0).unwrap();
    let db = db.crash_and_recover().unwrap();
    let t1 = db.begin().unwrap();
    assert!(t1.raw() > t0.raw(), "recovered router must not reissue {t0}");
}

// ---- time-travel reads across shards ----------------------------------

#[test]
fn read_as_of_resolves_in_doubt_from_the_coordinator_decision() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let t = db.begin().unwrap();
    db.write(t, OB_A, 21).unwrap();
    db.write(t, OB_B, 23).unwrap();
    // Decision durable on shard 0 (the coordinator); shard 1 is left
    // Prepared with no local Commit record — in doubt.
    db.inject_fault(TwoPcFault::AfterCoordCommit);
    assert!(db.commit(t).is_err());
    assert_eq!(db.in_doubt(), vec![(1, t)]);

    // Reenacting shard 1's object must stitch the outcome from shard
    // 0's CoordCommit by global txn id: the write counts as committed.
    assert_eq!(db.read_as_of(OB_B, rh_common::Lsn::NULL).unwrap(), 23);
    assert!(counter(&db, "reenact.cross_shard_decisions") >= 1);
    // The coordinator's own log holds the decision, so its object never
    // needs stitching.
    assert_eq!(db.read_as_of(OB_A, rh_common::Lsn::NULL).unwrap(), 21);

    // history() resolves the same way and carries the responsible txn.
    let versions = db.history(OB_B, rh_common::Lsn::FIRST, rh_common::Lsn::NULL).unwrap();
    assert_eq!(versions.len(), 1);
    assert_eq!(versions[0].value, 23);
    assert_eq!(versions[0].responsible, t);
}

#[test]
fn read_as_of_presumes_abort_when_no_decision_exists() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let t = db.begin().unwrap();
    db.write(t, OB_A, 31).unwrap();
    db.write(t, OB_B, 33).unwrap();
    // Shard 1 prepared, but the commit point was never reached: no
    // shard's log holds a CoordCommit for `t`.
    db.inject_fault(TwoPcFault::AfterPrepare(0));
    assert!(db.commit(t).is_err());
    assert_eq!(db.in_doubt(), vec![(1, t)]);

    // Presumed abort: the in-doubt write must not surface.
    assert_eq!(db.read_as_of(OB_B, rh_common::Lsn::NULL).unwrap(), 0);
    assert_eq!(counter(&db, "reenact.cross_shard_decisions"), 0);
    assert!(db.history(OB_B, rh_common::Lsn::FIRST, rh_common::Lsn::NULL).unwrap().is_empty());
}

#[test]
fn read_as_of_survives_checkpointed_decisions_and_crash() {
    let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
    let t = db.begin().unwrap();
    db.write(t, OB_A, 41).unwrap();
    db.write(t, OB_B, 43).unwrap();
    db.inject_fault(TwoPcFault::AfterCoordCommit);
    assert!(db.commit(t).is_err());
    // The sweep advances every shard's anchor; the decision now lives
    // only inside the coordinator's checkpoint snapshot. Reenactment
    // must still find it there.
    db.checkpoint_all().unwrap();
    assert_eq!(db.read_as_of(OB_B, rh_common::Lsn::NULL).unwrap(), 43);

    // And after recovery resolves the in-doubt state for real, the
    // time-travel answer is unchanged — the resolution Commit records
    // now decide directly.
    let db = db.crash_and_recover().unwrap();
    assert_eq!(db.read_as_of(OB_B, rh_common::Lsn::NULL).unwrap(), 43);
    assert_eq!(db.read_as_of(OB_A, rh_common::Lsn::NULL).unwrap(), 41);
}
