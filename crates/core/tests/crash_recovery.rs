//! Crash and restart-recovery behaviour of ARIES/RH (§3.6), including the
//! efficiency invariants the paper proves in §4.

use rh_common::{Lsn, ObjectId, TxnId};
use rh_core::engine::{DbConfig, RhDb, Strategy};
use rh_core::TxnEngine;

const A: ObjectId = ObjectId(0);
const B: ObjectId = ObjectId(1);
/// An object on a different page than A/B (64 slots per page).
const FAR: ObjectId = ObjectId(200);

fn db() -> RhDb {
    RhDb::new(Strategy::Rh)
}

#[test]
fn committed_work_survives_crash() {
    let mut d = db();
    let t = d.begin().unwrap();
    d.write(t, A, 5).unwrap();
    d.add(t, FAR, 9).unwrap();
    d.commit(t).unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 5);
    assert_eq!(d.value_of(FAR).unwrap(), 9);
}

#[test]
fn uncommitted_work_is_rolled_back() {
    let mut d = db();
    let t0 = d.begin().unwrap();
    d.write(t0, A, 1).unwrap();
    d.commit(t0).unwrap();
    let t = d.begin().unwrap();
    d.write(t, A, 77).unwrap();
    d.add(t, B, 3).unwrap();
    // Force the tail so the loser's records are present after the crash
    // (otherwise they simply vanish with the volatile tail).
    d.log().flush_all().unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 1);
    assert_eq!(d.value_of(B).unwrap(), 0);
    let report = d.last_recovery().unwrap().clone();
    assert_eq!(report.losers.len(), 1);
    assert_eq!(report.undo.undone, 2);
}

#[test]
fn unflushed_commit_is_a_loser() {
    // A commit whose force never reached stable storage did not happen.
    // We emulate it by writing updates and crashing before commit; the
    // flush-on-commit path itself is exercised by every surviving test.
    let mut d = db();
    let t = d.begin().unwrap();
    d.write(t, A, 123).unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0);
}

#[test]
fn stolen_pages_are_undone_after_crash() {
    // Tiny pool forces dirty-page steals, putting uncommitted values on
    // disk; recovery must undo them there.
    let mut d = RhDb::with_config(Strategy::Rh, DbConfig { pool_pages: 1 });
    let t = d.begin().unwrap();
    d.write(t, A, 55).unwrap(); // page 0
    d.write(t, FAR, 66).unwrap(); // page 3 -> evicts page 0 (dirty!)
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0);
    assert_eq!(d.value_of(FAR).unwrap(), 0);
}

#[test]
fn delegated_update_survives_delegator_abort_across_crash() {
    let mut d = db();
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.write(t1, A, 7).unwrap();
    d.delegate(t1, t2, &[A]).unwrap();
    d.abort(t1).unwrap();
    d.commit(t2).unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 7);
}

#[test]
fn delegated_to_loser_is_undone_at_recovery() {
    // Winner invoker, loser delegatee: the update must die (undo rule,
    // §4.1) even though its invoking transaction committed.
    let mut d = db();
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.write(t1, A, 7).unwrap();
    d.delegate(t1, t2, &[A]).unwrap();
    d.commit(t1).unwrap();
    // t2 never commits.
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0);
}

#[test]
fn loser_invoker_winner_delegatee_survives() {
    // The mirror case (redo rule): loser invoker, winner delegatee.
    let mut d = db();
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.write(t1, A, 7).unwrap();
    d.delegate(t1, t2, &[A]).unwrap();
    d.commit(t2).unwrap();
    // t1 still active at crash: loser. But it owns nothing on A.
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 7);
}

#[test]
fn example2_across_crash() {
    // §3.4 Example 2 with the decisive events separated by a crash.
    let mut d = db();
    let t = d.begin().unwrap();
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.add(t, A, 10).unwrap();
    d.delegate(t, t1, &[A]).unwrap();
    d.add(t, A, 100).unwrap();
    d.delegate(t, t2, &[A]).unwrap();
    d.commit(t1).unwrap(); // +10 permanent
                           // t and t2 are losers at the crash: +100 (delegated to t2) undone.
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 10);
}

#[test]
fn repeated_crashes_are_idempotent() {
    // Crash during/after recovery: recovering an already-recovered log
    // (CLRs and abort records present) must change nothing.
    let mut d = db();
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.write(t1, A, 5).unwrap();
    d.add(t2, B, 3).unwrap();
    d.delegate(t1, t2, &[A]).unwrap();
    d.commit(t1).unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0); // delegated to loser t2
    assert_eq!(d.value_of(B).unwrap(), 0);
    for _ in 0..3 {
        d = d.crash_and_recover().unwrap();
        assert_eq!(d.value_of(A).unwrap(), 0);
        assert_eq!(d.value_of(B).unwrap(), 0);
        // Nothing left to undo on later recoveries.
        assert_eq!(d.last_recovery().unwrap().undo.undone, 0);
    }
}

#[test]
fn crash_mid_rollback_completes_the_rollback() {
    // White-box: build a stable log that looks like a crash in the middle
    // of an abort — two updates, the later one already compensated by a
    // CLR, no abort record. Recovery must undo only the first update.
    use rh_common::UpdateOp;
    use rh_wal::record::RecordBody;
    use rh_wal::LogManager;

    let log = LogManager::new();
    let disk = rh_storage::Disk::new();
    let t1 = TxnId(0);
    log.append(t1, Lsn::NULL, RecordBody::Begin); // 0
    log.append(t1, Lsn(0), RecordBody::Update { ob: A, op: UpdateOp::Add { delta: 5 } }); // 1
    log.append(t1, Lsn(1), RecordBody::Update { ob: A, op: UpdateOp::Add { delta: 100 } }); // 2
    log.append(
        t1,
        Lsn(2),
        RecordBody::Clr {
            ob: A,
            op: UpdateOp::Add { delta: -100 },
            compensated: Lsn(2),
            undo_next: Lsn(1),
        },
    ); // 3
    log.flush_all().unwrap();
    let stable = log.crash();

    let mut d = RhDb::recover(Strategy::Rh, DbConfig::default(), stable, disk).unwrap();
    // Redo repeats history to +105, CLR redo brings it to +5, and the
    // backward pass must undo exactly the uncompensated +5.
    assert_eq!(d.value_of(A).unwrap(), 0);
    let report = d.last_recovery().unwrap();
    assert_eq!(report.undo.undone, 1);
    assert_eq!(report.undo.skipped_compensated, 1);
}

#[test]
fn checkpoint_shortens_the_forward_pass() {
    let mut d = db();
    for _ in 0..50 {
        let t = d.begin().unwrap();
        d.add(t, A, 1).unwrap();
        d.commit(t).unwrap();
    }
    d.checkpoint().unwrap();
    let t = d.begin().unwrap();
    d.add(t, A, 100).unwrap(); // loser
    d.log().flush_all().unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 50);
    let report = d.last_recovery().unwrap();
    // The scan starts at the checkpoint, not the origin: 50 committed
    // txns × 4 records each were skipped.
    assert!(
        report.forward.records_scanned < 20,
        "scanned {} records despite checkpoint",
        report.forward.records_scanned
    );
}

#[test]
fn checkpoint_preserves_pre_checkpoint_delegation() {
    // The delegation happened before the checkpoint; its scopes must be
    // restored from the snapshot, not the (unscanned) log prefix.
    let mut d = db();
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.write(t1, A, 7).unwrap();
    d.delegate(t1, t2, &[A]).unwrap();
    d.commit(t1).unwrap();
    d.checkpoint().unwrap();
    // Crash leaves t2 a loser; the scope (invoked by t1, owned by t2)
    // lies entirely before the checkpoint.
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0);
    assert_eq!(d.last_recovery().unwrap().undo.undone, 1);
}

#[test]
fn recovery_backward_pass_skips_between_clusters() {
    // Two losers with updates at the far ends of a long log of committed
    // work: the backward pass must visit only the two clusters, not the
    // committed middle.
    let mut d = db();
    let early = d.begin().unwrap();
    d.add(early, A, 1).unwrap(); // loser scope at the very beginning
    for i in 0..200 {
        let t = d.begin().unwrap();
        d.add(t, ObjectId(2 + i), 1).unwrap();
        d.commit(t).unwrap();
    }
    let late = d.begin().unwrap();
    d.add(late, B, 1).unwrap(); // loser scope at the very end
    d.log().flush_all().unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0);
    assert_eq!(d.value_of(B).unwrap(), 0);
    let undo = d.last_recovery().unwrap().undo;
    assert_eq!(undo.undone, 2);
    assert_eq!(undo.clusters, 2);
    // Visiting both single-record clusters costs 2 reads, not ~800.
    assert!(undo.visited <= 4, "visited {} records", undo.visited);
}

#[test]
fn rh_recovery_never_rewrites_the_log() {
    let mut d = db();
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.write(t1, A, 5).unwrap();
    d.delegate(t1, t2, &[A]).unwrap();
    d.commit(t1).unwrap();
    let d = d.crash_and_recover().unwrap();
    assert_eq!(d.last_recovery().unwrap().undo.rewrites, 0);
    assert_eq!(d.log().metrics().snapshot().in_place_rewrites, 0);
}

#[test]
fn lazy_strategy_same_outcome_with_rewrites() {
    // The lazy baseline must compute the same states while physically
    // rewriting delegated records.
    let mut d = RhDb::new(Strategy::LazyRewrite);
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.write(t1, A, 5).unwrap();
    d.delegate(t1, t2, &[A]).unwrap();
    d.commit(t1).unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0); // t2 is a loser
    let undo = d.last_recovery().unwrap().undo;
    assert_eq!(undo.rewrites, 1, "the delegated record must be rewritten");
    // After the rewrite, the update record physically carries t2.
    let rewritten = d.log().read(Lsn(2)).unwrap();
    assert!(rewritten.is_update());
    assert_eq!(rewritten.txn, t2);
}

#[test]
fn lazy_rewrites_winner_history_too() {
    // Loser invoker -> winner delegatee: RH leaves the record alone; lazy
    // must rewrite it to the winner so a plain-ARIES reading of the log
    // stays consistent.
    let mut d = RhDb::new(Strategy::LazyRewrite);
    let t1 = d.begin().unwrap();
    let t2 = d.begin().unwrap();
    d.write(t1, A, 5).unwrap(); // lsn 2
    d.delegate(t1, t2, &[A]).unwrap();
    d.commit(t2).unwrap();
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 5);
    let undo = d.last_recovery().unwrap().undo;
    assert_eq!(undo.rewrites, 1);
    assert_eq!(d.log().read(Lsn(2)).unwrap().txn, t2);
    // And a subsequent crash on the rewritten log still recovers cleanly.
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 5);
}

#[test]
fn transaction_ids_do_not_collide_after_recovery() {
    let mut d = db();
    let t1 = d.begin().unwrap();
    d.write(t1, A, 1).unwrap();
    d.log().flush_all().unwrap();
    let mut d = d.crash_and_recover().unwrap();
    let t2 = d.begin().unwrap();
    assert!(t2 > t1, "post-recovery id {t2} must exceed pre-crash id {t1}");
}

#[test]
fn crash_storm_over_scripted_history() {
    // Cut the same delegation-heavy script at every possible point; each
    // prefix must recover to its own oracle state.
    use rh_core::history::{assert_engine_matches_oracle, Event};
    let script = vec![
        Event::Begin(0),
        Event::Begin(1),
        Event::Begin(2),
        Event::Add(0, A, 10),
        Event::Add(1, A, 200),
        Event::Delegate(0, 1, vec![A]),
        Event::Add(0, B, 3),
        Event::Commit(0),
        Event::Delegate(1, 2, vec![A]),
        Event::Abort(1),
        Event::Write(2, FAR, 9),
        Event::Commit(2),
    ];
    for cut in 0..=script.len() {
        let mut history: Vec<Event> = script[..cut].to_vec();
        history.push(Event::Crash);
        assert_engine_matches_oracle(RhDb::new(Strategy::Rh), &history);
    }
}

#[test]
fn truncated_log_still_recovers_correctly() {
    // Checkpoint, truncate the dead prefix, keep working, crash: recovery
    // must never need the discarded records.
    let mut d = db();
    for i in 0..30 {
        let t = d.begin().unwrap();
        d.add(t, ObjectId(100 + i), 1).unwrap();
        d.commit(t).unwrap();
    }
    // One still-active transaction pins the truncation point at its
    // begin record.
    let pinned = d.begin().unwrap();
    d.add(pinned, A, 5).unwrap();
    d.checkpoint().unwrap();
    let dropped = d.truncate_log().unwrap();
    assert!(dropped > 0, "expected the committed prefix to be discarded");
    assert!(d.log().first_lsn() <= Lsn(30 * 4)); // not beyond pinned's begin
                                                 // Continue working after truncation.
    let t = d.begin().unwrap();
    d.add(t, B, 7).unwrap();
    d.commit(t).unwrap();
    d.log().flush_all().unwrap();
    let mut d = d.crash_and_recover().unwrap();
    // Committed prefix intact, pinned transaction rolled back.
    for i in 0..30 {
        assert_eq!(d.value_of(ObjectId(100 + i)).unwrap(), 1);
    }
    assert_eq!(d.value_of(A).unwrap(), 0);
    assert_eq!(d.value_of(B).unwrap(), 7);
}

#[test]
fn truncation_respects_live_scopes_from_delegation() {
    // An old delegated scope (received long ago) must pin the log: the
    // backward pass may need those update records.
    let mut d = db();
    let t1 = d.begin().unwrap();
    let holder = d.begin().unwrap();
    d.add(t1, A, 9).unwrap(); // LSN 2 — must never be truncated away
    d.delegate(t1, holder, &[A]).unwrap();
    d.commit(t1).unwrap();
    for i in 0..50 {
        let t = d.begin().unwrap();
        d.add(t, ObjectId(10 + i), 1).unwrap();
        d.commit(t).unwrap();
    }
    d.checkpoint().unwrap();
    d.truncate_log().unwrap();
    // The truncation point is pinned at (or before) holder's scope.
    assert!(d.log().first_lsn() <= Lsn(2));
    d.log().flush_all().unwrap();
    // holder is a loser at the crash; its delegated scope's record (LSN 2)
    // must still be readable for the undo.
    let mut d = d.crash_and_recover().unwrap();
    assert_eq!(d.value_of(A).unwrap(), 0);
}

#[test]
fn truncate_without_checkpoint_is_a_noop() {
    let mut d = db();
    let t = d.begin().unwrap();
    d.add(t, A, 1).unwrap();
    d.commit(t).unwrap();
    assert_eq!(d.truncate_log().unwrap(), 0);
}
