//! Fuzzy-checkpoint snapshots.
//!
//! The paper "ignore\[s\] checkpoints for simplicity of presentation" but
//! notes "it is easy to see how data structures can be rebuilt using
//! checkpoints instead of going back to the beginning" (§3.6). We complete
//! that sketch: the `CheckpointEnd` record's payload is an encoded
//! [`CheckpointSnapshot`] holding
//!
//! * the transaction table **including every Ob_List with its scopes** —
//!   the delegation state is exactly the extra thing ARIES/RH must
//!   checkpoint, since scopes reaching back before the checkpoint could
//!   not otherwise be rebuilt without scanning from the log's origin;
//! * the dirty-page table (page, recLSN) for redo-skipping decisions;
//! * the transaction-id high-water mark, so post-recovery ids never
//!   collide with pre-crash ones.

use crate::provenance::ProvenanceTable;
use crate::txn_table::TrList;
use rh_common::codec::{Codec, Reader, Writer};
use rh_common::{Lsn, ObjectId, PageId, Result, TxnId, Value};

/// The state frozen into a `CheckpointEnd` record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointSnapshot {
    /// Transaction table at checkpoint time (statuses, BC heads, and —
    /// crucially for delegation — the scope-bearing Ob_Lists).
    pub tr_list: TrList,
    /// Dirty-page table: (page, recLSN) pairs.
    pub dpt: Vec<(PageId, Lsn)>,
    /// Next transaction id to allocate.
    pub next_txn: u64,
    /// LSNs of updates already compensated (partial rollbacks) whose CLRs
    /// lie *before* this checkpoint. A scope that re-extends across a
    /// rollback boundary re-covers those records; a recovery that starts
    /// its scan at the checkpoint would never see their CLRs and would
    /// undo them a second time — this set closes that hole. Pruned to
    /// LSNs at/after the oldest live scope (older ones can never be
    /// re-covered).
    pub compensated: Vec<Lsn>,
    /// Delegation provenance chains at checkpoint time. Pure
    /// observability — recovery restores it so responsibility chains
    /// reach back before the forward-pass scan start, exactly like the
    /// scope-bearing Ob_Lists above.
    pub provenance: ProvenanceTable,
    /// Coordinator 2PC decisions (transaction → participant shards)
    /// whose participants may not all have durable Commit records yet.
    /// A checkpoint advances the recovery anchor past the `CoordCommit`
    /// records themselves, but another shard's in-doubt resolution may
    /// still depend on the decision — so unretired decisions ride in the
    /// snapshot and the forward pass re-reports them. The sharded router
    /// retires a decision only once every participant's Commit record is
    /// durable (see `ShardedDb::checkpoint_all`).
    pub coord_decisions: Vec<(TxnId, Vec<u32>)>,
    /// Object values at checkpoint time, omitting objects still at the
    /// initial value. Captured right after the checkpoint's `flush_all`,
    /// while the engine is exclusively held — so the flushed disk images
    /// *are* the database state as of `CheckpointBegin`, and no update
    /// record can land between the capture and `CheckpointEnd`. This is
    /// what lets reenactment (`read_as_of`/`history`) seed from a
    /// checkpoint and replay forward without ever touching live pages,
    /// even after `truncate_prefix` has dropped pre-checkpoint records.
    pub values: Vec<(ObjectId, Value)>,
}

impl Codec for CheckpointSnapshot {
    fn encode(&self, w: &mut Writer) {
        self.tr_list.encode(w);
        self.dpt.encode(w);
        w.put_u64(self.next_txn);
        self.compensated.encode(w);
        self.provenance.encode(w);
        self.coord_decisions.encode(w);
        self.values.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(CheckpointSnapshot {
            tr_list: TrList::decode(r)?,
            dpt: Vec::decode(r)?,
            next_txn: r.take_u64()?,
            compensated: Vec::decode(r)?,
            provenance: ProvenanceTable::decode(r)?,
            coord_decisions: Vec::decode(r)?,
            values: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_common::{ObjectId, TxnId};

    #[test]
    fn roundtrip_empty() {
        let s = CheckpointSnapshot::default();
        assert_eq!(CheckpointSnapshot::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn roundtrip_with_state() {
        let mut tr = TrList::new();
        tr.insert(TxnId(3), Lsn(10));
        tr.get_mut(TxnId(3)).unwrap().ob_list.record_update(ObjectId(5), TxnId(3), Lsn(11));
        let mut provenance = ProvenanceTable::new();
        provenance.record_hop(ObjectId(5), TxnId(3), TxnId(4), Lsn(12));
        let s = CheckpointSnapshot {
            tr_list: tr,
            dpt: vec![(PageId(0), Lsn(11)), (PageId(4), Lsn(2))],
            next_txn: 17,
            compensated: vec![Lsn(3), Lsn(9)],
            provenance,
            coord_decisions: vec![(TxnId(3), vec![1, 2])],
            values: vec![(ObjectId(5), 42), (ObjectId(9), -3)],
        };
        assert_eq!(CheckpointSnapshot::from_bytes(&s.to_bytes()).unwrap(), s);
    }
}
