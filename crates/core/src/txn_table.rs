//! The transaction table (`Tr_List`, paper §3.4).
//!
//! "The standard Transaction List Tr_List ... contains, for each
//! Trans-ID, the LSN for the most recent record written on behalf of that
//! transaction, and, during recovery, whether a transaction is a winner or
//! a loser. Notice that for each transaction t, Tr_List(t) contains the
//! head of the backward chain BC(t)."

use crate::oblist::ObList;
use rh_common::codec::{Codec, Reader, Writer};
use rh_common::{Lsn, Result, RhError, TxnId};
use std::collections::BTreeMap;

/// Lifecycle state of a transaction, as known to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Initiated/begun and not yet terminated. During recovery, active
    /// transactions are *losers by default* (§3.6.1).
    Active,
    /// A commit record exists — a **winner**.
    Committed,
    /// An abort record exists — a loser whose rollback already completed
    /// (its updates were compensated before the abort record was written).
    Aborted,
    /// A two-phase-commit `Prepare` record exists but no local commit or
    /// abort: the transaction is **in doubt**. Recovery must neither undo
    /// nor terminate it; the sharded coordinator resolves it against the
    /// `CoordCommit` record (commit if one is durable anywhere, presumed
    /// abort otherwise).
    Prepared,
}

/// One `Tr_List` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnEntry {
    /// Head of the backward chain: most recent record of this transaction.
    pub last_lsn: Lsn,
    /// LSN of the begin record (bounds backward walks).
    pub first_lsn: Lsn,
    /// Current status.
    pub status: TxnStatus,
    /// The transaction's object list with its scopes.
    pub ob_list: ObList,
}

impl TxnEntry {
    fn new(begin_lsn: Lsn) -> Self {
        TxnEntry {
            last_lsn: begin_lsn,
            first_lsn: begin_lsn,
            status: TxnStatus::Active,
            ob_list: ObList::new(),
        }
    }
}

/// The transaction table. Deterministic iteration order (BTreeMap) keeps
/// recovery byte-for-byte reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrList {
    entries: BTreeMap<TxnId, TxnEntry>,
}

impl TrList {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a transaction whose begin record is at `begin_lsn`.
    pub fn insert(&mut self, txn: TxnId, begin_lsn: Lsn) {
        debug_assert!(!self.entries.contains_key(&txn), "txn id reuse");
        self.entries.insert(txn, TxnEntry::new(begin_lsn));
    }

    /// Looks a transaction up, failing with [`RhError::UnknownTxn`].
    pub fn get(&self, txn: TxnId) -> Result<&TxnEntry> {
        self.entries.get(&txn).ok_or(RhError::UnknownTxn(txn))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, txn: TxnId) -> Result<&mut TxnEntry> {
        self.entries.get_mut(&txn).ok_or(RhError::UnknownTxn(txn))
    }

    /// True if present.
    pub fn contains(&self, txn: TxnId) -> bool {
        self.entries.contains_key(&txn)
    }

    /// Requires the transaction to exist *and* be active (most normal-
    /// processing operations need this).
    pub fn require_active(&self, txn: TxnId) -> Result<&TxnEntry> {
        let e = self.get(txn)?;
        if e.status != TxnStatus::Active {
            return Err(RhError::TxnNotActive(txn));
        }
        Ok(e)
    }

    /// `BC(t)` — backward-chain head, i.e. the `Tr_List` LSN.
    pub fn bc(&self, txn: TxnId) -> Result<Lsn> {
        Ok(self.get(txn)?.last_lsn)
    }

    /// Advances `BC(t)` after appending a record for `t`.
    pub fn set_bc(&mut self, txn: TxnId, lsn: Lsn) -> Result<()> {
        self.get_mut(txn)?.last_lsn = lsn;
        Ok(())
    }

    /// Removes a fully-terminated transaction (after its End record).
    pub fn remove(&mut self, txn: TxnId) -> Option<TxnEntry> {
        self.entries.remove(&txn)
    }

    /// Iterates `(txn, entry)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TxnId, &TxnEntry)> {
        self.entries.iter().map(|(&t, e)| (t, e))
    }

    /// Ids of transactions in a given status.
    pub fn with_status(&self, status: TxnStatus) -> Vec<TxnId> {
        self.entries.iter().filter(|(_, e)| e.status == status).map(|(&t, _)| t).collect()
    }

    /// The **losers** after a forward pass: every table resident that is
    /// not committed ("Losers includes transactions that had aborted
    /// before the crash", §4.1 — though fully-ended ones have left the
    /// table and have nothing to undo). Prepared (in-doubt) transactions
    /// are excluded: their fate belongs to the 2PC coordinator, so
    /// recovery must not roll them back unilaterally.
    pub fn losers(&self) -> Vec<TxnId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.status != TxnStatus::Committed && e.status != TxnStatus::Prepared)
            .map(|(&t, _)| t)
            .collect()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Codec for TxnStatus {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            TxnStatus::Active => 0,
            TxnStatus::Committed => 1,
            TxnStatus::Aborted => 2,
            TxnStatus::Prepared => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => TxnStatus::Active,
            1 => TxnStatus::Committed,
            2 => TxnStatus::Aborted,
            3 => TxnStatus::Prepared,
            _ => return Err(RhError::Codec("invalid TxnStatus tag")),
        })
    }
}

impl Codec for TxnEntry {
    fn encode(&self, w: &mut Writer) {
        self.last_lsn.encode(w);
        self.first_lsn.encode(w);
        self.status.encode(w);
        self.ob_list.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(TxnEntry {
            last_lsn: Lsn::decode(r)?,
            first_lsn: Lsn::decode(r)?,
            status: TxnStatus::decode(r)?,
            ob_list: ObList::decode(r)?,
        })
    }
}

impl Codec for TrList {
    fn encode(&self, w: &mut Writer) {
        let pairs: Vec<(TxnId, TxnEntry)> =
            self.entries.iter().map(|(k, v)| (*k, v.clone())).collect();
        pairs.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let pairs: Vec<(TxnId, TxnEntry)> = Vec::decode(r)?;
        Ok(TrList { entries: pairs.into_iter().collect() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t = TrList::new();
        t.insert(TxnId(1), Lsn(0));
        assert_eq!(t.bc(TxnId(1)).unwrap(), Lsn(0));
        assert_eq!(t.get(TxnId(1)).unwrap().status, TxnStatus::Active);
        assert_eq!(t.get(TxnId(2)), Err(RhError::UnknownTxn(TxnId(2))));
    }

    #[test]
    fn bc_advances() {
        let mut t = TrList::new();
        t.insert(TxnId(1), Lsn(0));
        t.set_bc(TxnId(1), Lsn(5)).unwrap();
        assert_eq!(t.bc(TxnId(1)).unwrap(), Lsn(5));
        assert_eq!(t.get(TxnId(1)).unwrap().first_lsn, Lsn(0));
    }

    #[test]
    fn require_active_rejects_terminated() {
        let mut t = TrList::new();
        t.insert(TxnId(1), Lsn(0));
        t.get_mut(TxnId(1)).unwrap().status = TxnStatus::Committed;
        assert_eq!(t.require_active(TxnId(1)), Err(RhError::TxnNotActive(TxnId(1))));
    }

    #[test]
    fn losers_are_the_noncommitted() {
        let mut t = TrList::new();
        t.insert(TxnId(1), Lsn(0));
        t.insert(TxnId(2), Lsn(1));
        t.insert(TxnId(3), Lsn(2));
        t.get_mut(TxnId(2)).unwrap().status = TxnStatus::Committed;
        t.get_mut(TxnId(3)).unwrap().status = TxnStatus::Aborted;
        assert_eq!(t.losers(), vec![TxnId(1), TxnId(3)]);
        assert_eq!(t.with_status(TxnStatus::Committed), vec![TxnId(2)]);
    }

    #[test]
    fn prepared_is_neither_loser_nor_winner() {
        let mut t = TrList::new();
        t.insert(TxnId(1), Lsn(0));
        t.insert(TxnId(2), Lsn(1));
        t.get_mut(TxnId(2)).unwrap().status = TxnStatus::Prepared;
        assert_eq!(t.losers(), vec![TxnId(1)]);
        assert_eq!(t.with_status(TxnStatus::Prepared), vec![TxnId(2)]);
        // In-doubt transactions refuse further normal-processing work.
        assert_eq!(t.require_active(TxnId(2)), Err(RhError::TxnNotActive(TxnId(2))));
        // And the status survives the checkpoint codec.
        assert_eq!(TrList::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn codec_roundtrip() {
        let mut t = TrList::new();
        t.insert(TxnId(1), Lsn(0));
        t.set_bc(TxnId(1), Lsn(4)).unwrap();
        t.get_mut(TxnId(1)).unwrap().ob_list.record_update(
            rh_common::ObjectId(7),
            TxnId(1),
            Lsn(4),
        );
        t.insert(TxnId(2), Lsn(2));
        t.get_mut(TxnId(2)).unwrap().status = TxnStatus::Committed;
        assert_eq!(TrList::from_bytes(&t.to_bytes()).unwrap(), t);
    }
}
