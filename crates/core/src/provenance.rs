//! Delegation provenance: per-object responsibility chains.
//!
//! Delegation (paper §2.1) moves *responsibility* for an object's
//! updates from transaction to transaction without rewriting history —
//! the log keeps saying "T1 wrote X" while T2 answers for it. That makes
//! "who is responsible for X, and how did it get that way?" a genuinely
//! new question the classical transaction table cannot answer: the live
//! `ObEntry.deleg` field remembers only the *most recent* delegator, and
//! is empty again by the time recovery finishes.
//!
//! A [`ProvenanceTable`] closes that gap. Every delegate record that
//! moves scopes over an object appends one [`ProvHop`] — `(from, to,
//! lsn)` where `lsn` is the delegate record's own LSN — to the object's
//! chain. Chains are:
//!
//! * **append-only and LSN-monotone** — hops are recorded in log order,
//!   so a chain reads as the object's responsibility timeline;
//! * **rebuilt by recovery** — the forward pass replays delegate records
//!   in log order and records the same hops, and fuzzy checkpoints
//!   persist the table so chains reach back before the scan start;
//! * **exported, not consumed** — nothing in the engine decides anything
//!   based on a chain; it is pure observability (`RhDb::provenance`,
//!   `/provenance` over the introspection server, and the §4.2 trace
//!   observers assert chain consistency).

use rh_common::codec::{Codec, Reader, Writer};
use rh_common::{Lsn, ObjectId, Result, TxnId};
use rh_obs::JsonValue;
use std::collections::BTreeMap;

/// One responsibility transfer: at `lsn`, a delegate record moved
/// responsibility for the object from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvHop {
    /// The delegator (paper: "tor").
    pub from: TxnId,
    /// The delegatee (paper: "tee").
    pub to: TxnId,
    /// LSN of the delegate record that performed the transfer.
    pub lsn: Lsn,
}

impl Codec for ProvHop {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        self.to.encode(w);
        self.lsn.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ProvHop { from: TxnId::decode(r)?, to: TxnId::decode(r)?, lsn: Lsn::decode(r)? })
    }
}

impl ProvHop {
    /// Renders `{from, to, lsn}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("from", JsonValue::U64(self.from.raw())),
            ("to", JsonValue::U64(self.to.raw())),
            ("lsn", JsonValue::U64(self.lsn.raw())),
        ])
    }
}

/// Per-object responsibility chains, oldest hop first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceTable {
    chains: BTreeMap<ObjectId, Vec<ProvHop>>,
}

impl ProvenanceTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a hop to `ob`'s chain; returns `Some(new depth)` when the
    /// hop was actually appended.
    ///
    /// Idempotent per `(ob, lsn)`: replaying the same delegate record
    /// (live execution, then checkpoint restore, then the forward pass)
    /// must not double-count, so a hop at an LSN the chain has already
    /// reached is dropped (returning `None` so callers skip their
    /// counters and events too). This also keeps chains LSN-monotone by
    /// construction.
    pub fn record_hop(&mut self, ob: ObjectId, from: TxnId, to: TxnId, lsn: Lsn) -> Option<usize> {
        let chain = self.chains.entry(ob).or_default();
        if chain.last().is_some_and(|last| last.lsn >= lsn) {
            return None;
        }
        chain.push(ProvHop { from, to, lsn });
        Some(chain.len())
    }

    /// The responsibility chain for `ob`, oldest hop first (empty when
    /// the object was never delegated).
    pub fn chain(&self, ob: ObjectId) -> &[ProvHop] {
        self.chains.get(&ob).map_or(&[], Vec::as_slice)
    }

    /// Objects with at least one hop, ascending.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.chains.keys().copied().collect()
    }

    /// Total hops across all chains.
    pub fn total_hops(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }

    /// True when no object was ever delegated.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Renders `{ "<ob>": [{from, to, lsn}, ...], ... }`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.chains
                .iter()
                .map(|(ob, chain)| {
                    (
                        ob.raw().to_string(),
                        JsonValue::Arr(chain.iter().map(ProvHop::to_json).collect()),
                    )
                })
                .collect(),
        )
    }
}

impl Codec for ProvenanceTable {
    fn encode(&self, w: &mut Writer) {
        let flat: Vec<(ObjectId, Vec<ProvHop>)> =
            self.chains.iter().map(|(ob, chain)| (*ob, chain.clone())).collect();
        flat.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let flat: Vec<(ObjectId, Vec<ProvHop>)> = Vec::decode(r)?;
        Ok(ProvenanceTable { chains: flat.into_iter().collect() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_accumulate_per_object() {
        let mut t = ProvenanceTable::new();
        assert_eq!(t.record_hop(ObjectId(5), TxnId(1), TxnId(2), Lsn(10)), Some(1));
        assert_eq!(t.record_hop(ObjectId(5), TxnId(2), TxnId(3), Lsn(20)), Some(2));
        assert_eq!(t.record_hop(ObjectId(9), TxnId(1), TxnId(3), Lsn(15)), Some(1));
        assert_eq!(
            t.chain(ObjectId(5)),
            &[
                ProvHop { from: TxnId(1), to: TxnId(2), lsn: Lsn(10) },
                ProvHop { from: TxnId(2), to: TxnId(3), lsn: Lsn(20) },
            ]
        );
        assert_eq!(t.chain(ObjectId(7)), &[]);
        assert_eq!(t.objects(), vec![ObjectId(5), ObjectId(9)]);
        assert_eq!(t.total_hops(), 3);
    }

    #[test]
    fn replaying_a_hop_is_idempotent() {
        let mut t = ProvenanceTable::new();
        t.record_hop(ObjectId(5), TxnId(1), TxnId(2), Lsn(10));
        // The forward pass replays the same delegate record.
        assert_eq!(t.record_hop(ObjectId(5), TxnId(1), TxnId(2), Lsn(10)), None);
        // Anything at-or-before the chain head is also dropped.
        assert_eq!(t.record_hop(ObjectId(5), TxnId(9), TxnId(8), Lsn(9)), None);
        assert_eq!(t.total_hops(), 1);
    }

    #[test]
    fn codec_roundtrip() {
        let mut t = ProvenanceTable::new();
        t.record_hop(ObjectId(5), TxnId(1), TxnId(2), Lsn(10));
        t.record_hop(ObjectId(5), TxnId(2), TxnId(3), Lsn(20));
        t.record_hop(ObjectId(1), TxnId(4), TxnId(5), Lsn(12));
        let bytes = t.to_bytes();
        assert_eq!(ProvenanceTable::from_bytes(&bytes).unwrap(), t);

        let empty = ProvenanceTable::new();
        assert_eq!(ProvenanceTable::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn json_shape() {
        let mut t = ProvenanceTable::new();
        t.record_hop(ObjectId(5), TxnId(1), TxnId(2), Lsn(10));
        let j = t.to_json();
        let chain = j.get("5").and_then(JsonValue::as_arr).expect("chain for ob 5");
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].get("from").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(chain[0].get("to").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(chain[0].get("lsn").and_then(JsonValue::as_u64), Some(10));
    }
}
