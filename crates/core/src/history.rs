//! Abstract histories and the delegation-semantics **oracle**.
//!
//! The paper defines delegation denotationally (§2.1): each update has a
//! unique *responsible transaction* at every instant; commit of `t` makes
//! the updates in `Op_List(t)` permanent; abort of `t` obliterates them.
//! [`Oracle`] implements exactly that definition over an in-memory value
//! map — no log, no pages, no recovery — and therefore serves as the
//! specification every engine (ARIES/RH, eager, lazy, EOS) is tested
//! against: replay the same [`Event`] sequence through an engine and
//! through the oracle, and the surviving database states must match.
//!
//! Events name transactions by small integer **labels**, mapped to real
//! [`TxnId`]s by [`replay_engine`]; labels stay stable across crashes even
//! though engine ids do not.

use crate::api::TxnEngine;
use rh_common::ops::Value;
use rh_common::{ObjectId, Result, TxnId, UpdateOp};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A transaction label in an abstract history (not an engine [`TxnId`]).
pub type Label = u32;

/// One step of an abstract history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Start transaction `label`.
    Begin(Label),
    /// `label` overwrites `ob` with the value.
    Write(Label, ObjectId, Value),
    /// `label` adds the delta to `ob`.
    Add(Label, ObjectId, Value),
    /// `delegate(tor, tee, obs)`.
    Delegate(Label, Label, Vec<ObjectId>),
    /// `delegate(tor, tee)` of everything (join idiom).
    DelegateAll(Label, Label),
    /// Commit `label`.
    Commit(Label),
    /// Abort `label`.
    Abort(Label),
    /// Declare a savepoint for `label`, stored under a history-local slot
    /// number (so one transaction can hold several).
    Savepoint(Label, u32),
    /// Partially roll `label` back to a previously declared slot.
    RollbackTo(Label, u32),
    /// Take a checkpoint (engines without checkpoints ignore it).
    Checkpoint,
    /// Crash and recover. Every still-active transaction becomes a loser.
    Crash,
}

#[derive(Debug, Clone)]
struct OracleOp {
    ob: ObjectId,
    op: UpdateOp,
    responsible: Label,
    /// Still undoable: neither committed (made permanent) nor undone.
    live: bool,
    /// The object's value right after this update applied — the
    /// at-the-time value a reenacted version record must report.
    value_after: Value,
    /// Resolved by a commit of its responsible transaction (as opposed
    /// to dead because it was undone).
    committed: bool,
}

/// The log-free reference implementation of §2.1 semantics.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    values: BTreeMap<ObjectId, Value>,
    ops: Vec<OracleOp>,
    active: BTreeSet<Label>,
    /// Savepoint markers: (label, slot) -> ops.len() at declaration.
    savepoints: BTreeMap<(Label, u32), usize>,
    /// Updates undone by the most recent event; see [`Oracle::last_undone`].
    last_undone: Vec<(ObjectId, Label)>,
}

impl Oracle {
    /// An empty database with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of an object (never-touched objects read 0, matching
    /// the storage substrate's initial value).
    pub fn value(&self, ob: ObjectId) -> Value {
        self.values.get(&ob).copied().unwrap_or(0)
    }

    /// Every object any update ever touched.
    pub fn touched(&self) -> Vec<ObjectId> {
        self.values.keys().copied().collect()
    }

    /// Labels of transactions currently active.
    pub fn active(&self) -> &BTreeSet<Label> {
        &self.active
    }

    /// The updates undone by the most recently applied event, as
    /// `(object, responsible label)` pairs in undo order (newest
    /// invocation first). Non-empty only after `Abort`, `RollbackTo`, or
    /// `Crash` events that actually undid something. The small-scope
    /// model checker compares this against the engine's recovery report
    /// (the undone-update set must match, not just the final values).
    pub fn last_undone(&self) -> &[(ObjectId, Label)] {
        &self.last_undone
    }

    /// `Ob_List(t)` at the semantic level: objects with at least one live
    /// update `t` is responsible for. Drives well-formed generation of
    /// `delegate` events.
    pub fn responsible_objects(&self, t: Label) -> BTreeSet<ObjectId> {
        self.ops.iter().filter(|o| o.live && o.responsible == t).map(|o| o.ob).collect()
    }

    fn apply_update(&mut self, t: Label, ob: ObjectId, op: UpdateOp) {
        let cur = self.value(ob);
        let after = op.apply(cur);
        self.values.insert(ob, after);
        self.ops.push(OracleOp {
            ob,
            op,
            responsible: t,
            live: true,
            value_after: after,
            committed: false,
        });
    }

    /// The **committed-state** value of `ob` at this instant of the
    /// history: the current value with every still-live (uncommitted)
    /// update undone, newest first — exactly what crash recovery would
    /// leave, and therefore what a time-travel `read_as_of` targeting
    /// this instant must answer.
    pub fn value_as_of(&self, ob: ObjectId) -> Value {
        let mut v = self.value(ob);
        for o in self.ops.iter().rev() {
            if o.live && o.ob == ob {
                v = o.op.undo(v);
            }
        }
        v
    }

    /// The committed version timeline of `ob`: one `(responsible label,
    /// at-the-time value)` pair per committed update, in invocation
    /// order — the oracle's side of the reenactment `history()` check.
    /// Undone updates (abort, rollback, crash) never appear.
    pub fn versions(&self, ob: ObjectId) -> Vec<(Label, Value)> {
        self.ops
            .iter()
            .filter(|o| o.committed && o.ob == ob)
            .map(|o| (o.responsible, o.value_after))
            .collect()
    }

    /// Undoes (in reverse execution order) every live op for which a
    /// label in `losers` is responsible, then marks them dead.
    fn undo_losers(&mut self, losers: &BTreeSet<Label>) {
        for i in (0..self.ops.len()).rev() {
            if self.ops[i].live && losers.contains(&self.ops[i].responsible) {
                let (ob, op) = (self.ops[i].ob, self.ops[i].op);
                let cur = self.value(ob);
                self.values.insert(ob, op.undo(cur));
                self.ops[i].live = false;
                self.last_undone.push((ob, self.ops[i].responsible));
            }
        }
    }

    /// Applies one event. Ill-formed events (unknown labels, delegation
    /// without responsibility) are applied permissively — validity is the
    /// generator's job; see `rh-workload`.
    pub fn apply(&mut self, ev: &Event) {
        self.last_undone.clear();
        match ev {
            Event::Begin(t) => {
                self.active.insert(*t);
            }
            Event::Write(t, ob, v) => {
                let before = self.value(*ob);
                self.apply_update(*t, *ob, UpdateOp::Write { before, after: *v });
            }
            Event::Add(t, ob, d) => {
                self.apply_update(*t, *ob, UpdateOp::Add { delta: *d });
            }
            Event::Delegate(tor, tee, obs) => {
                for o in &mut self.ops {
                    if o.live && o.responsible == *tor && obs.contains(&o.ob) {
                        o.responsible = *tee;
                    }
                }
            }
            Event::DelegateAll(tor, tee) => {
                for o in &mut self.ops {
                    if o.live && o.responsible == *tor {
                        o.responsible = *tee;
                    }
                }
            }
            Event::Commit(t) => {
                self.active.remove(t);
                // §2.1.2: all updates in Op_List(t) become permanent.
                for o in &mut self.ops {
                    if o.live && o.responsible == *t {
                        o.live = false;
                        o.committed = true;
                    }
                }
            }
            Event::Abort(t) => {
                self.active.remove(t);
                // §2.1.2: all updates in Op_List(t) are obliterated.
                let just_t = BTreeSet::from([*t]);
                self.undo_losers(&just_t);
            }
            Event::Savepoint(t, slot) => {
                self.savepoints.insert((*t, *slot), self.ops.len());
            }
            Event::RollbackTo(t, slot) => {
                // Positional partial rollback: undo (newest first) the
                // live ops invoked at/after the marker for which `t` is
                // responsible. Ops invoked earlier — even if delegated to
                // `t` afterwards — are untouched, matching the LSN-based
                // engine semantics.
                if let Some(&marker) = self.savepoints.get(&(*t, *slot)) {
                    for i in (marker..self.ops.len()).rev() {
                        if self.ops[i].live && self.ops[i].responsible == *t {
                            let (ob, op) = (self.ops[i].ob, self.ops[i].op);
                            let cur = self.value(ob);
                            self.values.insert(ob, op.undo(cur));
                            self.ops[i].live = false;
                            self.last_undone.push((ob, *t));
                        }
                    }
                }
            }
            Event::Checkpoint => {}
            Event::Crash => {
                // Every active transaction is a loser; their live updates
                // are undone in reverse order, matching the backward pass.
                let losers = std::mem::take(&mut self.active);
                self.undo_losers(&losers);
            }
        }
    }

    /// Applies a whole history.
    pub fn run(events: &[Event]) -> Self {
        let mut o = Oracle::new();
        for ev in events {
            o.apply(ev);
        }
        o
    }
}

/// Replays an abstract history through a real engine. Labels are mapped
/// to engine transaction ids at their `Begin`. Returns the engine after
/// the final event (crashes included).
pub fn replay_engine<E: TxnEngine>(mut engine: E, events: &[Event]) -> Result<E> {
    let mut ids: HashMap<Label, TxnId> = HashMap::new();
    let mut sp_tokens: HashMap<(Label, u32), u64> = HashMap::new();
    for ev in events {
        match ev {
            Event::Begin(t) => {
                let id = engine.begin()?;
                ids.insert(*t, id);
            }
            Event::Write(t, ob, v) => engine.write(ids[t], *ob, *v)?,
            Event::Add(t, ob, d) => engine.add(ids[t], *ob, *d)?,
            Event::Delegate(tor, tee, obs) => engine.delegate(ids[tor], ids[tee], obs)?,
            Event::DelegateAll(tor, tee) => engine.delegate_all(ids[tor], ids[tee])?,
            Event::Commit(t) => engine.commit(ids[t])?,
            Event::Abort(t) => engine.abort(ids[t])?,
            Event::Savepoint(t, slot) => {
                let token = engine.savepoint(ids[t])?;
                sp_tokens.insert((*t, *slot), token);
            }
            Event::RollbackTo(t, slot) => {
                if let Some(&token) = sp_tokens.get(&(*t, *slot)) {
                    engine.rollback_to(ids[t], token)?;
                }
            }
            Event::Checkpoint => engine.checkpoint()?,
            Event::Crash => {
                ids.clear();
                sp_tokens.clear();
                engine = engine.crash_and_recover()?;
            }
        }
    }
    Ok(engine)
}

/// Replays a history through both an engine and the oracle and asserts
/// the final database states agree on every touched object. Returns the
/// engine for further inspection. Panics (with context) on divergence —
/// intended for tests.
pub fn assert_engine_matches_oracle<E: TxnEngine>(engine: E, events: &[Event]) -> E {
    let oracle = Oracle::run(events);
    let mut engine = replay_engine(engine, events).expect("replay failed");
    for ob in oracle.touched() {
        let got = engine.value_of(ob).expect("value_of failed");
        let want = oracle.value(ob);
        assert_eq!(
            got, want,
            "divergence on {ob}: engine={got}, oracle={want}\nhistory: {events:#?}"
        );
    }
    engine
}

pub mod synth {
    //! Deterministic synthesis of *valid* histories from arbitrary bytes.
    //!
    //! Property tests want "any history" — but engines reject ill-formed
    //! events (delegating objects one is not responsible for, §2.1.2) and
    //! refuse conflicting locks. [`sanitize`] maps an arbitrary sequence
    //! of raw tuples to a history that is well-formed by construction: it
    //! runs an [`Oracle`] for responsibility tracking and a shadow
    //! [`rh_lock::LockManager`] (the same code the engines use) for
    //! conflict prediction, skipping steps that would be rejected.
    //! Deterministic mapping keeps proptest shrinking meaningful.

    use super::{Event, Label, Oracle};
    use rh_common::{ObjectId, TxnId};
    use rh_lock::{LockManager, LockMode};

    /// Tuning for the synthesizer.
    #[derive(Debug, Clone, Copy)]
    pub struct SynthOpts {
        /// Number of distinct objects steps may touch.
        pub objects: u64,
        /// Maximum concurrently-active transactions.
        pub max_active: usize,
        /// Permit crash events (disable for engines under test that keep
        /// no stable state).
        pub allow_crash: bool,
        /// Permit checkpoint events.
        pub allow_checkpoint: bool,
    }

    impl Default for SynthOpts {
        fn default() -> Self {
            SynthOpts { objects: 8, max_active: 5, allow_crash: true, allow_checkpoint: true }
        }
    }

    /// One raw step: interpreted modulo the current state. The tuple form
    /// keeps proptest strategies trivial (`any::<Vec<(u8,u8,u8,i8)>>()`).
    pub type RawStep = (u8, u8, u8, i8);

    /// Translates raw steps into a valid history. Steps that would be
    /// ill-formed or lock-rejected are skipped, so any raw input yields a
    /// replayable history.
    pub fn sanitize(raw: &[RawStep], opts: SynthOpts) -> Vec<Event> {
        let mut events = Vec::with_capacity(raw.len());
        let mut oracle = Oracle::new();
        let locks = LockManager::new();
        let mut active: Vec<Label> = Vec::new();
        let mut next_label: Label = 0;

        let emit =
            |ev: Event, oracle: &mut Oracle, active: &mut Vec<Label>, events: &mut Vec<Event>| {
                oracle.apply(&ev);
                if let Event::Commit(t) | Event::Abort(t) = &ev {
                    active.retain(|x| x != t);
                    locks.release_all(TxnId(*t as u64));
                }
                events.push(ev);
            };

        let mut sp_slots: std::collections::HashMap<Label, Vec<u32>> =
            std::collections::HashMap::new();
        let mut next_slot: u32 = 0;
        for &(a, b, c, d) in raw {
            let choice = a % 14;
            match choice {
                // --- begin -------------------------------------------------
                0 | 1 => {
                    if active.len() < opts.max_active {
                        let t = next_label;
                        next_label += 1;
                        active.push(t);
                        emit(Event::Begin(t), &mut oracle, &mut active, &mut events);
                    }
                }
                // --- write (exclusive) --------------------------------------
                2 | 3 => {
                    if active.is_empty() {
                        continue;
                    }
                    let t = active[b as usize % active.len()];
                    let ob = ObjectId(c as u64 % opts.objects);
                    if locks.try_acquire(TxnId(t as u64), ob, LockMode::Exclusive).is_ok() {
                        emit(Event::Write(t, ob, d as i64), &mut oracle, &mut active, &mut events);
                    }
                }
                // --- add (increment) ----------------------------------------
                4 | 5 => {
                    if active.is_empty() {
                        continue;
                    }
                    let t = active[b as usize % active.len()];
                    let ob = ObjectId(c as u64 % opts.objects);
                    if locks.try_acquire(TxnId(t as u64), ob, LockMode::Increment).is_ok() {
                        emit(Event::Add(t, ob, d as i64), &mut oracle, &mut active, &mut events);
                    }
                }
                // --- delegate one object ------------------------------------
                6 | 7 => {
                    if active.len() < 2 {
                        continue;
                    }
                    let tor = active[b as usize % active.len()];
                    let tee = active[c as usize % active.len()];
                    if tor == tee {
                        continue;
                    }
                    let resp: Vec<ObjectId> = oracle.responsible_objects(tor).into_iter().collect();
                    if resp.is_empty() {
                        continue;
                    }
                    let ob = resp[d.unsigned_abs() as usize % resp.len()];
                    locks.transfer(TxnId(tor as u64), TxnId(tee as u64), ob);
                    emit(
                        Event::Delegate(tor, tee, vec![ob]),
                        &mut oracle,
                        &mut active,
                        &mut events,
                    );
                }
                // --- delegate all -------------------------------------------
                8 => {
                    if active.len() < 2 {
                        continue;
                    }
                    let tor = active[b as usize % active.len()];
                    let tee = active[c as usize % active.len()];
                    if tor == tee {
                        continue;
                    }
                    locks.transfer_all(TxnId(tor as u64), TxnId(tee as u64));
                    emit(Event::DelegateAll(tor, tee), &mut oracle, &mut active, &mut events);
                }
                // --- commit --------------------------------------------------
                9 => {
                    if active.is_empty() {
                        continue;
                    }
                    let t = active[b as usize % active.len()];
                    emit(Event::Commit(t), &mut oracle, &mut active, &mut events);
                }
                // --- abort ---------------------------------------------------
                10 => {
                    if active.is_empty() {
                        continue;
                    }
                    let t = active[b as usize % active.len()];
                    emit(Event::Abort(t), &mut oracle, &mut active, &mut events);
                }
                // --- savepoint ------------------------------------------------
                12 => {
                    if active.is_empty() {
                        continue;
                    }
                    let t = active[b as usize % active.len()];
                    let slot = next_slot;
                    next_slot += 1;
                    sp_slots.entry(t).or_default().push(slot);
                    emit(Event::Savepoint(t, slot), &mut oracle, &mut active, &mut events);
                }
                // --- rollback to a savepoint -----------------------------------
                13 => {
                    if active.is_empty() {
                        continue;
                    }
                    let t = active[b as usize % active.len()];
                    let Some(slots) = sp_slots.get(&t) else { continue };
                    if slots.is_empty() {
                        continue;
                    }
                    let slot = slots[c as usize % slots.len()];
                    // Rollback releases no locks in the engines (the
                    // transaction stays active and keeps its locks), so
                    // the shadow lock manager needs no change.
                    emit(Event::RollbackTo(t, slot), &mut oracle, &mut active, &mut events);
                }
                // --- crash / checkpoint --------------------------------------
                _ => {
                    if b % 3 == 0 && opts.allow_crash {
                        for &t in &active {
                            locks.release_all(TxnId(t as u64));
                        }
                        active.clear();
                        emit(Event::Crash, &mut oracle, &mut active, &mut events);
                    } else if opts.allow_checkpoint {
                        emit(Event::Checkpoint, &mut oracle, &mut active, &mut events);
                    }
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ObjectId = ObjectId(0);
    const B: ObjectId = ObjectId(1);

    #[test]
    fn boring_commit_persists() {
        let o = Oracle::run(&[Event::Begin(1), Event::Write(1, A, 5), Event::Commit(1)]);
        assert_eq!(o.value(A), 5);
    }

    #[test]
    fn boring_abort_restores() {
        let o = Oracle::run(&[Event::Begin(1), Event::Write(1, A, 5), Event::Abort(1)]);
        assert_eq!(o.value(A), 0);
    }

    #[test]
    fn crash_undoes_active() {
        let o = Oracle::run(&[
            Event::Begin(1),
            Event::Begin(2),
            Event::Write(1, A, 5),
            Event::Add(2, B, 3),
            Event::Commit(1),
            Event::Crash,
        ]);
        assert_eq!(o.value(A), 5);
        assert_eq!(o.value(B), 0);
        assert!(o.active().is_empty());
    }

    #[test]
    fn delegated_update_survives_delegator_abort() {
        // The motivating example of §2.1.2's commit/abort rule.
        let o = Oracle::run(&[
            Event::Begin(1),
            Event::Begin(2),
            Event::Write(1, A, 7),
            Event::Delegate(1, 2, vec![A]),
            Event::Abort(1),
            Event::Commit(2),
        ]);
        assert_eq!(o.value(A), 7);
    }

    #[test]
    fn delegated_update_dies_with_delegatee() {
        let o = Oracle::run(&[
            Event::Begin(1),
            Event::Begin(2),
            Event::Write(1, A, 7),
            Event::Delegate(1, 2, vec![A]),
            Event::Commit(1), // commits nothing on A: responsibility moved
            Event::Abort(2),
        ]);
        assert_eq!(o.value(A), 0);
    }

    #[test]
    fn example2_split_fates() {
        // §3.4 Example 2: update, delegate to t1, update again, delegate
        // to t2; t1 commits, t2 aborts — first update persists, second is
        // undone. Using adds so the effects compose observably.
        let o = Oracle::run(&[
            Event::Begin(0),
            Event::Begin(1),
            Event::Begin(2),
            Event::Add(0, A, 10),
            Event::Delegate(0, 1, vec![A]),
            Event::Add(0, A, 100),
            Event::Delegate(0, 2, vec![A]),
            Event::Abort(2),
            Event::Commit(1),
            Event::Commit(0),
        ]);
        assert_eq!(o.value(A), 10);
    }

    #[test]
    fn delegation_chain_follows_final_delegatee() {
        let o = Oracle::run(&[
            Event::Begin(0),
            Event::Begin(1),
            Event::Begin(2),
            Event::Write(0, A, 3),
            Event::Delegate(0, 1, vec![A]),
            Event::Delegate(1, 2, vec![A]),
            Event::Commit(0),
            Event::Commit(1),
            Event::Crash, // t2 active -> loser -> update undone
        ]);
        assert_eq!(o.value(A), 0);
    }

    #[test]
    fn responsible_objects_tracks_delegation() {
        let mut o = Oracle::new();
        for ev in [Event::Begin(1), Event::Begin(2), Event::Write(1, A, 5)] {
            o.apply(&ev);
        }
        assert_eq!(o.responsible_objects(1), BTreeSet::from([A]));
        o.apply(&Event::Delegate(1, 2, vec![A]));
        assert!(o.responsible_objects(1).is_empty());
        assert_eq!(o.responsible_objects(2), BTreeSet::from([A]));
    }

    #[test]
    fn interleaved_adds_undo_logically() {
        let o = Oracle::run(&[
            Event::Begin(1),
            Event::Begin(2),
            Event::Add(1, A, 1),
            Event::Add(2, A, 10),
            Event::Add(1, A, 100),
            Event::Commit(2),
            Event::Abort(1), // -101, keeping t2's +10
        ]);
        assert_eq!(o.value(A), 10);
    }

    #[test]
    fn value_as_of_excludes_live_updates() {
        let mut o = Oracle::new();
        for ev in [
            Event::Begin(1),
            Event::Begin(2),
            Event::Add(1, A, 5),
            Event::Commit(1),
            Event::Add(2, A, 100),
        ] {
            o.apply(&ev);
        }
        // The raw map sees t2's live +100; the committed state does not.
        assert_eq!(o.value(A), 105);
        assert_eq!(o.value_as_of(A), 5);
        o.apply(&Event::Commit(2));
        assert_eq!(o.value_as_of(A), 105);
    }

    #[test]
    fn versions_record_at_the_time_values_and_final_responsibility() {
        let o = Oracle::run(&[
            Event::Begin(1),
            Event::Begin(2),
            Event::Add(1, A, 1),
            Event::Add(2, A, 10),
            Event::Delegate(1, 2, vec![A]),
            Event::Commit(1), // commits nothing on A: responsibility moved
            Event::Commit(2),
        ]);
        // Both updates resolve through t2, each with the value the
        // object held right after it applied.
        assert_eq!(o.versions(A), vec![(2, 1), (2, 11)]);
    }

    #[test]
    fn undone_updates_never_become_versions() {
        let o = Oracle::run(&[
            Event::Begin(1),
            Event::Begin(2),
            Event::Add(1, A, 1),
            Event::Add(2, A, 10),
            Event::Commit(2),
            Event::Abort(1),
        ]);
        assert_eq!(o.versions(A), vec![(2, 11)]);
        assert_eq!(o.value_as_of(A), 10);
    }

    #[test]
    fn delegate_all_moves_everything() {
        let o = Oracle::run(&[
            Event::Begin(1),
            Event::Begin(2),
            Event::Write(1, A, 1),
            Event::Write(1, B, 2),
            Event::DelegateAll(1, 2),
            Event::Abort(1),
            Event::Commit(2),
        ]);
        assert_eq!(o.value(A), 1);
        assert_eq!(o.value(B), 2);
    }
}
