//! Time-travel reads and reenactment audit (ROADMAP item 5a).
//!
//! Delegation's premise is that history is *interpreted*, never
//! rewritten: the log keeps saying "T1 wrote X at LSN l" while the scope
//! tables decide who answers for it. That means the WAL — plus the
//! checkpointed scope tables and the provenance chains — already contains
//! everything needed to answer "what was this object's value as of LSN L,
//! and who was responsible for it". This module turns that observation
//! into a queryable surface, in the spirit of reenactment query
//! processing (Arab et al., arXiv:1608.08258): [`replay`] reconstructs an
//! object's state at any retained LSN by replaying the log through a
//! *shadow* scope table, without ever touching live pages or the live
//! engine state.
//!
//! ## Algorithm
//!
//! 1. **Seed.** Scan backward from the target LSN for the newest
//!    decodable `CheckpointEnd` at-or-below it. Its snapshot provides the
//!    object's value at checkpoint time (the checkpoint captures a value
//!    overlay right after its `flush_all`, while the engine is
//!    exclusively held — so the overlay *is* the database state at
//!    `CheckpointBegin`), the transaction table with its scope-bearing
//!    Ob_Lists, the compensated-LSN set, and the provenance chains. With
//!    no checkpoint below the target the replay seeds from the log's
//!    first record and the initial value — correct whenever the log was
//!    never truncated, an error otherwise.
//! 2. **Replay.** Scan forward to the target, repeating history on the
//!    one object: every `Update`/`Clr` on it is applied in LSN order, so
//!    the running value at LSN L equals the page state a crash-recovery
//!    at L would rebuild. Commit, abort, prepare, and delegate records
//!    drive the shadow transaction table exactly as the recovery forward
//!    pass does; a delegate additionally retargets the *pending* (not yet
//!    committed) updates of the delegator to the delegatee, recording the
//!    hop on each — that is the per-version provenance trail.
//! 3. **Resolve.** A commit freezes the committer's un-compensated
//!    pending updates into [`VersionRecord`]s. Updates still owned by an
//!    active transaction at the target become the *undo set*: the
//!    as-of value is the all-applied value with those ops undone in
//!    reverse LSN order — precisely what recovery's backward pass would
//!    do, so `read_as_of(ob, L)` equals the committed state a crash at L
//!    recovers. Prepared-but-undecided transactions are reported as
//!    [`InDoubt`]: the caller decides their fate (the sharded router
//!    consults other shards' durable `CoordCommit` records, stitching
//!    cross-shard histories by global transaction id; a standalone engine
//!    presumes abort, like recovery).
//!
//! Updates that precede the seeding checkpoint but belong to scopes still
//! live at it are reconstructed by a bounded pre-seed scan: the records
//! are guaranteed readable (log truncation never passes the oldest live
//! scope), and their at-the-time values are recovered by *undoing* the
//! suffix of operations between them and the checkpoint — `UpdateOp::undo`
//! is exact, so the overlay plus the op sequence determines every
//! intermediate value.

use crate::checkpoint::CheckpointSnapshot;
use crate::provenance::{ProvHop, ProvenanceTable};
use crate::txn_table::{TrList, TxnStatus};
use rh_common::codec::Codec;
use rh_common::{Lsn, ObjectId, Result, RhError, TxnId, UpdateOp, Value};
use rh_obs::JsonValue;
use rh_wal::record::{DelegateBody, RecordBody};
use rh_wal::LogManager;
use std::collections::HashSet;

/// One committed version of an object: an update stitched with its full
/// responsibility trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionRecord {
    /// LSN of the update record that produced this version.
    pub lsn: Lsn,
    /// The object's value immediately after the update applied.
    pub value: Value,
    /// The transaction that physically logged the update.
    pub invoker: TxnId,
    /// The transaction that answered for it at commit time (differs from
    /// `invoker` exactly when the update was delegated).
    pub responsible: TxnId,
    /// LSN of the commit record that made this version durable truth
    /// (for a cross-shard decision, the local `Prepare` LSN).
    pub committed_at: Lsn,
    /// The delegation hops that moved responsibility from `invoker` to
    /// `responsible`, in log order (empty when never delegated).
    pub hops: Vec<ProvHop>,
    /// The originating trace id, when the commit was stitched to a
    /// request trace (filled by the engine from the tracer ring; `None`
    /// in pure log replay).
    pub trace: Option<u64>,
}

impl VersionRecord {
    /// Renders one `history.v1` version entry.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("lsn", JsonValue::U64(self.lsn.raw())),
            ("value", JsonValue::I64(self.value)),
            ("invoker", JsonValue::U64(self.invoker.raw())),
            ("responsible", JsonValue::U64(self.responsible.raw())),
            ("committed_at", JsonValue::U64(self.committed_at.raw())),
            ("hops", JsonValue::Arr(self.hops.iter().map(ProvHop::to_json).collect())),
        ];
        if let Some(t) = self.trace {
            fields.push(("trace", JsonValue::U64(t)));
        }
        JsonValue::obj(fields)
    }
}

/// A transaction prepared but undecided at the target LSN. Its effects
/// are part of the all-applied value; the caller picks a fate.
#[derive(Debug, Clone)]
pub struct InDoubt {
    /// The in-doubt transaction (a global id under 2PC).
    pub txn: TxnId,
    /// LSN of its `Prepare` record.
    pub prepared_at: Lsn,
    /// The versions its updates become if a coordinator committed it.
    versions: Vec<VersionRecord>,
    /// The `(lsn, op)` pairs to undo if it is presumed aborted.
    undo: Vec<(Lsn, UpdateOp)>,
}

impl InDoubt {
    /// The versions this transaction contributes if globally committed.
    pub fn versions_if_committed(&self) -> &[VersionRecord] {
        &self.versions
    }
}

/// The result of reenacting one object up to a target LSN.
#[derive(Debug, Clone)]
pub struct Reenactment {
    /// The object replayed.
    pub ob: ObjectId,
    /// The effective target LSN (clamped to the last record; `NULL` only
    /// on an empty log).
    pub as_of: Lsn,
    /// LSN of the `CheckpointEnd` the replay seeded from, if any.
    pub seeded_from: Option<Lsn>,
    /// Transactions prepared but undecided at the target.
    pub in_doubt: Vec<InDoubt>,
    /// Log records visited (seek + replay + pre-seed reconstruction).
    pub records_scanned: u64,
    /// Committed versions in LSN order (commits at/below the target).
    versions: Vec<VersionRecord>,
    /// The value with *every* retained update applied (repeating
    /// history), before loser/in-doubt undo.
    value_all: Value,
    /// Un-compensated updates of transactions still active at the
    /// target, ascending by LSN.
    loser_undo: Vec<(Lsn, UpdateOp)>,
}

impl Reenactment {
    /// The committed value as of the target, presuming every in-doubt
    /// transaction aborts — exactly what a crash at the target recovers
    /// on a standalone engine.
    pub fn value(&self) -> Value {
        self.value_with(|_| false)
    }

    /// The committed value as of the target, with `decided` answering
    /// whether an in-doubt transaction was globally committed.
    pub fn value_with(&self, decided: impl Fn(TxnId) -> bool) -> Value {
        let mut undo: Vec<(Lsn, UpdateOp)> = self.loser_undo.clone();
        for d in &self.in_doubt {
            if !decided(d.txn) {
                undo.extend(d.undo.iter().cloned());
            }
        }
        // Reverse LSN order, like recovery's backward pass.
        undo.sort_by_key(|&(l, _)| std::cmp::Reverse(l));
        let mut v = self.value_all;
        for (_, op) in &undo {
            v = op.undo(v);
        }
        v
    }

    /// Committed versions in LSN order, presuming in-doubt aborts.
    pub fn versions(&self) -> Vec<VersionRecord> {
        self.versions_with(|_| false)
    }

    /// Committed versions in LSN order, merging in the versions of
    /// in-doubt transactions `decided` reports as globally committed.
    pub fn versions_with(&self, decided: impl Fn(TxnId) -> bool) -> Vec<VersionRecord> {
        let mut out = self.versions.clone();
        for d in &self.in_doubt {
            if decided(d.txn) {
                out.extend(d.versions.iter().cloned());
            }
        }
        out.sort_by_key(|v| v.lsn);
        out
    }

    /// Renders the `history.v1` artifact for this replay, restricting
    /// versions to update LSNs within `[from, to]` (pass `Lsn::FIRST`
    /// and the target to keep everything). `decided` resolves in-doubt
    /// transactions, as in [`Self::versions_with`].
    pub fn to_json_range(&self, from: Lsn, to: Lsn, decided: impl Fn(TxnId) -> bool) -> JsonValue {
        let versions: Vec<JsonValue> = self
            .versions_with(&decided)
            .iter()
            .filter(|v| v.lsn >= from && v.lsn <= to)
            .map(VersionRecord::to_json)
            .collect();
        JsonValue::obj(vec![
            ("schema", JsonValue::Str("history.v1".to_string())),
            ("object", JsonValue::U64(self.ob.raw())),
            ("as_of", JsonValue::U64(self.as_of.raw())),
            ("value", JsonValue::I64(self.value_with(&decided))),
            (
                "seeded_from",
                match self.seeded_from {
                    Some(l) => JsonValue::U64(l.raw()),
                    None => JsonValue::Null,
                },
            ),
            (
                "in_doubt",
                JsonValue::Arr(self.in_doubt.iter().map(|d| JsonValue::U64(d.txn.raw())).collect()),
            ),
            ("versions", JsonValue::Arr(versions)),
        ])
    }
}

/// An update replayed but not yet resolved by a commit/abort.
struct Pending {
    lsn: Lsn,
    value_after: Value,
    invoker: TxnId,
    /// The transaction currently answering for it (moves on delegate).
    owner: TxnId,
    op: UpdateOp,
    hops: Vec<ProvHop>,
}

/// A transaction whose resolution needs pre-seed scope reconstruction:
/// `committed_at` is `Some(lsn)` for winners, `None` for losers and
/// in-doubt transactions (whose ops join an undo set instead).
struct PreSeedNeed {
    txn: TxnId,
    committed_at: Option<Lsn>,
    scopes: Vec<crate::scope::Scope>,
}

fn ensure_txn(tr: &mut TrList, txn: TxnId, lsn: Lsn) {
    if !tr.contains(txn) {
        tr.insert(txn, lsn);
    }
}

/// Walks `ob`'s provenance chain to reconstruct the hop trail of an
/// update invoked by `invoker` at `lsn`, following transfers up to
/// `until` (the resolution LSN). A hop moves every scope its `from`
/// holds, so the trail follows `from == current owner`.
fn hops_for(
    prov: &ProvenanceTable,
    ob: ObjectId,
    invoker: TxnId,
    lsn: Lsn,
    until: Lsn,
) -> Vec<ProvHop> {
    let mut owner = invoker;
    let mut hops = Vec::new();
    for hop in prov.chain(ob) {
        if hop.lsn > lsn && hop.lsn <= until && hop.from == owner {
            hops.push(*hop);
            owner = hop.to;
        }
    }
    hops
}

/// Reenacts `ob` up to `as_of` (inclusive; `Lsn::NULL` means the log's
/// last record) against `log` alone — live pages and live engine state
/// are never consulted, so this can run concurrently with a loaded
/// engine. Errors with [`RhError::Reenact`] when the target precedes the
/// retained log and no surviving checkpoint covers it.
pub fn replay(log: &LogManager, ob: ObjectId, as_of: Lsn) -> Result<Reenactment> {
    let last = log.last_lsn();
    let mut scanned: u64 = 0;
    if last.is_null() {
        // Empty log: the object is at its initial value, no history.
        return Ok(Reenactment {
            ob,
            as_of: Lsn::NULL,
            seeded_from: None,
            in_doubt: Vec::new(),
            records_scanned: 0,
            versions: Vec::new(),
            value_all: rh_storage::Page::INITIAL_VALUE,
            loser_undo: Vec::new(),
        });
    }
    let as_of = if as_of.is_null() || as_of > last { last } else { as_of };
    let first = log.first_lsn();

    // ---- seed: newest decodable CheckpointEnd at-or-below the target --
    let mut seed: Option<(Lsn, CheckpointSnapshot)> = None;
    let mut cursor = as_of;
    while !cursor.is_null() && cursor >= first {
        let rec = log.read(cursor)?;
        scanned += 1;
        if let RecordBody::CheckpointEnd { payload } = &rec.body {
            if let Ok(snap) = CheckpointSnapshot::from_bytes(payload) {
                seed = Some((cursor, snap));
                break;
            }
        }
        cursor = cursor.prev();
    }
    if seed.is_none() && first > Lsn::FIRST {
        return Err(RhError::Reenact {
            as_of,
            reason: "target precedes the retained log and no checkpoint survives at-or-below it",
        });
    }

    let (scan_from, seed_val, mut tr, mut compensated, mut prov, seeded_from) = match seed {
        Some((cl, snap)) => {
            let v = snap
                .values
                .iter()
                .find(|(o, _)| *o == ob)
                .map(|&(_, v)| v)
                .unwrap_or(rh_storage::Page::INITIAL_VALUE);
            let comp: HashSet<Lsn> = snap.compensated.iter().copied().collect();
            (cl.next(), v, snap.tr_list, comp, snap.provenance, Some(cl))
        }
        None => (
            first,
            rh_storage::Page::INITIAL_VALUE,
            TrList::new(),
            HashSet::new(),
            ProvenanceTable::new(),
            None,
        ),
    };

    // ---- replay: repeat history on this one object ---------------------
    let mut val = seed_val;
    let mut pending: Vec<Pending> = Vec::new();
    let mut versions: Vec<VersionRecord> = Vec::new();
    let mut needs: Vec<PreSeedNeed> = Vec::new();
    let mut in_doubt: Vec<InDoubt> = Vec::new();

    // Scopes on `ob` reaching back before the seed, captured at the
    // moment the owning transaction resolves (commit) or at scan end
    // (active/prepared) — resolved by the pre-seed pass below.
    let pre_seed_scopes = |tr: &TrList, t: TxnId, scan_from: Lsn| -> Vec<crate::scope::Scope> {
        tr.get(t)
            .ok()
            .and_then(|e| e.ob_list.get(ob))
            .map(|e| e.scopes.iter().filter(|s| s.first < scan_from).copied().collect())
            .unwrap_or_default()
    };

    let mut lsn = scan_from;
    while !lsn.is_null() && lsn <= as_of {
        let rec = log.read(lsn)?;
        scanned += 1;
        match &rec.body {
            RecordBody::Begin => ensure_txn(&mut tr, rec.txn, lsn),
            RecordBody::Update { ob: o, op } => {
                ensure_txn(&mut tr, rec.txn, lsn);
                tr.set_bc(rec.txn, lsn)?;
                tr.get_mut(rec.txn)?.ob_list.record_update(*o, rec.txn, lsn);
                if *o == ob {
                    val = op.apply(val);
                    pending.push(Pending {
                        lsn,
                        value_after: val,
                        invoker: rec.txn,
                        owner: rec.txn,
                        op: *op,
                        hops: Vec::new(),
                    });
                }
            }
            RecordBody::Clr { ob: o, op, compensated: c, .. } => {
                ensure_txn(&mut tr, rec.txn, lsn);
                tr.set_bc(rec.txn, lsn)?;
                compensated.insert(*c);
                if *o == ob {
                    val = op.apply(val);
                }
            }
            RecordBody::Delegate { tee, body, .. } => {
                ensure_txn(&mut tr, rec.txn, lsn);
                ensure_txn(&mut tr, *tee, lsn);
                let objects: Vec<ObjectId> = match body {
                    DelegateBody::Objects(objs) => objs.clone(),
                    DelegateBody::All => tr.get(rec.txn)?.ob_list.objects().collect(),
                };
                for o in objects {
                    if let Some(entry) = tr.get_mut(rec.txn)?.ob_list.take(o) {
                        tr.get_mut(*tee)?.ob_list.absorb(o, entry, rec.txn);
                        prov.record_hop(o, rec.txn, *tee, lsn);
                        if o == ob {
                            // Responsibility for the pending updates of
                            // the delegator moves to the delegatee.
                            for p in pending.iter_mut().filter(|p| p.owner == rec.txn) {
                                p.owner = *tee;
                                p.hops.push(ProvHop { from: rec.txn, to: *tee, lsn });
                            }
                        }
                    }
                }
                tr.set_bc(rec.txn, lsn)?;
                tr.set_bc(*tee, lsn)?;
            }
            RecordBody::Commit | RecordBody::CoordCommit { .. } => {
                ensure_txn(&mut tr, rec.txn, lsn);
                tr.set_bc(rec.txn, lsn)?;
                let scopes = pre_seed_scopes(&tr, rec.txn, scan_from);
                if !scopes.is_empty() {
                    needs.push(PreSeedNeed { txn: rec.txn, committed_at: Some(lsn), scopes });
                }
                tr.get_mut(rec.txn)?.status = TxnStatus::Committed;
                let mut kept = Vec::with_capacity(pending.len());
                for p in pending.drain(..) {
                    if p.owner == rec.txn {
                        if !compensated.contains(&p.lsn) {
                            versions.push(VersionRecord {
                                lsn: p.lsn,
                                value: p.value_after,
                                invoker: p.invoker,
                                responsible: rec.txn,
                                committed_at: lsn,
                                hops: p.hops,
                                trace: None,
                            });
                        }
                    } else {
                        kept.push(p);
                    }
                }
                pending = kept;
            }
            RecordBody::Abort => {
                ensure_txn(&mut tr, rec.txn, lsn);
                tr.set_bc(rec.txn, lsn)?;
                let entry = tr.get_mut(rec.txn)?;
                entry.status = TxnStatus::Aborted;
                // The abort record follows the CLRs that undid every
                // responsible update — those pendings are already
                // re-reversed in `val`, so they simply disappear.
                entry.ob_list = crate::oblist::ObList::new();
                pending.retain(|p| p.owner != rec.txn);
            }
            RecordBody::End => {
                tr.remove(rec.txn);
            }
            RecordBody::Prepare => {
                ensure_txn(&mut tr, rec.txn, lsn);
                tr.set_bc(rec.txn, lsn)?;
                tr.get_mut(rec.txn)?.status = TxnStatus::Prepared;
            }
            RecordBody::CheckpointBegin | RecordBody::CheckpointEnd { .. } => {}
        }
        lsn = lsn.next();
    }

    // ---- unresolved transactions at the target -------------------------
    let mut loser_undo: Vec<(Lsn, UpdateOp)> = Vec::new();
    for (t, e) in tr.iter() {
        match e.status {
            TxnStatus::Active => {
                let scopes = pre_seed_scopes(&tr, t, scan_from);
                if !scopes.is_empty() {
                    needs.push(PreSeedNeed { txn: t, committed_at: None, scopes });
                }
            }
            TxnStatus::Prepared => {
                let scopes = pre_seed_scopes(&tr, t, scan_from);
                let prepared_at = e.last_lsn;
                let mut d = InDoubt { txn: t, prepared_at, versions: Vec::new(), undo: Vec::new() };
                for p in pending.iter().filter(|p| p.owner == t) {
                    if !compensated.contains(&p.lsn) {
                        d.versions.push(VersionRecord {
                            lsn: p.lsn,
                            value: p.value_after,
                            invoker: p.invoker,
                            responsible: t,
                            committed_at: prepared_at,
                            hops: p.hops.clone(),
                            trace: None,
                        });
                        d.undo.push((p.lsn, p.op));
                    }
                }
                if !scopes.is_empty() {
                    needs.push(PreSeedNeed { txn: t, committed_at: None, scopes });
                }
                in_doubt.push(d);
            }
            TxnStatus::Committed | TxnStatus::Aborted => {}
        }
    }
    for p in pending.iter() {
        let active = tr.get(p.owner).map(|e| e.status == TxnStatus::Active).unwrap_or(false);
        if active && !compensated.contains(&p.lsn) {
            loser_undo.push((p.lsn, p.op));
        }
    }

    // ---- pre-seed reconstruction ---------------------------------------
    // Scopes alive at the checkpoint can cover updates behind the seed.
    // Their records are retained (truncation never passes the oldest
    // live scope), and their at-the-time values follow by undoing the
    // op suffix between them and the checkpoint's value overlay.
    if !needs.is_empty() {
        let start = needs
            .iter()
            .flat_map(|n| n.scopes.iter().map(|s| s.first))
            .min()
            .unwrap_or(scan_from)
            .max(first);
        // All ops on `ob` in [start, scan_from), in LSN order.
        let mut pre_ops: Vec<(Lsn, TxnId, UpdateOp, bool)> = Vec::new();
        let mut l = start;
        while !l.is_null() && l < scan_from {
            let rec = log.read(l)?;
            scanned += 1;
            match &rec.body {
                RecordBody::Update { ob: o, op } if *o == ob => {
                    pre_ops.push((l, rec.txn, *op, false));
                }
                RecordBody::Clr { ob: o, op, compensated: c, .. } if *o == ob => {
                    compensated.insert(*c);
                    pre_ops.push((l, rec.txn, *op, true));
                }
                _ => {}
            }
            l = l.next();
        }
        // Values at the time: walk backward from the seed value.
        let mut value_after = vec![seed_val; pre_ops.len()];
        let mut cur = seed_val;
        for (i, (_, _, op, _)) in pre_ops.iter().enumerate().rev() {
            value_after[i] = cur;
            cur = op.undo(cur);
        }
        for need in &needs {
            for (i, &(l, txn, op, is_clr)) in pre_ops.iter().enumerate() {
                if is_clr || compensated.contains(&l) {
                    continue;
                }
                if !need.scopes.iter().any(|s| s.invoker == txn && s.covers(l)) {
                    continue;
                }
                match need.committed_at {
                    Some(c) => versions.push(VersionRecord {
                        lsn: l,
                        value: value_after[i],
                        invoker: txn,
                        responsible: need.txn,
                        committed_at: c,
                        hops: hops_for(&prov, ob, txn, l, c),
                        trace: None,
                    }),
                    None => {
                        // Loser or in-doubt: joins the matching undo set.
                        if let Some(d) = in_doubt.iter_mut().find(|d| d.txn == need.txn) {
                            d.undo.push((l, op));
                            d.versions.push(VersionRecord {
                                lsn: l,
                                value: value_after[i],
                                invoker: txn,
                                responsible: need.txn,
                                committed_at: d.prepared_at,
                                hops: hops_for(&prov, ob, txn, l, d.prepared_at),
                                trace: None,
                            });
                        } else {
                            loser_undo.push((l, op));
                        }
                    }
                }
            }
        }
    }

    versions.sort_by_key(|v| v.lsn);
    loser_undo.sort_by_key(|&(l, _)| l);
    for d in &mut in_doubt {
        d.versions.sort_by_key(|v| v.lsn);
        d.undo.sort_by_key(|&(l, _)| l);
    }

    Ok(Reenactment {
        ob,
        as_of,
        seeded_from,
        in_doubt,
        records_scanned: scanned,
        versions,
        value_all: val,
        loser_undo,
    })
}

/// The instrumented front door: [`replay`] plus `reenact.*` counters and
/// trace stitching. Takes only the log and observability handles — both
/// `Arc`-shared and internally synchronized — so the engine mutex is
/// never held across a replay; the introspection server and the wire
/// dispatch call this from captured handles.
pub fn query(log: &LogManager, obs: &rh_obs::Obs, ob: ObjectId, as_of: Lsn) -> Result<Reenactment> {
    let mut r = replay(log, ob, as_of)?;
    obs.registry.inc(rh_obs::names::M_REENACT_QUERIES);
    obs.registry.add(rh_obs::names::M_REENACT_RECORDS, r.records_scanned);
    if r.seeded_from.is_some() {
        obs.registry.inc(rh_obs::names::M_REENACT_SEEDED);
    }
    obs.registry.add(rh_obs::names::M_REENACT_VERSIONS, r.versions.len() as u64);
    let events = obs.tracer.snapshot().events;
    stitch_traces(&mut r.versions, &events);
    for d in &mut r.in_doubt {
        stitch_traces(&mut d.versions, &events);
    }
    Ok(r)
}

/// Fills each version's `trace` from a tracer snapshot: a version is
/// stitched to the trace id of any `phase.*` point logged for its
/// responsible transaction (the request-side spans of PR 7 put the trace
/// id in `lsn_lo`).
pub fn stitch_traces(versions: &mut [VersionRecord], events: &[rh_obs::trace::TraceEvent]) {
    for v in versions.iter_mut() {
        if v.trace.is_some() {
            continue;
        }
        v.trace = events
            .iter()
            .find(|e| {
                e.name.starts_with("phase.")
                    && e.txn == v.responsible.raw()
                    && e.lsn_lo != rh_obs::trace::NONE
            })
            .map(|e| e.lsn_lo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TxnEngine;
    use crate::engine::{RhDb, Strategy};

    const A: ObjectId = ObjectId(0);
    const B: ObjectId = ObjectId(1);

    fn db() -> RhDb {
        RhDb::new(Strategy::Rh)
    }

    fn write(db: &mut RhDb, t: TxnId, ob: ObjectId, after: Value) {
        TxnEngine::write(db, t, ob, after).expect("write");
    }

    #[test]
    fn empty_log_reads_initial() {
        let d = db();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert_eq!(r.value(), rh_storage::Page::INITIAL_VALUE);
        assert!(r.versions().is_empty());
    }

    #[test]
    fn committed_updates_become_versions() {
        let mut d = db();
        let t = d.begin().unwrap();
        write(&mut d, t, A, 10);
        write(&mut d, t, A, 20);
        d.commit(t).unwrap();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert_eq!(r.value(), 20);
        let vs = r.versions();
        assert_eq!(vs.len(), 2);
        assert_eq!((vs[0].value, vs[1].value), (10, 20));
        assert_eq!(vs[0].invoker, t);
        assert_eq!(vs[0].responsible, t);
        assert!(vs[0].committed_at > vs[1].lsn);
    }

    #[test]
    fn uncommitted_updates_are_undone() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        write(&mut d, t1, A, 10);
        d.commit(t1).unwrap();
        let t2 = d.begin().unwrap();
        write(&mut d, t2, A, 99);
        // t2 never commits: as-of "now" must still read 10.
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert_eq!(r.value(), 10);
        assert_eq!(r.versions().len(), 1);
    }

    #[test]
    fn read_as_of_sees_each_prefix() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        write(&mut d, t1, A, 5);
        let c1 = d.commit_prepare(t1).unwrap();
        let t2 = d.begin().unwrap();
        write(&mut d, t2, A, 7);
        let c2 = d.commit_prepare(t2).unwrap();
        // Before t1's commit record: uncommitted → initial.
        let r = replay(d.log(), A, c1.prev()).unwrap();
        assert_eq!(r.value(), rh_storage::Page::INITIAL_VALUE);
        // At t1's commit: 5. At t2's commit: 7.
        assert_eq!(replay(d.log(), A, c1).unwrap().value(), 5);
        assert_eq!(replay(d.log(), A, c2.prev()).unwrap().value(), 5);
        assert_eq!(replay(d.log(), A, c2).unwrap().value(), 7);
    }

    #[test]
    fn delegated_version_carries_hop_and_responsible() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        let t2 = d.begin().unwrap();
        write(&mut d, t1, A, 42);
        d.delegate(t1, t2, &[A]).unwrap();
        d.commit(t1).unwrap(); // t1 commits but is no longer responsible for A
        d.commit(t2).unwrap();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert_eq!(r.value(), 42);
        let vs = r.versions();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].invoker, t1);
        assert_eq!(vs[0].responsible, t2);
        assert_eq!(vs[0].hops.len(), 1);
        assert_eq!((vs[0].hops[0].from, vs[0].hops[0].to), (t1, t2));
    }

    #[test]
    fn delegatee_abort_undoes_delegated_update() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        let t2 = d.begin().unwrap();
        write(&mut d, t1, A, 42);
        d.delegate(t1, t2, &[A]).unwrap();
        d.commit(t1).unwrap();
        d.abort(t2).unwrap();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert_eq!(r.value(), rh_storage::Page::INITIAL_VALUE);
        assert!(r.versions().is_empty());
    }

    #[test]
    fn checkpoint_seeds_value_and_preserves_versions_after_it() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        write(&mut d, t1, A, 10);
        write(&mut d, t1, B, 3);
        d.commit(t1).unwrap();
        d.checkpoint().unwrap();
        let t2 = d.begin().unwrap();
        write(&mut d, t2, A, 20);
        d.commit(t2).unwrap();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert!(r.seeded_from.is_some());
        assert_eq!(r.value(), 20);
        // t1 committed before the seed: its version is summarized by the
        // overlay; only t2's post-seed version is listed.
        let vs = r.versions();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].value, 20);
        assert_eq!(vs[0].responsible, t2);
    }

    #[test]
    fn scope_straddling_checkpoint_reconstructs_pre_seed_versions() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        write(&mut d, t1, A, 10); // pre-seed update of a txn live at the checkpoint
        d.checkpoint().unwrap();
        write(&mut d, t1, A, 20);
        d.commit(t1).unwrap();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert!(r.seeded_from.is_some());
        assert_eq!(r.value(), 20);
        let vs = r.versions();
        assert_eq!(vs.len(), 2, "pre-seed update of a straddling scope must be reconstructed");
        assert_eq!((vs[0].value, vs[1].value), (10, 20));
        assert_eq!(vs[0].responsible, t1);
    }

    #[test]
    fn uncommitted_straddling_scope_is_undone_via_preseed_records() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        write(&mut d, t1, A, 10);
        d.commit(t1).unwrap();
        let t2 = d.begin().unwrap();
        write(&mut d, t2, A, 99);
        d.checkpoint().unwrap();
        // The checkpoint overlay holds 99 (dirty value), but t2 never
        // commits: the as-of value must fall back to 10.
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert!(r.seeded_from.is_some());
        assert_eq!(r.value(), 10);
    }

    #[test]
    fn truncated_log_before_any_checkpoint_errors() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        write(&mut d, t1, A, 10);
        d.commit(t1).unwrap();
        d.checkpoint().unwrap();
        let cut = d.log().truncate_prefix(d.log().stable().master()).unwrap();
        assert!(cut > 0);
        let err = replay(d.log(), A, Lsn(0)).unwrap_err();
        assert!(matches!(err, RhError::Reenact { .. }), "got {err:?}");
        // But targets at/after the surviving checkpoint still answer.
        assert_eq!(replay(d.log(), A, Lsn::NULL).unwrap().value(), 10);
    }

    #[test]
    fn partial_rollback_excludes_compensated_updates() {
        let mut d = db();
        let t = d.begin().unwrap();
        write(&mut d, t, A, 10);
        let sp = d.savepoint(t).unwrap();
        write(&mut d, t, A, 20);
        d.rollback_to(t, sp).unwrap();
        d.commit(t).unwrap();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert_eq!(r.value(), 10);
        let vs = r.versions();
        assert_eq!(vs.len(), 1, "rolled-back update must not appear as a version");
        assert_eq!(vs[0].value, 10);
    }

    #[test]
    fn in_doubt_prepared_txn_is_reported_not_decided() {
        let mut d = db();
        let t1 = d.begin().unwrap();
        write(&mut d, t1, A, 10);
        d.commit(t1).unwrap();
        let t2 = d.begin().unwrap();
        write(&mut d, t2, A, 77);
        d.prepare_commit(t2).unwrap();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        assert_eq!(r.in_doubt.len(), 1);
        assert_eq!(r.in_doubt[0].txn, t2);
        // Presumed abort: 10. Decided commit: 77.
        assert_eq!(r.value(), 10);
        assert_eq!(r.value_with(|t| t == t2), 77);
        assert_eq!(r.versions().len(), 1);
        assert_eq!(r.versions_with(|t| t == t2).len(), 2);
    }

    #[test]
    fn matches_recovery_across_a_crash_boundary() {
        // read_as_of is a pure function of the log prefix, so the answer
        // at an LSN must be identical before and after a crash+recovery
        // (recovery only appends CLRs with larger LSNs).
        let mut d = db();
        let t1 = d.begin().unwrap();
        write(&mut d, t1, A, 10);
        let c1 = d.commit_prepare(t1).unwrap();
        let t2 = d.begin().unwrap();
        write(&mut d, t2, A, 99);
        d.log().flush_all().unwrap();
        let before = replay(d.log(), A, c1).unwrap().value();
        let (stable, disk) = d.crash();
        let d2 =
            RhDb::recover(Strategy::Rh, crate::engine::DbConfig::default(), stable, disk).unwrap();
        let after = replay(d2.log(), A, c1).unwrap().value();
        assert_eq!(before, 10);
        assert_eq!(before, after);
        // And at the post-recovery tip the loser's effect is gone.
        assert_eq!(replay(d2.log(), A, Lsn::NULL).unwrap().value(), 10);
    }

    #[test]
    fn history_json_has_v1_schema_shape() {
        let mut d = db();
        let t = d.begin().unwrap();
        write(&mut d, t, A, 10);
        d.commit(t).unwrap();
        let r = replay(d.log(), A, Lsn::NULL).unwrap();
        let j = r.to_json_range(Lsn::FIRST, r.as_of, |_| false);
        assert_eq!(j.get("schema").and_then(JsonValue::as_str), Some("history.v1"));
        assert_eq!(j.get("object").and_then(JsonValue::as_u64), Some(A.raw()));
        assert_eq!(j.get("value").and_then(JsonValue::as_i64), Some(10));
        let vs = j.get("versions").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].get("value").and_then(JsonValue::as_i64), Some(10));
        assert!(vs[0].get("hops").is_some());
    }
}
