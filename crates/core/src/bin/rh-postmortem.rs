//! `rh-postmortem` — render a crashed (or live) instance's black box as
//! a human-readable report.
//!
//! ```text
//! rh-postmortem <log-dir | obs-dir> [artifact.json]
//! ```
//!
//! The first argument is either a log directory (the tool looks for the
//! flight recorder's `obs/` subdirectory next to the segments) or the
//! `obs/` directory itself. The tool lists every retained black-box
//! record, then expands the newest one: counters at freeze time, the
//! recovery timeline (per-pass wall clocks, cluster/gap sweep map), and
//! the final trace spans — exactly what the next incarnation's
//! `RecoveryReport::postmortem` diffs against.
//!
//! With an optional artifact JSON (as written by `rh-obs` exports or the
//! bench harness), its `postmortem` and `provenance` sections are
//! rendered too.
//!
//! Exits nonzero when the directory is missing or holds zero records —
//! CI uses that as "the black box must survive a crash" gate.

use rh_obs::{names, BlackBoxRecord, JsonValue};
use rh_wal::sidecar::SidecarLog;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, artifact) = match args.as_slice() {
        [dir] => (PathBuf::from(dir), None),
        [dir, artifact] => (PathBuf::from(dir), Some(PathBuf::from(artifact))),
        _ => {
            eprintln!("usage: rh-postmortem <log-dir | obs-dir> [artifact.json]");
            return ExitCode::from(2);
        }
    };

    let obs_dir = resolve_obs_dir(&dir);
    if !obs_dir.is_dir() {
        eprintln!("rh-postmortem: no flight-recorder stream at {}", obs_dir.display());
        return ExitCode::FAILURE;
    }
    let sidecar = match SidecarLog::open(obs_dir.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rh-postmortem: cannot open {}: {e}", obs_dir.display());
            return ExitCode::FAILURE;
        }
    };
    let records = load_records(&sidecar);
    if records.is_empty() {
        eprintln!("rh-postmortem: {} holds zero black-box records", obs_dir.display());
        return ExitCode::FAILURE;
    }

    let horizon = sidecar.next_seq();
    println!("black box: {}", obs_dir.display());
    println!(
        "records retained: {} (stream positions {}..{})",
        records.len(),
        horizon - sidecar.len(),
        horizon,
    );
    println!();
    for rec in &records {
        println!(
            "  #{:<4} +{:>10.3}s  {:<16} events={:<5} dropped={}",
            rec.seq,
            rec.at_us as f64 / 1e6,
            rec.reason,
            rec.events().len(),
            trace_dropped(rec),
        );
    }

    let last = records.last().expect("nonempty");
    println!();
    println!("== newest record: #{} ({}) ==", last.seq, last.reason);
    render_counters(last);
    render_recovery_timeline(last);
    render_sweep_map(last);
    render_final_spans(last);

    if let Some(path) = artifact {
        if let Err(code) = render_artifact(&path) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// A log directory with an `obs/` subdirectory resolves to that
/// subdirectory; anything else is taken as the stream directory itself.
fn resolve_obs_dir(dir: &Path) -> PathBuf {
    let nested = SidecarLog::dir_for(dir);
    if nested.is_dir() {
        nested
    } else {
        dir.to_path_buf()
    }
}

fn load_records(sidecar: &SidecarLog) -> Vec<BlackBoxRecord> {
    let horizon = sidecar.next_seq();
    let base = horizon.saturating_sub(sidecar.len());
    (base..horizon)
        .filter_map(|seq| sidecar.read(seq).ok())
        .filter_map(|payload| BlackBoxRecord::parse(&payload))
        .collect()
}

fn trace_dropped(rec: &BlackBoxRecord) -> u64 {
    rec.raw.get("trace").and_then(|t| t.get("dropped")).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn render_counters(rec: &BlackBoxRecord) {
    let mut counters = rec.counters();
    counters.retain(|(_, v)| *v > 0);
    if counters.is_empty() {
        println!("  (no nonzero counters)");
        return;
    }
    println!("  counters at freeze time:");
    for (name, value) in counters {
        println!("    {name:<32} {value}");
    }
}

/// Per-pass wall clocks from the `recovery.*_us` histograms the engine
/// observes at the end of every recovery.
fn render_recovery_timeline(rec: &BlackBoxRecord) {
    let rows: Vec<(&str, &str)> = vec![
        ("forward pass", names::M_RECOVERY_FORWARD_US),
        ("backward pass", names::M_RECOVERY_UNDO_US),
        ("total", names::M_RECOVERY_TOTAL_US),
    ];
    let hist = |name: &str| -> Option<JsonValue> {
        rec.raw.get("metrics").and_then(|m| m.get("histograms")).and_then(|h| h.get(name)).cloned()
    };
    if rows.iter().all(|(_, name)| hist(name).is_none()) {
        return;
    }
    println!("  recovery timeline (wall clock, most recent process lifetime):");
    for (label, name) in rows {
        let Some(h) = hist(name) else { continue };
        let count = h.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
        let sum = h.get("sum").and_then(JsonValue::as_u64).unwrap_or(0);
        let max = h.get("max").and_then(JsonValue::as_u64).unwrap_or(0);
        println!(
            "    {label:<14} runs={count:<3} total={:>10.3}ms  max={:>10.3}ms",
            sum as f64 / 1e3,
            max as f64 / 1e3,
        );
    }
}

/// The cluster/gap sweep map of the backward pass, rebuilt from the
/// frozen trace events (paper Fig. 7/8: clusters visited monotonically,
/// gaps between them skipped without reading).
fn render_sweep_map(rec: &BlackBoxRecord) {
    let events = rec.events();
    let name_of = |e: &JsonValue| e.get("name").and_then(JsonValue::as_str).map(str::to_string);
    let mut clusters = 0u64;
    let mut visits = 0u64;
    let mut clrs = 0u64;
    let mut gaps: Vec<(u64, u64, u64)> = Vec::new();
    for e in &events {
        match name_of(e).as_deref() {
            Some(names::EV_CLUSTER_START) => clusters += 1,
            Some(names::EV_UNDO_VISIT) => visits += 1,
            Some(names::EV_UNDO_CLR) => clrs += 1,
            Some(names::EV_GAP_SKIP) => {
                let to = e.get("lsn_lo").and_then(JsonValue::as_u64).unwrap_or(0);
                let from = e.get("lsn_hi").and_then(JsonValue::as_u64).unwrap_or(0);
                let dist = e.get("payload").and_then(JsonValue::as_u64).unwrap_or(0);
                gaps.push((from, to, dist));
            }
            _ => {}
        }
    }
    if clusters + visits + clrs == 0 && gaps.is_empty() {
        return;
    }
    println!(
        "  sweep map: {clusters} cluster(s) entered, {visits} record(s) visited, {clrs} CLR(s) written"
    );
    let skipped: u64 = gaps.iter().map(|(_, _, d)| d).sum();
    if !gaps.is_empty() {
        println!("    gaps skipped ({} totalling {skipped} LSNs):", gaps.len());
        for (from, to, dist) in gaps.iter().take(16) {
            println!("      LSN {from} -> {to}  (skipped {dist})");
        }
        if gaps.len() > 16 {
            println!("      ... {} more", gaps.len() - 16);
        }
    }
}

fn render_final_spans(rec: &BlackBoxRecord) {
    let finals = rec.final_events(rh_obs::blackbox::DEFAULT_FINAL_EVENTS);
    if finals.is_empty() {
        println!("  (no trace events frozen)");
        return;
    }
    println!("  final {} trace events before the freeze:", finals.len());
    for e in &finals {
        let ts = e.get("ts_us").and_then(JsonValue::as_u64).unwrap_or(0);
        let kind = e.get("kind").and_then(JsonValue::as_str).unwrap_or("?");
        let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("?");
        let mut extras = String::new();
        for key in ["lsn_lo", "lsn_hi", "txn", "payload"] {
            if let Some(v) = e.get(key).and_then(JsonValue::as_u64) {
                if key == "payload" && v == 0 {
                    continue;
                }
                extras.push_str(&format!(" {key}={v}"));
            }
        }
        println!("    +{:>10.3}s {kind:<5} {name:<20}{extras}", ts as f64 / 1e6);
    }
}

/// Renders the `postmortem` and `provenance` sections of an exported
/// JSON artifact (the schema documented in EXPERIMENTS.md).
fn render_artifact(path: &Path) -> Result<(), ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("rh-postmortem: cannot read {}: {e}", path.display());
        ExitCode::FAILURE
    })?;
    let doc = rh_obs::json::parse(&text).map_err(|e| {
        eprintln!("rh-postmortem: {} is not valid JSON: {e}", path.display());
        ExitCode::FAILURE
    })?;
    println!();
    println!("== artifact: {} ==", path.display());
    match doc.get("postmortem") {
        Some(pm) if *pm != JsonValue::Null => {
            let pred = pm.get("predecessor");
            let reason =
                pred.and_then(|p| p.get("reason")).and_then(JsonValue::as_str).unwrap_or("unknown");
            let seq =
                pred.and_then(|p| p.get("seq")).and_then(JsonValue::as_u64).unwrap_or_default();
            println!("  postmortem: predecessor record #{seq} ({reason})");
            if let Some(JsonValue::Obj(delta)) = pm.get("delta") {
                let mut nonzero: Vec<(&String, i64)> = delta
                    .iter()
                    .filter_map(|(k, v)| match v {
                        JsonValue::I64(n) if *n != 0 => Some((k, *n)),
                        _ => None,
                    })
                    .collect();
                nonzero.sort_by_key(|(_, n)| -n.abs());
                println!("  counter deltas (recovered - pre-crash, nonzero):");
                for (name, n) in nonzero.iter().take(24) {
                    println!("    {name:<32} {n:+}");
                }
            }
        }
        _ => println!("  (artifact carries no postmortem section)"),
    }
    match doc.get("provenance") {
        Some(JsonValue::Obj(chains)) if !chains.is_empty() => {
            println!("  provenance chains:");
            for (ob, chain) in chains {
                let hops = chain.as_arr().map_or(0, <[JsonValue]>::len);
                let path: Vec<String> = chain
                    .as_arr()
                    .map(|hops| {
                        let mut parts: Vec<String> = Vec::new();
                        for (i, hop) in hops.iter().enumerate() {
                            let from = hop.get("from").and_then(JsonValue::as_u64).unwrap_or(0);
                            let to = hop.get("to").and_then(JsonValue::as_u64).unwrap_or(0);
                            if i == 0 {
                                parts.push(format!("t{from}"));
                            }
                            parts.push(format!("t{to}"));
                        }
                        parts
                    })
                    .unwrap_or_default();
                println!("    ob{ob}: {} ({hops} hop(s))", path.join(" -> "));
            }
        }
        _ => println!("  (artifact carries no provenance chains)"),
    }
    Ok(())
}
