//! The **eager** baseline (paper §3.1, Fig. 1; critiqued in §3.2).
//!
//! "The naïve implementation ... would be to apply each delegation to the
//! log as it is issued. That is, every time a delegation is issued, the
//! system traverses the log backwards modifying the records pertaining to
//! the object being delegated. This 'eager' approach carries high
//! performance costs ... due to the random nature of the accesses ... and
//! the fact that a single delegation will generate many accesses, in
//! principle sweeping the whole log."
//!
//! [`EagerDb`] implements that design honestly:
//!
//! * `delegate(t1, t2, ob)` sweeps the log backwards from the delegation
//!   point, performing `setTransID(K, t2)` (an in-place stable-log
//!   rewrite) on every record of an update to `ob` that `t1` is
//!   responsible for. Because delegation chains hand records across
//!   transactions, the sweep cannot stop at `t1`'s own backward chain (a
//!   record invoked by `t0` and delegated to `t1` lives on `t0`'s chain) —
//!   it linearly scans down to the oldest record `t1` owns, which is the
//!   "sweeping the whole log" cost the paper predicts.
//! * After the rewrite, the log *is* the history: recovery is plain
//!   UNDO/REDO keyed on the (rewritten) Trans-ID fields, with no
//!   delegation awareness at all.
//!
//! The engine is correct (the oracle-equivalence suite runs against it);
//! it exists so experiment E3 can measure what RH avoids.

use crate::api::TxnEngine;
use rh_common::ops::Value;
use rh_common::{Lsn, ObjectId, Result, RhError, TxnId, UpdateOp};
use rh_lock::{LockManager, LockMode};
use rh_storage::{BufferPool, Disk};
use rh_wal::record::{DelegateBody, RecordBody};
use rh_wal::{LogManager, StableLog};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

#[derive(Debug, Default)]
struct EagerTxn {
    last_lsn: Lsn,
    /// Exact LSNs of the update records this transaction currently owns
    /// (volatile; rebuilt from the rewritten Trans-IDs after a crash).
    owned: BTreeMap<Lsn, ObjectId>,
}

/// The eager-rewriting engine.
pub struct EagerDb {
    log: Arc<LogManager>,
    disk: Arc<Disk>,
    pool: BufferPool,
    locks: Arc<LockManager>,
    txns: HashMap<TxnId, EagerTxn>,
    next_txn: u64,
    pool_pages: usize,
}

impl EagerDb {
    /// Creates a fresh database.
    pub fn new() -> Self {
        Self::with_pool_pages(256)
    }

    /// Creates a fresh database with a given buffer-pool capacity.
    pub fn with_pool_pages(pool_pages: usize) -> Self {
        let disk = Disk::new();
        let log = Arc::new(LogManager::new());
        let pool = BufferPool::new(Arc::clone(&disk), pool_pages);
        EagerDb {
            log,
            disk,
            pool,
            locks: Arc::new(LockManager::new()),
            txns: HashMap::new(),
            next_txn: 0,
            pool_pages,
        }
    }

    /// The engine's log (metrics, dumps).
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The engine's disk.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn entry(&mut self, txn: TxnId) -> Result<&mut EagerTxn> {
        self.txns.get_mut(&txn).ok_or(RhError::UnknownTxn(txn))
    }

    fn log_for_txn(&mut self, txn: TxnId, body: RecordBody) -> Result<Lsn> {
        let prev = self.entry(txn)?.last_lsn;
        let lsn = self.log.append(txn, prev, body);
        self.entry(txn)?.last_lsn = lsn;
        Ok(lsn)
    }

    fn apply_update(&mut self, txn: TxnId, ob: ObjectId, op: UpdateOp) -> Result<()> {
        let lsn = self.log_for_txn(txn, RecordBody::Update { ob, op })?;
        self.entry(txn)?.owned.insert(lsn, ob);
        let cur = self.pool.read_object(ob, &*self.log)?;
        self.pool.write_object(ob, op.apply(cur), lsn, &*self.log)?;
        Ok(())
    }

    /// Undoes the given owned records in descending-LSN order, writing a
    /// CLR for each. Shared by abort and recovery.
    fn undo_records(
        log: &LogManager,
        pool: &mut BufferPool,
        last_lsns: &mut HashMap<TxnId, Lsn>,
        records: &[(Lsn, TxnId)],
        compensated: &HashSet<Lsn>,
    ) -> Result<()> {
        for &(lsn, owner) in records {
            if compensated.contains(&lsn) {
                continue;
            }
            let rec = log.read(lsn)?;
            let RecordBody::Update { ob, op } = rec.body else {
                return Err(RhError::CorruptLog { lsn, reason: "owned lsn is not an update" });
            };
            let cur = pool.read_object(ob, log)?;
            let prev = last_lsns.get(&owner).copied().unwrap_or(Lsn::NULL);
            let clr = log.append(
                owner,
                prev,
                RecordBody::Clr {
                    ob,
                    op: op.compensation(cur),
                    compensated: lsn,
                    undo_next: lsn.prev(),
                },
            );
            last_lsns.insert(owner, clr);
            pool.write_object(ob, op.undo(cur), clr, log)?;
        }
        Ok(())
    }

    /// Simulates a crash, returning the stable state.
    pub fn crash(self) -> (Arc<StableLog>, Arc<Disk>) {
        (self.log.stable(), Arc::clone(&self.disk))
    }

    /// Plain UNDO/REDO restart recovery over the (eagerly rewritten) log:
    /// no delegation processing whatsoever.
    pub fn recover(stable: Arc<StableLog>, disk: Arc<Disk>, pool_pages: usize) -> Result<Self> {
        let log = LogManager::attach(stable);
        let mut pool = BufferPool::new(Arc::clone(&disk), pool_pages);

        // Forward pass: redo everything, rebuild ownership from the
        // rewritten Trans-ID fields, classify winners/losers.
        let mut owned: HashMap<TxnId, BTreeMap<Lsn, ObjectId>> = HashMap::new();
        let mut committed: HashSet<TxnId> = HashSet::new();
        let mut seen: HashSet<TxnId> = HashSet::new();
        let mut compensated: HashSet<Lsn> = HashSet::new();
        let mut last_lsns: HashMap<TxnId, Lsn> = HashMap::new();
        let mut next_txn = 0u64;
        let end = log.curr_lsn();
        let mut lsn = Lsn::FIRST;
        while lsn < end {
            let rec = log.read(lsn)?;
            if !rec.txn.is_none() {
                seen.insert(rec.txn);
                last_lsns.insert(rec.txn, lsn);
                next_txn = next_txn.max(rec.txn.raw() + 1);
            }
            match rec.body {
                RecordBody::Update { ob, op } => {
                    owned.entry(rec.txn).or_default().insert(lsn, ob);
                    let page_lsn = pool.page_lsn_of(ob, &log)?;
                    if page_lsn.is_null() || page_lsn < lsn {
                        let cur = pool.read_object(ob, &log)?;
                        pool.write_object(ob, op.apply(cur), lsn, &log)?;
                    }
                }
                RecordBody::Clr { ob, op, compensated: c, .. } => {
                    compensated.insert(c);
                    let page_lsn = pool.page_lsn_of(ob, &log)?;
                    if page_lsn.is_null() || page_lsn < lsn {
                        let cur = pool.read_object(ob, &log)?;
                        pool.write_object(ob, op.apply(cur), lsn, &log)?;
                    }
                }
                RecordBody::Commit => {
                    committed.insert(rec.txn);
                    owned.remove(&rec.txn);
                }
                RecordBody::Abort => {
                    // Undo completed before the abort record was logged.
                    owned.remove(&rec.txn);
                }
                RecordBody::End => {
                    seen.remove(&rec.txn);
                }
                // Delegate records are inert: the eager rewrite already
                // moved the history; Begin/checkpoints carry no state.
                _ => {}
            }
            lsn = lsn.next();
        }

        // Backward pass: undo loser-owned records in one global
        // descending order (random access pattern — these are exact
        // record positions, not clustered ranges).
        let losers: HashSet<TxnId> =
            seen.iter().copied().filter(|t| !committed.contains(t)).collect();
        let mut to_undo: Vec<(Lsn, TxnId)> = losers
            .iter()
            .flat_map(|t| owned.get(t).into_iter().flat_map(|m| m.keys().map(|&l| (l, *t))))
            .collect();
        to_undo.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
        Self::undo_records(&log, &mut pool, &mut last_lsns, &to_undo, &compensated)?;

        // Terminate losers.
        let mut loser_list: Vec<TxnId> = losers.into_iter().collect();
        loser_list.sort();
        for t in loser_list {
            let prev = last_lsns.get(&t).copied().unwrap_or(Lsn::NULL);
            let a = log.append(t, prev, RecordBody::Abort);
            log.append(t, a, RecordBody::End);
        }
        log.flush_all()?;

        Ok(EagerDb {
            log: Arc::new(log),
            disk,
            pool,
            locks: Arc::new(LockManager::new()),
            txns: HashMap::new(),
            next_txn,
            pool_pages,
        })
    }
}

impl Default for EagerDb {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnEngine for EagerDb {
    fn begin(&mut self) -> Result<TxnId> {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let lsn = self.log.append(txn, Lsn::NULL, RecordBody::Begin);
        self.txns.insert(txn, EagerTxn { last_lsn: lsn, owned: BTreeMap::new() });
        Ok(txn)
    }

    fn read(&mut self, txn: TxnId, ob: ObjectId) -> Result<Value> {
        self.entry(txn)?;
        self.locks.try_acquire(txn, ob, LockMode::Shared)?;
        self.pool.read_object(ob, &*self.log)
    }

    fn write(&mut self, txn: TxnId, ob: ObjectId, value: Value) -> Result<()> {
        self.entry(txn)?;
        self.locks.try_acquire(txn, ob, LockMode::Exclusive)?;
        let before = self.pool.read_object(ob, &*self.log)?;
        self.apply_update(txn, ob, UpdateOp::Write { before, after: value })
    }

    fn add(&mut self, txn: TxnId, ob: ObjectId, delta: Value) -> Result<()> {
        self.entry(txn)?;
        self.locks.try_acquire(txn, ob, LockMode::Increment)?;
        self.apply_update(txn, ob, UpdateOp::Add { delta })
    }

    fn delegate(&mut self, tor: TxnId, tee: TxnId, obs: &[ObjectId]) -> Result<()> {
        self.entry(tee)?;
        if tor == tee {
            return Err(RhError::SelfDelegation(tor));
        }
        let tor_entry = self.txns.get(&tor).ok_or(RhError::UnknownTxn(tor))?;
        for &ob in obs {
            if !tor_entry.owned.values().any(|&o| o == ob) {
                return Err(RhError::NotResponsible { txn: tor, object: ob });
            }
        }
        // The Fig. 1 delegate record + sweep. The sweep's lower bound is
        // the oldest record the delegator owns on the delegated objects
        // (with chained delegations this reaches far behind the
        // delegator's own begin record).
        let tor_bc = self.txns[&tor].last_lsn;
        let tee_bc = self.txns[&tee].last_lsn;
        let del_lsn = self.log.append(
            tor,
            tor_bc,
            RecordBody::Delegate { tee, tee_bc, body: DelegateBody::Objects(obs.to_vec()) },
        );
        self.txns.get_mut(&tor).unwrap().last_lsn = del_lsn;
        self.txns.get_mut(&tee).unwrap().last_lsn = del_lsn;

        let moving: Vec<Lsn> = self.txns[&tor]
            .owned
            .iter()
            .filter(|(_, &ob)| obs.contains(&ob))
            .map(|(&l, _)| l)
            .collect();
        let stop = moving.first().copied().unwrap_or(del_lsn);
        // K <- currLSN; while not at the oldest owned record: if LOG[K]
        // is an owned update to ob: setTransID(K, tee). Every position is
        // read — "in principle sweeping the whole log".
        let mut k = del_lsn.prev();
        loop {
            let rec = self.log.read(k)?;
            if rec.is_update() && self.txns[&tor].owned.contains_key(&k) {
                if let RecordBody::Update { ob, .. } = rec.body {
                    if obs.contains(&ob) {
                        self.log.rewrite_in_place(k, |r| r.txn = tee)?;
                    }
                }
            }
            if k == stop || k == Lsn::FIRST {
                break;
            }
            k = k.prev();
        }
        // Move volatile ownership and the locks.
        let tor_owned = &mut self.txns.get_mut(&tor).unwrap().owned;
        let mut moved: Vec<(Lsn, ObjectId)> = Vec::with_capacity(moving.len());
        for l in moving {
            if let Some(ob) = tor_owned.remove(&l) {
                moved.push((l, ob));
            }
        }
        let tee_owned = &mut self.txns.get_mut(&tee).unwrap().owned;
        for (l, ob) in moved {
            tee_owned.insert(l, ob);
        }
        for &ob in obs {
            self.locks.transfer(tor, tee, ob);
        }
        Ok(())
    }

    fn delegate_all(&mut self, tor: TxnId, tee: TxnId) -> Result<()> {
        let obs: Vec<ObjectId> = {
            let e = self.txns.get(&tor).ok_or(RhError::UnknownTxn(tor))?;
            let mut v: Vec<ObjectId> = e.owned.values().copied().collect();
            v.sort();
            v.dedup();
            v
        };
        if obs.is_empty() {
            // Nothing to move; still log the delegation for parity.
            self.entry(tee)?;
            if tor == tee {
                return Err(RhError::SelfDelegation(tor));
            }
            let tor_bc = self.txns[&tor].last_lsn;
            let tee_bc = self.txns[&tee].last_lsn;
            let lsn = self.log.append(
                tor,
                tor_bc,
                RecordBody::Delegate { tee, tee_bc, body: DelegateBody::All },
            );
            self.txns.get_mut(&tor).unwrap().last_lsn = lsn;
            self.txns.get_mut(&tee).unwrap().last_lsn = lsn;
        } else {
            self.delegate(tor, tee, &obs)?;
        }
        // Pass *all* access rights (see the RH engine's delegate_all):
        // locks without an owned update (e.g. after a partial rollback)
        // move too.
        self.locks.transfer_all(tor, tee);
        Ok(())
    }

    fn commit(&mut self, txn: TxnId) -> Result<()> {
        let lsn = self.log_for_txn(txn, RecordBody::Commit)?;
        self.log.flush_to(lsn)?;
        self.log_for_txn(txn, RecordBody::End)?;
        self.txns.remove(&txn);
        self.locks.release_all(txn);
        Ok(())
    }

    fn abort(&mut self, txn: TxnId) -> Result<()> {
        let entry = self.txns.get(&txn).ok_or(RhError::UnknownTxn(txn))?;
        let mut records: Vec<(Lsn, TxnId)> = entry.owned.keys().map(|&l| (l, txn)).collect();
        records.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
        let mut last_lsns = HashMap::from([(txn, entry.last_lsn)]);
        let none = HashSet::new();
        Self::undo_records(&self.log, &mut self.pool, &mut last_lsns, &records, &none)?;
        self.txns.get_mut(&txn).unwrap().last_lsn = last_lsns[&txn];
        let lsn = self.log_for_txn(txn, RecordBody::Abort)?;
        self.log.flush_to(lsn)?;
        self.log_for_txn(txn, RecordBody::End)?;
        self.txns.remove(&txn);
        self.locks.release_all(txn);
        Ok(())
    }

    fn savepoint(&mut self, txn: TxnId) -> Result<u64> {
        self.entry(txn)?;
        Ok(self.log.curr_lsn().raw())
    }

    fn rollback_to(&mut self, txn: TxnId, token: u64) -> Result<()> {
        // Undo owned records at/after the savepoint position, newest
        // first, and drop them from the volatile ownership map.
        let sp = Lsn(token);
        let entry = self.txns.get(&txn).ok_or(RhError::UnknownTxn(txn))?;
        let mut records: Vec<(Lsn, TxnId)> =
            entry.owned.range(sp..).map(|(&l, _)| (l, txn)).collect();
        records.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
        let mut last_lsns = HashMap::from([(txn, entry.last_lsn)]);
        let none = HashSet::new();
        Self::undo_records(&self.log, &mut self.pool, &mut last_lsns, &records, &none)?;
        let entry = self.txns.get_mut(&txn).expect("checked");
        entry.last_lsn = last_lsns[&txn];
        entry.owned.retain(|&l, _| l < sp);
        Ok(())
    }

    fn permit(&mut self, granter: TxnId, permittee: TxnId, ob: ObjectId) -> Result<()> {
        self.entry(granter)?;
        self.entry(permittee)?;
        self.locks.permit(granter, permittee, ob);
        Ok(())
    }

    fn crash_and_recover(self) -> Result<Self> {
        let pool_pages = self.pool_pages;
        let (stable, disk) = self.crash();
        Self::recover(stable, disk, pool_pages)
    }

    fn value_of(&mut self, ob: ObjectId) -> Result<Value> {
        self.pool.read_object(ob, &*self.log)
    }
}
