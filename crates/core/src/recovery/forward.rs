//! The forward pass: analysis + redo in one sweep (§3.6.1).
//!
//! "Because some ARIES variants merge the analysis and redo passes in a
//! single forward pass, ARIES/RH relies on a single forward pass to add
//! delegation." The pass
//!
//! * restores the checkpoint snapshot (transaction table **with scopes**,
//!   dirty-page table, txn-id high-water mark) pointed to by the master
//!   record, if any;
//! * *repeats history*: redoes every logged update and CLR whose effect is
//!   missing from the page (page-LSN test), starting from the earliest
//!   recLSN in the checkpointed dirty-page table;
//! * analyzes records after the checkpoint: transactions are **losers by
//!   default**, commits promote to winner, `delegate` records re-transfer
//!   scopes between Ob_Lists exactly as normal processing did (§3.6.1
//!   delegate: "this is done just as delegate (3) in normal processing");
//! * collects the LSNs compensated by CLRs, so a backward pass after a
//!   crash-during-recovery never undoes the same update twice.

use crate::checkpoint::CheckpointSnapshot;
use crate::provenance::ProvenanceTable;
use crate::txn_table::{TrList, TxnStatus};
use rh_common::codec::Codec;
use rh_common::{Lsn, ObjectId, Result, RhError, TxnId, UpdateOp};
use rh_obs::{names, Obs};
use rh_storage::BufferPool;
use rh_wal::record::{DelegateBody, LogRecord, RecordBody};
use rh_wal::LogManager;
use std::collections::{HashMap, HashSet};

/// Counters describing one forward pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardStats {
    /// LSN the redo scan started at.
    pub redo_from: Lsn,
    /// LSN analysis started at (after the checkpoint snapshot, if any).
    pub analysis_from: Lsn,
    /// Records visited by the scan.
    pub records_scanned: u64,
    /// Updates/CLRs actually reapplied to pages.
    pub redone: u64,
    /// Commit records seen (winners).
    pub commits_seen: u64,
    /// Abort records seen.
    pub aborts_seen: u64,
    /// Delegate records seen.
    pub delegations_seen: u64,
    /// 2PC `Prepare` records seen.
    pub prepares_seen: u64,
}

/// Everything the forward pass reconstructs.
#[derive(Debug)]
pub struct ForwardOutcome {
    /// The rebuilt transaction table: "Ob_Lists are restored to their
    /// state before the crash, for all transactions" (§3.6.1).
    pub tr: TrList,
    /// LSNs of updates already undone by a logged CLR.
    pub compensated: HashSet<Lsn>,
    /// Transaction-id high-water mark + 1.
    pub next_txn: u64,
    /// Lazy-baseline bookkeeping: scope identity `(ob, invoker, first)` →
    /// `(last, final owner)` for every scope ever delegated, including
    /// scopes whose owner has since left the table. Empty unless tracking
    /// was requested.
    pub lazy_scopes: HashMap<(ObjectId, TxnId, Lsn), (Lsn, TxnId)>,
    /// Per-object delegation responsibility chains: restored from the
    /// checkpoint snapshot, then extended by every delegate record the
    /// analysis region replays — the same hops normal processing
    /// recorded before the crash.
    pub prov: ProvenanceTable,
    /// Coordinator commit decisions found in this log: transaction →
    /// participant shard indices. The sharded resolver unions these
    /// across every shard's recovery to decide in-doubt transactions.
    pub coord_commits: Vec<(TxnId, Vec<u32>)>,
    /// Counters.
    pub stats: ForwardStats,
}

/// Ensures `txn` has a table entry; records of unknown transactions imply
/// one (ARIES analysis does the same — and the lazy baseline can leave
/// rewritten records positioned before their new owner's begin record).
fn ensure_txn(tr: &mut TrList, txn: TxnId, lsn: Lsn) {
    if !tr.contains(txn) {
        tr.insert(txn, lsn);
    }
}

fn redo_if_needed(
    pool: &mut BufferPool,
    log: &LogManager,
    lsn: Lsn,
    ob: ObjectId,
    op: &UpdateOp,
    stats: &mut ForwardStats,
) -> Result<()> {
    let page_lsn = pool.page_lsn_of(ob, log)?;
    if page_lsn.is_null() || page_lsn < lsn {
        let cur = pool.read_object(ob, log)?;
        pool.write_object(ob, op.apply(cur), lsn, log)?;
        stats.redone += 1;
    }
    Ok(())
}

/// Runs the forward pass. When `track_lazy` is set, also records every
/// delegated scope for the lazy-rewrite baseline's backward pass.
///
/// Scope-table reconstruction is narrated into `obs`: scope opens and
/// extends, delegate-record replays (with their merge counts), and a
/// `forward` span bracketing the whole sweep.
pub fn forward_pass(
    log: &LogManager,
    pool: &mut BufferPool,
    track_lazy: bool,
    obs: &Obs,
) -> Result<ForwardOutcome> {
    let span = obs.tracer.span(names::SPAN_FORWARD);
    let mut tr = TrList::new();
    let mut compensated = HashSet::new();
    let mut lazy_scopes = HashMap::new();
    let mut prov = ProvenanceTable::new();
    let mut coord_commits: Vec<(TxnId, Vec<u32>)> = Vec::new();
    let mut next_txn: u64 = 0;
    let mut stats = ForwardStats::default();

    // ---- locate the starting points -----------------------------------
    let master = log.stable().master();
    // A truncated log begins after its base; records before it cannot be
    // (and never need to be) read.
    let mut redo_from = log.first_lsn();
    let mut analysis_from = log.first_lsn();
    if !master.is_null() {
        // Find the CheckpointEnd paired with the master's CheckpointBegin
        // (in this engine they are adjacent, but scan defensively).
        let mut lsn = master.next();
        let end = log.curr_lsn();
        while lsn < end {
            let rec = log.read(lsn)?;
            if let RecordBody::CheckpointEnd { payload } = &rec.body {
                if rec.prev_lsn == master {
                    let snap = CheckpointSnapshot::from_bytes(payload).map_err(|_| {
                        RhError::CorruptLog { lsn, reason: "undecodable checkpoint snapshot" }
                    })?;
                    tr = snap.tr_list;
                    next_txn = snap.next_txn;
                    compensated.extend(snap.compensated.iter().copied());
                    prov = snap.provenance;
                    // Re-report coordinator decisions the snapshot
                    // carried: their CoordCommit records lie behind this
                    // anchor, but another shard's in-doubt resolution
                    // may still depend on them.
                    coord_commits.extend(snap.coord_decisions.iter().cloned());
                    analysis_from = lsn.next();
                    redo_from = snap
                        .dpt
                        .iter()
                        .map(|&(_, rec_lsn)| rec_lsn)
                        .filter(|l| !l.is_null())
                        .min()
                        .unwrap_or(analysis_from)
                        .max(log.first_lsn());
                    break;
                }
            }
            lsn = lsn.next();
        }
    }
    stats.redo_from = redo_from;
    stats.analysis_from = analysis_from;

    // ---- the single sweep ----------------------------------------------
    let end = log.curr_lsn();
    let mut lsn = redo_from;
    while lsn < end {
        let rec = log.read(lsn)?;
        stats.records_scanned += 1;
        if lsn < analysis_from {
            // Redo-only region: state changes here are already reflected
            // in the checkpoint snapshot; only page contents may lag.
            match &rec.body {
                RecordBody::Update { ob, op } | RecordBody::Clr { ob, op, .. } => {
                    redo_if_needed(pool, log, lsn, *ob, op, &mut stats)?;
                    if let RecordBody::Clr { compensated: c, .. } = &rec.body {
                        compensated.insert(*c);
                    }
                }
                _ => {}
            }
        } else {
            apply_record(
                log,
                pool,
                &mut tr,
                &mut compensated,
                &mut lazy_scopes,
                &mut prov,
                &mut coord_commits,
                track_lazy,
                &rec,
                &mut stats,
                obs,
                Some(&span),
            )?;
        }
        if !rec.txn.is_none() {
            next_txn = next_txn.max(rec.txn.raw() + 1);
        }
        lsn = lsn.next();
    }

    Ok(ForwardOutcome { tr, compensated, next_txn, lazy_scopes, prov, coord_commits, stats })
}

/// Analyzes (and redoes) **one** record, mutating the forward-pass state
/// in place — the loop body of [`forward_pass`]'s analysis region, made
/// standalone so a read replica can stay in perpetual forward pass:
/// every shipped record flows through exactly this function, so the
/// replica's scope tables, provenance chains, and coordinator decisions
/// are byte-for-byte what a restart recovery of the same log would
/// build. `span` is the enclosing forward-pass span when run inside a
/// recovery; a replica's open-ended pass has none.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_record(
    log: &LogManager,
    pool: &mut BufferPool,
    tr: &mut TrList,
    compensated: &mut HashSet<Lsn>,
    lazy_scopes: &mut HashMap<(ObjectId, TxnId, Lsn), (Lsn, TxnId)>,
    prov: &mut ProvenanceTable,
    coord_commits: &mut Vec<(TxnId, Vec<u32>)>,
    track_lazy: bool,
    rec: &LogRecord,
    stats: &mut ForwardStats,
    obs: &Obs,
    span: Option<&rh_obs::SpanGuard<'_>>,
) -> Result<()> {
    let lsn = rec.lsn;
    match &rec.body {
        RecordBody::Begin => {
            // LOSER BY DEFAULT (§3.6.1): a fresh entry is Active, and
            // Active means loser until a commit record says otherwise.
            ensure_txn(tr, rec.txn, lsn);
        }
        RecordBody::Update { ob, op } => {
            ensure_txn(tr, rec.txn, lsn);
            tr.set_bc(rec.txn, lsn)?;
            // ADJUST SCOPES "just as update (1) in normal processing".
            match tr.get_mut(rec.txn)?.ob_list.record_update(*ob, rec.txn, lsn) {
                crate::oblist::ScopeAction::Opened => obs.registry.inc(names::M_SCOPE_OPENS),
                crate::oblist::ScopeAction::Extended => obs.registry.inc(names::M_SCOPE_EXTENDS),
            }
            redo_if_needed(pool, log, lsn, *ob, op, stats)?;
        }
        RecordBody::Clr { ob, op, compensated: c, .. } => {
            ensure_txn(tr, rec.txn, lsn);
            tr.set_bc(rec.txn, lsn)?;
            compensated.insert(*c);
            redo_if_needed(pool, log, lsn, *ob, op, stats)?;
        }
        RecordBody::Delegate { tee, body, .. } => {
            stats.delegations_seen += 1;
            obs.registry.inc(names::M_SCOPE_DELEGATE_REPLAYS);
            if let Some(span) = span {
                span.point(
                    names::EV_DELEGATE_REPLAY,
                    lsn.raw(),
                    lsn.raw(),
                    rec.txn.raw(),
                    tee.raw(),
                );
            }
            ensure_txn(tr, rec.txn, lsn);
            ensure_txn(tr, *tee, lsn);
            // TRANSFER RESPONSIBILITY "just as delegate (3) in normal
            // processing" — leniently: on a log the lazy baseline has
            // rewritten, the delegator's entry may already be gone.
            let objects: Vec<ObjectId> = match body {
                DelegateBody::Objects(objs) => objs.clone(),
                DelegateBody::All => tr.get(rec.txn)?.ob_list.objects().collect(),
            };
            for ob in objects {
                if let Some(entry) = tr.get_mut(rec.txn)?.ob_list.take(ob) {
                    if track_lazy {
                        for s in &entry.scopes {
                            lazy_scopes.insert((ob, s.invoker, s.first), (s.last, *tee));
                        }
                    }
                    let merged = tr.get_mut(*tee)?.ob_list.absorb(ob, entry, rec.txn);
                    obs.registry.add(names::M_SCOPE_MERGES, merged as u64);
                    // REBUILD PROVENANCE: the same hop normal processing
                    // recorded. Idempotent per (ob, lsn), so hops already
                    // restored from the checkpoint are not re-counted.
                    if let Some(depth) = prov.record_hop(ob, rec.txn, *tee, lsn) {
                        obs.registry.inc(names::M_PROVENANCE_HOPS);
                        obs.registry.observe(names::M_PROVENANCE_CHAIN_DEPTH, depth as u64);
                        obs.tracer.point(
                            names::EV_PROVENANCE_HOP,
                            lsn.raw(),
                            ob.raw(),
                            rec.txn.raw(),
                            tee.raw(),
                        );
                    }
                }
            }
            tr.set_bc(rec.txn, lsn)?;
            tr.set_bc(*tee, lsn)?;
        }
        RecordBody::Commit => {
            stats.commits_seen += 1;
            ensure_txn(tr, rec.txn, lsn);
            tr.set_bc(rec.txn, lsn)?;
            // WINNER (§3.6.1): "Declare t as a winner."
            tr.get_mut(rec.txn)?.status = TxnStatus::Committed;
        }
        RecordBody::Abort => {
            stats.aborts_seen += 1;
            ensure_txn(tr, rec.txn, lsn);
            tr.set_bc(rec.txn, lsn)?;
            let entry = tr.get_mut(rec.txn)?;
            entry.status = TxnStatus::Aborted;
            // The abort record is only written after every responsible
            // update was undone and compensated (§3.5 abort), so these
            // scopes have nothing left to undo — drop them so the
            // backward pass does not walk dead clusters.
            entry.ob_list = crate::oblist::ObList::new();
        }
        RecordBody::End => {
            tr.remove(rec.txn);
        }
        RecordBody::Prepare => {
            stats.prepares_seen += 1;
            ensure_txn(tr, rec.txn, lsn);
            tr.set_bc(rec.txn, lsn)?;
            // IN DOUBT: prepared, and no local commit/abort seen yet. A
            // later Commit/Abort record overrides this, exactly as during
            // normal 2PC processing.
            tr.get_mut(rec.txn)?.status = TxnStatus::Prepared;
        }
        RecordBody::CoordCommit { participants } => {
            ensure_txn(tr, rec.txn, lsn);
            tr.set_bc(rec.txn, lsn)?;
            coord_commits.push((rec.txn, participants.clone()));
            // The coordinator record's durability IS the global commit:
            // locally the transaction is a winner from here on, even if
            // its (lazily flushed) participant Commit record was lost.
            tr.get_mut(rec.txn)?.status = TxnStatus::Committed;
        }
        RecordBody::CheckpointBegin | RecordBody::CheckpointEnd { .. } => {
            // A checkpoint later than the master anchor (or an incomplete
            // one): its information is redundant with the live scan.
        }
    }
    Ok(())
}
