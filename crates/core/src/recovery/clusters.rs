//! Loser-scope clusters (paper §3.6.2, Fig. 7).
//!
//! "Scopes may overlap; a cluster of scopes is a maximal set of
//! overlapping scopes. Within each cluster we must examine every log
//! record, but between clusters we examine none."
//!
//! [`ClusterWalk`] drives the backward sweep of Fig. 8:
//!
//! * `LsrScopes` is "a priority queue (on a heap) sorted by right end of
//!   scopes, with the largest value first" — the `pending` heap in [`ClusterWalk`];
//! * `Cluster` "is searched by invoking transaction ... A binary tree
//!   keyed on transaction ids is a reasonable implementation" — we key by
//!   `(invoking txn, object)` since a scope only covers updates *to its
//!   object* by its invoker (§3.4);
//! * the walk position `K` decreases monotonically within a cluster (α4)
//!   and jumps directly to the right end of the next cluster (β), so every
//!   log record is visited at most once, in strictly decreasing order.

use crate::scope::Scope;
use rh_common::{Lsn, ObjectId, TxnId};
use std::collections::{BinaryHeap, HashMap};

/// A scope scheduled for the backward walk, tagged with the transaction
/// currently responsible for it (`owner`) and whether that owner is a
/// loser (must be undone) or a winner (visited only by the lazy baseline,
/// for rewriting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalkScope {
    /// The transaction responsible for these updates at crash time.
    pub owner: TxnId,
    /// The object the scope's updates touched.
    pub ob: ObjectId,
    /// The `(invoker, first, last)` triple.
    pub scope: Scope,
    /// True if `owner` is a loser: covered updates must be undone.
    pub loser: bool,
}

/// Heap adapter ordering scopes by right end, largest first.
#[derive(Debug, PartialEq, Eq)]
struct ByRight(WalkScope);

impl Ord for ByRight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .scope
            .last
            .cmp(&other.0.scope.last)
            // Tie-breakers make the walk fully deterministic.
            .then(self.0.scope.first.cmp(&other.0.scope.first))
            .then(self.0.ob.cmp(&other.0.ob))
            .then(self.0.scope.invoker.cmp(&other.0.scope.invoker))
            .then(self.0.owner.cmp(&other.0.owner))
    }
}

impl PartialOrd for ByRight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The Fig. 8 walk driver. Protocol:
///
/// ```text
/// while let Some(k) = walk.next_position() {   // α1 done; K = k
///     // examine LOG[k]; walk.covering(...) answers the α2 test
///     walk.finish_position();                  // α3 + α4 (+ β if needed)
/// }
/// ```
#[derive(Debug)]
pub struct ClusterWalk {
    /// `LsrScopes`: scopes not yet absorbed into a cluster.
    pending: BinaryHeap<ByRight>,
    /// The current cluster, keyed by `(invoker, object)`.
    cluster: HashMap<(TxnId, ObjectId), Vec<WalkScope>>,
    /// `begCluster`: left end of the current cluster (may decrease as
    /// overlapping scopes join, per the paper's termination argument).
    beg_cluster: Lsn,
    /// `K`: current log position; NULL when the walk is done.
    k: Lsn,
    /// Records visited (returned positions).
    pub visited: u64,
    /// Clusters processed.
    pub clusters: u64,
}

impl ClusterWalk {
    /// Builds a walk over the given scopes. An empty input yields an
    /// immediately-finished walk.
    pub fn new(scopes: Vec<WalkScope>) -> Self {
        let pending: BinaryHeap<ByRight> = scopes.into_iter().map(ByRight).collect();
        let k = pending.peek().map_or(Lsn::NULL, |s| s.0.scope.last);
        let clusters = u64::from(!k.is_null());
        ClusterWalk {
            pending,
            cluster: HashMap::new(),
            beg_cluster: Lsn::NULL,
            k,
            visited: 0,
            clusters,
        }
    }

    /// Advances to (and returns) the next log position to examine.
    /// Performs α1: moves every pending scope whose right end is the
    /// current position into the cluster, updating `begCluster`.
    pub fn next_position(&mut self) -> Option<Lsn> {
        if self.k.is_null() {
            return None;
        }
        while let Some(top) = self.pending.peek() {
            debug_assert!(top.0.scope.last <= self.k, "a pending scope's right end was skipped");
            if top.0.scope.last != self.k {
                break;
            }
            let Some(ByRight(ws)) = self.pending.pop() else { break };
            self.beg_cluster = if self.beg_cluster.is_null() {
                ws.scope.first
            } else {
                self.beg_cluster.min(ws.scope.first)
            };
            self.cluster.entry((ws.scope.invoker, ws.ob)).or_default().push(ws);
        }
        self.visited += 1;
        Some(self.k)
    }

    /// The α2 membership test: is the update record at `lsn` (written by
    /// `txn`, touching `ob`) covered by a scope in the current cluster?
    /// Returns the covering scope (there is at most one: scopes of equal
    /// invoker and object never overlap).
    pub fn covering(&self, txn: TxnId, ob: ObjectId, lsn: Lsn) -> Option<WalkScope> {
        self.cluster.get(&(txn, ob))?.iter().find(|ws| ws.scope.covers(lsn)).copied()
    }

    /// Completes the current position: α3 (drop scopes that began here),
    /// α4 (step left), and — when the cluster is exhausted — β (jump to
    /// the right end of the next cluster, or finish).
    pub fn finish_position(&mut self) {
        let k = self.k;
        // α3: scopes whose left end is the record just processed are done.
        self.cluster.retain(|_, v| {
            v.retain(|ws| ws.scope.first != k);
            !v.is_empty()
        });
        // α4: K <- K - 1.
        self.k = k.prev();
        // until K < begCluster → β.
        if self.k.is_null() || self.k < self.beg_cluster {
            debug_assert!(self.cluster.is_empty(), "cluster must drain by its own left end");
            self.cluster.clear();
            self.beg_cluster = Lsn::NULL;
            match self.pending.peek() {
                None => self.k = Lsn::NULL,
                Some(next) => {
                    self.k = next.0.scope.last;
                    self.clusters += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(owner: u64, ob: u64, invoker: u64, first: u64, last: u64) -> WalkScope {
        WalkScope {
            owner: TxnId(owner),
            ob: ObjectId(ob),
            scope: Scope { invoker: TxnId(invoker), first: Lsn(first), last: Lsn(last) },
            loser: true,
        }
    }

    /// Drains a walk, returning every visited position.
    fn positions(mut walk: ClusterWalk) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(k) = walk.next_position() {
            out.push(k.raw());
            walk.finish_position();
        }
        out
    }

    #[test]
    fn empty_walk_finishes_immediately() {
        let mut walk = ClusterWalk::new(vec![]);
        assert_eq!(walk.next_position(), None);
        assert_eq!(walk.clusters, 0);
    }

    #[test]
    fn single_scope_visits_its_range() {
        let walk = ClusterWalk::new(vec![ws(1, 0, 1, 3, 6)]);
        assert_eq!(positions(walk), vec![6, 5, 4, 3]);
    }

    #[test]
    fn fig7_three_clusters_skip_gaps() {
        // Three clusters as in Fig. 7: [2,4], [10,18] (four overlapping
        // scopes), [25,27]. The walk must visit only cluster ranges,
        // right-to-left, skipping (4,10) and (18,25).
        let scopes = vec![
            ws(1, 0, 1, 2, 4),
            // middle cluster: overlapping scopes
            ws(2, 1, 2, 10, 14),
            ws(3, 2, 3, 12, 18),
            ws(4, 3, 4, 11, 13),
            ws(5, 4, 5, 13, 16),
            ws(6, 5, 6, 25, 27),
        ];
        let want: Vec<u64> = (25..=27).rev().chain((10..=18).rev()).chain((2..=4).rev()).collect();
        let mut walk = ClusterWalk::new(scopes);
        let mut got = Vec::new();
        while let Some(k) = walk.next_position() {
            got.push(k.raw());
            walk.finish_position();
        }
        assert_eq!(got, want);
        assert_eq!(walk.clusters, 3);
    }

    #[test]
    fn begcluster_decreases_as_scopes_join() {
        // Scope (5,10) is entered at K=10; scope (1,7) joins at K=7 and
        // drags begCluster down to 1 — the paper's "although (α)'s limit
        // begCluster may decrease" case.
        let walk = ClusterWalk::new(vec![ws(1, 0, 1, 5, 10), ws(2, 1, 2, 1, 7)]);
        assert_eq!(positions(walk), (1..=10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn covering_requires_invoker_object_and_range() {
        let mut walk = ClusterWalk::new(vec![ws(9, 0, 1, 3, 6)]);
        walk.next_position(); // K = 6, scope entered
        assert_eq!(walk.covering(TxnId(1), ObjectId(0), Lsn(5)).unwrap().owner, TxnId(9));
        assert!(walk.covering(TxnId(2), ObjectId(0), Lsn(5)).is_none()); // wrong invoker
        assert!(walk.covering(TxnId(1), ObjectId(1), Lsn(5)).is_none()); // wrong object
        assert!(walk.covering(TxnId(1), ObjectId(0), Lsn(7)).is_none()); // outside range
    }

    #[test]
    fn identical_right_ends_enter_together() {
        let walk = ClusterWalk::new(vec![ws(1, 0, 1, 2, 5), ws(2, 1, 2, 4, 5)]);
        assert_eq!(positions(walk), vec![5, 4, 3, 2]);
    }

    #[test]
    fn disjoint_scopes_same_invoker_and_object() {
        // The delegation-back pattern: two disjoint scopes of one invoker
        // on one object, walked as two clusters.
        let walk = ClusterWalk::new(vec![ws(1, 0, 1, 1, 2), ws(1, 0, 1, 8, 9)]);
        assert_eq!(positions(walk), vec![9, 8, 2, 1]);
    }

    #[test]
    fn positions_strictly_decrease_and_never_repeat() {
        let scopes =
            vec![ws(1, 0, 1, 0, 3), ws(2, 1, 2, 2, 9), ws(3, 2, 3, 15, 20), ws(4, 3, 4, 17, 26)];
        let pos = positions(ClusterWalk::new(scopes));
        for pair in pos.windows(2) {
            assert!(pair[0] > pair[1], "visits must strictly decrease: {pos:?}");
        }
    }

    #[test]
    fn nested_scope_is_absorbed_into_enclosing_cluster() {
        // A scope fully inside another must not spawn a separate cluster.
        let mut walk = ClusterWalk::new(vec![ws(1, 0, 1, 0, 10), ws(2, 1, 2, 4, 6)]);
        let mut count = 0;
        while walk.next_position().is_some() {
            count += 1;
            walk.finish_position();
        }
        assert_eq!(count, 11);
        assert_eq!(walk.clusters, 1);
    }
}
