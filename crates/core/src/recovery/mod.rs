//! Restart recovery (paper §3.6): the same two passes as ARIES —
//! forward (analysis + redo, "repeating history") and backward (undo) —
//! with delegation realized by *interpreting* the log through the
//! reconstructed scope tables instead of rewriting it.

pub mod backward;
pub mod clusters;
pub mod forward;

pub use backward::{undo_scopes, UndoStats, WalkScope};
pub use forward::{forward_pass, ForwardOutcome, ForwardStats};

use crate::engine::{DbConfig, RhDb, Strategy};
use crate::flight::FlightRecorder;
use crate::scope::Scope;
use crate::txn_table::TxnStatus;
use rh_common::{Lsn, ObjectId, Result, TxnId};
use rh_obs::{blackbox, names, BlackBoxRecord, JsonValue, Obs, Stopwatch};
use rh_storage::{BufferPool, Disk};
use rh_wal::metrics::LogMetricsSnapshot;
use rh_wal::record::RecordBody;
use rh_wal::sidecar::SidecarLog;
use rh_wal::{LogManager, StableLog};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// What a completed recovery did — consumed by tests and the E3/E4/E6
/// experiments.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Forward-pass statistics.
    pub forward: ForwardStats,
    /// Backward-pass statistics.
    pub undo: UndoStats,
    /// Transactions rolled back by this recovery.
    pub losers: Vec<TxnId>,
    /// Transactions left **in doubt**: a 2PC `Prepare` record with no
    /// local decision. They stay in the table (status `Prepared`) for the
    /// sharded resolver; empty for unsharded databases.
    pub indoubt: Vec<TxnId>,
    /// Coordinator commit decisions found in this log, with their
    /// participant shard lists.
    pub coord_commits: Vec<(TxnId, Vec<u32>)>,
    /// Transactions whose commit records were seen (winners).
    pub winners_seen: u64,
    /// Wall clock for the whole recovery (attach through log force).
    pub elapsed: Duration,
    /// Wall clock for the forward pass alone.
    pub forward_wall: Duration,
    /// Wall clock for the backward pass alone.
    pub undo_wall: Duration,
    /// Log activity attributable to this recovery (snapshot delta).
    pub log_delta: LogMetricsSnapshot,
    /// Disk activity attributable to this recovery (snapshot delta).
    pub disk_delta: rh_storage::DiskMetricsSnapshot,
    /// Predecessor diff: the crashed incarnation's last black-box record
    /// (final spans, counters at freeze time) against post-recovery
    /// state. `None` when no flight-recorder stream was found next to
    /// the log.
    pub postmortem: Option<JsonValue>,
}

/// Loads the predecessor's newest black-box record from the sidecar
/// stream next to `stable`'s directory. Strictly best-effort: any
/// failure (mem-backed log, no stream, torn-away tail, unparseable
/// record) degrades to `None` — a recovery must never fail because the
/// black box is damaged. Reads through the real filesystem even when
/// the engine runs fault-injected I/O: the predecessor's records are
/// plain on-disk state by now.
fn load_predecessor_blackbox(stable: &StableLog) -> Option<BlackBoxRecord> {
    let dir = stable.dir()?;
    let sidecar = SidecarLog::open(SidecarLog::dir_for(dir)).ok()?;
    let (_, payload) = sidecar.last()?;
    BlackBoxRecord::parse(&payload)
}

/// Collects the scopes the backward pass must walk. For RH: exactly the
/// loser scopes ("It is enough to inspect records within the loser
/// scopes to find all loser updates", §3.6.2). The lazy baseline
/// additionally walks every *delegated* scope — winners included —
/// because it physically rewrites the log to reflect the delegations
/// (§3.2). A scope's identity is (object, invoker, first-LSN); the live
/// table's version is preferred (it may have been extended after a
/// delegation back). Shared by restart recovery and replica promotion —
/// a promotion's backward pass walks exactly what a recovery's would.
pub(crate) fn collect_walk_scopes(
    tr: &crate::txn_table::TrList,
    losers: &[TxnId],
    lazy: bool,
    lazy_scopes: &std::collections::HashMap<(ObjectId, TxnId, Lsn), (Lsn, TxnId)>,
) -> Result<Vec<WalkScope>> {
    let loser_set: HashSet<TxnId> = losers.iter().copied().collect();
    let mut scopes: Vec<WalkScope> = Vec::new();
    for &t in losers {
        for (ob, scope) in tr.get(t)?.ob_list.all_scopes() {
            scopes.push(WalkScope { owner: t, ob, scope, loser: true });
        }
    }
    if lazy {
        let present: HashSet<(ObjectId, TxnId, Lsn)> =
            scopes.iter().map(|ws| (ws.ob, ws.scope.invoker, ws.scope.first)).collect();
        for (&(ob, invoker, first), &(last, owner)) in lazy_scopes {
            if present.contains(&(ob, invoker, first)) {
                continue;
            }
            scopes.push(WalkScope {
                owner,
                ob,
                scope: Scope { invoker, first, last },
                loser: loser_set.contains(&owner),
            });
        }
    }
    Ok(scopes)
}

/// Terminates the losers (Abort if not already aborted, then End) and
/// Ends committed transactions whose End record was lost in the crash,
/// draining the table down to the in-doubt survivors. The caller forces
/// the log afterwards. Shared by restart recovery and replica promotion.
pub(crate) fn terminate_losers(
    log: &LogManager,
    tr: &mut crate::txn_table::TrList,
    losers: &[TxnId],
) -> Result<()> {
    for &t in losers {
        if tr.get(t)?.status != TxnStatus::Aborted {
            let prev = tr.bc(t)?;
            let lsn = log.append(t, prev, RecordBody::Abort);
            tr.set_bc(t, lsn)?;
        }
        let prev = tr.bc(t)?;
        log.append(t, prev, RecordBody::End);
        tr.remove(t);
    }
    for t in tr.with_status(TxnStatus::Committed) {
        let prev = tr.bc(t)?;
        log.append(t, prev, RecordBody::End);
        tr.remove(t);
    }
    Ok(())
}

/// Runs restart recovery and returns a ready-to-use engine.
///
/// Steps (Fig. 3): attach to the stable log, forward pass from the last
/// checkpoint (analysis + redo), collect loser scopes, backward pass over
/// loser-scope clusters, then terminate losers with abort/end records and
/// force the log.
pub fn recover(
    strategy: Strategy,
    config: DbConfig,
    stable: Arc<StableLog>,
    disk: Arc<Disk>,
) -> Result<RhDb> {
    let obs = Arc::new(Obs::new());
    let started = Stopwatch::start();
    // Read the crashed incarnation's black box *before* this recovery
    // starts writing its own records into the same stream.
    let predecessor = load_predecessor_blackbox(&stable);
    let span = obs.tracer.span(names::SPAN_RECOVERY);
    // Recovery progress is first-class telemetry: each pass boundary
    // pins a *marked* sample into the time-series ring, so once this
    // obs context becomes the recovered engine's, `/timeseries` shows
    // the recovery era alongside live serving samples.
    obs.mark_timeseries(names::TS_RECOVERY_START);
    let log = Arc::new(LogManager::attach(stable));
    let mut pool = BufferPool::new(Arc::clone(&disk), config.pool_pages);
    let log_before = log.metrics().snapshot();
    let disk_before = disk.metrics().snapshot();

    // ---- forward pass (analysis + redo) ------------------------------
    let lazy = strategy == Strategy::LazyRewrite;
    let fwd_started = Stopwatch::start();
    let fwd = forward_pass(&log, &mut pool, lazy, &obs)?;
    let forward_wall = fwd_started.elapsed();
    obs.mark_timeseries(names::TS_RECOVERY_FORWARD);
    {
        use rh_obs::trace::NONE;
        span.point(names::EV_PAGES_REDONE, NONE, NONE, NONE, fwd.stats.redone);
    }
    let mut tr = fwd.tr;
    let losers = tr.losers();
    let scopes = collect_walk_scopes(&tr, &losers, lazy, &fwd.lazy_scopes)?;

    // ---- backward pass -------------------------------------------------
    let mut compensated = fwd.compensated;
    let undo_started = Stopwatch::start();
    let undo = undo_scopes(&log, &mut pool, &mut tr, scopes, &mut compensated, lazy, &obs)?;
    let undo_wall = undo_started.elapsed();
    obs.mark_timeseries(names::TS_RECOVERY_UNDO);

    // ---- terminate losers and stragglers --------------------------------
    terminate_losers(&log, &mut tr, &losers)?;
    log.flush_all()?;
    // Only in-doubt (2PC-prepared) transactions may survive recovery;
    // the sharded resolver terminates them once every shard's decision
    // records have been unioned.
    let indoubt = tr.with_status(TxnStatus::Prepared);
    debug_assert!(
        tr.len() == indoubt.len(),
        "recovery must drain all but the in-doubt transactions"
    );
    drop(span);

    let elapsed = started.elapsed();
    let log_delta = log.metrics().snapshot().since(&log_before);
    let disk_delta = disk.metrics().snapshot().since(&disk_before);
    obs.registry.inc(names::M_RECOVERY_RUNS);
    obs.registry.observe(names::M_RECOVERY_FORWARD_US, forward_wall.as_micros() as u64);
    obs.registry.observe(names::M_RECOVERY_UNDO_US, undo_wall.as_micros() as u64);
    obs.registry.observe(names::M_RECOVERY_TOTAL_US, elapsed.as_micros() as u64);
    obs.mark_timeseries(names::TS_RECOVERY_DONE);

    let mut db =
        RhDb::from_parts(strategy, config, log, disk, pool, tr, fwd.next_txn, Arc::clone(&obs));
    db.set_provenance(fwd.prov);
    // Decisions survive into the new incarnation's checkpoints until the
    // sharded resolver retires them (unsharded logs never have any).
    db.set_coord_decisions(&fwd.coord_commits);

    // Re-arm the flight recorder for this incarnation, through the same
    // I/O layer as the log (attach failures — e.g. a recovery running on
    // already-crashed fault-injected I/O — degrade to "no recorder").
    let stable = db.log().stable();
    if let (Some(dir), Some(io)) = (stable.dir(), stable.io()) {
        match FlightRecorder::attach(io, dir) {
            Ok(flight) => db.attach_flight(flight),
            Err(_) => obs.registry.inc(names::M_BLACKBOX_ERRORS),
        }
    }

    // The postmortem diffs the predecessor's frozen counters against the
    // recovered process's one-stop stats view.
    let postmortem = predecessor
        .as_ref()
        .map(|pred| blackbox::postmortem(pred, &db.stats(), blackbox::DEFAULT_FINAL_EVENTS));
    if let Some(pm) = &postmortem {
        db.set_postmortem(pm.clone());
    }

    db.set_recovery_report(RecoveryReport {
        winners_seen: fwd.stats.commits_seen,
        forward: fwd.stats,
        undo,
        losers,
        indoubt,
        coord_commits: fwd.coord_commits,
        elapsed,
        forward_wall,
        undo_wall,
        log_delta,
        disk_delta,
        postmortem,
    });
    // First record of the new incarnation: the full recovery timeline.
    db.record_blackbox("recovery");
    Ok(db)
}
