//! The backward pass (paper §3.6.2, Fig. 8) — and, reused, the undo half
//! of normal-processing abort (§3.5 abort step 1), which is the same
//! cluster sweep restricted to a single transaction's scopes.
//!
//! "Notice that by undoing the *loser* updates instead of the updates
//! invoked by loser transactions, we are in fact applying the delegations,
//! as we undo according to the fate of the final delegatee of each
//! update."

use super::clusters::ClusterWalk;
pub use super::clusters::WalkScope;
use crate::txn_table::TrList;
use rh_common::{Lsn, Result, RhError};
use rh_obs::{names, trace, Obs};
use rh_storage::BufferPool;
use rh_wal::record::RecordBody;
use rh_wal::LogManager;
use std::collections::HashSet;

/// Counters describing one backward sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct UndoStats {
    /// Log records examined (each at most once, strictly decreasing).
    pub visited: u64,
    /// Updates undone (one CLR each).
    pub undone: u64,
    /// Updates found already compensated by a pre-crash (or
    /// prior-recovery) CLR and skipped.
    pub skipped_compensated: u64,
    /// Clusters swept.
    pub clusters: u64,
    /// In-place log rewrites performed — always 0 for ARIES/RH; the lazy
    /// baseline pays these.
    pub rewrites: u64,
}

/// Sweeps the log backwards over the clusters formed by `scopes`, undoing
/// every covered **loser** update (α2) and writing a CLR for each. With
/// `rewrite_history` set (the lazy baseline), covered records whose
/// Trans-ID differs from the responsible transaction are additionally
/// rewritten in place — which ARIES/RH exists to avoid.
///
/// `compensated` holds LSNs already undone by logged CLRs; they are
/// skipped, making the pass idempotent across crashes during recovery.
/// Every LSN this pass undoes is added to the set, so later sweeps that
/// re-cover the same region (a scope re-extended after a partial
/// rollback) cannot undo a record twice.
///
/// The sweep narrates itself into `obs`: every examined position is an
/// `undo_visit` event, every CLR an `undo_clr`, every inter-cluster jump
/// a `gap_skip` (with the skipped range), and the LSN distance between
/// consecutive visits feeds the `undo.lsn_jump` histogram — the raw
/// material for the §4.2 invariant observers.
pub fn undo_scopes(
    log: &LogManager,
    pool: &mut BufferPool,
    tr: &mut TrList,
    scopes: Vec<WalkScope>,
    compensated: &mut HashSet<Lsn>,
    rewrite_history: bool,
    obs: &Obs,
) -> Result<UndoStats> {
    let mut stats = UndoStats::default();
    let mut walk = ClusterWalk::new(scopes);
    let span = obs.tracer.span(names::SPAN_BACKWARD);
    let jump_hist = obs.registry.histogram(names::M_UNDO_LSN_JUMP);
    let mut clusters_seen = 0;
    let mut prev_k = Lsn::NULL;
    while let Some(k) = walk.next_position() {
        // The paper's efficiency invariant: K strictly decreases, so each
        // record is brought in at most once (§4.2).
        debug_assert!(prev_k.is_null() || k < prev_k, "backward pass must be monotone");
        if walk.clusters > clusters_seen {
            clusters_seen = walk.clusters;
            span.point(names::EV_CLUSTER_START, trace::NONE, k.raw(), trace::NONE, clusters_seen);
        }
        if !prev_k.is_null() {
            let dist = prev_k.raw() - k.raw();
            jump_hist.observe(dist);
            if dist > 1 {
                // The β jump of Fig. 8: records in (k, prev_k) belong to
                // no loser-scope cluster and are never brought in.
                span.point(names::EV_GAP_SKIP, k.raw(), prev_k.raw(), trace::NONE, dist);
            }
        }
        span.point(names::EV_UNDO_VISIT, k.raw(), k.raw(), trace::NONE, 0);
        prev_k = k;

        let rec = log.read(k)?;
        if let RecordBody::Update { ob, op } = rec.body {
            // α2: "a record is a loser update if it is within the ends of
            // a loser scope whose invoking transaction is the same as the
            // update's invoking transaction" (and on the same object).
            if let Some(ws) = walk.covering(rec.txn, ob, k) {
                if rewrite_history && rec.txn != ws.owner {
                    // Lazy baseline: setTransID(K, owner) — physically
                    // rewrite history (§3.1 Fig. 1 applied at recovery).
                    log.rewrite_in_place(k, |r| r.txn = ws.owner)?;
                    span.point(names::EV_REWRITE, k.raw(), k.raw(), ws.owner.raw(), 0);
                    stats.rewrites += 1;
                }
                if ws.loser {
                    if compensated.contains(&k) {
                        stats.skipped_compensated += 1;
                    } else {
                        let clr = undo_one(log, pool, tr, k, ob, op, ws, &mut stats)?;
                        span.point(names::EV_UNDO_CLR, k.raw(), k.raw(), ws.owner.raw(), clr.raw());
                        compensated.insert(k);
                    }
                }
            }
        }
        walk.finish_position();
    }
    stats.visited = walk.visited;
    stats.clusters = walk.clusters;
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn undo_one(
    log: &LogManager,
    pool: &mut BufferPool,
    tr: &mut TrList,
    k: Lsn,
    ob: rh_common::ObjectId,
    op: rh_common::UpdateOp,
    ws: WalkScope,
    stats: &mut UndoStats,
) -> Result<Lsn> {
    let cur = pool.read_object(ob, log)?;
    // The CLR is attributed to the transaction *responsible* for the
    // update (the scope's owner), not its invoker: the rollback is the
    // owner's. Chain it onto the owner's BC.
    let prev = tr.bc(ws.owner).map_err(|_| RhError::UnknownTxn(ws.owner))?;
    let clr_lsn = log.append(
        ws.owner,
        prev,
        RecordBody::Clr {
            ob,
            op: op.compensation(cur),
            compensated: k,
            // Informational pointer ARIES uses to resume rollbacks; RH's
            // skip logic uses the compensated-set instead (scopes make
            // per-chain resumption unnecessary).
            undo_next: rec_prev_for(op, k),
        },
    );
    tr.set_bc(ws.owner, clr_lsn)?;
    pool.write_object(ob, op.undo(cur), clr_lsn, log)?;
    stats.undone += 1;
    Ok(clr_lsn)
}

/// `undo_next` for a CLR compensating the record at `k`: the next-lower
/// position that could hold work for this rollback.
fn rec_prev_for(_op: rh_common::UpdateOp, k: Lsn) -> Lsn {
    k.prev()
}
