//! Per-transaction object lists (paper §3.4, Fig. 5).
//!
//! `Ob_List(t)` holds, for each object `t` is currently responsible for,
//! the set of scopes covering the updates delegated to (or made by) `t`,
//! plus the `deleg` field recording who delegated the object last.
//!
//! Invariants maintained here and checked in tests:
//!
//! * scopes of one object that share an invoking transaction never
//!   overlap (the §3.5 remark: overlapping scopes "cannot share the same
//!   invoking transaction");
//! * an object with an empty scope set does not appear in the list.

use crate::scope::Scope;
use rh_common::codec::{Codec, Reader, Writer};
use rh_common::{Lsn, ObjectId, Result, TxnId};
use std::collections::BTreeMap;

/// What a scope-table update did — returned so callers can feed the
/// unified metrics registry (`scope.opens` / `scope.extends`) without
/// the table knowing about observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeAction {
    /// A new scope was opened for the invoker.
    Opened,
    /// The invoker's newest scope was extended.
    Extended,
}

/// The per-object entry inside one transaction's `Ob_List`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObEntry {
    /// "record that ob was delegated by t1" (§3.5 delegate step 3):
    /// the most recent delegator, `None` for objects the transaction is
    /// responsible for purely by its own invocations.
    pub deleg: Option<TxnId>,
    /// The scopes covering the updates this transaction is responsible
    /// for, in the order received/created.
    pub scopes: Vec<Scope>,
}

impl ObEntry {
    /// Merges `incoming` scopes (from a delegation) into this entry —
    /// "We use a union because t2 may already be responsible for some
    /// operations on ob before receiving the delegation" (§3.5 remark).
    /// Returns how many scopes were merged in.
    pub fn absorb(&mut self, incoming: Vec<Scope>, from: TxnId) -> usize {
        self.deleg = Some(from);
        let merged = incoming.len();
        for s in incoming {
            debug_assert!(
                self.scopes.iter().all(|own| own.invoker != s.invoker || !own.overlaps(&s)),
                "overlapping scopes with the same invoking transaction"
            );
            self.scopes.push(s);
        }
        merged
    }

    /// Records one update at `lsn` invoked by `who` (the owning
    /// transaction itself during normal processing; also called during the
    /// recovery forward pass). Opens a new scope or extends the newest
    /// scope of that invoker, per §3.5 `update` step 1.
    pub fn record_update(&mut self, who: TxnId, lsn: Lsn) -> ScopeAction {
        // Extend the invoker's most recent scope if one exists; later
        // scopes always have larger LSNs, so max-by-last is "current".
        if let Some(s) = self.scopes.iter_mut().filter(|s| s.invoker == who).max_by_key(|s| s.last)
        {
            s.extend(lsn);
            ScopeAction::Extended
        } else {
            self.scopes.push(Scope::open(who, lsn));
            ScopeAction::Opened
        }
    }

    /// Smallest `first` LSN over this entry's scopes (for abort's minLSN).
    pub fn min_first(&self) -> Option<Lsn> {
        self.scopes.iter().map(|s| s.first).min()
    }
}

/// One transaction's object list: object -> entry.
///
/// A `BTreeMap` keeps iteration deterministic, which matters for
/// reproducible logs (CLR order during abort) and testable dumps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObList {
    entries: BTreeMap<ObjectId, ObEntry>,
}

impl ObList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// `ob ∈ Ob_List(t)` — the well-formedness test of §3.5 delegate
    /// step 1.
    pub fn contains(&self, ob: ObjectId) -> bool {
        self.entries.contains_key(&ob)
    }

    /// True if no objects are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of objects held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The objects in the list, in id order.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.entries.keys().copied()
    }

    /// Immutable entry access.
    pub fn get(&self, ob: ObjectId) -> Option<&ObEntry> {
        self.entries.get(&ob)
    }

    /// Records an update by `who` on `ob` at `lsn` (§3.5 `update`).
    pub fn record_update(&mut self, ob: ObjectId, who: TxnId, lsn: Lsn) -> ScopeAction {
        self.entries.entry(ob).or_default().record_update(who, lsn)
    }

    /// Removes and returns the entry for `ob` — the delegator's half of a
    /// delegation ("remove ob from the delegator's Ob_List", §3.5).
    pub fn take(&mut self, ob: ObjectId) -> Option<ObEntry> {
        self.entries.remove(&ob)
    }

    /// The delegatee's half: merge scopes received from `from`. Returns
    /// how many scopes were merged in.
    pub fn absorb(&mut self, ob: ObjectId, incoming: ObEntry, from: TxnId) -> usize {
        self.entries.entry(ob).or_default().absorb(incoming.scopes, from)
    }

    /// All `(object, scope)` pairs — what recovery collects into
    /// `LsrScopes` for loser transactions.
    pub fn all_scopes(&self) -> impl Iterator<Item = (ObjectId, Scope)> + '_ {
        self.entries.iter().flat_map(|(&ob, e)| e.scopes.iter().map(move |&s| (ob, s)))
    }

    /// `minLSN` over every scope (§3.5 abort step 1), `None` if empty.
    pub fn min_first(&self) -> Option<Lsn> {
        self.entries.values().filter_map(|e| e.min_first()).min()
    }

    /// Drains the whole list (delegate-all / join).
    pub fn drain_all(&mut self) -> Vec<(ObjectId, ObEntry)> {
        std::mem::take(&mut self.entries).into_iter().collect()
    }

    /// Clips `ob`'s scopes to the portion strictly before `sp` (partial
    /// rollback support): scopes entirely at/after `sp` are dropped,
    /// straddling scopes are truncated, and an emptied entry leaves the
    /// list. The truncated `last` is conservative (`sp - 1` may not be an
    /// update of this scope), which is safe: scopes bound LSN intervals,
    /// and membership additionally requires invoker+object match.
    /// Returns how many scopes were dropped or cut (`scope.splits`).
    pub fn truncate_scopes(&mut self, ob: ObjectId, sp: Lsn) -> u64 {
        let mut splits = 0;
        if let Some(entry) = self.entries.get_mut(&ob) {
            entry.scopes.retain_mut(|s| {
                if s.first >= sp {
                    splits += 1;
                    return false;
                }
                if s.last >= sp {
                    s.last = sp.prev();
                    splits += 1;
                }
                true
            });
            if entry.scopes.is_empty() {
                self.entries.remove(&ob);
            }
        }
        splits
    }
}

impl Codec for ObEntry {
    fn encode(&self, w: &mut Writer) {
        self.deleg.encode(w);
        self.scopes.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ObEntry { deleg: Option::decode(r)?, scopes: Vec::decode(r)? })
    }
}

impl Codec for ObList {
    fn encode(&self, w: &mut Writer) {
        let pairs: Vec<(ObjectId, ObEntry)> =
            self.entries.iter().map(|(k, v)| (*k, v.clone())).collect();
        pairs.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let pairs: Vec<(ObjectId, ObEntry)> = Vec::decode(r)?;
        Ok(ObList { entries: pairs.into_iter().collect() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ObjectId = ObjectId(0);
    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);

    #[test]
    fn first_update_opens_scope() {
        let mut l = ObList::new();
        l.record_update(A, T1, Lsn(5));
        assert_eq!(l.get(A).unwrap().scopes, vec![Scope::open(T1, Lsn(5))]);
    }

    #[test]
    fn subsequent_update_extends_scope() {
        let mut l = ObList::new();
        l.record_update(A, T1, Lsn(5));
        l.record_update(A, T1, Lsn(9));
        assert_eq!(
            l.get(A).unwrap().scopes,
            vec![Scope { invoker: T1, first: Lsn(5), last: Lsn(9) }]
        );
    }

    #[test]
    fn fig5_scopes_after_example1() {
        // Paper Example 1 / Fig. 5: t1 updates a at LSNs 100 and 104
        // (and b at 103); t2 updates a at 102 (and x at 101, y at 105).
        // After delegate(t1, t2, a) at 106, Ob_List(t2)[a] holds the scope
        // (t1, 100, 104) it received plus its own (t2, 102, 102), and
        // Ob_List(t1) retains only b.
        let (a, b, x, y) = (ObjectId(0), ObjectId(2), ObjectId(1), ObjectId(3));
        let mut l1 = ObList::new();
        let mut l2 = ObList::new();
        l1.record_update(a, T1, Lsn(100));
        l2.record_update(x, T2, Lsn(101));
        l2.record_update(a, T2, Lsn(102));
        l1.record_update(b, T1, Lsn(103));
        l1.record_update(a, T1, Lsn(104));
        l2.record_update(y, T2, Lsn(105));
        // delegate(t1, t2, a):
        let entry = l1.take(a).expect("t1 responsible for a");
        l2.absorb(a, entry, T1);

        assert!(!l1.contains(a));
        assert!(l1.contains(b));
        let e = l2.get(a).unwrap();
        assert_eq!(e.deleg, Some(T1));
        let mut scopes = e.scopes.clone();
        scopes.sort_by_key(|s| s.first);
        assert_eq!(
            scopes,
            vec![
                Scope { invoker: T1, first: Lsn(100), last: Lsn(104) },
                Scope { invoker: T2, first: Lsn(102), last: Lsn(102) },
            ]
        );
        // The two scopes overlap on the log but have distinct invokers —
        // exactly the §3.5 remark.
        assert!(scopes[0].overlaps(&scopes[1]));
    }

    #[test]
    fn update_after_delegation_opens_fresh_scope() {
        // Example 2 of §3.4: t updates ob, delegates, updates again — the
        // second update must land in a new scope, not the delegated one.
        let mut lt = ObList::new();
        let mut l1 = ObList::new();
        lt.record_update(A, T1, Lsn(1));
        let e = lt.take(A).unwrap();
        l1.absorb(A, e, T1);
        lt.record_update(A, T1, Lsn(3));
        assert_eq!(lt.get(A).unwrap().scopes, vec![Scope::open(T1, Lsn(3))]);
        assert_eq!(l1.get(A).unwrap().scopes, vec![Scope::open(T1, Lsn(1))]);
    }

    #[test]
    fn redelegation_back_keeps_disjoint_scopes_of_same_invoker() {
        // t -> t1 -> t: t's entry ends with two disjoint scopes it
        // invoked itself, received back at different times.
        let mut lt = ObList::new();
        let mut l1 = ObList::new();
        lt.record_update(A, T1, Lsn(1));
        l1.absorb(A, lt.take(A).unwrap(), T1);
        lt.record_update(A, T1, Lsn(3));
        // t1 delegates back to t:
        lt.absorb(A, l1.take(A).unwrap(), T2);
        let mut scopes = lt.get(A).unwrap().scopes.clone();
        scopes.sort_by_key(|s| s.first);
        assert_eq!(scopes, vec![Scope::open(T1, Lsn(1)), Scope::open(T1, Lsn(3))]);
        // A further update extends the *newest* scope of that invoker.
        lt.record_update(A, T1, Lsn(5));
        let mut scopes = lt.get(A).unwrap().scopes.clone();
        scopes.sort_by_key(|s| s.first);
        assert_eq!(
            scopes,
            vec![Scope::open(T1, Lsn(1)), Scope { invoker: T1, first: Lsn(3), last: Lsn(5) }]
        );
    }

    #[test]
    fn min_first_over_scopes() {
        let mut l = ObList::new();
        assert_eq!(l.min_first(), None);
        l.record_update(A, T1, Lsn(7));
        l.record_update(ObjectId(1), T1, Lsn(3));
        assert_eq!(l.min_first(), Some(Lsn(3)));
    }

    #[test]
    fn drain_all_empties() {
        let mut l = ObList::new();
        l.record_update(A, T1, Lsn(1));
        l.record_update(ObjectId(1), T1, Lsn(2));
        let drained = l.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(l.is_empty());
    }

    #[test]
    fn codec_roundtrip() {
        let mut l = ObList::new();
        l.record_update(A, T1, Lsn(1));
        l.record_update(A, T2, Lsn(2));
        let mut l2 = ObList::new();
        l2.absorb(A, l.take(A).unwrap(), T1);
        let bytes = l2.to_bytes();
        assert_eq!(ObList::from_bytes(&bytes).unwrap(), l2);
    }
}
