//! The flight recorder: periodic black-box snapshots to a durable
//! sidecar stream.
//!
//! A [`FlightRecorder`] freezes the engine's observability context —
//! metric registry plus the tail of the trace ring — into
//! `rh_obs::blackbox` records and persists them through an `rh-wal`
//! [`SidecarLog`] (CRC-framed, fsynced, torn-tail-truncating) living in
//! an `obs/` subdirectory next to the log. After a crash, the *next*
//! incarnation's recovery reads the predecessor's last record and diffs
//! it against its own post-recovery state (the `postmortem` section of
//! [`crate::recovery::RecoveryReport`]).
//!
//! Everything here is **best-effort by construction**: a black box must
//! never take the plane down. Append failures (including simulated
//! crashes from `FaultIo` — the recorder shares the main log's I/O
//! layer, so crash injection covers both streams) only bump
//! `blackbox.errors`; no error ever propagates into the engine.

use rh_obs::{blackbox, names, Obs, Stopwatch};
use rh_wal::sidecar::SidecarLog;
use rh_wal::WalIo;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A black box is recorded every this-many commits (plus on every
/// checkpoint, recovery, and explicit [`crate::RhDb::record_blackbox`]).
pub const COMMIT_PERIOD: u64 = 32;

/// At most this many trailing trace events are frozen per record — the
/// full default ring (65k events) would make records megabytes large,
/// and a postmortem replays only the final spans anyway.
pub const BLACKBOX_TRACE_EVENTS: usize = 512;

/// The engine-side flight recorder. See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    sidecar: SidecarLog,
    commits: AtomicU64,
    epoch: Stopwatch,
}

impl FlightRecorder {
    /// Opens (creating if needed) the sidecar stream for the log
    /// directory `log_dir`, through the same I/O layer as the main log.
    pub fn attach(io: Arc<dyn WalIo>, log_dir: &Path) -> rh_common::Result<Self> {
        let sidecar = SidecarLog::open_with(io, SidecarLog::dir_for(log_dir))?;
        Ok(FlightRecorder { sidecar, commits: AtomicU64::new(0), epoch: Stopwatch::start() })
    }

    /// The underlying stream (tests inspect retention and tear repair).
    pub fn sidecar(&self) -> &SidecarLog {
        &self.sidecar
    }

    /// Counts one commit; true when the cadence says "record now".
    pub fn commit_due(&self) -> bool {
        self.commits.fetch_add(1, Ordering::Relaxed) % COMMIT_PERIOD == COMMIT_PERIOD - 1
    }

    /// Freezes `obs` (registry snapshot + trace-ring tail) into one
    /// durable black-box record. Returns whether the record landed;
    /// failures bump `blackbox.errors` and are otherwise swallowed —
    /// the flight recorder must never fail the engine.
    pub fn record(&self, reason: &str, obs: &Obs) -> bool {
        let metrics = obs.registry.snapshot();
        let mut trace = obs.tracer.snapshot();
        let skip = trace.events.len().saturating_sub(BLACKBOX_TRACE_EVENTS);
        if skip > 0 {
            trace.events.drain(..skip);
            trace.dropped += skip as u64;
        }
        let seq = self.sidecar.next_seq();
        let bytes = blackbox::encode_record(
            seq,
            self.epoch.elapsed_micros(),
            reason,
            &metrics,
            &trace,
            &obs.slowops,
        );
        match self.sidecar.append(&bytes) {
            Ok(seq) => {
                obs.registry.inc(names::M_BLACKBOX_RECORDS);
                obs.registry.add(names::M_BLACKBOX_BYTES, bytes.len() as u64);
                obs.tracer.point(
                    names::EV_BLACKBOX_RECORD,
                    seq,
                    seq,
                    rh_obs::trace::NONE,
                    bytes.len() as u64,
                );
                true
            }
            Err(_) => {
                obs.registry.inc(names::M_BLACKBOX_ERRORS);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_obs::BlackBoxRecord;
    use rh_wal::{FaultInjector, FaultIo, StdIo};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rh-core-flight-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn records_land_and_parse_back() {
        let dir = scratch("roundtrip");
        let fr = FlightRecorder::attach(Arc::new(StdIo), &dir).unwrap();
        let obs = Obs::new();
        obs.registry.add("log.appends", 7);
        obs.tracer.point("e", 1, 1, 1, 0);
        obs.slowops.set_threshold_us(0);
        obs.record_slow_op("commit", 1, 9, 1500, vec![(names::PH_FLUSH_WAIT, 1400)]);
        assert!(fr.record("unit-test", &obs));
        assert_eq!(obs.registry.snapshot().counter(names::M_BLACKBOX_RECORDS), 1);

        let (_, payload) = fr.sidecar().last().unwrap();
        let rec = BlackBoxRecord::parse(&payload).unwrap();
        assert_eq!(rec.reason, "unit-test");
        assert_eq!(rec.counter("log.appends"), 7);
        assert_eq!(rec.events().len(), 1);
        // The slow-op log rides into the black box with the record.
        let slow = rec.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].get("op").and_then(rh_obs::JsonValue::as_str), Some("commit"));
    }

    #[test]
    fn trace_tail_is_capped() {
        let dir = scratch("cap");
        let fr = FlightRecorder::attach(Arc::new(StdIo), &dir).unwrap();
        let obs = Obs::new();
        for i in 0..(BLACKBOX_TRACE_EVENTS as u64 + 100) {
            obs.tracer.point("e", i, i, rh_obs::trace::NONE, 0);
        }
        assert!(fr.record("cap-test", &obs));
        let (_, payload) = fr.sidecar().last().unwrap();
        let rec = BlackBoxRecord::parse(&payload).unwrap();
        assert_eq!(rec.events().len(), BLACKBOX_TRACE_EVENTS);
    }

    #[test]
    fn commit_cadence() {
        let dir = scratch("cadence");
        let fr = FlightRecorder::attach(Arc::new(StdIo), &dir).unwrap();
        let due: u64 = (0..(3 * COMMIT_PERIOD)).filter(|_| fr.commit_due()).count() as u64;
        assert_eq!(due, 3);
    }

    #[test]
    fn post_crash_appends_fail_softly() {
        let dir = scratch("crash");
        let injector = FaultInjector::unlimited();
        let io = Arc::new(FaultIo::std(Arc::clone(&injector)));
        let fr = FlightRecorder::attach(io, &dir).unwrap();
        let obs = Obs::new();
        assert!(fr.record("before", &obs));
        injector.trip();
        // The dead process's record vanishes; the engine never hears
        // about it beyond a counter.
        assert!(!fr.record("after", &obs));
        assert_eq!(obs.registry.snapshot().counter(names::M_BLACKBOX_ERRORS), 1);
    }
}
