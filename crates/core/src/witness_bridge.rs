//! Bridges the lock-witness aggregates into the metrics registry.
//!
//! The witness lives in the `parking_lot` compat shim, below the
//! observability layer, so it cannot push into an [`rh_obs::Registry`]
//! itself. This module is the other half of that bargain: the cadence
//! samplers (single-engine and sharded router) call
//! [`sample_lock_witness`] once per tick, copying the witness's global
//! aggregates into `lockwitness.*` gauges so `/metrics`, `/timeseries`,
//! and the experiment artifacts see them alongside everything else.
//! When the witness is off this is one relaxed atomic load.

use rh_obs::{names, Registry};

/// Copies the lock-witness aggregates into `registry` as gauges
/// (absolute `set`s, like the absorbed-snapshot exporters). No-op when
/// the witness is disabled.
pub fn sample_lock_witness(registry: &Registry) {
    if !parking_lot::witness::enabled() {
        return;
    }
    let snap = parking_lot::witness::snapshot();
    registry.set(names::M_LW_SITES, snap.sites.len() as u64);
    registry.set(names::M_LW_ACQUIRES, snap.acquires());
    registry.set(names::M_LW_RELEASES, snap.releases);
    registry.set(names::M_LW_EDGES, snap.edges.len() as u64);
    registry.set(names::M_LW_CYCLES, snap.cycles.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridges_aggregates_when_enabled() {
        parking_lot::witness::set_enabled(true);
        let m = parking_lot::Mutex::named(0u32, "fixture.bridge_probe");
        *m.lock() += 1;
        let reg = Registry::new();
        sample_lock_witness(&reg);
        let snap = reg.snapshot();
        assert!(snap.counter(names::M_LW_SITES) >= 1);
        assert!(snap.counter(names::M_LW_ACQUIRES) >= 1);
        parking_lot::witness::set_enabled(false);
    }
}
