//! Update scopes (paper §3.4).
//!
//! "For each object ob in Ob_List(t1) there is a set of scopes ... A scope
//! is of the form (t0, l1, l2) ... t0 is the transaction that actually did
//! the operations (the invoking transaction). The other two are LSN
//! values: l1 is the first, and l2 the last LSN in the range of log
//! records that comprise the scope. This indicates that t1 is responsible
//! for all updates to ob (by t0) between the two LSNs."
//!
//! Scopes are the paper's central trick: they let the engine compute
//! `ResponsibleTr` / `Op_List` "without having to store/update it with
//! each update" (§3.4 footnote 7) — one `(invoker, first, last)` triple
//! covers arbitrarily many update records.

use rh_common::codec::{Codec, Reader, Writer};
use rh_common::{Lsn, Result, TxnId};

/// One contiguous run of update records on a single object, all invoked by
/// `invoker`, currently owned (responsibility-wise) by whichever
/// transaction's `Ob_List` holds the scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scope {
    /// The invoking transaction: the one that physically performed the
    /// updates (the `t0` of the paper's `(t0, l1, l2)`).
    pub invoker: TxnId,
    /// LSN of the first update record in the scope.
    pub first: Lsn,
    /// LSN of the last update record in the scope.
    pub last: Lsn,
}

impl Scope {
    /// A fresh single-record scope, as opened by the first update a
    /// transaction makes to an object (§3.5 `update`, "create new scope").
    pub fn open(invoker: TxnId, lsn: Lsn) -> Self {
        Scope { invoker, first: lsn, last: lsn }
    }

    /// Extends the scope to cover a later update record (§3.5 `update`,
    /// "extend existing scope").
    pub fn extend(&mut self, lsn: Lsn) {
        debug_assert!(lsn > self.last, "scopes only grow forward");
        self.last = lsn;
    }

    /// True if an update record at `lsn` lies within this scope's range.
    /// (Callers must additionally check the record's invoking transaction
    /// and object; the scope only bounds the LSN interval.)
    #[inline]
    pub fn covers(&self, lsn: Lsn) -> bool {
        self.first <= lsn && lsn <= self.last
    }

    /// True if the LSN intervals of `self` and `other` intersect —
    /// the overlap relation that defines clusters (paper Fig. 7).
    #[inline]
    pub fn overlaps(&self, other: &Scope) -> bool {
        self.first <= other.last && other.first <= self.last
    }
}

impl Codec for Scope {
    fn encode(&self, w: &mut Writer) {
        self.invoker.encode(w);
        self.first.encode(w);
        self.last.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Scope { invoker: TxnId::decode(r)?, first: Lsn::decode(r)?, last: Lsn::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_is_single_record() {
        let s = Scope::open(TxnId(1), Lsn(5));
        assert_eq!(s.first, Lsn(5));
        assert_eq!(s.last, Lsn(5));
        assert!(s.covers(Lsn(5)));
        assert!(!s.covers(Lsn(4)));
        assert!(!s.covers(Lsn(6)));
    }

    #[test]
    fn extend_grows_the_right_end() {
        let mut s = Scope::open(TxnId(1), Lsn(5));
        s.extend(Lsn(9));
        assert!(s.covers(Lsn(7)));
        assert_eq!(s, Scope { invoker: TxnId(1), first: Lsn(5), last: Lsn(9) });
    }

    #[test]
    fn overlap_relation() {
        let a = Scope { invoker: TxnId(1), first: Lsn(0), last: Lsn(10) };
        let b = Scope { invoker: TxnId(2), first: Lsn(10), last: Lsn(20) }; // touch at 10
        let c = Scope { invoker: TxnId(3), first: Lsn(11), last: Lsn(12) };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn codec_roundtrip() {
        let s = Scope { invoker: TxnId(9), first: Lsn(1), last: Lsn(1000) };
        assert_eq!(Scope::from_bytes(&s.to_bytes()).unwrap(), s);
    }
}
