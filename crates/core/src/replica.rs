//! Read replicas: the engine held in perpetual forward pass.
//!
//! Delegation's core trick — *interpreting* history through scope tables
//! instead of rewriting it — means the WAL is already a complete,
//! append-only replication feed. A replica is therefore not a new kind
//! of engine: it is the restart-recovery forward pass (§3.6.1) that
//! never ends. Every shipped record flows through the same
//! [`crate::recovery::forward::apply_record`] the forward pass runs, so
//! the replica's scope tables, provenance chains, and coordinator
//! decisions are byte-for-byte what a restart recovery of the same log
//! prefix would build — and **promotion is recovery**: finish the
//! forward pass (trivially — it is always finished), run the backward
//! pass over loser-scope clusters, terminate the losers, and the engine
//! is open for writes. No pass over the log is ever repeated.
//!
//! ## Staleness contract
//!
//! A replica read carries an optional `min_lsn` freshness bound: the
//! applied watermark ([`ReplicaSet::applied_lsn`], an exclusive record
//! count in the primary's LSN space) must reach the bound before the
//! read answers. [`ReplicaSet::wait_applied`] blocks on the apply
//! condvar up to a deadline and then fails with
//! [`RhError::ReplLagging`] — a bounded read never returns state older
//! than its bound, it either waits or refuses. The primary's
//! durable-watermark probe (`Op::Durable`) hands clients a valid bound
//! for read-your-writes: a commit ack implies the commit record is
//! durable, durable records are exactly what the primary ships, so a
//! replica at that watermark has applied the commit.
//!
//! ## LSN discipline
//!
//! The replica appends every shipped record to its **own** log, which
//! assigns LSNs densely from the local horizon — so a stream applied in
//! order reproduces the primary's LSNs exactly, and any gap or
//! reordering is caught by comparing the shipped LSN against the local
//! `curr_lsn` *before* applying. Time-travel reads (`read_as_of`,
//! `history`) therefore answer on the replica with the primary's LSN
//! coordinates, and a bounced replica resumes from its local log by
//! re-running the forward pass over it — the ordinary recovery
//! constructor — then subscribing from its own `applied_lsn`.

use crate::engine::{DbConfig, RhDb, Strategy};
use crate::flight::FlightRecorder;
use crate::provenance::ProvenanceTable;
use crate::recovery::forward::{apply_record, forward_pass, ForwardStats};
use crate::recovery::{backward, collect_walk_scopes, terminate_losers, RecoveryReport};
use crate::reenact::{self, Reenactment, VersionRecord};
use crate::sharded::{ShardMap, ShardedDb};
use crate::txn_table::{TrList, TxnStatus};
use parking_lot::{Condvar, Mutex};
use rh_common::codec::Codec;
use rh_common::ops::Value;
use rh_common::{Lsn, ObjectId, Result, RhError, TxnId};
use rh_obs::{names, Obs, Stopwatch};
use rh_storage::{BufferPool, Disk};
use rh_wal::record::LogRecord;
use rh_wal::{LogManager, StableLog};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// One shard's engine-in-forward-pass: the full forward-pass state of
/// [`forward_pass`], kept alive between records instead of being
/// consumed by a recovery.
struct ReplicaCore {
    strategy: Strategy,
    config: DbConfig,
    log: Arc<LogManager>,
    disk: Arc<Disk>,
    pool: BufferPool,
    tr: TrList,
    compensated: HashSet<Lsn>,
    lazy_scopes: HashMap<(ObjectId, TxnId, Lsn), (Lsn, TxnId)>,
    prov: ProvenanceTable,
    coord_commits: Vec<(TxnId, Vec<u32>)>,
    next_txn: u64,
    stats: ForwardStats,
    obs: Arc<Obs>,
}

impl ReplicaCore {
    /// Opens a core over existing stable state by running the forward
    /// pass over whatever the local log already holds — a no-op for a
    /// fresh replica, and exactly the resume path for a bounced one
    /// (the shipped prefix it kept is re-analyzed, then the stream
    /// continues from `applied_lsn`).
    fn open(
        strategy: Strategy,
        config: DbConfig,
        stable: Arc<StableLog>,
        disk: Arc<Disk>,
    ) -> Result<Self> {
        let obs = Arc::new(Obs::new());
        let log = Arc::new(LogManager::attach(stable));
        let mut pool = BufferPool::new(Arc::clone(&disk), config.pool_pages);
        let lazy = strategy == Strategy::LazyRewrite;
        let fwd = forward_pass(&log, &mut pool, lazy, &obs)?;
        Ok(ReplicaCore {
            strategy,
            config,
            log,
            disk,
            pool,
            tr: fwd.tr,
            compensated: fwd.compensated,
            lazy_scopes: fwd.lazy_scopes,
            prov: fwd.prov,
            coord_commits: fwd.coord_commits,
            next_txn: fwd.next_txn,
            stats: fwd.stats,
            obs,
        })
    }

    /// The exclusive applied watermark: every primary record with LSN
    /// below this has been appended locally and analyzed.
    fn applied(&self) -> Lsn {
        self.log.curr_lsn()
    }

    /// Applies one shipped record: verifies the stream position, appends
    /// to the local log (reproducing the primary's LSN), and runs the
    /// forward-pass analysis on it. Returns the new applied watermark.
    fn apply(&mut self, lsn: Lsn, record: &[u8]) -> Result<Lsn> {
        let rec = LogRecord::from_bytes(record)
            .map_err(|_| RhError::CorruptLog { lsn, reason: "undecodable shipped record" })?;
        if rec.lsn != lsn || lsn != self.log.curr_lsn() {
            return Err(RhError::Protocol("replication stream out of order"));
        }
        let assigned = self.log.append(rec.txn, rec.prev_lsn, rec.body.clone());
        debug_assert_eq!(assigned, lsn, "local log must reproduce primary LSNs");
        let lazy = self.strategy == Strategy::LazyRewrite;
        apply_record(
            &self.log,
            &mut self.pool,
            &mut self.tr,
            &mut self.compensated,
            &mut self.lazy_scopes,
            &mut self.prov,
            &mut self.coord_commits,
            lazy,
            &rec,
            &mut self.stats,
            &self.obs,
            None,
        )?;
        if !rec.txn.is_none() {
            self.next_txn = self.next_txn.max(rec.txn.raw() + 1);
        }
        self.obs.registry.inc(names::M_REPL_FRAMES_APPLIED);
        Ok(self.applied())
    }

    /// Promotion = recovery: the forward pass is already done (it never
    /// stopped), so run the backward pass over loser clusters, terminate
    /// the losers, force the log, and hand back a writable engine with a
    /// full [`RecoveryReport`] — in-doubt 2PC survivors included, so the
    /// sharded resolver can union decisions across promoted shards
    /// exactly as it does across recovered ones.
    fn promote(mut self) -> Result<RhDb> {
        let started = Stopwatch::start();
        let log_before = self.log.metrics().snapshot();
        let disk_before = self.disk.metrics().snapshot();
        let lazy = self.strategy == Strategy::LazyRewrite;
        let losers = self.tr.losers();
        let scopes = collect_walk_scopes(&self.tr, &losers, lazy, &self.lazy_scopes)?;
        let undo_started = Stopwatch::start();
        let undo = backward::undo_scopes(
            &self.log,
            &mut self.pool,
            &mut self.tr,
            scopes,
            &mut self.compensated,
            lazy,
            &self.obs,
        )?;
        let undo_wall = undo_started.elapsed();
        terminate_losers(&self.log, &mut self.tr, &losers)?;
        self.log.flush_all()?;
        let indoubt = self.tr.with_status(TxnStatus::Prepared);

        let elapsed = started.elapsed();
        let obs = Arc::clone(&self.obs);
        obs.registry.inc(names::M_REPL_PROMOTIONS);
        obs.registry.observe(names::M_REPL_PROMOTE_US, elapsed.as_micros() as u64);
        obs.mark_timeseries(names::TS_REPL_PROMOTE);
        let mut db = RhDb::from_parts(
            self.strategy,
            self.config,
            Arc::clone(&self.log),
            Arc::clone(&self.disk),
            self.pool,
            self.tr,
            self.next_txn,
            Arc::clone(&obs),
        );
        db.set_provenance(self.prov);
        db.set_coord_decisions(&self.coord_commits);
        let stable = db.log().stable();
        if let (Some(dir), Some(io)) = (stable.dir(), stable.io()) {
            match FlightRecorder::attach(io, dir) {
                Ok(flight) => db.attach_flight(flight),
                Err(_) => obs.registry.inc(names::M_BLACKBOX_ERRORS),
            }
        }
        db.set_recovery_report(RecoveryReport {
            winners_seen: self.stats.commits_seen,
            forward: self.stats,
            undo,
            losers,
            indoubt,
            coord_commits: self.coord_commits,
            elapsed,
            // The "forward pass" of a promotion is the whole replication
            // epoch — already paid, record-by-record, before the
            // promotion began.
            forward_wall: Duration::ZERO,
            undo_wall,
            log_delta: self.log.metrics().snapshot().since(&log_before),
            disk_delta: self.disk.metrics().snapshot().since(&disk_before),
            postmortem: None,
        });
        db.record_blackbox("promote");
        Ok(db)
    }
}

/// One shard's slot: `None` once the set has been promoted (further
/// reads are refused — the promoted engine owns the state now).
struct ShardSlot {
    core: Option<ReplicaCore>,
}

struct ReplicaShard {
    replica: Mutex<ShardSlot>,
    /// Signalled on every applied frame; staleness-bounded reads park
    /// here.
    applied_cv: Condvar,
}

/// What a promotion produces: the writable engine(s), ready to serve.
pub enum PromotedDb {
    /// An unsharded primary.
    Single(Box<RhDb>),
    /// A sharded primary, in-doubt 2PC resolved across the promoted
    /// shards exactly as sharded recovery resolves it.
    Sharded(Box<ShardedDb>),
}

/// A set of per-shard read replicas mirroring one primary (`--shards N`
/// ⇒ N independent streams, one per shard log), serving LSN-bounded
/// reads, time-travel queries, and introspection — and promotable into
/// a writable [`PromotedDb`] when the primary is lost.
pub struct ReplicaSet {
    strategy: Strategy,
    config: DbConfig,
    map: ShardMap,
    shards: Vec<ReplicaShard>,
    /// Set-level `repl.*` counters (staleness waits, promotions);
    /// per-shard apply counters live in each core's registry and are
    /// merge-summed by [`ReplicaSet::stats`].
    obs: Arc<Obs>,
}

impl ReplicaSet {
    /// Opens a replica set over per-shard stable state (fresh logs for a
    /// new replica; a bounced replica's kept logs resume — the forward
    /// pass re-analyzes the local prefix and [`ReplicaSet::applied_lsn`]
    /// tells the subscriber where to resume each stream).
    pub fn open(
        strategy: Strategy,
        config: DbConfig,
        parts: Vec<(Arc<StableLog>, Arc<Disk>)>,
        shift: u32,
    ) -> Result<Self> {
        if parts.is_empty() {
            return Err(RhError::Protocol("replica set needs at least one shard"));
        }
        let map = ShardMap::new(parts.len(), shift);
        let mut shards = Vec::with_capacity(parts.len());
        for (stable, disk) in parts {
            let core = ReplicaCore::open(strategy, config, stable, disk)?;
            shards.push(ReplicaShard {
                replica: Mutex::named(ShardSlot { core: Some(core) }, names::LS_CORE_REPLICA),
                applied_cv: Condvar::new(),
            });
        }
        Ok(ReplicaSet { strategy, config, map, shards, obs: Arc::new(Obs::new()) })
    }

    /// An all-volatile replica set (fresh mem-backed logs) — the unit
    /// tests' constructor.
    pub fn new_mem(strategy: Strategy, shards: usize, shift: u32) -> Self {
        let parts = (0..shards.max(1)).map(|_| (StableLog::new(), Disk::new())).collect();
        Self::open(strategy, DbConfig::default(), parts, shift)
            .expect("mem-backed replica set cannot fail to open")
    }

    /// Number of shard streams this set consumes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard whose stream carries `ob` (must mirror the primary's
    /// routing map).
    pub fn shard_of(&self, ob: ObjectId) -> usize {
        self.map.shard_of(ob)
    }

    /// The set-level observability hub.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    fn shard(&self, shard: usize) -> Result<&ReplicaShard> {
        self.shards.get(shard).ok_or(RhError::Protocol("replica shard index out of range"))
    }

    /// Runs `f` on the locked core of `shard`, refusing if promoted.
    fn with_core<T>(
        &self,
        shard: usize,
        f: impl FnOnce(&mut ReplicaCore) -> Result<T>,
    ) -> Result<T> {
        let sh = self.shard(shard)?;
        let mut slot = sh.replica.lock();
        let core = slot
            .core
            .as_mut()
            .ok_or(RhError::Protocol("replica already promoted; reads moved to the new primary"))?;
        f(core)
    }

    /// The shard's applied watermark (exclusive, in the primary's LSN
    /// space): resume subscriptions from here.
    pub fn applied_lsn(&self, shard: usize) -> Result<Lsn> {
        self.with_core(shard, |core| Ok(core.applied()))
    }

    /// Applies one shipped record to `shard` and wakes every
    /// staleness-bounded read parked on the apply condvar. Returns the
    /// new applied watermark. Errors are sticky in effect: the caller
    /// must tear down the subscription and resume from
    /// [`ReplicaSet::applied_lsn`] (counted under `repl.apply.errors`).
    pub fn apply_frame(&self, shard: usize, lsn: Lsn, record: &[u8]) -> Result<Lsn> {
        let sh = self.shard(shard)?;
        let applied = {
            let mut slot = sh.replica.lock();
            let core = slot.core.as_mut().ok_or(RhError::Protocol(
                "replica already promoted; reads moved to the new primary",
            ))?;
            core.apply(lsn, record).inspect_err(|_| {
                self.obs.registry.inc(names::M_REPL_APPLY_ERRORS);
            })?
        };
        sh.applied_cv.notify_all();
        Ok(applied)
    }

    /// Blocks until `shard`'s applied watermark reaches `min_lsn` or
    /// `deadline` elapses; the staleness contract in one function — on
    /// timeout the read fails with [`RhError::ReplLagging`] rather than
    /// ever answering from state older than the bound.
    pub fn wait_applied(&self, shard: usize, min_lsn: Lsn, deadline: Duration) -> Result<Lsn> {
        let sh = self.shard(shard)?;
        let sw = Stopwatch::start();
        let mut slot = sh.replica.lock();
        let mut waited = false;
        loop {
            let applied = slot
                .core
                .as_ref()
                .ok_or(RhError::Protocol(
                    "replica already promoted; reads moved to the new primary",
                ))?
                .applied();
            if applied >= min_lsn {
                if waited {
                    self.obs.registry.inc(names::M_REPL_STALENESS_WAITS);
                }
                return Ok(applied);
            }
            let elapsed = sw.elapsed();
            if elapsed >= deadline {
                self.obs.registry.inc(names::M_REPL_STALENESS_TIMEOUTS);
                return Err(RhError::ReplLagging { min_lsn, applied });
            }
            waited = true;
            let _ = sh.applied_cv.wait_for(&mut slot, deadline - elapsed);
        }
    }

    /// Non-transactional peek at the applied state — the replica twin of
    /// the primary's `value_of`, answering from whatever the forward
    /// pass has applied (no freshness bound; pair with
    /// [`ReplicaSet::value_of_min`] for one).
    pub fn value_of(&self, ob: ObjectId) -> Result<Value> {
        self.with_core(self.map.shard_of(ob), |core| {
            let log = Arc::clone(&core.log);
            core.pool.read_object(ob, &*log)
        })
    }

    /// The staleness-bounded read: waits for the owning shard's forward
    /// pass to reach `min_lsn` (up to `deadline`), then peeks. `min_lsn`
    /// is in the owning shard's LSN space — the primary's
    /// durable-watermark probe for the same object hands out exactly
    /// that coordinate.
    pub fn value_of_min(&self, ob: ObjectId, min_lsn: Lsn, deadline: Duration) -> Result<Value> {
        let shard = self.map.shard_of(ob);
        self.wait_applied(shard, min_lsn, deadline)?;
        self.value_of(ob)
    }

    /// Time-travel read on the replica: the committed value of `ob` as
    /// of `lsn` (primary LSN coordinates), reenacted from the local log
    /// — cross-shard in-doubt transactions resolved against coordinator
    /// decisions found in any shard's local log, exactly as the sharded
    /// primary resolves them.
    pub fn read_as_of(&self, ob: ObjectId, as_of: Lsn) -> Result<Value> {
        let (r, decided) = self.reenact(ob, as_of)?;
        Ok(r.value_with(|t| decided.contains(&t)))
    }

    /// The committed version timeline of `ob` over `[from, to]`,
    /// reenacted from the replica's local log.
    pub fn history(&self, ob: ObjectId, from: Lsn, to: Lsn) -> Result<Vec<VersionRecord>> {
        let (r, decided) = self.reenact(ob, to)?;
        Ok(r.versions_with(|t| decided.contains(&t))
            .into_iter()
            .filter(|v| v.lsn >= from)
            .collect())
    }

    /// The full reenactment of `ob` at `as_of` plus the set of its
    /// in-doubt transactions some shard's shipped coordinator decision
    /// commits. Holds no shard lock across the replay — the log handles
    /// are internally synchronized, same as the primary's reenact path.
    pub fn reenact(&self, ob: ObjectId, as_of: Lsn) -> Result<(Reenactment, BTreeSet<TxnId>)> {
        let shard = self.map.shard_of(ob);
        let (log, obs) =
            self.with_core(shard, |core| Ok((Arc::clone(&core.log), Arc::clone(&core.obs))))?;
        let r = reenact::query(&log, &obs, ob, as_of)?;
        let in_doubt: Vec<TxnId> = r.in_doubt.iter().map(|d| d.txn).collect();
        let mut logs = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            logs.push(self.with_core(i, |core| Ok(Arc::clone(&core.log)))?);
        }
        let log_refs: Vec<&Arc<LogManager>> = logs.iter().collect();
        let decided = crate::sharded::coord_decisions_in(&log_refs, &in_doubt, &self.obs);
        Ok((r, decided))
    }

    /// The delegation provenance chain of `ob` as the replica's forward
    /// pass has rebuilt it — pre-crash chains render from a replica (and
    /// from the node it promotes into) without any primary.
    pub fn provenance(&self, ob: ObjectId) -> Result<Vec<crate::provenance::ProvHop>> {
        self.with_core(self.map.shard_of(ob), |core| Ok(core.prov.chain(ob).to_vec()))
    }

    /// One-stop merged metrics snapshot: set-level `repl.*` counters
    /// plus every shard's absorbed log/disk registries, merge-summed
    /// like the sharded router's stats.
    pub fn stats(&self) -> rh_obs::RegistrySnapshot {
        let mut merged = self.obs.registry.snapshot();
        for i in 0..self.shards.len() {
            let snap = self.with_core(i, |core| {
                core.log.metrics().snapshot().export_into(&core.obs.registry);
                core.disk.metrics().snapshot().export_into(&core.obs.registry);
                Ok(core.obs.registry.snapshot())
            });
            if let Ok(snap) = snap {
                merged.merge_sum(&snap);
            }
        }
        merged
    }

    /// Forces every shard's local log — a bounced replica resumes from
    /// what survived, so the subscriber flushes at heartbeat cadence to
    /// bound the re-ship window.
    pub fn flush(&self) -> Result<()> {
        for i in 0..self.shards.len() {
            self.flush_shard(i)?;
        }
        Ok(())
    }

    /// Forces one shard's local log (the per-stream subscriber's
    /// heartbeat-cadence flush).
    pub fn flush_shard(&self, shard: usize) -> Result<()> {
        self.with_core(shard, |core| core.log.flush_all())
    }

    /// One shard's stable log half (crash tests keep it to reopen a
    /// bounced replica).
    pub fn shard_stable(&self, shard: usize) -> Result<Arc<StableLog>> {
        self.with_core(shard, |core| Ok(core.log.stable()))
    }

    /// One shard's disk handle.
    pub fn shard_disk(&self, shard: usize) -> Result<Arc<Disk>> {
        self.with_core(shard, |core| Ok(Arc::clone(&core.disk)))
    }

    /// Promotes the whole set into a writable database, consuming the
    /// replica state (subsequent reads on this set are refused). One
    /// shard promotes into a plain [`RhDb`]; several promote
    /// independently and then resolve in-doubt 2PC against the union of
    /// shipped coordinator decisions — the same
    /// resolve-and-assemble step sharded recovery runs, because
    /// promotion *is* recovery.
    pub fn promote(&self) -> Result<PromotedDb> {
        let mut cores = Vec::with_capacity(self.shards.len());
        for sh in &self.shards {
            let core = sh.replica.lock().core.take();
            cores.push(core.ok_or(RhError::Protocol("replica already promoted"))?);
        }
        // Wake every parked staleness wait so it observes the promoted
        // state and errors out instead of sleeping to its deadline.
        for sh in &self.shards {
            sh.applied_cv.notify_all();
        }
        if cores.len() == 1 {
            let db = cores.pop().expect("one core").promote()?;
            return Ok(PromotedDb::Single(Box::new(db)));
        }
        let mut engines = Vec::with_capacity(cores.len());
        for core in cores {
            engines.push(core.promote()?);
        }
        let db =
            ShardedDb::resolve_and_assemble(self.strategy, self.config, self.map.shift(), engines)?;
        Ok(PromotedDb::Sharded(Box::new(db)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TxnEngine;

    const A: ObjectId = ObjectId(1);
    const B: ObjectId = ObjectId(2);

    /// Ships every durable record of `db`'s log into the replica.
    fn ship_all(db: &RhDb, set: &ReplicaSet) -> Lsn {
        let log = db.log();
        let mut lsn = set.applied_lsn(0).unwrap();
        let mut applied = lsn;
        while lsn.raw() < log.durable_len() {
            let rec = log.read(lsn).unwrap();
            applied = set.apply_frame(0, lsn, &rec.to_bytes()).unwrap();
            lsn = lsn.next();
        }
        applied
    }

    #[test]
    fn replica_tracks_committed_state_and_promotes() {
        let mut db = RhDb::new(Strategy::Rh);
        let set = ReplicaSet::new_mem(Strategy::Rh, 1, 0);
        let t1 = db.begin().unwrap();
        db.write(t1, A, 10).unwrap();
        db.commit(t1).unwrap();
        db.log().flush_all().unwrap();
        let applied = ship_all(&db, &set);
        assert_eq!(applied, db.log().curr_lsn());
        assert_eq!(set.value_of(A).unwrap(), 10);
        // An uncommitted update ships (it is durable) but must be undone
        // by promotion: the loser's effects never survive.
        let t2 = db.begin().unwrap();
        db.write(t2, A, 99).unwrap();
        db.log().flush_all().unwrap();
        ship_all(&db, &set);
        match set.promote().unwrap() {
            PromotedDb::Single(mut newdb) => {
                let r = newdb.begin().unwrap();
                assert_eq!(newdb.read(r, A).unwrap(), 10);
                newdb.commit(r).unwrap();
                let report = newdb.last_recovery().expect("promotion leaves a report");
                assert_eq!(report.losers, vec![t2]);
            }
            PromotedDb::Sharded(_) => panic!("one shard promotes single"),
        }
        // The consumed set refuses further reads.
        assert!(matches!(set.value_of(A), Err(RhError::Protocol(_))));
    }

    #[test]
    fn replica_replays_delegation_and_serves_provenance() {
        let mut db = RhDb::new(Strategy::Rh);
        let set = ReplicaSet::new_mem(Strategy::Rh, 1, 0);
        let t1 = db.begin().unwrap();
        let t2 = db.begin().unwrap();
        db.write(t1, A, 7).unwrap();
        db.delegate(t1, t2, &[A]).unwrap();
        db.abort(t1).unwrap();
        db.commit(t2).unwrap();
        db.log().flush_all().unwrap();
        ship_all(&db, &set);
        // The delegated update survives on the replica because t2
        // committed while responsible — scope interpretation, not log
        // rewriting, exactly as on the primary.
        assert_eq!(set.value_of(A).unwrap(), 7);
        let chain = set.provenance(A).unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!((chain[0].from, chain[0].to), (t1, t2));
        // Time travel answers in primary LSN coordinates.
        assert_eq!(set.read_as_of(A, Lsn::NULL).unwrap(), 7);
        let hist = set.history(A, Lsn(0), Lsn::NULL).unwrap();
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].value, 7);
    }

    #[test]
    fn staleness_bound_blocks_or_refuses_never_lies() {
        let mut db = RhDb::new(Strategy::Rh);
        let set = Arc::new(ReplicaSet::new_mem(Strategy::Rh, 1, 0));
        let t = db.begin().unwrap();
        db.write(t, B, 5).unwrap();
        db.commit(t).unwrap();
        db.log().flush_all().unwrap();
        let durable = Lsn(db.log().durable_len());
        // Replica has applied nothing: a bounded read must refuse, with
        // both coordinates in the error.
        match set.value_of_min(B, durable, Duration::from_millis(10)) {
            Err(RhError::ReplLagging { min_lsn, applied }) => {
                assert_eq!(min_lsn, durable);
                assert_eq!(applied, Lsn(0));
            }
            other => panic!("expected ReplLagging, got {other:?}"),
        }
        // A concurrent apply satisfies a parked bounded read.
        let set2 = Arc::clone(&set);
        let waiter =
            std::thread::spawn(move || set2.value_of_min(B, durable, Duration::from_secs(30)));
        ship_all(&db, &set);
        assert_eq!(waiter.join().unwrap().unwrap(), 5);
        let stats = set.stats();
        assert_eq!(stats.counter(names::M_REPL_STALENESS_TIMEOUTS), 1);
    }

    #[test]
    fn out_of_order_or_torn_frames_are_refused() {
        let mut db = RhDb::new(Strategy::Rh);
        let set = ReplicaSet::new_mem(Strategy::Rh, 1, 0);
        let t = db.begin().unwrap();
        db.write(t, A, 1).unwrap();
        db.commit(t).unwrap();
        db.log().flush_all().unwrap();
        let rec1 = db.log().read(Lsn(1)).unwrap();
        // A gap (starting past the replica's watermark) is refused.
        assert!(matches!(
            set.apply_frame(0, Lsn(1), &rec1.to_bytes()),
            Err(RhError::Protocol("replication stream out of order"))
        ));
        // Garbage bytes are refused as corrupt, not applied.
        assert!(matches!(
            set.apply_frame(0, Lsn(0), &[0xff, 0xee]),
            Err(RhError::CorruptLog { .. })
        ));
        assert_eq!(set.applied_lsn(0).unwrap(), Lsn(0));
        assert_eq!(set.stats().counter(names::M_REPL_APPLY_ERRORS), 2);
    }

    #[test]
    fn sharded_promotion_resolves_in_doubt_across_shards() {
        // Build a 2-shard primary, run a cross-shard transaction to the
        // point where one shard is Prepared and the coordinator decision
        // is durable, ship everything, promote, and check the decided
        // transaction committed on the promoted node.
        let db = ShardedDb::new_mem(Strategy::Rh, 2, 0);
        let set = ReplicaSet::new_mem(Strategy::Rh, 2, 0);
        // Objects 0 and 1 land on shards 0 and 1 under shift 0.
        let oa = ObjectId(0);
        let ob = ObjectId(1);
        let t = db.begin().unwrap();
        db.write(t, oa, 11).unwrap();
        db.write(t, ob, 22).unwrap();
        db.commit(t).unwrap();
        for shard in 0..2 {
            let log = db.shard_log(shard).unwrap();
            log.flush_all().unwrap();
            let mut lsn = Lsn(0);
            while lsn.raw() < log.durable_len() {
                let rec = log.read(lsn).unwrap();
                set.apply_frame(shard, lsn, &rec.to_bytes()).unwrap();
                lsn = lsn.next();
            }
        }
        assert_eq!(set.value_of(oa).unwrap(), 11);
        assert_eq!(set.value_of(ob).unwrap(), 22);
        match set.promote().unwrap() {
            PromotedDb::Sharded(newdb) => {
                assert_eq!(newdb.value_of(oa).unwrap(), 11);
                assert_eq!(newdb.value_of(ob).unwrap(), 22);
            }
            PromotedDb::Single(_) => panic!("two shards promote sharded"),
        }
    }
}
