//! Normal processing (paper §3.5) for ARIES and ARIES/RH.
//!
//! [`RhDb`] is the engine. With [`Strategy::Rh`] it is ARIES/RH proper:
//! delegation is tracked in volatile scopes and a single `delegate` log
//! record; the log is never modified in place. With
//! [`Strategy::LazyRewrite`] normal processing is identical, but recovery
//! physically rewrites delegated records while undoing — the "workable but
//! still suffering from drawbacks" alternative of §3.2, implemented so the
//! benchmarks can measure exactly those drawbacks. (The *eager* baseline
//! of §3.1/Fig. 1 lives in [`crate::eager`].)
//!
//! When no delegation is issued, the `Rh` engine performs byte-for-byte
//! the work plain ARIES would: the delegation machinery only adds fields
//! that remain empty — experiment E1 measures this "no delegation, no
//! overhead" claim.

use crate::api::TxnEngine;
use crate::checkpoint::CheckpointSnapshot;
use crate::flight::FlightRecorder;
use crate::provenance::{ProvHop, ProvenanceTable};
use crate::recovery::{self, RecoveryReport};
use crate::txn_table::{TrList, TxnStatus};
use parking_lot::Mutex;
use rh_common::codec::Codec;
use rh_common::ops::Value;
use rh_common::{Lsn, ObjectId, Result, RhError, TxnId, UpdateOp};
use rh_lock::{LockManager, LockMode};
use rh_obs::{names, HttpResponse, IntrospectionServer, JsonValue, Obs, Sampler};
use rh_storage::{BufferPool, Disk};
use rh_wal::record::{DelegateBody, RecordBody};
use rh_wal::{LogManager, StableLog};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which delegation-implementation strategy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// ARIES/RH: interpret the log through scopes; never rewrite it.
    Rh,
    /// The §3.2 lazy baseline: identical normal processing, but recovery
    /// rewrites delegated log records in place while undoing.
    LazyRewrite,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig { pool_pages: 256 }
    }
}

/// The ARIES / ARIES/RH database engine.
pub struct RhDb {
    strategy: Strategy,
    config: DbConfig,
    log: Arc<LogManager>,
    disk: Arc<Disk>,
    pool: BufferPool,
    locks: Arc<LockManager>,
    tr: TrList,
    next_txn: u64,
    /// LSNs of updates already undone by a CLR in *this incarnation*
    /// (partial rollbacks and aborts). Scopes re-extended past a
    /// rollback's savepoint re-cover such records; this set keeps any
    /// later undo sweep from compensating them twice. (Across crashes
    /// the forward pass rebuilds the equivalent set from logged CLRs.)
    compensated: std::collections::HashSet<Lsn>,
    /// Coordinator 2PC decisions this engine has logged whose participant
    /// shards may not all have durable Commit records yet. Every
    /// checkpoint snapshot carries them (the anchor may advance past the
    /// `CoordCommit` records other shards' in-doubt resolution depends
    /// on); the sharded router retires an entry once all its participant
    /// commits are durable.
    coord_decisions: std::collections::BTreeMap<TxnId, Vec<u32>>,
    last_recovery: Option<RecoveryReport>,
    /// Unified tracer + metrics registry. Shared (`Arc`) so recovery can
    /// hand its timeline to the engine it constructs, and so callers can
    /// keep observing after the engine moves.
    obs: Arc<Obs>,
    /// Per-object delegation responsibility chains (shared with the
    /// introspection server's thread; the engine is the only writer).
    prov: Arc<Mutex<ProvenanceTable>>,
    /// The predecessor-diff built by the recovery that produced this
    /// incarnation, if a black box was found. Shared with the server.
    postmortem: Arc<Mutex<Option<JsonValue>>>,
    /// The black-box recorder; `None` for mem-backed logs or when
    /// explicitly disabled.
    flight: Option<FlightRecorder>,
    /// The live introspection endpoint; dropped (= shut down) with the
    /// engine.
    server: Option<IntrospectionServer>,
    /// The cadence thread feeding `/timeseries` while the introspection
    /// endpoint runs; dropped (= stopped) with it.
    sampler: Option<Sampler>,
}

impl RhDb {
    /// Creates a fresh database (empty disk, empty log).
    pub fn new(strategy: Strategy) -> Self {
        Self::with_config(strategy, DbConfig::default())
    }

    /// Creates a fresh database with explicit tuning.
    pub fn with_config(strategy: Strategy, config: DbConfig) -> Self {
        let disk = Disk::new();
        let log = Arc::new(LogManager::new());
        let pool = BufferPool::new(Arc::clone(&disk), config.pool_pages);
        RhDb {
            strategy,
            config,
            log,
            disk,
            pool,
            locks: Arc::new(LockManager::new()),
            tr: TrList::new(),
            next_txn: 0,
            compensated: std::collections::HashSet::new(),
            coord_decisions: std::collections::BTreeMap::new(),
            last_recovery: None,
            obs: Arc::new(Obs::new()),
            prov: Arc::new(Mutex::named(ProvenanceTable::new(), names::LS_CORE_PROV)),
            postmortem: Arc::new(Mutex::named(None, names::LS_CORE_POSTMORTEM)),
            flight: None,
            server: None,
            sampler: None,
        }
    }

    /// Creates a fresh database whose log lives on the given stable
    /// backend — typically a file-backed [`StableLog`] opened with
    /// [`StableLog::open_dir`]. The disk stays in-memory; durability of
    /// committed work comes from WAL + redo, which is exactly the
    /// configuration the crash-injection tests exercise. For an existing
    /// log directory, open it and run [`RhDb::recover`] instead.
    ///
    /// A file-backed log automatically gets a flight recorder in its
    /// `obs/` subdirectory (sharing the log's I/O layer, so crash
    /// injection covers the black box too); attach failures degrade to
    /// "no recorder" with a `blackbox.errors` bump.
    pub fn with_stable_log(strategy: Strategy, config: DbConfig, stable: Arc<StableLog>) -> Self {
        let disk = Disk::new();
        let obs = Arc::new(Obs::new());
        let flight = match (stable.dir(), stable.io()) {
            (Some(dir), Some(io)) => match FlightRecorder::attach(io, dir) {
                Ok(f) => Some(f),
                Err(_) => {
                    obs.registry.inc(names::M_BLACKBOX_ERRORS);
                    None
                }
            },
            _ => None,
        };
        let log = Arc::new(LogManager::attach(stable));
        let pool = BufferPool::new(Arc::clone(&disk), config.pool_pages);
        RhDb {
            strategy,
            config,
            log,
            disk,
            pool,
            locks: Arc::new(LockManager::new()),
            tr: TrList::new(),
            next_txn: 0,
            compensated: std::collections::HashSet::new(),
            coord_decisions: std::collections::BTreeMap::new(),
            last_recovery: None,
            obs,
            prov: Arc::new(Mutex::named(ProvenanceTable::new(), names::LS_CORE_PROV)),
            postmortem: Arc::new(Mutex::named(None, names::LS_CORE_POSTMORTEM)),
            flight,
            server: None,
            sampler: None,
        }
    }

    /// (Re)constructs an engine over existing stable state **without**
    /// running recovery — used internally and by tests that want to
    /// inspect a broken state. The caller supplies the [`Obs`] so a
    /// recovery's trace survives into the engine it produced.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        strategy: Strategy,
        config: DbConfig,
        log: Arc<LogManager>,
        disk: Arc<Disk>,
        pool: BufferPool,
        tr: TrList,
        next_txn: u64,
        obs: Arc<Obs>,
    ) -> Self {
        RhDb {
            strategy,
            config,
            log,
            disk,
            pool,
            locks: Arc::new(LockManager::new()),
            tr,
            next_txn,
            compensated: std::collections::HashSet::new(),
            coord_decisions: std::collections::BTreeMap::new(),
            last_recovery: None,
            obs,
            prov: Arc::new(Mutex::named(ProvenanceTable::new(), names::LS_CORE_PROV)),
            postmortem: Arc::new(Mutex::named(None, names::LS_CORE_POSTMORTEM)),
            flight: None,
            server: None,
            sampler: None,
        }
    }

    /// Replaces the provenance table (recovery hands over the chains its
    /// forward pass rebuilt).
    pub(crate) fn set_provenance(&mut self, table: ProvenanceTable) {
        *self.prov.lock() = table;
    }

    /// Stores the predecessor postmortem built by recovery.
    pub(crate) fn set_postmortem(&mut self, pm: JsonValue) {
        *self.postmortem.lock() = Some(pm);
    }

    /// Attaches a flight recorder (recovery does this after the log is
    /// whole again).
    pub(crate) fn attach_flight(&mut self, flight: FlightRecorder) {
        self.flight = Some(flight);
    }

    // ---- accessors --------------------------------------------------

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The engine's log (for metric snapshots and log dumps in tests,
    /// examples, and the experiment binary).
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The engine's disk (for I/O metric snapshots).
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// The lock manager (exposed for the ETM layer's `permit`).
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The provenance table handle (the sharded router's introspection
    /// endpoint serves chains without holding the engine mutex).
    pub(crate) fn prov_handle(&self) -> Arc<Mutex<ProvenanceTable>> {
        Arc::clone(&self.prov)
    }

    /// The next transaction id this engine would hand out — the sharded
    /// router seeds its global counter from the max across shards after
    /// recovery.
    pub(crate) fn next_txn_hint(&self) -> u64 {
        self.next_txn
    }

    /// Report of the recovery that produced this incarnation, if any.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// The engine's observability hub (tracer + metrics registry).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// One-stop metrics snapshot: absorbs the current log, disk, and
    /// lock-manager counters into the unified registry (under `log.*`,
    /// `disk.*`, `lock.*`) and returns the whole registry — engine-level
    /// `scope.*`/`recovery.*` series included. Idempotent: absorption
    /// writes absolute values.
    pub fn stats(&self) -> rh_obs::RegistrySnapshot {
        self.log.metrics().snapshot().export_into(&self.obs.registry);
        self.disk.metrics().snapshot().export_into(&self.obs.registry);
        self.locks.stats().snapshot().export_into(&self.obs.registry);
        self.obs.registry.snapshot()
    }

    /// Captures the trace ring (recovery timeline, spans, delegate and
    /// sweep events) without disturbing it.
    pub fn trace_snapshot(&self) -> rh_obs::TraceSnapshot {
        self.obs.tracer.snapshot()
    }

    // ---- provenance / flight recorder / introspection -----------------

    /// The delegation responsibility chain of `ob`, oldest hop first:
    /// one `(from, to, lsn)` entry per delegate record that moved
    /// responsibility for the object. Empty for never-delegated objects.
    /// Survives crashes — the forward pass rebuilds chains from
    /// `delegate` records (and fuzzy checkpoints persist them).
    pub fn provenance(&self, ob: ObjectId) -> Vec<ProvHop> {
        self.prov.lock().chain(ob).to_vec()
    }

    /// Every object's responsibility chain, as JSON (the `/provenance`
    /// introspection route and the bench artifacts serve this).
    pub fn provenance_json(&self) -> JsonValue {
        self.prov.lock().to_json()
    }

    // ---- time-travel reads (reenactment) ------------------------------

    /// The committed value of `ob` as of `lsn` (inclusive; [`Lsn::NULL`]
    /// means the log's last record), reconstructed by seeding from the
    /// newest checkpoint at-or-below the target and replaying forward
    /// through a shadow scope table. Never touches live pages — only the
    /// internally-synchronized log and observability handles, so replays
    /// can run concurrently with a loaded engine (see
    /// [`crate::reenact::query`]). Prepared-but-undecided transactions
    /// are presumed aborted, exactly as recovery would.
    pub fn read_as_of(&self, ob: ObjectId, lsn: Lsn) -> Result<Value> {
        Ok(crate::reenact::query(&self.log, &self.obs, ob, lsn)?.value())
    }

    /// The committed version timeline of `ob` over `[from, to]`
    /// (inclusive; `to = Lsn::NULL` means the log's last record): each
    /// version carries its value, update LSN, invoker, responsible
    /// transaction, delegation hops, and — when the commit was traced —
    /// the originating trace id.
    pub fn history(
        &self,
        ob: ObjectId,
        from: Lsn,
        to: Lsn,
    ) -> Result<Vec<crate::reenact::VersionRecord>> {
        let r = crate::reenact::query(&self.log, &self.obs, ob, to)?;
        Ok(r.versions().into_iter().filter(|v| v.lsn >= from).collect())
    }

    /// The full reenactment of `ob` at `as_of` — value, version
    /// timeline, and in-doubt transactions awaiting a coordinator
    /// decision. The typed result behind [`RhDb::read_as_of`] and
    /// [`RhDb::history`].
    pub fn reenact(&self, ob: ObjectId, as_of: Lsn) -> Result<crate::reenact::Reenactment> {
        crate::reenact::query(&self.log, &self.obs, ob, as_of)
    }

    /// The postmortem built by the recovery that produced this
    /// incarnation: the predecessor's black-box identity, final spans,
    /// and counters diffed against post-recovery state. `None` when no
    /// predecessor black box was found (fresh database, mem-backed log,
    /// or not recovered).
    pub fn postmortem(&self) -> Option<JsonValue> {
        self.postmortem.lock().clone()
    }

    /// Explicitly freezes a black-box record now (the commit cadence and
    /// checkpoints also do this automatically). `reason` tags the record.
    /// Returns false when no flight recorder is attached or the append
    /// failed (failures are counted under `blackbox.errors`, never
    /// raised).
    pub fn record_blackbox(&self, reason: &str) -> bool {
        let Some(flight) = &self.flight else { return false };
        // Absorb log/disk/lock counters first so the frozen registry is
        // the same "one-stop" view `stats()` serves.
        let _ = self.stats();
        flight.record(reason, &self.obs)
    }

    /// Detaches the flight recorder (the `obs_overhead` bench measures
    /// the engine with and without it).
    pub fn disable_flight_recorder(&mut self) {
        self.flight = None;
    }

    /// Whether a flight recorder is currently attached.
    pub fn has_flight_recorder(&self) -> bool {
        self.flight.is_some()
    }

    /// Starts the live introspection server on `addr` (use
    /// `"127.0.0.1:0"` for an ephemeral port) and returns the bound
    /// address. Read-only and bounded (see `rh_obs::serve`); routes:
    /// `/stats`, `/metrics` (Prometheus text exposition of the same
    /// registry), `/timeseries`, `/slowops`, `/trace`, `/provenance`,
    /// `/provenance/<ob>`, `/postmortem`, and the time-travel routes
    /// `/asof/<ob>/<lsn>` and `/history/<ob>` (reenacted off the shared
    /// log handle — never through the engine). Also spawns the once-a-second
    /// cadence sampler feeding `/timeseries`. The server and sampler
    /// stop when the engine is dropped (or on
    /// [`RhDb::stop_introspection`]).
    pub fn serve_introspection(&mut self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        self.serve_introspection_with(addr, &[], None)
    }

    /// [`RhDb::serve_introspection`] plus embedder-supplied routes: any
    /// path the `extra` handler answers is served before the built-in
    /// routes (the server layer mounts `/replication` this way), and
    /// `extra_endpoints` is appended to the route list echoed in 404s.
    pub fn serve_introspection_with(
        &mut self,
        addr: &str,
        extra_endpoints: &[&str],
        extra: Option<rh_obs::Handler>,
    ) -> std::io::Result<std::net::SocketAddr> {
        let log = Arc::clone(&self.log);
        let disk = Arc::clone(&self.disk);
        let locks = Arc::clone(&self.locks);
        let obs = Arc::clone(&self.obs);
        let prov = Arc::clone(&self.prov);
        let postmortem = Arc::clone(&self.postmortem);
        // The absorbed "one-stop" registry view, shared by /stats,
        // /metrics, and the sampler tick — the same arithmetic as
        // `stats()`.
        let absorbed = {
            let obs = Arc::clone(&obs);
            move || {
                log.metrics().snapshot().export_into(&obs.registry);
                disk.metrics().snapshot().export_into(&obs.registry);
                locks.stats().snapshot().export_into(&obs.registry);
                obs.registry.snapshot()
            }
        };
        let mut endpoints = vec![
            "/stats",
            "/metrics",
            "/timeseries",
            "/slowops",
            "/trace",
            "/provenance",
            "/postmortem",
            "/asof/<ob>/<lsn>",
            "/history/<ob>",
        ];
        endpoints.extend_from_slice(extra_endpoints);
        let handler: rh_obs::Handler = {
            let absorbed = absorbed.clone();
            let obs = Arc::clone(&obs);
            let log = Arc::clone(&self.log);
            Arc::new(move |path: &str| {
                if let Some(hit) = extra.as_ref().and_then(|h| h(path)) {
                    return Some(hit);
                }
                match path {
                    "/stats" => Some(HttpResponse::Json(absorbed().to_json())),
                    "/metrics" => Some(HttpResponse::Text {
                        content_type: rh_obs::serve::PROMETHEUS_CONTENT_TYPE,
                        body: rh_obs::promtext::render(&absorbed()),
                    }),
                    "/timeseries" => Some(HttpResponse::Json(obs.timeseries.to_json())),
                    "/slowops" => Some(HttpResponse::Json(obs.slowops.to_json())),
                    "/trace" => Some(HttpResponse::Json(obs.tracer.snapshot().to_json())),
                    "/provenance" => {
                        let doc = prov.lock().to_json();
                        Some(HttpResponse::Json(doc))
                    }
                    "/postmortem" => {
                        let doc = postmortem.lock().clone();
                        Some(HttpResponse::Json(doc.unwrap_or(JsonValue::Null)))
                    }
                    p => {
                        let reenact = |ob, lsn| {
                            crate::reenact::query(&log, &obs, ob, lsn).map(|r| (r, BTreeSet::new()))
                        };
                        if let Some(rest) = p.strip_prefix("/asof/") {
                            Some(introspect_asof(rest, reenact))
                        } else if let Some(rest) = p.strip_prefix("/history/") {
                            Some(introspect_history(rest, reenact))
                        } else if let Some(rest) = p.strip_prefix("/provenance/") {
                            // Malformed segments are a 400, not a 404: the
                            // route shape matched, the parameter did not.
                            match rest.parse::<u64>() {
                                Ok(ob) => {
                                    let chain = prov.lock();
                                    Some(HttpResponse::Json(JsonValue::Arr(
                                        chain
                                            .chain(ObjectId(ob))
                                            .iter()
                                            .map(ProvHop::to_json)
                                            .collect(),
                                    )))
                                }
                                Err(_) => {
                                    Some(HttpResponse::bad_request("object id must be numeric"))
                                }
                            }
                        } else {
                            None
                        }
                    }
                }
            })
        };
        let server = IntrospectionServer::bind(addr, &endpoints, handler)?;
        let bound = server.local_addr();
        let tick_obs = Arc::clone(&self.obs);
        self.sampler = Some(Sampler::spawn_every(
            std::time::Duration::from_secs(1),
            Box::new(move || {
                tick_obs.registry.inc(names::M_TS_SAMPLES);
                crate::witness_bridge::sample_lock_witness(&tick_obs.registry);
                tick_obs.timeseries.sample(&absorbed());
            }),
        ));
        self.server = Some(server);
        Ok(bound)
    }

    /// Shuts the introspection server (and its cadence sampler) down, if
    /// running.
    pub fn stop_introspection(&mut self) {
        self.sampler = None;
        self.server = None;
    }

    /// Number of transactions currently in the table.
    pub fn active_txns(&self) -> usize {
        self.tr.len()
    }

    /// Renders the whole log, one record per line (Fig. 2-style dumps).
    pub fn dump_log(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.log.len());
        let mut lsn = self.log.first_lsn();
        while lsn < self.log.curr_lsn() {
            match self.log.read(lsn) {
                Ok(rec) => out.push(rec.render()),
                Err(_) => out.push(format!("{} <unreadable>", lsn.raw())),
            }
            lsn = lsn.next();
        }
        out
    }

    /// The scopes currently held by `txn` for `ob` (test/diagnostic hook
    /// matching the paper's Fig. 5 pictures).
    pub fn scopes_of(&self, txn: TxnId, ob: ObjectId) -> Vec<crate::scope::Scope> {
        self.tr
            .get(txn)
            .ok()
            .and_then(|e| e.ob_list.get(ob))
            .map(|e| e.scopes.clone())
            .unwrap_or_default()
    }

    /// Panics if any volatile scope invariant is violated (property-test
    /// hook):
    ///
    /// * scopes of one object sharing an invoking transaction never
    ///   overlap (the §3.5 remark);
    /// * every scope lies within the log (`last < curr_lsn`), ordered
    ///   (`first <= last`);
    /// * no `Ob_List` entry is empty (responsibility implies at least one
    ///   covered update);
    /// * provenance chains agree with the live tables: a live entry whose
    ///   `deleg` field names a delegator has a chain whose last hop *into
    ///   the current owner* came from exactly that delegator, and every
    ///   chain is LSN-monotone within the log.
    #[doc(hidden)]
    pub fn validate_scope_invariants(&self) {
        let end = self.log.curr_lsn();
        for (txn, entry) in self.tr.iter() {
            for ob in entry.ob_list.objects() {
                let oe = entry.ob_list.get(ob).expect("listed object");
                let scopes = &oe.scopes;
                assert!(!scopes.is_empty(), "{txn} holds an empty entry for {ob}");
                for (i, s) in scopes.iter().enumerate() {
                    assert!(s.first <= s.last, "{txn}/{ob}: inverted scope {s:?}");
                    assert!(s.last < end, "{txn}/{ob}: scope {s:?} beyond the log");
                    for other in &scopes[i + 1..] {
                        assert!(
                            s.invoker != other.invoker || !s.overlaps(other),
                            "{txn}/{ob}: same-invoker scopes overlap: {s:?} vs {other:?}"
                        );
                    }
                }
                if let Some(delegator) = oe.deleg {
                    // Several transactions may hold live entries for the
                    // same object (a delegator can re-update after
                    // delegating), so only the last hop *into this
                    // transaction* must agree with its `deleg` field.
                    let prov = self.prov.lock();
                    let last_into = prov.chain(ob).iter().rev().find(|hop| hop.to == txn);
                    let hop = last_into.unwrap_or_else(|| {
                        panic!("{txn}/{ob}: deleg={delegator} but no provenance hop into {txn}")
                    });
                    assert_eq!(
                        hop.from, delegator,
                        "{txn}/{ob}: last hop into {txn} ({hop:?}) disagrees with deleg field"
                    );
                }
            }
        }
        let prov = self.prov.lock();
        for ob in prov.objects() {
            let chain = prov.chain(ob);
            for w in chain.windows(2) {
                assert!(
                    w[0].lsn < w[1].lsn,
                    "{ob}: provenance chain not LSN-monotone: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
            for hop in chain {
                assert!(hop.from != hop.to, "{ob}: self-delegation hop {hop:?}");
                assert!(hop.lsn < end, "{ob}: provenance hop {hop:?} beyond the log");
            }
        }
    }

    // ---- internals ----------------------------------------------------

    /// Appends one provenance hop per delegated object, with counters
    /// (`scope.provenance.hops`, chain-depth histogram) and a trace
    /// event per hop. Shared by [`TxnEngine::delegate`] and
    /// [`TxnEngine::delegate_all`].
    fn record_provenance_hops(&self, objects: &[ObjectId], tor: TxnId, tee: TxnId, lsn: Lsn) {
        let mut prov = self.prov.lock();
        for &ob in objects {
            if let Some(depth) = prov.record_hop(ob, tor, tee, lsn) {
                self.obs.registry.inc(names::M_PROVENANCE_HOPS);
                self.obs.registry.observe(names::M_PROVENANCE_CHAIN_DEPTH, depth as u64);
                self.obs.tracer.point(
                    names::EV_PROVENANCE_HOP,
                    lsn.raw(),
                    ob.raw(),
                    tor.raw(),
                    tee.raw(),
                );
            }
        }
    }

    fn log_for_txn(&mut self, txn: TxnId, body: RecordBody) -> Result<Lsn> {
        let prev = self.tr.bc(txn)?;
        let lsn = self.log.append(txn, prev, body);
        self.tr.set_bc(txn, lsn)?;
        Ok(lsn)
    }

    fn apply_update(&mut self, txn: TxnId, ob: ObjectId, op: UpdateOp) -> Result<()> {
        // §3.5 update: log it, adjust scopes, apply in place.
        let lsn = self.log_for_txn(txn, RecordBody::Update { ob, op })?;
        match self.tr.get_mut(txn)?.ob_list.record_update(ob, txn, lsn) {
            crate::oblist::ScopeAction::Opened => self.obs.registry.inc(names::M_SCOPE_OPENS),
            crate::oblist::ScopeAction::Extended => self.obs.registry.inc(names::M_SCOPE_EXTENDS),
        }
        let cur = self.pool.read_object(ob, &*self.log)?;
        self.pool.write_object(ob, op.apply(cur), lsn, &*self.log)?;
        Ok(())
    }

    /// Terminates a transaction: End record, table removal, lock release.
    fn end_txn(&mut self, txn: TxnId) -> Result<()> {
        self.log_for_txn(txn, RecordBody::End)?;
        self.tr.remove(txn);
        self.locks.release_all(txn);
        Ok(())
    }

    // ---- savepoints / partial rollback -----------------------------------
    //
    // The paper's closing direction — "making recovery a first-class
    // concept within transaction management and ... providing a variety
    // of recovery primitives" (§6) — realized with the same scope
    // machinery: a savepoint is an LSN; rolling back to it undoes the
    // transaction's *responsible* updates logged at or after that LSN,
    // with CLRs, leaving earlier work (and the transaction) alive.

    /// Declares a savepoint for `txn`: every update it becomes
    /// responsible for from now on can be undone by
    /// [`RhDb::rollback_to`] without killing the transaction.
    pub fn savepoint(&mut self, txn: TxnId) -> Result<Lsn> {
        self.tr.require_active(txn)?;
        Ok(self.log.curr_lsn())
    }

    /// Partially rolls `txn` back to a savepoint: undoes (with CLRs)
    /// every update in its scopes with LSN `>= sp`, truncating the
    /// volatile scopes to match. Crash-safe: after a crash the forward
    /// pass rebuilds the full scopes, and the CLRs' compensated-LSN set
    /// keeps the rolled-back updates from being undone twice (or redone
    /// net of their compensation).
    ///
    /// Note the delegation-aware semantics: the rollback covers updates
    /// the transaction is *responsible for* — including updates invoked
    /// by others and delegated here after the savepoint.
    pub fn rollback_to(&mut self, txn: TxnId, sp: Lsn) -> Result<()> {
        self.tr.require_active(txn)?;
        let obs = Arc::clone(&self.obs);
        let _span = obs.tracer.span_for_txn(names::SPAN_ROLLBACK, txn.raw());
        // Collect the portions of this transaction's scopes at/after sp.
        let mut to_undo: Vec<recovery::WalkScope> = Vec::new();
        for (ob, scope) in self.tr.get(txn)?.ob_list.all_scopes() {
            if scope.last >= sp {
                let clipped = crate::scope::Scope {
                    invoker: scope.invoker,
                    first: scope.first.max(sp),
                    last: scope.last,
                };
                to_undo.push(recovery::WalkScope { owner: txn, ob, scope: clipped, loser: true });
            }
        }
        recovery::undo_scopes(
            &self.log,
            &mut self.pool,
            &mut self.tr,
            to_undo,
            &mut self.compensated,
            false,
            &obs,
        )?;
        // Truncate the volatile scopes: drop parts at/after sp.
        let entry = self.tr.get_mut(txn)?;
        let objects: Vec<ObjectId> = entry.ob_list.objects().collect();
        let mut splits = 0u64;
        for ob in objects {
            splits += entry.ob_list.truncate_scopes(ob, sp);
        }
        obs.registry.add(names::M_SCOPE_SPLITS, splits);
        Ok(())
    }

    // ---- checkpointing -------------------------------------------------

    /// Takes a checkpoint (begin/end record pair; the end record's
    /// payload snapshots the transaction table **with its scope-bearing
    /// Ob_Lists**, the dirty-page table, and the txn-id high-water mark),
    /// then advances the master record.
    ///
    /// Dirty pages are flushed first (honoring write-ahead), so the
    /// snapshot's dirty-page table is empty and redo after a later crash
    /// starts at the checkpoint instead of the oldest recLSN. This is the
    /// "sharp" end of the checkpointing spectrum; the recovery code also
    /// handles the fuzzy case (non-empty DPT) for generality.
    pub fn checkpoint(&mut self) -> Result<()> {
        let obs = Arc::clone(&self.obs);
        let span = obs.tracer.span(names::SPAN_CHECKPOINT);
        let disk_before = self.disk.metrics().snapshot();
        self.pool.flush_all(&*self.log)?;
        let flushed_pages = self.disk.metrics().snapshot().page_writes - disk_before.page_writes;
        span.point(
            names::EV_PAGE_FLUSH,
            rh_obs::trace::NONE,
            rh_obs::trace::NONE,
            rh_obs::trace::NONE,
            flushed_pages,
        );
        let begin = self.log.append(TxnId::NONE, Lsn::NULL, RecordBody::CheckpointBegin);
        // Compensated LSNs that a live scope could still re-cover must
        // travel with the snapshot (their CLRs are behind the checkpoint
        // and a post-checkpoint recovery scan will not see them).
        let oldest_scope =
            self.tr.iter().filter_map(|(_, e)| e.ob_list.min_first()).min().unwrap_or(Lsn::NULL);
        let compensated: Vec<Lsn> = if oldest_scope.is_null() {
            Vec::new()
        } else {
            let mut v: Vec<Lsn> =
                self.compensated.iter().copied().filter(|&l| l >= oldest_scope).collect();
            v.sort();
            v
        };
        let snap = CheckpointSnapshot {
            tr_list: self.tr.clone(),
            dpt: self.pool.dirty_page_table(),
            next_txn: self.next_txn,
            compensated,
            provenance: self.prov.lock().clone(),
            // Unretired coordinator decisions ride in every snapshot:
            // another shard's in-doubt resolution may still need them
            // after this anchor hides their CoordCommit records.
            coord_decisions: self.coord_decisions.iter().map(|(t, p)| (*t, p.clone())).collect(),
            // Captured after flush_all, while `&mut self` excludes
            // writers: the disk images are the state at CheckpointBegin.
            values: self.disk.non_initial_values()?,
        };
        let end = self.log.append(
            TxnId::NONE,
            begin,
            RecordBody::CheckpointEnd { payload: snap.to_bytes() },
        );
        // Master only moves after the checkpoint is durable (see
        // StableLog::set_master docs).
        let log_before = self.log.metrics().snapshot();
        self.log.flush_to(end)?;
        let flushed_recs =
            self.log.metrics().snapshot().records_flushed - log_before.records_flushed;
        span.point(
            names::EV_LOG_FLUSH,
            rh_obs::trace::NONE,
            end.raw(),
            rh_obs::trace::NONE,
            flushed_recs,
        );
        self.log.stable().set_master(begin)?;
        // A checkpoint is a crash-adjacent moment worth remembering: a
        // recovery starting here sees the black box frozen at exactly
        // the state it restores.
        if let Some(flight) = &self.flight {
            let _ = self.stats();
            flight.record("checkpoint", &self.obs);
        }
        Ok(())
    }

    /// Truncates the log prefix that no future recovery can need:
    /// everything before the last checkpoint, the oldest active
    /// transaction's first record, and the oldest live scope. Requires a
    /// prior [`RhDb::checkpoint`] (returns 0 otherwise). Returns the
    /// number of records discarded.
    ///
    /// Safety argument: redo starts at the checkpoint (pages were flushed
    /// by it) or at a dirty recLSN after it; undo reads only records
    /// covered by live scopes; backward chains are only walked within
    /// those bounds. All three are kept at/after the truncation point.
    pub fn truncate_log(&mut self) -> Result<u64> {
        let master = self.log.stable().master();
        if master.is_null() {
            return Ok(0);
        }
        let mut point = master;
        for (_, entry) in self.tr.iter() {
            point = point.min(entry.first_lsn);
            if let Some(oldest_scope) = entry.ob_list.min_first() {
                point = point.min(oldest_scope);
            }
        }
        // Never truncate unflushed territory (truncate_prefix also
        // guards, but clamping keeps the returned count honest).
        point = point.min(Lsn(self.log.stable_len() as u64));
        self.log.truncate_prefix(point)
    }

    // ---- crash & recovery -----------------------------------------------

    /// Simulates a crash: all volatile state (buffer pool, transaction
    /// table, scopes, locks, unflushed log tail) is lost. Returns the
    /// surviving stable state.
    pub fn crash(self) -> (Arc<StableLog>, Arc<Disk>) {
        (self.log.stable(), Arc::clone(&self.disk))
    }

    /// Runs restart recovery over stable state, returning a ready engine.
    pub fn recover(
        strategy: Strategy,
        config: DbConfig,
        stable: Arc<StableLog>,
        disk: Arc<Disk>,
    ) -> Result<Self> {
        recovery::recover(strategy, config, stable, disk)
    }

    pub(crate) fn set_recovery_report(&mut self, report: RecoveryReport) {
        self.last_recovery = Some(report);
    }

    // ---- group-committed commit -----------------------------------------

    /// The non-durable half of [`TxnEngine::commit`]: writes the commit
    /// record, marks the transaction committed, ends it (End record,
    /// table removal, lock release) — but does **not** force the log.
    /// Returns the commit record's LSN; the commit is durable (and may
    /// be acknowledged) only once `log().flush_to(lsn)` has returned.
    ///
    /// This split exists for the network front-end: many sessions can
    /// prepare commits under the engine mutex and then force the log
    /// *outside* it, letting [`rh_wal::LogManager::flush_to`]'s
    /// group-commit leader cover all of them with one fsync. Releasing
    /// locks before durability is safe here because flushes are prefix
    /// operations: no later transaction's commit can become durable
    /// without this commit record becoming durable first, so a crash
    /// either loses both or neither.
    pub fn commit_prepare(&mut self, txn: TxnId) -> Result<Lsn> {
        self.tr.require_active(txn)?;
        let lsn = self.log_for_txn(txn, RecordBody::Commit)?;
        self.tr.get_mut(txn)?.status = TxnStatus::Committed;
        self.end_txn(txn)?;
        // Flight-recorder cadence: freeze a black box every N commits.
        if self.flight.as_ref().is_some_and(FlightRecorder::commit_due) {
            self.record_blackbox("commit-cadence");
        }
        Ok(lsn)
    }

    // ---- two-phase commit (sharded participant surface) ------------------
    //
    // A cross-shard transaction commits through `crate::sharded`: every
    // participant shard except the coordinator prepares (Prepare record
    // forced, status Prepared, locks kept), the coordinator shard forces a
    // CoordCommit record (the commit point, which also commits it locally —
    // the coordinator itself never prepares), then each prepared
    // participant resolves (Commit + End records, lazily flushed — a crash
    // in between leaves the transaction in doubt and recovery re-resolves
    // it against the coordinator record).

    /// Begins a transaction **with a caller-chosen id** — the sharded
    /// router allocates one global id and begins it in every participant
    /// shard, so delegation provenance stitches across shard logs by
    /// plain id equality. Idempotent: a second `begin_as` for a live id
    /// is a no-op. The engine's own id counter advances past `txn` so
    /// local `begin` never collides.
    pub fn begin_as(&mut self, txn: TxnId) -> Result<()> {
        self.next_txn = self.next_txn.max(txn.raw() + 1);
        if self.tr.contains(txn) {
            return Ok(());
        }
        let lsn = self.log.append(txn, Lsn::NULL, RecordBody::Begin);
        self.tr.insert(txn, lsn);
        Ok(())
    }

    /// 2PC phase one on this participant: appends a `Prepare` record and
    /// moves the transaction to [`TxnStatus::Prepared`]. Scopes and locks
    /// are **kept** — the transaction can still be rolled back if the
    /// coordinator decides abort. Durable (and binding) only once
    /// `log().flush_to(lsn)` has returned.
    pub fn prepare_commit(&mut self, txn: TxnId) -> Result<Lsn> {
        self.tr.require_active(txn)?;
        let lsn = self.log_for_txn(txn, RecordBody::Prepare)?;
        self.tr.get_mut(txn)?.status = TxnStatus::Prepared;
        Ok(lsn)
    }

    /// Appends the coordinator's commit record and finishes `txn` locally.
    /// The record's durability is the global commit point; `participants`
    /// names every *other* shard whose log holds a `Prepare` to resolve.
    ///
    /// The coordinator never prepares (the classic coordinator-as-
    /// participant optimization): before this record is durable its
    /// updates are an ordinary loser and presumed abort covers them;
    /// once durable, the forward pass replays `CoordCommit` straight to
    /// [`TxnStatus::Committed`]. Skipping the Prepare saves one forced
    /// fsync per cross-shard transaction.
    pub fn append_coord_commit(&mut self, txn: TxnId, participants: &[u32]) -> Result<Lsn> {
        self.tr.require_active(txn)?;
        let lsn =
            self.log_for_txn(txn, RecordBody::CoordCommit { participants: participants.to_vec() })?;
        // The decision outlives this transaction locally: until every
        // participant's Commit record is durable, checkpoints must keep
        // carrying it (the anchor can advance past the record itself).
        self.coord_decisions.insert(txn, participants.to_vec());
        self.tr.get_mut(txn)?.status = TxnStatus::Committed;
        self.end_txn(txn)?;
        if self.flight.as_ref().is_some_and(FlightRecorder::commit_due) {
            self.record_blackbox("commit-cadence");
        }
        Ok(lsn)
    }

    /// 2PC phase two on this participant: finishes a prepared `txn` with
    /// the coordinator's decision. `commit` writes the local Commit + End
    /// records (lazily flushed — the coordinator record already made the
    /// outcome durable); abort reverts the transaction to Active and runs
    /// the ordinary rollback. Returns the terminating record's LSN.
    pub fn resolve_prepared(&mut self, txn: TxnId, commit: bool) -> Result<Lsn> {
        if self.tr.get(txn)?.status != TxnStatus::Prepared {
            return Err(RhError::TxnNotActive(txn));
        }
        if commit {
            let lsn = self.log_for_txn(txn, RecordBody::Commit)?;
            self.tr.get_mut(txn)?.status = TxnStatus::Committed;
            self.end_txn(txn)?;
            if self.flight.as_ref().is_some_and(FlightRecorder::commit_due) {
                self.record_blackbox("commit-cadence");
            }
            Ok(lsn)
        } else {
            self.tr.get_mut(txn)?.status = TxnStatus::Active;
            self.abort(txn)?;
            Ok(self.log.curr_lsn())
        }
    }

    /// Transactions left in doubt (status [`TxnStatus::Prepared`]) — after
    /// a recovery, exactly the ones the sharded resolver must decide.
    pub fn in_doubt(&self) -> Vec<TxnId> {
        self.tr.with_status(TxnStatus::Prepared)
    }

    /// Seeds the live decision map (recovery hands over every decision it
    /// found — snapshot-carried and freshly scanned alike).
    pub(crate) fn set_coord_decisions(&mut self, decisions: &[(TxnId, Vec<u32>)]) {
        self.coord_decisions = decisions.iter().map(|(t, p)| (*t, p.clone())).collect();
    }

    /// Retires a coordinator decision: the sharded router calls this once
    /// every participant's Commit record for `txn` is durable, after
    /// which no recovery can need the decision and checkpoint snapshots
    /// stop carrying it. Returns whether an entry was present.
    pub(crate) fn retire_coord_decision(&mut self, txn: TxnId) -> bool {
        self.coord_decisions.remove(&txn).is_some()
    }

    /// Drops every held decision — sharded recovery calls this after all
    /// in-doubt transactions across all shards are resolved and every
    /// shard's log is forced, at which point no decision can be needed
    /// again.
    pub(crate) fn clear_coord_decisions(&mut self) {
        self.coord_decisions.clear();
    }

    /// The decisions currently carried into checkpoints (test hook).
    pub fn coord_decisions(&self) -> Vec<(TxnId, Vec<u32>)> {
        self.coord_decisions.iter().map(|(t, p)| (*t, p.clone())).collect()
    }
}

/// Parses an LSN path segment: a decimal LSN, or the literal `now` for
/// "the log's last record".
pub(crate) fn parse_lsn_segment(s: &str) -> Option<Lsn> {
    if s == "now" {
        return Some(Lsn::NULL);
    }
    s.parse::<u64>().ok().map(Lsn)
}

/// `/asof/<ob>/<lsn>`: the reenacted committed value at an LSN. `run`
/// performs the replay and returns the reenactment plus the set of its
/// in-doubt transactions some coordinator decision commits (always
/// empty for a single-node engine; the sharded router stitches
/// decisions across shard logs). Runs entirely off shared log + obs
/// handles — the engine mutex (where one exists) is never involved.
/// Malformed segments are a 400; an unanswerable target (truncated
/// history) is a 400 carrying the reenactment error.
pub(crate) fn introspect_asof(
    rest: &str,
    run: impl Fn(ObjectId, Lsn) -> Result<(crate::reenact::Reenactment, BTreeSet<TxnId>)>,
) -> HttpResponse {
    let mut it = rest.splitn(2, '/');
    let ob = it.next().and_then(|s| s.parse::<u64>().ok());
    let lsn = it.next().and_then(parse_lsn_segment);
    let (Some(ob), Some(lsn)) = (ob, lsn) else {
        return HttpResponse::bad_request(
            "expected /asof/<ob>/<lsn> with numeric segments (or \"now\" for the lsn)",
        );
    };
    match run(ObjectId(ob), lsn) {
        Ok((r, decided)) => HttpResponse::Json(JsonValue::obj(vec![
            ("object", JsonValue::U64(ob)),
            ("as_of", JsonValue::U64(r.as_of.raw())),
            ("value", JsonValue::I64(r.value_with(|t| decided.contains(&t)))),
            (
                "seeded_from",
                match r.seeded_from {
                    Some(l) => JsonValue::U64(l.raw()),
                    None => JsonValue::Null,
                },
            ),
            (
                "in_doubt",
                JsonValue::Arr(r.in_doubt.iter().map(|d| JsonValue::U64(d.txn.raw())).collect()),
            ),
        ])),
        Err(e) => HttpResponse::bad_request(e.to_string()),
    }
}

/// `/history/<ob>`: the full `history.v1` version timeline up to the
/// log's last record. Same mutex-free discipline and `run` contract as
/// [`introspect_asof`].
pub(crate) fn introspect_history(
    rest: &str,
    run: impl Fn(ObjectId, Lsn) -> Result<(crate::reenact::Reenactment, BTreeSet<TxnId>)>,
) -> HttpResponse {
    let Ok(ob) = rest.parse::<u64>() else {
        return HttpResponse::bad_request("object id must be numeric");
    };
    match run(ObjectId(ob), Lsn::NULL) {
        Ok((r, decided)) => {
            HttpResponse::Json(r.to_json_range(Lsn::FIRST, r.as_of, |t| decided.contains(&t)))
        }
        Err(e) => HttpResponse::bad_request(e.to_string()),
    }
}

impl TxnEngine for RhDb {
    fn begin(&mut self) -> Result<TxnId> {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let lsn = self.log.append(txn, Lsn::NULL, RecordBody::Begin);
        self.tr.insert(txn, lsn);
        Ok(txn)
    }

    fn read(&mut self, txn: TxnId, ob: ObjectId) -> Result<Value> {
        self.tr.require_active(txn)?;
        self.locks.try_acquire(txn, ob, LockMode::Shared)?;
        self.pool.read_object(ob, &*self.log)
    }

    fn write(&mut self, txn: TxnId, ob: ObjectId, value: Value) -> Result<()> {
        self.tr.require_active(txn)?;
        self.locks.try_acquire(txn, ob, LockMode::Exclusive)?;
        let before = self.pool.read_object(ob, &*self.log)?;
        self.apply_update(txn, ob, UpdateOp::Write { before, after: value })
    }

    fn add(&mut self, txn: TxnId, ob: ObjectId, delta: Value) -> Result<()> {
        self.tr.require_active(txn)?;
        self.locks.try_acquire(txn, ob, LockMode::Increment)?;
        self.apply_update(txn, ob, UpdateOp::Add { delta })
    }

    fn delegate(&mut self, tor: TxnId, tee: TxnId, obs: &[ObjectId]) -> Result<()> {
        // §3.5 delegate, steps 1-4.
        self.tr.require_active(tor)?;
        self.tr.require_active(tee)?;
        if tor == tee {
            return Err(RhError::SelfDelegation(tor));
        }
        // 1. WELL-FORMED? ob ∈ Ob_List(tor) — i.e. the delegator is
        // responsible for at least one operation on each object.
        for &ob in obs {
            if !self.tr.get(tor)?.ob_list.contains(ob) {
                return Err(RhError::NotResponsible { txn: tor, object: ob });
            }
        }
        // 2. PREPARE LOG RECORD: capture both backward-chain heads.
        let tor_bc = self.tr.bc(tor)?;
        let tee_bc = self.tr.bc(tee)?;
        // 3. TRANSFER RESPONSIBILITY: move scopes, record the delegator,
        // and move the access rights (locks) with them.
        let mut merged = 0u64;
        for &ob in obs {
            let entry = self.tr.get_mut(tor)?.ob_list.take(ob).expect("well-formedness checked");
            merged += self.tr.get_mut(tee)?.ob_list.absorb(ob, entry, tor) as u64;
            self.locks.transfer(tor, tee, ob);
        }
        // 4. WRITE DELEGATION LOG RECORD; it becomes the head of *both*
        // backward chains.
        let lsn = self.log.append(
            tor,
            tor_bc,
            RecordBody::Delegate { tee, tee_bc, body: DelegateBody::Objects(obs.to_vec()) },
        );
        self.tr.set_bc(tor, lsn)?;
        self.tr.set_bc(tee, lsn)?;
        self.obs.registry.inc(names::M_SCOPE_DELEGATES);
        self.obs.registry.add(names::M_SCOPE_MERGES, merged);
        self.obs.tracer.point(names::EV_DELEGATE, lsn.raw(), lsn.raw(), tor.raw(), tee.raw());
        self.record_provenance_hops(obs, tor, tee, lsn);
        Ok(())
    }

    fn delegate_all(&mut self, tor: TxnId, tee: TxnId) -> Result<()> {
        self.tr.require_active(tor)?;
        self.tr.require_active(tee)?;
        if tor == tee {
            return Err(RhError::SelfDelegation(tor));
        }
        let tor_bc = self.tr.bc(tor)?;
        let tee_bc = self.tr.bc(tee)?;
        let drained = self.tr.get_mut(tor)?.ob_list.drain_all();
        let objects: Vec<ObjectId> = drained.iter().map(|&(ob, _)| ob).collect();
        let mut merged = 0u64;
        for (ob, entry) in drained {
            merged += self.tr.get_mut(tee)?.ob_list.absorb(ob, entry, tor) as u64;
        }
        self.locks.transfer_all(tor, tee);
        let lsn = self.log.append(
            tor,
            tor_bc,
            RecordBody::Delegate { tee, tee_bc, body: DelegateBody::All },
        );
        self.tr.set_bc(tor, lsn)?;
        self.tr.set_bc(tee, lsn)?;
        self.obs.registry.inc(names::M_SCOPE_DELEGATES);
        self.obs.registry.add(names::M_SCOPE_MERGES, merged);
        self.obs.tracer.point(names::EV_DELEGATE, lsn.raw(), lsn.raw(), tor.raw(), tee.raw());
        self.record_provenance_hops(&objects, tor, tee, lsn);
        Ok(())
    }

    fn commit(&mut self, txn: TxnId) -> Result<()> {
        // §3.5 commit: the operations the transaction is responsible for
        // are already on the log (they were logged at execution time);
        // write the commit record and force the log through it.
        let lsn = self.commit_prepare(txn)?;
        self.log.flush_to(lsn)?;
        Ok(())
    }

    fn abort(&mut self, txn: TxnId) -> Result<()> {
        self.tr.require_active(txn)?;
        let obs = Arc::clone(&self.obs);
        let _span = obs.tracer.span_for_txn(names::SPAN_ABORT, txn.raw());
        // §3.5 abort step 1: undo every update in the transaction's
        // scopes — which, after delegations, are exactly the updates it is
        // *responsible for*, not the ones it invoked. The shared
        // cluster-walk routine from recovery does the backward sweep.
        let scopes: Vec<recovery::WalkScope> = self
            .tr
            .get(txn)?
            .ob_list
            .all_scopes()
            .map(|(ob, scope)| recovery::WalkScope { owner: txn, ob, scope, loser: true })
            .collect();
        recovery::undo_scopes(
            &self.log,
            &mut self.pool,
            &mut self.tr,
            scopes,
            &mut self.compensated,
            false,
            &obs,
        )?;
        // Step 2-3: abort record, *lazily* durable. Aborts are presumed:
        // if a crash loses this record (and any tail of the CLRs), the
        // forward pass simply sees the transaction as a loser and the
        // undo pass re-undoes it — the same outcome this abort produced.
        // Forcing here would also serialize every concurrent operation
        // behind an fsync, since abort runs under the engine lock.
        let _lsn = self.log_for_txn(txn, RecordBody::Abort)?;
        self.tr.get_mut(txn)?.status = TxnStatus::Aborted;
        self.end_txn(txn)
    }

    fn savepoint(&mut self, txn: TxnId) -> Result<u64> {
        RhDb::savepoint(self, txn).map(|lsn| lsn.raw())
    }

    fn rollback_to(&mut self, txn: TxnId, token: u64) -> Result<()> {
        RhDb::rollback_to(self, txn, Lsn(token))
    }

    fn permit(&mut self, granter: TxnId, permittee: TxnId, ob: ObjectId) -> Result<()> {
        self.tr.require_active(granter)?;
        self.tr.require_active(permittee)?;
        self.locks.permit(granter, permittee, ob);
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<()> {
        RhDb::checkpoint(self)
    }

    fn crash_and_recover(self) -> Result<Self> {
        let strategy = self.strategy;
        let config = self.config;
        let (stable, disk) = self.crash();
        Self::recover(strategy, config, stable, disk)
    }

    fn value_of(&mut self, ob: ObjectId) -> Result<Value> {
        self.pool.read_object(ob, &*self.log)
    }
}
